"""Ground-truth structural operations under assumptions A1/A2.

The paper's estimators all target the *structural* output sparsity — the
sparsity of the result when positive/negative cancellation (A1) and NaN
poisoning (A2) are ruled out. The cleanest way to realize those assumptions
is to compute on 0/1 indicator structures: a product of 0/1 matrices can only
lose non-zeros through cancellation, which cannot happen with non-negative
data.

Every function here returns a canonical CSR array holding the exact non-zero
structure of the result; the SparsEst runner uses these as the ground truth
against which estimates are scored.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import ShapeError
from repro.matrix.conversion import MatrixLike, as_csc, as_csr, boolean_structure


def matmul(a: MatrixLike, b: MatrixLike) -> sp.csr_array:
    """Structural matrix product ``C = A B`` under A1/A2.

    Computed as a boolean product of the operand structures: ``C[i, j]`` is
    non-zero iff some ``k`` has ``A[i, k] != 0`` and ``B[k, j] != 0``.
    """
    return boolean_matmul(a, b)


def boolean_matmul(a: MatrixLike, b: MatrixLike) -> sp.csr_array:
    """Boolean matrix product on non-zero structures, returned as 0/1 CSR."""
    sa = boolean_structure(a)
    sb = boolean_structure(b)
    if sa.shape[1] != sb.shape[0]:
        raise ShapeError(
            f"matmul requires inner dimensions to agree: {sa.shape} x {sb.shape}"
        )
    # int64 accumulation cannot overflow for any realistic benchmark size and
    # cannot cancel, so the structure of the numeric product is exact.
    product = sa.astype(np.int64) @ sb.astype(np.int64)
    result = as_csr(product)
    result.data = np.ones_like(result.data, dtype=np.int8)
    return result


def ewise_add(a: MatrixLike, b: MatrixLike) -> sp.csr_array:
    """Structural element-wise addition: the union of both structures."""
    sa = boolean_structure(a)
    sb = boolean_structure(b)
    if sa.shape != sb.shape:
        raise ShapeError(f"ewise_add requires equal shapes: {sa.shape} vs {sb.shape}")
    union = as_csr(sa.astype(np.int64) + sb.astype(np.int64))
    union.data = np.ones_like(union.data, dtype=np.int8)
    return union


def ewise_mult(a: MatrixLike, b: MatrixLike) -> sp.csr_array:
    """Structural element-wise (Hadamard) product: structure intersection."""
    sa = boolean_structure(a)
    sb = boolean_structure(b)
    if sa.shape != sb.shape:
        raise ShapeError(f"ewise_mult requires equal shapes: {sa.shape} vs {sb.shape}")
    inter = as_csr(sa.multiply(sb))
    inter.data = np.ones_like(inter.data, dtype=np.int8)
    return inter


def transpose(a: MatrixLike) -> sp.csr_array:
    """Structural transpose."""
    return as_csr(as_csr(a).transpose())


def reshape_rowwise(a: MatrixLike, rows: int, cols: int) -> sp.csr_array:
    """Row-major reshape of an ``m x n`` matrix into ``rows x cols``.

    Matches the paper's ``reshape`` semantics (row-wise linearization, as in
    SystemML): cell ``(i, j)`` maps to linear index ``i * n + j`` which maps to
    output cell ``(idx // cols, idx % cols)``. The total cell count must be
    preserved.
    """
    csr = as_csr(a)
    m, n = csr.shape
    if rows * cols != m * n:
        raise ShapeError(
            f"cannot reshape {m}x{n} ({m * n} cells) into {rows}x{cols} "
            f"({rows * cols} cells)"
        )
    coo = csr.tocoo()
    linear = coo.row.astype(np.int64) * n + coo.col.astype(np.int64)
    out = sp.coo_array(
        (coo.data, (linear // cols, linear % cols)), shape=(rows, cols)
    )
    return as_csr(out)


def diag_matrix(v: MatrixLike) -> sp.csr_array:
    """Place a column vector (``m x 1``) onto the diagonal of an ``m x m``
    matrix (the paper's vector-to-matrix ``diag``)."""
    csr = as_csr(v)
    m, n = csr.shape
    if n != 1:
        raise ShapeError(f"diag_matrix expects an m x 1 column vector, got {csr.shape}")
    coo = csr.tocoo()
    return as_csr(sp.coo_array((coo.data, (coo.row, coo.row)), shape=(m, m)))


def diag_extract(a: MatrixLike) -> sp.csr_array:
    """Extract the main diagonal of a square matrix as an ``m x 1`` vector
    (the paper's matrix-to-vector ``diag``)."""
    csr = as_csr(a)
    m, n = csr.shape
    if m != n:
        raise ShapeError(f"diag_extract expects a square matrix, got {csr.shape}")
    return as_csr(csr.diagonal().reshape(m, 1))


def rbind(a: MatrixLike, b: MatrixLike) -> sp.csr_array:
    """Row-wise concatenation (stack *b* below *a*)."""
    sa, sb = as_csr(a), as_csr(b)
    if sa.shape[1] != sb.shape[1]:
        raise ShapeError(
            f"rbind requires equal column counts: {sa.shape} vs {sb.shape}"
        )
    return as_csr(sp.vstack([sa, sb], format="csr"))


def cbind(a: MatrixLike, b: MatrixLike) -> sp.csr_array:
    """Column-wise concatenation (stack *b* to the right of *a*)."""
    sa, sb = as_csr(a), as_csr(b)
    if sa.shape[0] != sb.shape[0]:
        raise ShapeError(f"cbind requires equal row counts: {sa.shape} vs {sb.shape}")
    return as_csr(sp.hstack([sa, sb], format="csr"))


def row_sums(a: MatrixLike) -> sp.csr_array:
    """Structural row aggregation: an ``m x 1`` vector whose entry ``i`` is
    non-zero iff row ``i`` holds any non-zero.

    Under A1/A2 a numeric ``rowSums`` can only be zero when the whole row is
    structurally zero, so this is the exact structure of the aggregate.
    """
    csr = as_csr(a)
    counts = np.diff(csr.indptr)
    return as_csr((counts > 0).astype(np.int8).reshape(-1, 1))


def col_sums(a: MatrixLike) -> sp.csr_array:
    """Structural column aggregation: a ``1 x n`` vector whose entry ``j``
    is non-zero iff column ``j`` holds any non-zero (see :func:`row_sums`)."""
    csc = as_csc(a)
    counts = np.diff(csc.indptr)
    return as_csr((counts > 0).astype(np.int8).reshape(1, -1))


def not_equals_zero(a: MatrixLike) -> sp.csr_array:
    """The indicator structure ``A != 0`` as a 0/1 CSR matrix."""
    return boolean_structure(a)


def equals_zero(a: MatrixLike) -> sp.csr_array:
    """The complement indicator ``A == 0`` (dense complement, 0/1 CSR).

    The result has ``m * n - nnz(A)`` non-zeros, so it is typically dense;
    callers in the benchmark only apply it to modest shapes.
    """
    csr = as_csr(a)
    dense = np.ones(csr.shape, dtype=np.int8)
    coo = csr.tocoo()
    dense[coo.row, coo.col] = 0
    return as_csr(dense)
