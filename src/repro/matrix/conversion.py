"""Canonical conversion between dense arrays and sparse formats.

Every public entry point in the library accepts "matrix-like" inputs —
``numpy.ndarray`` (2-D), any ``scipy.sparse`` matrix/array, or nested lists —
and converts them once at the boundary. Internally the library works with
``scipy.sparse.csr_array``/``csc_array``; keeping the conversion in one module
means format quirks (duplicate entries, explicit zeros, 1-D inputs) are
handled exactly once.
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp

from repro.errors import ShapeError

MatrixLike = Union[np.ndarray, sp.spmatrix, sp.sparray, list]
"""Anything accepted at the public API boundary as a matrix."""


def is_sparse(matrix: object) -> bool:
    """Return ``True`` when *matrix* is any scipy sparse container."""
    return sp.issparse(matrix)


def _validate_2d(shape: tuple[int, ...]) -> None:
    if len(shape) != 2:
        raise ShapeError(f"expected a 2-D matrix, got shape {shape}")
    if shape[0] < 0 or shape[1] < 0:
        raise ShapeError(f"matrix dimensions must be non-negative, got {shape}")


def as_csr(matrix: MatrixLike, copy: bool = False) -> sp.csr_array:
    """Convert *matrix* to a canonical CSR array.

    Canonical means: 2-D, duplicate entries summed, explicit zeros removed,
    indices sorted. Estimators rely on ``nnz`` counting only *structural*
    non-zeros, so the explicit-zero elimination here is load-bearing.

    Args:
        matrix: dense array, sparse matrix/array, or nested lists.
        copy: force a copy even when *matrix* is already canonical CSR.

    Returns:
        A canonical ``scipy.sparse.csr_array``.
    """
    if isinstance(matrix, sp.csr_array) and not copy:
        result = matrix
    elif sp.issparse(matrix):
        result = sp.csr_array(matrix)
    else:
        dense = np.asarray(matrix)
        if dense.ndim == 1:
            dense = dense.reshape(1, -1)
        _validate_2d(dense.shape)
        result = sp.csr_array(dense)
    if result.has_canonical_format and not copy:
        # sum_duplicates / eliminate_zeros already done; explicit zeros may
        # still be present in canonical format, so always scrub them.
        result = result.copy() if copy else result
    else:
        result = result.copy()
        result.sum_duplicates()
    result.eliminate_zeros()
    _validate_2d(result.shape)
    return result


def as_csc(matrix: MatrixLike, copy: bool = False) -> sp.csc_array:
    """Convert *matrix* to a canonical CSC array (see :func:`as_csr`)."""
    if isinstance(matrix, sp.csc_array) and not copy:
        result = matrix
    elif sp.issparse(matrix):
        result = sp.csc_array(matrix)
    else:
        dense = np.asarray(matrix)
        if dense.ndim == 1:
            dense = dense.reshape(1, -1)
        _validate_2d(dense.shape)
        result = sp.csc_array(dense)
    if not result.has_canonical_format or copy:
        result = result.copy()
        result.sum_duplicates()
    result.eliminate_zeros()
    _validate_2d(result.shape)
    return result


def to_dense(matrix: MatrixLike) -> np.ndarray:
    """Return *matrix* as a dense 2-D ``numpy.ndarray``."""
    if sp.issparse(matrix):
        return matrix.toarray()
    dense = np.asarray(matrix)
    if dense.ndim == 1:
        dense = dense.reshape(1, -1)
    _validate_2d(dense.shape)
    return dense


def check_assumptions(matrix: MatrixLike) -> None:
    """Validate the paper's assumption A2: the matrix holds no NaN values.

    NaNs break sparse linear algebra semantics (``NaN * 0 = NaN``, paper
    Section 2), so every estimator here treats inputs as NaN-free. The
    structural conversion would silently treat NaN as "non-zero"; call this
    at ingestion boundaries to fail loudly instead.

    Raises:
        ShapeError: when any stored value is NaN.
    """
    if sp.issparse(matrix):
        data = matrix.data
    else:
        data = np.asarray(matrix)
    if data.dtype.kind == "f" and np.isnan(data).any():
        raise ShapeError(
            "matrix contains NaN values; assumption A2 of sparsity "
            "estimation (no NaNs) is violated"
        )


def boolean_structure(matrix: MatrixLike) -> sp.csr_array:
    """Return the 0/1 non-zero structure of *matrix* as CSR with int8 data.

    This realizes assumption A1 of the paper (no cancellation): downstream
    ground-truth operations work on the structure, so adding ``+1`` and ``-1``
    can never annihilate a non-zero.
    """
    csr = as_csr(matrix)
    structure = csr.copy()
    structure.data = np.ones_like(structure.data, dtype=np.int8)
    return structure
