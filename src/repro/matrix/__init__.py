"""Sparse-matrix substrate for the MNC reproduction.

This subpackage provides everything the estimators need from a matrix
runtime: canonical conversion to CSR/CSC (:mod:`repro.matrix.conversion`),
structural ground-truth operations under the paper's assumptions A1/A2
(:mod:`repro.matrix.ops`), structural property probes
(:mod:`repro.matrix.properties`), structured random generators
(:mod:`repro.matrix.random`), and a small npz-backed cache
(:mod:`repro.matrix.io`).
"""

from repro.matrix.conversion import (
    as_csc,
    as_csr,
    is_sparse,
    to_dense,
)
from repro.matrix.ops import (
    boolean_matmul,
    cbind,
    col_sums,
    diag_extract,
    diag_matrix,
    equals_zero,
    ewise_add,
    ewise_mult,
    matmul,
    not_equals_zero,
    reshape_rowwise,
    rbind,
    row_sums,
    transpose,
)
from repro.matrix.properties import (
    col_nnz,
    density,
    is_diagonal,
    is_lower_triangular,
    is_permutation,
    is_symmetric,
    is_upper_triangular,
    nnz,
    row_nnz,
    sparsity,
)
from repro.matrix.random import (
    banded_matrix,
    block_diagonal_matrix,
    one_hot_block,
    permutation_matrix,
    power_law_columns,
    random_sparse,
    selection_matrix,
    single_nnz_per_row,
    symmetric_matrix,
    triangular_matrix,
)

__all__ = [
    "as_csc",
    "as_csr",
    "banded_matrix",
    "block_diagonal_matrix",
    "boolean_matmul",
    "cbind",
    "col_nnz",
    "col_sums",
    "density",
    "diag_extract",
    "diag_matrix",
    "equals_zero",
    "ewise_add",
    "ewise_mult",
    "is_diagonal",
    "is_lower_triangular",
    "is_permutation",
    "is_symmetric",
    "is_upper_triangular",
    "is_sparse",
    "matmul",
    "nnz",
    "not_equals_zero",
    "one_hot_block",
    "permutation_matrix",
    "symmetric_matrix",
    "triangular_matrix",
    "power_law_columns",
    "random_sparse",
    "rbind",
    "reshape_rowwise",
    "row_nnz",
    "row_sums",
    "selection_matrix",
    "single_nnz_per_row",
    "sparsity",
    "to_dense",
    "transpose",
]
