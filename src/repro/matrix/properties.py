"""Structural property probes for sparse matrices.

These helpers compute exactly the quantities the MNC sketch and the baseline
estimators consume: non-zero counts per row/column, overall sparsity, and
structural predicates (diagonal, permutation). They all operate on the
*structure* of the matrix — explicit zeros are eliminated by the conversion
layer before counting.
"""

from __future__ import annotations

import numpy as np

from repro.matrix.conversion import MatrixLike, as_csc, as_csr


def nnz(matrix: MatrixLike) -> int:
    """Number of structural non-zeros in *matrix*."""
    return int(as_csr(matrix).nnz)


def sparsity(matrix: MatrixLike) -> float:
    """Fraction of non-zero cells, ``nnz / (m * n)``.

    The paper calls this quantity "sparsity" (despite it being a density);
    we keep the paper's terminology throughout. Empty matrices have
    sparsity 0.0.
    """
    csr = as_csr(matrix)
    m, n = csr.shape
    if m == 0 or n == 0:
        return 0.0
    return csr.nnz / (m * n)


def density(matrix: MatrixLike) -> float:
    """Alias of :func:`sparsity` for readers who prefer the standard term."""
    return sparsity(matrix)


def row_nnz(matrix: MatrixLike) -> np.ndarray:
    """Non-zeros per row as an ``int64`` vector of length ``m``."""
    csr = as_csr(matrix)
    return np.diff(csr.indptr).astype(np.int64)


def col_nnz(matrix: MatrixLike) -> np.ndarray:
    """Non-zeros per column as an ``int64`` vector of length ``n``."""
    csc = as_csc(matrix)
    return np.diff(csc.indptr).astype(np.int64)


def is_diagonal(matrix: MatrixLike) -> bool:
    """True when every non-zero of *matrix* lies on the main diagonal.

    Note this is a *structural* predicate: a square all-zero matrix is
    diagonal by this definition. The MNC metadata additionally tracks
    *fully* diagonal matrices (dense diagonal); see
    :meth:`repro.core.sketch.MNCSketch.is_fully_diagonal`.
    """
    csr = as_csr(matrix)
    rows = np.repeat(np.arange(csr.shape[0]), np.diff(csr.indptr))
    return bool(np.all(rows == csr.indices))


def is_fully_diagonal(matrix: MatrixLike) -> bool:
    """True for a square matrix whose diagonal is fully dense and all
    off-diagonal cells are zero — the paper's "fully diagonal" flag used for
    exact sketch propagation (Eq 12)."""
    csr = as_csr(matrix)
    m, n = csr.shape
    if m != n:
        return False
    return csr.nnz == m and is_diagonal(csr)


def is_symmetric(matrix: MatrixLike) -> bool:
    """True when the non-zero *structure* is symmetric (``A`` and ``A^T``
    share their support; values may differ)."""
    csr = as_csr(matrix)
    if csr.shape[0] != csr.shape[1]:
        return False
    transposed = as_csr(csr.transpose())
    if csr.nnz != transposed.nnz:
        return False
    difference = abs(csr.sign()) - abs(transposed.sign())
    difference = as_csr(difference)
    return difference.nnz == 0


def is_lower_triangular(matrix: MatrixLike) -> bool:
    """True when every non-zero sits on or below the main diagonal."""
    csr = as_csr(matrix)
    rows = np.repeat(np.arange(csr.shape[0]), np.diff(csr.indptr))
    return bool(np.all(csr.indices <= rows))


def is_upper_triangular(matrix: MatrixLike) -> bool:
    """True when every non-zero sits on or above the main diagonal."""
    csr = as_csr(matrix)
    rows = np.repeat(np.arange(csr.shape[0]), np.diff(csr.indptr))
    return bool(np.all(csr.indices >= rows))


def is_permutation(matrix: MatrixLike) -> bool:
    """True for a square 0/1-structure matrix with exactly one non-zero per
    row and per column."""
    csr = as_csr(matrix)
    m, n = csr.shape
    if m != n or csr.nnz != m:
        return False
    if not np.all(np.diff(csr.indptr) == 1):
        return False
    return bool(np.array_equal(np.sort(csr.indices), np.arange(n)))
