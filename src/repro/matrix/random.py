"""Structured random-matrix generators.

Sparsity estimators differ precisely on *structured* inputs, so the SparsEst
benchmark needs generators for the structural patterns the paper calls out:
single-non-zero-per-row token matrices, permutation and selection matrices,
power-law column distributions, banded matrices, and one-hot encoded blocks.

All generators take an explicit ``numpy.random.Generator`` (or an int seed)
and are deterministic given the seed.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np
import scipy.sparse as sp

from repro.errors import ShapeError
from repro.matrix.conversion import as_csr

SeedLike = Union[int, np.random.Generator, None]


def _rng(seed: SeedLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_sparse(
    m: int,
    n: int,
    sparsity: float,
    seed: SeedLike = None,
    values: str = "uniform",
) -> sp.csr_array:
    """Uniformly random sparse matrix with expected density *sparsity*.

    Cells are included i.i.d. with probability *sparsity* (Bernoulli
    sampling), matching the uniformity assumption the MetaAC estimator makes —
    so MetaAC is near-exact on these inputs, which several paper experiments
    rely on.

    Args:
        m, n: output shape.
        sparsity: expected fraction of non-zero cells in [0, 1].
        seed: RNG seed or generator.
        values: ``"uniform"`` for U(0,1] data or ``"ones"`` for 0/1 data.
    """
    if not 0.0 <= sparsity <= 1.0:
        raise ShapeError(f"sparsity must be in [0, 1], got {sparsity}")
    rng = _rng(seed)
    target = int(round(sparsity * m * n))
    if target == 0:
        return sp.csr_array((m, n))
    if sparsity > 0.25:
        mask = rng.random((m, n)) < sparsity
        if values == "ones":
            return as_csr(mask.astype(np.int8))
        data = np.where(mask, rng.random((m, n)) * 0.9 + 0.1, 0.0)
        return as_csr(data)
    # Ultra-sparse path: sample linear indices without materializing m*n.
    count = rng.binomial(m * n, sparsity)
    linear = rng.choice(m * n, size=count, replace=False)
    rows, cols = np.divmod(linear, n)
    if values == "ones":
        data = np.ones(count, dtype=np.int8)
    else:
        data = rng.random(count) * 0.9 + 0.1
    return as_csr(sp.coo_array((data, (rows, cols)), shape=(m, n)))


def single_nnz_per_row(
    m: int,
    n: int,
    seed: SeedLike = None,
    column_weights: Optional[np.ndarray] = None,
) -> sp.csr_array:
    """0/1 matrix with exactly one non-zero per row (token-sequence shape).

    Column positions are drawn from *column_weights* (normalized internally),
    defaulting to uniform. This is the structural property ``max(hr) = 1``
    that Theorem 3.1 exploits.
    """
    rng = _rng(seed)
    if column_weights is None:
        cols = rng.integers(0, n, size=m)
    else:
        weights = np.asarray(column_weights, dtype=np.float64)
        if weights.shape != (n,):
            raise ShapeError(f"column_weights must have shape ({n},)")
        probabilities = weights / weights.sum()
        cols = rng.choice(n, size=m, p=probabilities)
    data = np.ones(m, dtype=np.int8)
    rows = np.arange(m)
    return as_csr(sp.coo_array((data, (rows, cols)), shape=(m, n)))


def power_law_columns(
    m: int,
    n: int,
    total_nnz: int,
    alpha: float = 1.1,
    seed: SeedLike = None,
) -> sp.csr_array:
    """Sparse 0/1 matrix whose column non-zero counts follow a Zipf law.

    Column ``j`` receives weight ``(j + 1) ** -alpha``; *total_nnz* cells are
    drawn according to those weights with uniformly random rows (duplicates
    collapse, so the realized nnz can be slightly below *total_nnz* for dense
    columns). This reproduces the skewed-column structure of NLP token and
    ratings matrices.
    """
    rng = _rng(seed)
    weights = (np.arange(1, n + 1, dtype=np.float64)) ** (-alpha)
    probabilities = weights / weights.sum()
    cols = rng.choice(n, size=total_nnz, p=probabilities)
    rows = rng.integers(0, m, size=total_nnz)
    data = np.ones(total_nnz, dtype=np.int8)
    result = as_csr(sp.coo_array((data, (rows, cols)), shape=(m, n)))
    result.data = np.ones_like(result.data, dtype=np.int8)
    return result


def permutation_matrix(n: int, seed: SeedLike = None) -> sp.csr_array:
    """Random ``n x n`` permutation matrix (the paper's ``table(s1, s2)``)."""
    rng = _rng(seed)
    perm = rng.permutation(n)
    data = np.ones(n, dtype=np.int8)
    return as_csr(sp.coo_array((data, (np.arange(n), perm)), shape=(n, n)))


def selection_matrix(
    rows_selected: Sequence[int], n: int
) -> sp.csr_array:
    """Selection matrix ``P`` with ``P[i, rows_selected[i]] = 1``.

    Multiplying ``P X`` extracts (and reorders) the given rows of ``X``;
    ``X P^T`` would extract columns. Used by B2.2, B3.3 and B3.4.
    """
    selected = np.asarray(rows_selected, dtype=np.int64)
    if selected.size and (selected.min() < 0 or selected.max() >= n):
        raise ShapeError(
            f"selected indices must lie in [0, {n}), got range "
            f"[{selected.min()}, {selected.max()}]"
        )
    k = selected.size
    data = np.ones(k, dtype=np.int8)
    return as_csr(sp.coo_array((data, (np.arange(k), selected)), shape=(k, n)))


def diagonal_matrix(n: int, seed: SeedLike = None) -> sp.csr_array:
    """Fully dense diagonal ``n x n`` matrix (the paper's ``diag(lambda)``)."""
    rng = _rng(seed)
    values = rng.random(n) * 0.9 + 0.1
    return as_csr(sp.diags_array(values, format="csr"))


def banded_matrix(n: int, bandwidth: int) -> sp.csr_array:
    """Square 0/1 matrix with non-zeros on diagonals ``-bandwidth..bandwidth``."""
    offsets = range(-bandwidth, bandwidth + 1)
    diags = [np.ones(n - abs(k)) for k in offsets]
    return as_csr(sp.diags_array(diags, offsets=list(offsets), format="csr"))


def one_hot_block(
    m: int,
    cardinality: int,
    seed: SeedLike = None,
    weights: Optional[np.ndarray] = None,
) -> sp.csr_array:
    """One-hot (dummy-coded) block: ``m x cardinality`` with one 1 per row.

    Models the correlated sparse column groups that one-hot encoding of a
    categorical feature introduces (Covertype-style data). *weights* skews
    the category distribution.
    """
    return single_nnz_per_row(m, cardinality, seed=seed, column_weights=weights)


def triangular_matrix(
    n: int,
    sparsity: float = 1.0,
    upper: bool = False,
    seed: SeedLike = None,
) -> sp.csr_array:
    """Random lower (or upper) triangular matrix with the given density
    inside the triangle.

    Triangular structure is one of the properties systems like Sparso
    propagate (paper Section 7); these generators support testing whether
    count-based sketches capture it implicitly (they do: half the rows are
    more than half full, which drives the Theorem 3.2 lower bound).
    """
    rng = _rng(seed)
    if not 0.0 <= sparsity <= 1.0:
        raise ShapeError(f"sparsity must be in [0, 1], got {sparsity}")
    dense = rng.random((n, n)) * 0.9 + 0.1
    mask = rng.random((n, n)) < sparsity
    triangle = np.triu(np.ones((n, n), dtype=bool)) if upper else np.tril(
        np.ones((n, n), dtype=bool)
    )
    return as_csr(np.where(mask & triangle, dense, 0.0))


def symmetric_matrix(n: int, sparsity: float, seed: SeedLike = None) -> sp.csr_array:
    """Random symmetric 0/1-structure matrix with expected density near
    *sparsity* (the union of a random pattern with its transpose)."""
    rng = _rng(seed)
    half = random_sparse(n, n, sparsity / 2 if sparsity < 1 else 1.0, seed=rng)
    pattern = half + half.T
    result = as_csr(pattern)
    result.data = np.ones_like(result.data, dtype=np.int8)
    return result


def block_diagonal_matrix(
    block_sizes: Sequence[int],
    sparsity: float = 1.0,
    seed: SeedLike = None,
) -> sp.csr_array:
    """Block-diagonal matrix: independent random blocks along the diagonal.

    Models the correlated column groups that joins of one-hot-encoded
    features produce; everything off the diagonal blocks is structurally
    zero.
    """
    rng = _rng(seed)
    blocks = [random_sparse(size, size, sparsity, seed=rng) for size in block_sizes]
    return as_csr(sp.block_diag(blocks, format="csr"))


def outer_product_pair(
    n: int, dense_index: int = 0
) -> tuple[sp.csr_array, sp.csr_array]:
    """The adversarial B1.4/B1.5 pair: ``C`` has one dense column, ``R`` the
    aligned dense row.

    ``C R`` is fully dense (rank-1 outer product) while ``R C`` has a single
    non-zero — the special cases where naive estimators fail catastrophically.
    """
    if not 0 <= dense_index < n:
        raise ShapeError(f"dense_index must be in [0, {n})")
    col = sp.coo_array(
        (np.ones(n, dtype=np.int8), (np.arange(n), np.full(n, dense_index))),
        shape=(n, n),
    )
    row = sp.coo_array(
        (np.ones(n, dtype=np.int8), (np.full(n, dense_index), np.arange(n))),
        shape=(n, n),
    )
    return as_csr(col), as_csr(row)
