"""Persistence helpers for sparse matrices and a tiny dataset cache.

The SparsEst datasets are generated synthetically (see
:mod:`repro.sparsest.datasets`); generation of the larger ones takes seconds,
so benchmark modules cache them on disk in ``.npz`` form keyed by a content
string. The cache lives under ``~/.cache/repro-mnc`` by default and can be
redirected via the ``REPRO_MNC_CACHE`` environment variable.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Callable

import scipy.sparse as sp

from repro.matrix.conversion import MatrixLike, as_csr


def save_matrix(path: str | Path, matrix: MatrixLike) -> None:
    """Save a matrix to *path* in scipy ``.npz`` sparse format."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    sp.save_npz(target, sp.csr_matrix(as_csr(matrix)))


def load_matrix(path: str | Path) -> sp.csr_array:
    """Load a matrix previously stored with :func:`save_matrix`."""
    return as_csr(sp.load_npz(Path(path)))


def cache_dir() -> Path:
    """Directory used by :func:`cached_matrix` (created on demand)."""
    root = os.environ.get("REPRO_MNC_CACHE")
    if root:
        path = Path(root)
    else:
        path = Path.home() / ".cache" / "repro-mnc"
    path.mkdir(parents=True, exist_ok=True)
    return path


def cached_matrix(key: str, build: Callable[[], MatrixLike]) -> sp.csr_array:
    """Return the matrix for *key*, building and caching it on first use.

    Args:
        key: human-readable content key; hashed into the cache filename so
            keys may contain arbitrary characters.
        build: zero-argument callable producing the matrix on cache miss.
    """
    digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:24]
    path = cache_dir() / f"{digest}.npz"
    if path.exists():
        try:
            return load_matrix(path)
        except (OSError, ValueError):
            path.unlink(missing_ok=True)
    matrix = as_csr(build())
    save_matrix(path, matrix)
    return matrix
