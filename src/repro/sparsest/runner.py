"""SparsEst execution harness.

Runs estimators over use-case DAGs, computes ground truth once per distinct
expression structure (memoized on catalog fingerprints, so truths survive
expression rebuilds across seeds), and reports the paper's M1/M2 metrics.
Estimators that cannot express an operation (e.g. the layered graph on
element-wise operations, Table 1) yield an ``unsupported`` outcome, which
the report renders as the "x" the paper's figures show. Estimators whose
synopsis would exceed a configurable memory budget (the paper's
out-of-memory bitset cases) yield ``oom``.

The one entry point is :func:`execute`: it takes self-describing, picklable
:class:`EstimationRequest` objects and returns :class:`EstimationResult`
objects in request order, optionally fanning independent requests out to a
process pool (``workers``, default ``$REPRO_WORKERS`` or serial). The
legacy ``run_use_case`` / ``run_repeated`` / ``run_estimators`` signatures
remain as deprecation shims over it.

Determinism contract: a request whose ``estimator`` is a registry *name*
is materialized as a fresh, identically-configured instance per request,
in workers and in the serial path alike — so ``workers=N`` produces
bit-identical estimates to ``workers=1`` for any N (wall-clock ``seconds``
are physical measurements and naturally vary; compare outcomes with
:meth:`EstimateOutcome.deterministic_key`). Requests carrying estimator
*instances* (the shim path) share that instance's state across cells
exactly as the old API did, and therefore always run serially.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import asdict, dataclass, replace
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple, Union

from repro.catalog.fingerprint import fingerprint_expr
from repro.catalog.memo import EstimateMemo
from repro.errors import EstimatorOptionError, UnsupportedOperationError
from repro.estimators.base import SparsityEstimator
from repro.estimators.spec import AUTO_NAME, EstimatorSpec
from repro.estimators.bitset import BitsetEstimator
from repro.ir.estimate import estimate_root_nnz
from repro.ir.interpreter import evaluate
from repro.ir.nodes import Expr
from repro.observability.collector import get_collector
from repro.observability.metrics import metric_inc, metric_observe, record_residual
from repro.observability.recording import unwrap_estimator
from repro.observability.trace import timed_span
from repro.opcodes import Op
from repro.parallel.engine import resolve_workers, run_tasks
from repro.sparsest.metrics import aggregate_relative_error, relative_error
from repro.sparsest.usecases import UseCase, get_use_case

#: Default synopsis budget: a bitset beyond this is treated as OOM, mirroring
#: the paper's 8 TB / 7.8 TB bitset failures at benchmark scale.
DEFAULT_MEMORY_BUDGET_BYTES = 2 * 1024**3

# Keyed by structural expression fingerprints (not object identity), so a
# ground truth computed for one DAG instance is reused when the expression
# is rebuilt — e.g. across per-seed reconstructions at the same scale. The
# memo is LRU-bounded, so long sweeps cannot grow it without limit.
_TRUTH_MEMO = EstimateMemo(max_entries=4096)

#: Estimator key under which ground truths are memoized.
_TRUTH_KEY = "exact"


@dataclass(frozen=True)
class EstimateOutcome:
    """Result of one (use case, estimator) execution."""

    use_case: str
    estimator: str
    true_nnz: float
    estimated_nnz: float
    relative_error: float
    seconds: float
    status: str  # "ok" | "unsupported" | "oom" | "failed"

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def deterministic_key(self) -> tuple:
        """Everything but wall time: the fields a parallel run reproduces
        bit-identically. Two runs of the same request agree on this key
        regardless of worker count; ``seconds`` is a physical measurement
        and is excluded. NaN placeholders (unsupported/OOM cells) are
        mapped to a comparable sentinel, since ``nan != nan`` would make
        such outcomes never equal their own reproduction."""
        def comparable(value: float):
            return "nan" if math.isnan(value) else value

        return (
            self.use_case, self.estimator, comparable(self.true_nnz),
            comparable(self.estimated_nnz), comparable(self.relative_error),
            self.status,
        )


@dataclass(frozen=True)
class EstimationRequest:
    """Self-describing, picklable unit of SparsEst work.

    Args:
        use_case: use-case id (e.g. ``"B2.3"``, preferred) or a
            :class:`UseCase` instance (accepted for ad-hoc cases outside
            the registry; forces serial execution).
        estimator: registry name or ``"auto"`` (preferred — materialized
            fresh per request, safe to ship to workers), an
            :class:`~repro.estimators.spec.EstimatorSpec`, or a live
            estimator instance (legacy shims; forces serial execution,
            shares state across requests).
        estimator_options: deprecated — fold options into an
            :class:`EstimatorSpec` instead. Still honored: constructor
            keyword arguments for name-based estimators, as a sorted
            tuple of ``(key, value)`` pairs.
        scale: use-case dimension scale.
        seed: base data seed (also the adaptive router's base seed for
            ``"auto"`` requests).
        repetitions: > 1 aggregates seeds ``seed .. seed+repetitions-1``
            with the paper's additive rule (Section 5); a single
            unsupported/OOM repetition short-circuits.
        memory_budget_bytes: bitset OOM threshold.
        tolerance: maximum relative interval width for ``"auto"``
            requests; rejected for concrete estimators.
    """

    use_case: Union[str, UseCase]
    estimator: Union[str, EstimatorSpec, SparsityEstimator]
    estimator_options: Tuple[Tuple[str, Any], ...] = ()
    scale: float = 1.0
    seed: int = 0
    repetitions: int = 1
    memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET_BYTES
    tolerance: Optional[float] = None

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ValueError(
                f"repetitions must be positive, got {self.repetitions}"
            )
        if self.estimator_options:
            warnings.warn(
                "EstimationRequest.estimator_options is deprecated; pass an "
                "EstimatorSpec with options as the estimator instead",
                DeprecationWarning,
                stacklevel=3,
            )
        if self.tolerance is not None and not self.is_auto:
            raise EstimatorOptionError(
                "'tolerance' is only meaningful with estimator='auto' "
                f"(got estimator={self.estimator_label!r})"
            )

    @property
    def is_auto(self) -> bool:
        """Whether this request routes through the adaptive router."""
        if isinstance(self.estimator, EstimatorSpec):
            return self.estimator.is_auto
        return self.estimator == AUTO_NAME if isinstance(self.estimator, str) else False

    @property
    def portable(self) -> bool:
        """Whether this request can be shipped to a worker process: both
        the use case and the estimator are registry references (or a
        picklable spec), so the worker reconstructs them instead of
        sharing live objects."""
        return isinstance(self.estimator, (str, EstimatorSpec)) and isinstance(
            self.use_case, str
        )

    def resolve_use_case(self) -> UseCase:
        if isinstance(self.use_case, str):
            return get_use_case(self.use_case)
        return self.use_case

    @property
    def use_case_id(self) -> str:
        return self.use_case if isinstance(self.use_case, str) else self.use_case.id

    def estimator_spec(self) -> EstimatorSpec:
        """This request's estimator as a unified :class:`EstimatorSpec`.

        Only meaningful for name/spec requests (``portable`` ones); folds
        the deprecated ``estimator_options`` tuple and the request-level
        ``tolerance`` into the spec, and defaults the router seed for
        ``"auto"`` requests to the request's data ``seed`` so routed runs
        are reproducible from the request alone.
        """
        if isinstance(self.estimator, SparsityEstimator):
            raise EstimatorOptionError(
                "estimator instances have no spec; pass a registry name or "
                "an EstimatorSpec"
            )
        if isinstance(self.estimator, EstimatorSpec):
            spec = self.estimator
        else:
            spec = EstimatorSpec.parse(self.estimator)
        if self.estimator_options:
            merged = dict(spec.options_dict())
            merged.update(dict(self.estimator_options))
            spec = replace(spec, options=tuple(sorted(merged.items())))
        if self.tolerance is not None and spec.tolerance is None:
            spec = replace(spec, tolerance=self.tolerance)
        if spec.is_auto and spec.seed is None:
            spec = replace(spec, seed=self.seed)
        return spec

    def materialize_estimator(self) -> SparsityEstimator:
        """A fresh estimator for this request (instances pass through).

        Name/spec-based estimators are wrapped in the telemetry proxy when
        a collector is listening, matching what the CLI does for instances.
        ``"auto"`` requests have no single estimator — they are routed per
        cell by :func:`execute_request` instead.
        """
        if isinstance(self.estimator, SparsityEstimator):
            return self.estimator
        estimator = self.estimator_spec().make()
        if get_collector().enabled:
            from repro.observability.recording import RecordingEstimator

            return RecordingEstimator(estimator)
        return estimator

    @property
    def estimator_label(self) -> str:
        """Display name used in failed-outcome rows."""
        if isinstance(self.estimator, str):
            return self.estimator
        return self.estimator.name


@dataclass(frozen=True)
class EstimationResult:
    """One executed request: its outcome, plus the crash report if the
    request failed instead of completing."""

    request: EstimationRequest
    outcome: EstimateOutcome
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.outcome.ok


def _record_outcome(outcome: EstimateOutcome) -> EstimateOutcome:
    """Report *outcome* to the active collector (error-vs-time telemetry)
    and to the process-wide metrics registry / residual ledger.

    Ground truth is computed for every cell anyway (the paper's M1 needs
    it), so each ``ok`` outcome becomes an accuracy residual for free;
    failed/unsupported/OOM cells only bump status counters.
    """
    collector = get_collector()
    if collector.enabled:
        collector.record_outcome(asdict(outcome))
    metric_inc(f"sparsest.outcomes.{outcome.status}")
    if outcome.ok:
        record_residual(
            source="sparsest",
            estimator=outcome.estimator,
            workload=outcome.use_case,
            op="dag",
            estimate=outcome.estimated_nnz,
            truth=outcome.true_nnz,
            seconds=outcome.seconds,
        )
        metric_observe("sparsest.seconds", outcome.seconds)
    return outcome


def true_nnz_of(root: Expr) -> float:
    """Ground-truth non-zero count of a DAG root.

    Memoized on the expression's structural fingerprint: rebuilding the
    same expression (even from different objects, as the per-seed use-case
    builders do) reuses the evaluated truth instead of re-running the full
    sparse computation.
    """
    fingerprint = fingerprint_expr(root)
    return _TRUTH_MEMO.memoize(
        fingerprint, _TRUTH_KEY, "nnz", lambda: float(evaluate(root).nnz)
    )


def _bitset_would_oom(root: Expr, budget_bytes: int) -> bool:
    """Whether any node's bitset synopsis exceeds the memory budget."""
    for node in root.postorder():
        m, n = node.shape
        if m * n / 8 > budget_bytes:
            return True
    return False


# ----------------------------------------------------------------------
# Execution core
# ----------------------------------------------------------------------

def _run_cell(
    use_case: UseCase,
    estimator: SparsityEstimator,
    scale: float,
    seed: int,
    memory_budget_bytes: int,
) -> EstimateOutcome:
    """One (use case, estimator, seed) cell — the paper's M1/M2 probe.

    The reported time covers synopsis construction, propagation, and root
    estimation (the paper's M2 "total estimation time").
    """
    root = use_case.build(scale=scale, seed=seed)
    truth = true_nnz_of(root)
    if isinstance(unwrap_estimator(estimator), BitsetEstimator) and (
        _bitset_would_oom(root, memory_budget_bytes)
    ):
        return _record_outcome(EstimateOutcome(
            use_case.id, estimator.name, truth, math.nan, math.inf, 0.0, "oom"
        ))
    with timed_span(
        "sparsest.run", use_case=use_case.id, estimator=estimator.name
    ) as span:
        try:
            estimate = estimate_root_nnz(root, estimator)
        except UnsupportedOperationError:
            return _record_outcome(EstimateOutcome(
                use_case.id, estimator.name, truth, math.nan, math.inf, 0.0,
                "unsupported",
            ))
    seconds = span.seconds
    error = relative_error(truth, estimate)
    return _record_outcome(EstimateOutcome(
        use_case.id, estimator.name, truth, estimate, error, seconds, "ok"
    ))


#: Outcome label for adaptively routed cells (the router picks a concrete
#: tier per cell; the aggregate row is labelled by the routing mode).
AUTO_LABEL = "Auto"


def _run_cell_routed(
    use_case: UseCase,
    router: Any,
    scale: float,
    seed: int,
) -> EstimateOutcome:
    """One routed (use case, seed) cell: the adaptive router starts at the
    cheapest admissible tier and escalates until the uncertainty width
    clears its tolerance.

    Besides the usual ``sparsest``-sourced residual (labelled
    ``AUTO_LABEL``), the cell credits a ``router``-sourced residual to the
    *chosen tier's* estimator label — that is the feedback signal
    :meth:`repro.router.RoutingPolicy.sync_from_registry` consumes to
    tighten or widen per-tier error bands over time.
    """
    root = use_case.build(scale=scale, seed=seed)
    truth = true_nnz_of(root)
    with timed_span(
        "sparsest.run", use_case=use_case.id, estimator=AUTO_LABEL
    ) as span:
        try:
            nnz, decision = router.route(root, workload=use_case.id)
        except UnsupportedOperationError:
            return _record_outcome(EstimateOutcome(
                use_case.id, AUTO_LABEL, truth, math.nan, math.inf, 0.0,
                "unsupported",
            ))
    seconds = span.seconds
    record_residual(
        source="router",
        estimator=decision.estimator,
        workload=use_case.id,
        op="dag",
        estimate=nnz,
        truth=truth,
        seconds=seconds,
    )
    error = relative_error(truth, nnz)
    return _record_outcome(EstimateOutcome(
        use_case.id, AUTO_LABEL, truth, nnz, error, seconds, "ok"
    ))


def execute_request(request: EstimationRequest) -> EstimateOutcome:
    """Execute one request to completion (the worker entry point).

    Single-repetition requests return the cell outcome directly; repeated
    requests aggregate per-seed outcomes with the paper's additive rule
    ("we additively aggregate ... and compute the final error as
    max(S, s*n) / min(S, s*n)"), with timings summed and a single
    unsupported/OOM repetition short-circuiting.

    ``"auto"`` requests route each cell through a fresh
    :class:`~repro.router.AdaptiveRouter` built from the request's spec.
    The router's policy starts empty (never synced mid-request), so a
    worker process and the serial path make identical tier choices.
    """
    use_case = request.resolve_use_case()
    if request.is_auto:
        from repro.router import AdaptiveRouter

        router = AdaptiveRouter.from_spec(request.estimator_spec())

        def cell(seed: int) -> EstimateOutcome:
            return _run_cell_routed(use_case, router, request.scale, seed)
    else:
        estimator = request.materialize_estimator()

        def cell(seed: int) -> EstimateOutcome:
            return _run_cell(
                use_case, estimator, request.scale, seed,
                request.memory_budget_bytes,
            )

    if request.repetitions == 1:
        return cell(request.seed)
    true_counts: List[float] = []
    estimates: List[float] = []
    seconds = 0.0
    label = request.estimator_label
    for seed in range(request.seed, request.seed + request.repetitions):
        outcome = cell(seed)
        if not outcome.ok:
            return outcome
        label = outcome.estimator
        true_counts.append(outcome.true_nnz)
        estimates.append(outcome.estimated_nnz)
        seconds += outcome.seconds
    return EstimateOutcome(
        use_case.id, label,
        sum(true_counts), sum(estimates),
        aggregate_relative_error(true_counts, estimates),
        seconds, "ok",
    )


def _failed_outcome(request: EstimationRequest) -> EstimateOutcome:
    return EstimateOutcome(
        request.use_case_id, request.estimator_label,
        math.nan, math.nan, math.inf, 0.0, "failed",
    )


def execute(
    requests: Sequence[EstimationRequest],
    *,
    workers: Optional[int] = None,
    on_error: str = "capture",
) -> List[EstimationResult]:
    """Execute *requests* and return results in request order.

    Args:
        requests: independent work items.
        workers: process count; ``None`` reads ``$REPRO_WORKERS``
            (default 1 — serial, deterministic, unchanged trace output).
            The pool is only used when every request is portable
            (name-based estimator); instance-carrying batches fall back to
            serial execution to preserve shared-state semantics.
        on_error: ``"capture"`` converts exceptions — including hard
            worker deaths in pool mode — into results with
            ``status="failed"`` and the crash text in ``error``;
            ``"raise"`` propagates the first exception (serial only, the
            legacy shim behavior).

    Returns:
        One :class:`EstimationResult` per request, in request order.
    """
    if on_error not in ("capture", "raise"):
        raise ValueError(f"on_error must be 'capture' or 'raise', got {on_error!r}")
    requests = list(requests)
    workers = resolve_workers(workers)
    parallel = (
        workers > 1
        and len(requests) > 1
        and all(request.portable for request in requests)
    )
    if not parallel:
        results: List[EstimationResult] = []
        for request in requests:
            if on_error == "raise":
                results.append(EstimationResult(request, execute_request(request)))
                continue
            try:
                results.append(EstimationResult(request, execute_request(request)))
            except Exception as exc:  # noqa: BLE001 - mirrored pool semantics
                results.append(EstimationResult(
                    request, _failed_outcome(request),
                    error=f"{type(exc).__name__}: {exc}",
                ))
        return results

    task_results = run_tasks(
        execute_request, requests, workers=workers, label="sparsest.execute"
    )
    results = []
    for request, task in zip(requests, task_results):
        if task.ok:
            results.append(EstimationResult(request, task.value))
        else:
            results.append(EstimationResult(
                request, _failed_outcome(request), error=str(task.failure)
            ))
    return results


def execute_outcomes(
    requests: Sequence[EstimationRequest],
    *,
    workers: Optional[int] = None,
) -> List[EstimateOutcome]:
    """:func:`execute`, unwrapped to the outcome list most callers want."""
    return [result.outcome for result in execute(requests, workers=workers)]


def requests_for(
    use_cases: Sequence[Union[UseCase, str]],
    estimators: Sequence[str],
    *,
    scale: float = 1.0,
    seed: int = 0,
    repetitions: int = 1,
    memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET_BYTES,
    tolerance: Optional[float] = None,
) -> List[EstimationRequest]:
    """Cartesian (use case x estimator) request list, use-case-major —
    the same cell order the legacy ``run_estimators`` produced.

    *tolerance* applies to ``"auto"`` entries only (concrete estimators
    reject it, so a mixed sweep keeps working).
    """
    return [
        EstimationRequest(
            use_case=case if isinstance(case, str) else case.id,
            estimator=name,
            scale=scale,
            seed=seed,
            repetitions=repetitions,
            memory_budget_bytes=memory_budget_bytes,
            tolerance=tolerance if name == AUTO_NAME else None,
        )
        for case in use_cases
        for name in estimators
    ]


# ----------------------------------------------------------------------
# Deprecated wrappers (the pre-request API)
# ----------------------------------------------------------------------

def _deprecated(old: str) -> None:
    warnings.warn(
        f"{old} is deprecated; build EstimationRequest objects and call "
        f"repro.sparsest.runner.execute instead",
        DeprecationWarning,
        stacklevel=3,
    )


def run_use_case(
    use_case: UseCase,
    estimator: SparsityEstimator,
    scale: float = 1.0,
    seed: int = 0,
    memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET_BYTES,
) -> EstimateOutcome:
    """Deprecated: one estimator on one use case (see :func:`execute`)."""
    _deprecated("run_use_case")
    request = EstimationRequest(
        use_case=use_case, estimator=estimator, scale=scale, seed=seed,
        memory_budget_bytes=memory_budget_bytes,
    )
    return execute([request], workers=1, on_error="raise")[0].outcome


def run_repeated(
    use_case: UseCase,
    estimator: SparsityEstimator,
    repetitions: int = 20,
    scale: float = 1.0,
    memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET_BYTES,
) -> EstimateOutcome:
    """Deprecated: aggregate *repetitions* seeds (see :func:`execute`)."""
    _deprecated("run_repeated")
    request = EstimationRequest(
        use_case=use_case, estimator=estimator, repetitions=repetitions,
        scale=scale, memory_budget_bytes=memory_budget_bytes,
    )
    return execute([request], workers=1, on_error="raise")[0].outcome


def run_estimators(
    use_cases: Sequence[UseCase],
    estimators: Iterable[SparsityEstimator],
    scale: float = 1.0,
    seed: int = 0,
    memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET_BYTES,
) -> List[EstimateOutcome]:
    """Deprecated: cartesian run of estimators over use cases (see
    :func:`execute`)."""
    _deprecated("run_estimators")
    requests = [
        EstimationRequest(
            use_case=use_case, estimator=estimator, scale=scale,
            seed=seed, memory_budget_bytes=memory_budget_bytes,
        )
        for use_case in use_cases
        for estimator in estimators
    ]
    return [
        result.outcome
        for result in execute(requests, workers=1, on_error="raise")
    ]


def supports_use_case(estimator: SparsityEstimator, root: Expr) -> bool:
    """Static capability check: does *estimator* implement every operation
    appearing in the DAG (propagation for inner nodes, estimation for the
    root)?"""
    for node in root.postorder():
        if node.op is Op.LEAF:
            continue
        if node is root:
            if not estimator.supports(node.op):
                return False
        elif not estimator.supports_propagation(node.op):
            return False
    return True


def clear_truth_cache() -> None:
    """Drop memoized ground-truth counts (mainly for tests)."""
    _TRUTH_MEMO.clear()
