"""SparsEst execution harness.

Runs estimators over use-case DAGs, computes ground truth once per distinct
expression structure (memoized on catalog fingerprints, so truths survive
expression rebuilds across seeds), and reports the paper's M1/M2 metrics.
Estimators that cannot express an operation (e.g. the layered graph on
element-wise operations, Table 1) yield an ``unsupported`` outcome, which
the report renders as the "x" the paper's figures show. Estimators whose
synopsis would exceed a configurable memory budget (the paper's
out-of-memory bitset cases) yield ``oom``.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Iterable, List, Sequence

from repro.catalog.fingerprint import fingerprint_expr
from repro.catalog.memo import EstimateMemo
from repro.errors import UnsupportedOperationError
from repro.estimators.base import SparsityEstimator
from repro.estimators.bitset import BitsetEstimator
from repro.ir.estimate import estimate_root_nnz
from repro.ir.interpreter import evaluate
from repro.ir.nodes import Expr
from repro.observability.collector import get_collector
from repro.observability.recording import unwrap_estimator
from repro.observability.trace import timed_span
from repro.opcodes import Op
from repro.sparsest.metrics import relative_error
from repro.sparsest.usecases import UseCase

#: Default synopsis budget: a bitset beyond this is treated as OOM, mirroring
#: the paper's 8 TB / 7.8 TB bitset failures at benchmark scale.
DEFAULT_MEMORY_BUDGET_BYTES = 2 * 1024**3

# Keyed by structural expression fingerprints (not object identity), so a
# ground truth computed for one DAG instance is reused when the expression
# is rebuilt — e.g. across per-seed reconstructions at the same scale. The
# memo is LRU-bounded, so long sweeps cannot grow it without limit.
_TRUTH_MEMO = EstimateMemo(max_entries=4096)

#: Estimator key under which ground truths are memoized.
_TRUTH_KEY = "exact"


@dataclass(frozen=True)
class EstimateOutcome:
    """Result of one (use case, estimator) execution."""

    use_case: str
    estimator: str
    true_nnz: float
    estimated_nnz: float
    relative_error: float
    seconds: float
    status: str  # "ok" | "unsupported" | "oom"

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def _record_outcome(outcome: EstimateOutcome) -> EstimateOutcome:
    """Report *outcome* to the active collector (error-vs-time telemetry)."""
    collector = get_collector()
    if collector.enabled:
        collector.record_outcome(asdict(outcome))
    return outcome


def true_nnz_of(root: Expr) -> float:
    """Ground-truth non-zero count of a DAG root.

    Memoized on the expression's structural fingerprint: rebuilding the
    same expression (even from different objects, as the per-seed use-case
    builders do) reuses the evaluated truth instead of re-running the full
    sparse computation.
    """
    fingerprint = fingerprint_expr(root)
    return _TRUTH_MEMO.memoize(
        fingerprint, _TRUTH_KEY, "nnz", lambda: float(evaluate(root).nnz)
    )


def _bitset_would_oom(root: Expr, budget_bytes: int) -> bool:
    """Whether any node's bitset synopsis exceeds the memory budget."""
    for node in root.postorder():
        m, n = node.shape
        if m * n / 8 > budget_bytes:
            return True
    return False


def run_use_case(
    use_case: UseCase,
    estimator: SparsityEstimator,
    scale: float = 1.0,
    seed: int = 0,
    memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET_BYTES,
) -> EstimateOutcome:
    """Run one estimator on one use case and score it.

    The reported time covers synopsis construction, propagation, and root
    estimation (the paper's M2 "total estimation time").
    """
    root = use_case.build(scale=scale, seed=seed)
    truth = true_nnz_of(root)
    if isinstance(unwrap_estimator(estimator), BitsetEstimator) and (
        _bitset_would_oom(root, memory_budget_bytes)
    ):
        return _record_outcome(EstimateOutcome(
            use_case.id, estimator.name, truth, math.nan, math.inf, 0.0, "oom"
        ))
    with timed_span(
        "sparsest.run", use_case=use_case.id, estimator=estimator.name
    ) as span:
        try:
            estimate = estimate_root_nnz(root, estimator)
        except UnsupportedOperationError:
            return _record_outcome(EstimateOutcome(
                use_case.id, estimator.name, truth, math.nan, math.inf, 0.0,
                "unsupported",
            ))
    seconds = span.seconds
    error = relative_error(truth, estimate)
    return _record_outcome(EstimateOutcome(
        use_case.id, estimator.name, truth, estimate, error, seconds, "ok"
    ))


def run_repeated(
    use_case: UseCase,
    estimator: SparsityEstimator,
    repetitions: int = 20,
    scale: float = 1.0,
    memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET_BYTES,
) -> EstimateOutcome:
    """Run *repetitions* seeds and aggregate with the paper's additive rule.

    Section 5: "we additively aggregate ... and compute the final error as
    max(S, s*n) / min(S, s*n)". Each repetition uses a distinct data seed;
    timings sum. A single unsupported/OOM outcome short-circuits.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be positive, got {repetitions}")
    true_counts: List[float] = []
    estimates: List[float] = []
    seconds = 0.0
    for seed in range(repetitions):
        outcome = run_use_case(
            use_case, estimator, scale=scale, seed=seed,
            memory_budget_bytes=memory_budget_bytes,
        )
        if not outcome.ok:
            return outcome
        true_counts.append(outcome.true_nnz)
        estimates.append(outcome.estimated_nnz)
        seconds += outcome.seconds
    from repro.sparsest.metrics import aggregate_relative_error

    return EstimateOutcome(
        use_case.id, estimator.name,
        sum(true_counts), sum(estimates),
        aggregate_relative_error(true_counts, estimates),
        seconds, "ok",
    )


def run_estimators(
    use_cases: Sequence[UseCase],
    estimators: Iterable[SparsityEstimator],
    scale: float = 1.0,
    seed: int = 0,
    memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET_BYTES,
) -> List[EstimateOutcome]:
    """Cartesian run of estimators over use cases."""
    outcomes: List[EstimateOutcome] = []
    for use_case in use_cases:
        for estimator in estimators:
            outcomes.append(
                run_use_case(
                    use_case, estimator, scale=scale, seed=seed,
                    memory_budget_bytes=memory_budget_bytes,
                )
            )
    return outcomes


def supports_use_case(estimator: SparsityEstimator, root: Expr) -> bool:
    """Static capability check: does *estimator* implement every operation
    appearing in the DAG (propagation for inner nodes, estimation for the
    root)?"""
    for node in root.postorder():
        if node.op is Op.LEAF:
            continue
        if node is root:
            if not estimator.supports(node.op):
                return False
        elif not estimator.supports_propagation(node.op):
            return False
    return True


def clear_truth_cache() -> None:
    """Drop memoized ground-truth counts (mainly for tests)."""
    _TRUTH_MEMO.clear()
