"""Synthetic stand-ins for the paper's six real datasets (Table 3).

No network access is available in this reproduction, so each dataset is
replaced by a generator reproducing the *structural properties the
estimators key on* — exactly one non-zero per row, power-law column skew,
dummy-coded column groups, center-concentrated images — at roughly 1/10 of
the paper's scale. DESIGN.md Section 2 documents each substitution.

All generators are deterministic given their seed and return canonical 0/1
CSR structures.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.matrix.conversion import as_csr
from repro.matrix.random import SeedLike, _rng, one_hot_block, single_nnz_per_row


def aminer_abstracts(
    rows: int = 20_000,
    vocab: int = 10_000,
    unknown_fraction: float = 0.2,
    zipf_alpha: float = 1.1,
    seed: SeedLike = 41,
) -> sp.csr_array:
    """AMin A stand-in: token-sequence matrix with one non-zero per row.

    Row = padded sequence position, column = dictionary token; the last
    column collects unknowns/pads and receives *unknown_fraction* of all
    rows, the rest follow a Zipf law — the structure (``max(hr) = 1`` plus
    column skew) that drives B2.1/B3.1.
    """
    weights = np.arange(1, vocab + 1, dtype=np.float64) ** (-zipf_alpha)
    weights[-1] = 0.0
    weights *= (1.0 - unknown_fraction) / weights.sum()
    weights[-1] = unknown_fraction
    return single_nnz_per_row(rows, vocab, seed=seed, column_weights=weights)


def aminer_references(
    nodes: int = 20_000,
    average_degree: float = 8.0,
    zipf_alpha: float = 0.9,
    seed: SeedLike = 42,
) -> sp.csr_array:
    """AMin R stand-in: directed citation graph with power-law in-degrees.

    Sources are uniform (every paper cites a few references); targets follow
    a Zipf popularity law (a few papers collect most citations).
    """
    rng = _rng(seed)
    total = int(nodes * average_degree)
    sources = rng.integers(0, nodes, size=total)
    popularity = np.arange(1, nodes + 1, dtype=np.float64) ** (-zipf_alpha)
    popularity /= popularity.sum()
    # Shuffle popularity over node ids so "popular" nodes are not contiguous.
    order = rng.permutation(nodes)
    targets = order[rng.choice(nodes, size=total, p=popularity)]
    data = np.ones(total, dtype=np.int8)
    graph = as_csr(sp.coo_array((data, (sources, targets)), shape=(nodes, nodes)))
    graph.data = np.ones_like(graph.data, dtype=np.int8)
    return graph


def amazon_ratings(
    users: int = 80_000,
    items: int = 23_000,
    average_ratings: float = 2.8,
    zipf_alpha: float = 0.8,
    seed: SeedLike = 43,
) -> sp.csr_array:
    """Amazon books stand-in: ultra-sparse bipartite ratings with power-law
    item popularity and user activity."""
    rng = _rng(seed)
    total = int(users * average_ratings)
    user_weights = np.arange(1, users + 1, dtype=np.float64) ** (-zipf_alpha)
    user_weights /= user_weights.sum()
    item_weights = np.arange(1, items + 1, dtype=np.float64) ** (-zipf_alpha)
    item_weights /= item_weights.sum()
    user_order = rng.permutation(users)
    item_order = rng.permutation(items)
    rows = user_order[rng.choice(users, size=total, p=user_weights)]
    cols = item_order[rng.choice(items, size=total, p=item_weights)]
    data = np.ones(total, dtype=np.int8)
    ratings = as_csr(sp.coo_array((data, (rows, cols)), shape=(users, items)))
    ratings.data = np.ones_like(ratings.data, dtype=np.int8)
    return ratings


def covtype(
    rows: int = 58_000,
    quantitative: int = 10,
    wilderness_areas: int = 4,
    soil_types: int = 40,
    seed: SeedLike = 44,
) -> sp.csr_array:
    """Covertype stand-in: dense quantitative columns plus two dummy-coded
    one-hot groups — columns of wildly varying sparsity (overall ~0.22).

    Category frequencies are skewed (Zipf) as in the real dataset, which is
    what makes the B2.2 column projection hard for block-based estimators.
    """
    rng = _rng(seed)
    dense = (rng.random((rows, quantitative)) * 0.9 + 0.1)
    wilderness_weights = np.arange(1, wilderness_areas + 1, dtype=np.float64) ** (-1.0)
    soil_weights = np.arange(1, soil_types + 1, dtype=np.float64) ** (-1.2)
    blocks = [
        as_csr(dense),
        one_hot_block(rows, wilderness_areas, seed=rng, weights=wilderness_weights),
        one_hot_block(rows, soil_types, seed=rng, weights=soil_weights),
    ]
    return as_csr(sp.hstack([sp.csr_matrix(b) for b in blocks], format="csr"))


def email_graph(
    nodes: int = 26_000,
    edges: int = 42_000,
    zipf_alpha: float = 1.0,
    seed: SeedLike = 45,
) -> sp.csr_array:
    """Email-EuAll stand-in: sparse directed communication graph in which a
    small core of addresses sends/receives most mail."""
    rng = _rng(seed)
    weights = np.arange(1, nodes + 1, dtype=np.float64) ** (-zipf_alpha)
    weights /= weights.sum()
    order = rng.permutation(nodes)
    sources = order[rng.choice(nodes, size=edges, p=weights)]
    targets = order[rng.choice(nodes, size=edges, p=weights)]
    data = np.ones(edges, dtype=np.int8)
    graph = as_csr(sp.coo_array((data, (sources, targets)), shape=(nodes, nodes)))
    graph.data = np.ones_like(graph.data, dtype=np.int8)
    return graph


def mnist_like(
    rows: int = 20_000,
    side: int = 28,
    target_sparsity: float = 0.25,
    seed: SeedLike = 46,
) -> sp.csr_array:
    """Mnist1m stand-in: images as rows with non-zeros concentrated around
    the image center (Gaussian intensity profile), overall sparsity ~0.25.

    The center concentration is the structural property the B2.5/B3.5
    masking experiments exploit: a 14x14 center mask hits most of the mass.
    """
    rng = _rng(seed)
    y, x = np.mgrid[0:side, 0:side]
    center = (side - 1) / 2.0
    distance_sq = (x - center) ** 2 + (y - center) ** 2
    profile = np.exp(-distance_sq / (2.0 * (side / 4.5) ** 2)).ravel()
    # Scale the profile so the mean activation probability hits the target.
    probabilities = np.clip(profile * (target_sparsity / profile.mean()), 0.0, 1.0)
    mask = rng.random((rows, side * side)) < probabilities[None, :]
    return as_csr(mask.astype(np.int8))


def center_mask(
    rows: int, side: int = 28, inner: int = 14
) -> sp.csr_array:
    """The B2.5 mask: selects the ``inner x inner`` center of each
    ``side x side`` image, replicated for every row."""
    start = (side - inner) // 2
    image = np.zeros((side, side), dtype=np.int8)
    image[start:start + inner, start:start + inner] = 1
    row = image.ravel()
    dense = np.broadcast_to(row, (rows, side * side))
    return as_csr(np.ascontiguousarray(dense))
