"""SparsEst metrics (paper Section 5).

M1 accuracy uses the *relative error* ``max(s, s_hat) / min(s, s_hat)``,
bounded below by 1 and symmetric in over-/under-estimation (unlike the
absolute ratio error, which penalizes over-estimation more). M2 timing is
plain wall-clock, reported separately for construction and estimation by the
runner.
"""

from __future__ import annotations

import math
from typing import Sequence


def relative_error(true_value: float, estimate: float) -> float:
    """Paper metric M1: ``max(t, e) / min(t, e)``, in ``[1, inf)``.

    Conventions for degenerate cases: two zeros agree perfectly (1.0); a
    zero against a non-zero is an infinite error (the estimator claims an
    empty/non-empty result that is the opposite).
    """
    t, e = float(true_value), float(estimate)
    if t < 0 or e < 0:
        raise ValueError(f"values must be non-negative, got {t} and {e}")
    if t == 0.0 and e == 0.0:
        return 1.0
    if t == 0.0 or e == 0.0:
        return math.inf
    return max(t, e) / min(t, e)


def absolute_ratio_error(true_value: float, estimate: float) -> float:
    """The classic ARE ``|t - e| / t`` (asymmetric; reported for reference)."""
    t, e = float(true_value), float(estimate)
    if t <= 0:
        return math.inf if e != t else 0.0
    return abs(t - e) / t


def aggregate_relative_error(
    true_values: Sequence[float], estimates: Sequence[float]
) -> float:
    """Additive aggregation over repeated experiments (paper Section 5):
    ``max(sum(e), sum(t)) / min(sum(e), sum(t))``."""
    if len(true_values) != len(estimates):
        raise ValueError("true_values and estimates must have equal length")
    return relative_error(sum(true_values), sum(estimates))
