"""Cross-benchmark summary statistics for estimator comparisons.

Turns a list of :class:`~repro.sparsest.runner.EstimateOutcome` into
per-estimator aggregates: geometric-mean relative error (the natural
average for a multiplicative, [1, inf)-bounded metric), exact-result and
failure counts, win counts (how often the estimator had the strictly best
error on a use case), and total estimation time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.sparsest.runner import EstimateOutcome


@dataclass(frozen=True)
class EstimatorSummary:
    """Aggregate performance of one estimator over a set of use cases."""

    estimator: str
    cases: int
    supported: int
    exact: int
    failures: int
    wins: int
    geometric_mean_error: float
    worst_error: float
    total_seconds: float


def summarize(outcomes: Sequence[EstimateOutcome]) -> List[EstimatorSummary]:
    """Aggregate outcomes per estimator (sorted by geometric-mean error).

    Unsupported/OOM outcomes count as failures and are excluded from the
    error statistics; infinite errors on supported cases are excluded from
    the geometric mean but reflected in ``worst_error``.
    """
    by_estimator: Dict[str, List[EstimateOutcome]] = {}
    for outcome in outcomes:
        by_estimator.setdefault(outcome.estimator, []).append(outcome)

    best_by_case = _best_errors(outcomes)
    summaries: List[EstimatorSummary] = []
    for estimator, entries in by_estimator.items():
        supported = [entry for entry in entries if entry.ok]
        finite = [
            entry.relative_error for entry in supported
            if math.isfinite(entry.relative_error)
        ]
        exact = sum(
            1 for entry in supported
            if math.isfinite(entry.relative_error)
            and entry.relative_error <= 1.0 + 1e-9
        )
        wins = sum(
            1 for entry in supported
            if entry.relative_error <= best_by_case[entry.use_case] + 1e-12
        )
        if finite:
            geo_mean = math.exp(sum(math.log(e) for e in finite) / len(finite))
        else:
            geo_mean = math.inf
        worst = max(
            (entry.relative_error for entry in supported), default=math.inf
        )
        summaries.append(EstimatorSummary(
            estimator=estimator,
            cases=len(entries),
            supported=len(supported),
            exact=exact,
            failures=len(entries) - len(supported),
            wins=wins,
            geometric_mean_error=geo_mean,
            worst_error=worst,
            total_seconds=sum(entry.seconds for entry in supported),
        ))
    summaries.sort(key=lambda s: (s.geometric_mean_error, s.estimator))
    return summaries


def _best_errors(outcomes: Sequence[EstimateOutcome]) -> Dict[str, float]:
    best: Dict[str, float] = {}
    for outcome in outcomes:
        if not outcome.ok:
            continue
        current = best.get(outcome.use_case, math.inf)
        best[outcome.use_case] = min(current, outcome.relative_error)
    return best


def summary_table(outcomes: Sequence[EstimateOutcome], title: str = "") -> str:
    """Render :func:`summarize` as a fixed-width table."""
    from repro.sparsest.report import simple_table

    rows = [
        [
            summary.estimator, summary.cases, summary.exact, summary.wins,
            summary.failures, summary.geometric_mean_error,
            summary.worst_error, summary.total_seconds,
        ]
        for summary in summarize(outcomes)
    ]
    return simple_table(
        ["Estimator", "cases", "exact", "wins", "failed",
         "geo-mean err", "worst err", "time [s]"],
        rows, title=title,
    )
