"""SparsEst use cases B1.1–B3.5 (paper Section 5, Table 2).

Every use case builds an expression DAG over synthetic inputs whose
structural properties match the paper's description; dimensions default to
roughly 1/5–1/10 of the paper's (laptop scale) and scale linearly with the
``scale`` argument. Heavy datasets are cached on disk across processes.

====== ========== ==========================================  =================
Id     Name       Expression                                   Data
====== ========== ==========================================  =================
B1.1   NLP        X W                                          synthetic tokens
B1.2   Scale      diag(lambda) X                               synthetic
B1.3   Perm       table(s1, s2) X                              synthetic
B1.4   Outer      C R                                          synthetic
B1.5   Inner      R C                                          synthetic
B2.1   NLP        X W                                          AMin A stand-in
B2.2   Project    X P                                          Covertype stand-in
B2.3   CoRefG     G G^T                                        AMin R stand-in
B2.4   EmailG     G G                                          Email stand-in
B2.5   Mask       M (*) X                                      Mnist stand-in
B3.1   NLP        reshape(X W)                                 AMin A stand-in
B3.2   S&S        S^T X^T diag(w) X S B                        Mnist stand-in
B3.3   Graph      P G G G G                                    AMin R stand-in
B3.4   Rec        (P X != 0) (*) (P L R^T)                     Amazon stand-in
B3.5   Pred       X (*) ((R (*) S + T) != 0)                   Mnist stand-in
====== ========== ==========================================  =================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np
import scipy.sparse as sp

from repro.errors import ReproError
from repro.ir.nodes import (
    Expr,
    diag,
    ewise_add,
    ewise_mult,
    leaf,
    matmul,
    neq_zero,
    reshape,
    transpose,
)
from repro.matrix.conversion import as_csr
from repro.matrix.io import cached_matrix
from repro.matrix.random import random_sparse, selection_matrix
from repro.sparsest import datasets, generators


def _scaled(value: int, scale: float, minimum: int = 8) -> int:
    return max(minimum, int(round(value * scale)))


@dataclass
class UseCase:
    """One SparsEst benchmark query.

    ``build(scale, seed)`` returns the expression DAG; repeated calls with
    the same arguments return the *same* object so ground truth and
    estimates are computed over identical inputs.
    """

    id: str
    name: str
    category: str
    description: str
    builder: Callable[[float, int], Expr]
    #: use cases a given estimator family cannot express (informational)
    pure_product_chain: bool = True
    _cache: Dict[tuple[float, int], Expr] = field(default_factory=dict, repr=False)

    def build(self, scale: float = 1.0, seed: int = 0) -> Expr:
        key = (float(scale), int(seed))
        if key not in self._cache:
            self._cache[key] = self.builder(scale, seed)
        return self._cache[key]


# ----------------------------------------------------------------------
# Cached dataset accessors
# ----------------------------------------------------------------------

def _aminer_abstracts(scale: float, seed: int) -> sp.csr_array:
    rows, vocab = _scaled(20_000, scale), _scaled(10_000, scale)
    return cached_matrix(
        f"aminer_abstracts:{rows}:{vocab}:{seed}",
        lambda: datasets.aminer_abstracts(rows=rows, vocab=vocab, seed=41 + seed),
    )


def _aminer_references(scale: float, seed: int) -> sp.csr_array:
    nodes = _scaled(20_000, scale)
    return cached_matrix(
        f"aminer_references:{nodes}:{seed}",
        lambda: datasets.aminer_references(nodes=nodes, seed=42 + seed),
    )


def _amazon(scale: float, seed: int) -> sp.csr_array:
    users, items = _scaled(20_000, scale), _scaled(5_000, scale)
    return cached_matrix(
        f"amazon:{users}:{items}:{seed}",
        lambda: datasets.amazon_ratings(users=users, items=items, seed=43 + seed),
    )


def _covtype(scale: float, seed: int) -> sp.csr_array:
    rows = _scaled(58_000, scale)
    return cached_matrix(
        f"covtype:{rows}:{seed}", lambda: datasets.covtype(rows=rows, seed=44 + seed)
    )


def _email(scale: float, seed: int) -> sp.csr_array:
    nodes, edges = _scaled(26_000, scale), _scaled(42_000, scale)
    return cached_matrix(
        f"email:{nodes}:{edges}:{seed}",
        lambda: datasets.email_graph(nodes=nodes, edges=edges, seed=45 + seed),
    )


def _mnist(scale: float, seed: int) -> sp.csr_array:
    rows = _scaled(20_000, scale)
    return cached_matrix(
        f"mnist:{rows}:{seed}", lambda: datasets.mnist_like(rows=rows, seed=46 + seed)
    )


# ----------------------------------------------------------------------
# B1: structured synthetic matrix products
# ----------------------------------------------------------------------

def _b11(scale: float, seed: int) -> Expr:
    tokens, embeddings = generators.nlp_pair(
        rows=_scaled(20_000, scale), vocab=_scaled(10_000, scale),
        dimensions=_scaled(64, scale, minimum=8), seed=11 + seed,
    )
    return matmul(leaf(tokens, "X"), leaf(embeddings, "W"), name="XW")


def _b12(scale: float, seed: int) -> Expr:
    scaling, x = generators.scale_pair(
        n=_scaled(10_000, scale), cols=_scaled(512, scale, minimum=8), seed=12 + seed
    )
    return matmul(leaf(scaling, "diag(lambda)"), leaf(x, "X"), name="diag(lambda)X")


def _b13(scale: float, seed: int) -> Expr:
    permutation, x = generators.permutation_pair(
        n=_scaled(10_000, scale), cols=_scaled(512, scale, minimum=8), seed=13 + seed
    )
    return matmul(leaf(permutation, "P"), leaf(x, "X"), name="PX")


def _b14(scale: float, seed: int) -> Expr:
    column, row = generators.outer_pair(n=_scaled(2_000, scale))
    return matmul(leaf(column, "C"), leaf(row, "R"), name="CR")


def _b15(scale: float, seed: int) -> Expr:
    row, column = generators.inner_pair(n=_scaled(2_000, scale))
    return matmul(leaf(row, "R"), leaf(column, "C"), name="RC")


# ----------------------------------------------------------------------
# B2: real-structure matrix operations
# ----------------------------------------------------------------------

def _b21(scale: float, seed: int) -> Expr:
    tokens = _aminer_abstracts(scale, seed)
    vocab = tokens.shape[1]
    embeddings = generators.embeddings_matrix(
        vocab, _scaled(64, scale, minimum=8), seed=21 + seed
    )
    return matmul(leaf(tokens, "X"), leaf(embeddings, "W"), name="XW")


def _b22(scale: float, seed: int) -> Expr:
    x = _covtype(scale, seed)
    n = x.shape[1]
    # Project the dummy-coded (ultra-sparse, varying-sparsity) columns
    # [11, 50] — P[c, j] = 1 maps original column to projected column.
    projected = list(range(11, min(51, n)))
    p = as_csr(selection_matrix(projected, n).transpose())
    return matmul(leaf(x, "X"), leaf(p, "P"), name="XP")


def _b23(scale: float, seed: int) -> Expr:
    graph = _aminer_references(scale, seed)
    graph_t = as_csr(graph.transpose())
    return matmul(leaf(graph, "G"), leaf(graph_t, "Gt"), name="GGt")


def _b24(scale: float, seed: int) -> Expr:
    graph = _email(scale, seed)
    g = leaf(graph, "G")
    return matmul(g, g, name="GG")


def _b25(scale: float, seed: int) -> Expr:
    images = _mnist(scale, seed)
    mask = datasets.center_mask(images.shape[0])
    return ewise_mult(leaf(mask, "M"), leaf(images, "X"), name="M*X")


# ----------------------------------------------------------------------
# B3: real matrix expressions (chains)
# ----------------------------------------------------------------------

def _b31(scale: float, seed: int) -> Expr:
    tokens = _aminer_abstracts(scale, seed)
    vocab = tokens.shape[1]
    dims = _scaled(64, scale, minimum=8)
    embeddings = generators.embeddings_matrix(vocab, dims, seed=31 + seed)
    product = matmul(leaf(tokens, "X"), leaf(embeddings, "W"), name="XW")
    tokens_per_sentence = 10
    rows = tokens.shape[0] // tokens_per_sentence
    return reshape(product, rows, tokens_per_sentence * dims, name="reshape(XW)")


def _b32(scale: float, seed: int) -> Expr:
    images = _mnist(scale, seed)
    rows = images.shape[0]
    ones = np.ones((rows, 1))
    x = leaf(as_csr(sp.hstack([sp.csr_matrix(images), sp.csr_matrix(ones)],
                              format="csr")), "X")
    n = x.shape[1]
    s = leaf(generators.scale_shift_matrix(n), "S")
    rng = np.random.default_rng(32 + seed)
    w = leaf(as_csr(rng.random((rows, 1)) + 0.1), "w")
    b = leaf(as_csr(rng.random((n, 3)) + 0.1), "B")
    chain = matmul(transpose(s), transpose(x), name="StXt")
    chain = matmul(chain, diag(w), name="StXtD")
    chain = matmul(chain, x, name="StXtDX")
    chain = matmul(chain, s, name="StXtDXS")
    return matmul(chain, b, name="StXtDXSB")


def _b33(scale: float, seed: int) -> Expr:
    graph = _aminer_references(scale, seed)
    out_degrees = np.diff(graph.indptr)
    top = np.argsort(out_degrees)[::-1][: _scaled(200, scale, minimum=16)]
    p = leaf(selection_matrix(np.sort(top), graph.shape[0]), "P")
    g = leaf(graph, "G")
    chain = matmul(p, g, name="PG")
    chain = matmul(chain, g, name="PGG")
    chain = matmul(chain, g, name="PGGG")
    return matmul(chain, g, name="PGGGG")


def _b34(scale: float, seed: int) -> Expr:
    ratings = _amazon(scale, seed)
    users, items = ratings.shape
    row_degrees = np.diff(ratings.indptr)
    top_users = np.sort(np.argsort(row_degrees)[::-1][: _scaled(2_000, scale, minimum=16)])
    p = leaf(selection_matrix(top_users, users), "P")
    rng = np.random.default_rng(34 + seed)
    rank = 16
    l = leaf(random_sparse(users, rank, 0.95, seed=rng), "L")
    r = leaf(random_sparse(items, rank, 0.85, seed=rng), "R")
    x = leaf(ratings, "X")
    known = neq_zero(matmul(p, x, name="PX"), name="PX!=0")
    predictions = matmul(matmul(p, l, name="PL"), transpose(r), name="PLRt")
    return ewise_mult(known, predictions, name="Rec")


def _b35(scale: float, seed: int) -> Expr:
    images = _mnist(scale, seed)
    rows, cols = images.shape
    rng = np.random.default_rng(35 + seed)
    center = datasets.center_mask(rows)
    random_mask = random_sparse(rows, cols, 0.1, seed=rng, values="ones")
    # T: data-dependent mask (X == 255 in the paper) — a subsample of X's
    # own support, so it is correlated with the image structure.
    coo = images.tocoo()
    keep = rng.random(coo.nnz) < 0.2
    t_matrix = as_csr(sp.coo_array(
        (np.ones(int(keep.sum()), dtype=np.int8),
         (coo.row[keep], coo.col[keep])), shape=images.shape,
    ))
    x = leaf(images, "X")
    predicate = ewise_add(
        ewise_mult(leaf(center, "R"), leaf(random_mask, "S"), name="R*S"),
        leaf(t_matrix, "T"), name="R*S+T",
    )
    return ewise_mult(x, neq_zero(predicate, name="(R*S+T)!=0"), name="Pred")


_USE_CASES: List[UseCase] = [
    UseCase("B1.1", "NLP", "Struct", "token/embedding product, one nnz per row", _b11),
    UseCase("B1.2", "Scale", "Struct", "diagonal scaling, structure-preserving", _b12),
    UseCase("B1.3", "Perm", "Struct", "random permutation, structure-preserving", _b13),
    UseCase("B1.4", "Outer", "Struct", "dense column x dense row -> fully dense", _b14),
    UseCase("B1.5", "Inner", "Struct", "dense row x dense column -> single nnz", _b15),
    UseCase("B2.1", "NLP", "Real", "AMin A abstracts encoding", _b21),
    UseCase("B2.2", "Project", "Real", "Covertype dummy-coded column projection", _b22),
    UseCase("B2.3", "CoRefG", "Real", "co-reference counting G G^T", _b23),
    UseCase("B2.4", "EmailG", "Real", "email graph self-product", _b24),
    UseCase("B2.5", "Mask", "Real", "image center masking (element-wise)", _b25,
            pure_product_chain=False),
    UseCase("B3.1", "NLP", "Chain", "NLP encode + sentence reshape", _b31,
            pure_product_chain=False),
    UseCase("B3.2", "S&S", "Chain", "deferred scale-and-shift chain", _b32,
            pure_product_chain=False),
    UseCase("B3.3", "Graph", "Chain", "matrix powers P G G G G", _b33),
    UseCase("B3.4", "Rec", "Chain", "recommendations for selected users", _b34,
            pure_product_chain=False),
    UseCase("B3.5", "Pred", "Chain", "boolean mask predicate", _b35,
            pure_product_chain=False),
]

_BY_ID = {case.id: case for case in _USE_CASES}


def all_use_cases(category: Optional[str] = None) -> List[UseCase]:
    """All use cases, optionally filtered by category (Struct/Real/Chain)."""
    if category is None:
        return list(_USE_CASES)
    return [case for case in _USE_CASES if case.category == category]


def use_case_ids(category: Optional[str] = None) -> List[str]:
    """Ids of all (or one category's) use cases."""
    return [case.id for case in all_use_cases(category)]


def get_use_case(case_id: str) -> UseCase:
    """Look up a use case by id (e.g. ``"B2.3"``)."""
    try:
        return _BY_ID[case_id]
    except KeyError:
        raise ReproError(
            f"unknown use case {case_id!r}; available: {sorted(_BY_ID)}"
        ) from None
