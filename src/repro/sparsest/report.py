"""ASCII report tables shaped like the paper's figures.

The benchmark modules print these tables so a run of
``pytest benchmarks/ --benchmark-only -s`` reproduces the paper's accuracy
figures as text: use cases as columns, estimators as rows, relative errors
as cells (``x`` marks unsupported/OOM combinations, as in Figures 11/14).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.sparsest.runner import EstimateOutcome


def format_error(value: float) -> str:
    """Render one relative error: ``1.0`` exact, ``x`` for failures."""
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "x"
    if math.isinf(value):
        return "INF"
    if value >= 1000:
        return f"{value:.3g}"
    return f"{value:.2f}"


def outcomes_table(outcomes: Sequence[EstimateOutcome], title: str = "") -> str:
    """Pivot outcomes into an estimator x use-case relative-error table."""
    use_cases: List[str] = []
    estimators: List[str] = []
    cells: Dict[tuple[str, str], str] = {}
    for outcome in outcomes:
        if outcome.use_case not in use_cases:
            use_cases.append(outcome.use_case)
        if outcome.estimator not in estimators:
            estimators.append(outcome.estimator)
        cell = format_error(outcome.relative_error) if outcome.ok else "x"
        cells[(outcome.estimator, outcome.use_case)] = cell
    name_width = max([len(e) for e in estimators] + [9])
    col_width = max([len(u) for u in use_cases] + [8])
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " " * name_width + " | " + " | ".join(
        f"{u:>{col_width}}" for u in use_cases
    )
    lines.append(header)
    lines.append("-" * len(header))
    for estimator in estimators:
        row = [
            f"{cells.get((estimator, use_case), ''):>{col_width}}"
            for use_case in use_cases
        ]
        lines.append(f"{estimator:<{name_width}} | " + " | ".join(row))
    return "\n".join(lines)


def timings_table(outcomes: Sequence[EstimateOutcome], title: str = "") -> str:
    """Pivot outcomes into an estimator x use-case timing table (seconds)."""
    use_cases: List[str] = []
    estimators: List[str] = []
    cells: Dict[tuple[str, str], str] = {}
    for outcome in outcomes:
        if outcome.use_case not in use_cases:
            use_cases.append(outcome.use_case)
        if outcome.estimator not in estimators:
            estimators.append(outcome.estimator)
        cell = f"{outcome.seconds:.4f}" if outcome.ok else "x"
        cells[(outcome.estimator, outcome.use_case)] = cell
    name_width = max([len(e) for e in estimators] + [9])
    col_width = max([len(u) for u in use_cases] + [8])
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " " * name_width + " | " + " | ".join(
        f"{u:>{col_width}}" for u in use_cases
    )
    lines.append(header)
    lines.append("-" * len(header))
    for estimator in estimators:
        row = [
            f"{cells.get((estimator, use_case), ''):>{col_width}}"
            for use_case in use_cases
        ]
        lines.append(f"{estimator:<{name_width}} | " + " | ".join(row))
    return "\n".join(lines)


def simple_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Generic fixed-width table used by the runtime/size benchmarks."""
    columns = len(headers)
    widths = [len(str(h)) for h in headers]
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered = [_render_cell(cell) for cell in row]
        rendered += [""] * (columns - len(rendered))
        rendered_rows.append(rendered)
        for index, cell in enumerate(rendered[:columns]):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(f"{h:>{w}}" for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for rendered in rendered_rows:
        lines.append(" | ".join(f"{c:>{w}}" for c, w in zip(rendered, widths)))
    return "\n".join(lines)


def _render_cell(cell: object) -> str:
    if isinstance(cell, float):
        if math.isnan(cell):
            return "x"
        if math.isinf(cell):
            return "INF"
        if cell != 0 and (abs(cell) >= 1e5 or abs(cell) < 1e-3):
            return f"{cell:.3e}"
        return f"{cell:,.4f}" if abs(cell) < 100 else f"{cell:,.1f}"
    return str(cell)
