"""One-call SparsEst suite runs.

``run_suite`` executes a lineup of estimators over (a subset of) the
fifteen use cases and returns everything the paper's evaluation section
reports: per-case relative errors, per-case timings, and per-estimator
aggregates — plus rendered tables for terminal output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.estimators import make_estimator
from repro.estimators.base import SparsityEstimator
from repro.sparsest.report import outcomes_table, timings_table
from repro.sparsest.runner import EstimateOutcome, run_estimators, run_repeated
from repro.sparsest.summary import EstimatorSummary, summarize, summary_table
from repro.sparsest.usecases import all_use_cases, get_use_case

#: The full figure lineup, in legend order.
DEFAULT_LINEUP: Sequence[str] = (
    "meta_wc", "meta_ac", "sampling", "mnc_basic", "mnc",
    "density_map", "bitset", "layered_graph",
)


@dataclass(frozen=True)
class SuiteResult:
    """Everything one suite run produced."""

    outcomes: List[EstimateOutcome]
    summaries: List[EstimatorSummary]
    scale: float
    repetitions: int

    def errors_table(self) -> str:
        """Use-case x estimator relative-error table."""
        return outcomes_table(
            self.outcomes,
            title=f"SparsEst relative errors (scale={self.scale}, "
                  f"repetitions={self.repetitions})",
        )

    def timings_table(self) -> str:
        """Use-case x estimator timing table."""
        return timings_table(self.outcomes, title="Estimation time [s]")

    def summary_table(self) -> str:
        """Per-estimator aggregate table."""
        return summary_table(self.outcomes, title="Per-estimator summary")

    def render(self) -> str:
        """All three tables, ready to print."""
        return "\n\n".join(
            [self.errors_table(), self.timings_table(), self.summary_table()]
        )


def run_suite(
    estimator_names: Sequence[str] = DEFAULT_LINEUP,
    case_ids: Optional[Sequence[str]] = None,
    scale: float = 0.1,
    repetitions: int = 1,
    seed: int = 0,
) -> SuiteResult:
    """Run the SparsEst suite.

    Args:
        estimator_names: registry names to instantiate (fresh per run).
        case_ids: use-case ids, default all fifteen.
        scale: dimension scale relative to the paper's setup.
        repetitions: >1 aggregates seeds with the paper's additive rule.
        seed: base data seed (single-repetition runs only).
    """
    if case_ids is None:
        cases = all_use_cases()
    else:
        cases = [get_use_case(case_id) for case_id in case_ids]
    lineup: List[SparsityEstimator] = [
        make_estimator(name) for name in estimator_names
    ]
    if repetitions <= 1:
        outcomes = run_estimators(cases, lineup, scale=scale, seed=seed)
    else:
        outcomes = [
            run_repeated(case, estimator, repetitions=repetitions, scale=scale)
            for case in cases
            for estimator in lineup
        ]
    return SuiteResult(
        outcomes=outcomes, summaries=summarize(outcomes),
        scale=scale, repetitions=repetitions,
    )
