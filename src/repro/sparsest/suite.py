"""One-call SparsEst suite runs.

``run_suite`` executes a lineup of estimators over (a subset of) the
fifteen use cases and returns everything the paper's evaluation section
reports: per-case relative errors, per-case timings, and per-estimator
aggregates — plus rendered tables for terminal output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.sparsest.report import outcomes_table, timings_table
from repro.sparsest.runner import EstimateOutcome, execute_outcomes, requests_for
from repro.sparsest.summary import EstimatorSummary, summarize, summary_table
from repro.sparsest.usecases import all_use_cases, get_use_case

#: The full figure lineup, in legend order.
DEFAULT_LINEUP: Sequence[str] = (
    "meta_wc", "meta_ac", "sampling", "mnc_basic", "mnc",
    "density_map", "bitset", "layered_graph",
)


@dataclass(frozen=True)
class SuiteResult:
    """Everything one suite run produced."""

    outcomes: List[EstimateOutcome]
    summaries: List[EstimatorSummary]
    scale: float
    repetitions: int

    def errors_table(self) -> str:
        """Use-case x estimator relative-error table."""
        return outcomes_table(
            self.outcomes,
            title=f"SparsEst relative errors (scale={self.scale}, "
                  f"repetitions={self.repetitions})",
        )

    def timings_table(self) -> str:
        """Use-case x estimator timing table."""
        return timings_table(self.outcomes, title="Estimation time [s]")

    def summary_table(self) -> str:
        """Per-estimator aggregate table."""
        return summary_table(self.outcomes, title="Per-estimator summary")

    def render(self) -> str:
        """All three tables, ready to print."""
        return "\n\n".join(
            [self.errors_table(), self.timings_table(), self.summary_table()]
        )


def run_suite(
    estimator_names: Sequence[str] = DEFAULT_LINEUP,
    case_ids: Optional[Sequence[str]] = None,
    scale: float = 0.1,
    repetitions: int = 1,
    seed: int = 0,
    workers: Optional[int] = None,
) -> SuiteResult:
    """Run the SparsEst suite.

    Every (use case, estimator) cell runs on a fresh, identically-seeded
    estimator instance, so results are independent of cell order and of
    the worker count.

    Args:
        estimator_names: registry names to instantiate (fresh per cell).
        case_ids: use-case ids, default all fifteen.
        scale: dimension scale relative to the paper's setup.
        repetitions: >1 aggregates seeds with the paper's additive rule.
        seed: base data seed.
        workers: process count for fanning cells out; ``None`` reads
            ``$REPRO_WORKERS`` (default 1, serial).
    """
    if case_ids is None:
        cases = all_use_cases()
    else:
        cases = [get_use_case(case_id) for case_id in case_ids]
    requests = requests_for(
        cases, list(estimator_names),
        scale=scale, seed=seed, repetitions=repetitions,
    )
    outcomes = execute_outcomes(requests, workers=workers)
    return SuiteResult(
        outcomes=outcomes, summaries=summarize(outcomes),
        scale=scale, repetitions=repetitions,
    )
