"""SparsEst: the paper's sparsity-estimation benchmark (Section 5).

- :mod:`repro.sparsest.metrics` — M1 accuracy (relative error, ARE) and M2
  timing metrics.
- :mod:`repro.sparsest.datasets` — synthetic stand-ins for the paper's six
  real datasets (see DESIGN.md for the substitution rationale).
- :mod:`repro.sparsest.generators` — structured inputs for the B1 use cases.
- :mod:`repro.sparsest.usecases` — B1.1–B1.5, B2.1–B2.5, B3.1–B3.5.
- :mod:`repro.sparsest.runner` — executes estimators over use cases and
  collects accuracy/timing results.
- :mod:`repro.sparsest.report` — ASCII tables shaped like the paper's
  figures.
"""

from repro.sparsest.metrics import (
    absolute_ratio_error,
    aggregate_relative_error,
    relative_error,
)
from repro.sparsest.runner import (
    AUTO_LABEL,
    EstimateOutcome,
    EstimationRequest,
    EstimationResult,
    execute,
    execute_outcomes,
    requests_for,
    run_estimators,
    run_use_case,
)
from repro.sparsest.usecases import (
    UseCase,
    all_use_cases,
    get_use_case,
    use_case_ids,
)

__all__ = [
    "AUTO_LABEL",
    "EstimateOutcome",
    "EstimationRequest",
    "EstimationResult",
    "UseCase",
    "absolute_ratio_error",
    "aggregate_relative_error",
    "all_use_cases",
    "execute",
    "execute_outcomes",
    "get_use_case",
    "relative_error",
    "requests_for",
    "run_estimators",
    "run_use_case",
    "use_case_ids",
]
