"""Structured synthetic inputs for the B1 use cases (paper Section 5).

Each helper builds the operand pair of one structured matrix product:
token/embedding matrices (B1.1), diagonal scaling (B1.2), random
permutation (B1.3), and the adversarial outer/inner special cases
(B1.4/B1.5).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.matrix.conversion import as_csr
from repro.matrix.random import (
    SeedLike,
    _rng,
    diagonal_matrix,
    outer_product_pair,
    permutation_matrix,
    random_sparse,
    single_nnz_per_row,
)


def embeddings_matrix(
    vocab: int, dimensions: int, seed: SeedLike = None
) -> sp.csr_array:
    """Pre-trained word-embeddings stand-in: dense ``vocab x dimensions``
    with an empty last row (the unknown-token row, paper Figure 1)."""
    rng = _rng(seed)
    dense = rng.random((vocab, dimensions)) * 0.9 + 0.1
    dense[-1, :] = 0.0
    return as_csr(dense)


def nlp_pair(
    rows: int = 20_000,
    vocab: int = 10_000,
    dimensions: int = 64,
    known_fraction: float = 0.001,
    zipf_alpha: float = 1.1,
    seed: SeedLike = 11,
) -> tuple[sp.csr_array, sp.csr_array]:
    """B1.1 NLP: ``X W`` where X has one non-zero per row (power-law token
    columns, the last column holding the ``1 - known_fraction`` unknowns)
    and W is dense except its empty last row.

    The true output sparsity is exactly *known_fraction* — independent of
    all dimensions — because only known-token rows hit non-empty W rows.
    """
    rng = _rng(seed)
    weights = np.arange(1, vocab + 1, dtype=np.float64) ** (-zipf_alpha)
    weights[-1] = 0.0
    weights *= known_fraction / weights.sum()
    weights[-1] = 1.0 - known_fraction
    tokens = single_nnz_per_row(rows, vocab, seed=rng, column_weights=weights)
    return tokens, embeddings_matrix(vocab, dimensions, seed=rng)


def scale_pair(
    n: int = 10_000,
    cols: int = 512,
    sparsity: float = 0.01,
    seed: SeedLike = 12,
) -> tuple[sp.csr_array, sp.csr_array]:
    """B1.2 Scale: ``diag(lambda) X`` — the output structure equals X."""
    rng = _rng(seed)
    return diagonal_matrix(n, seed=rng), random_sparse(n, cols, sparsity, seed=rng)


def permutation_pair(
    n: int = 10_000,
    cols: int = 512,
    sparsity: float = 0.5,
    seed: SeedLike = 13,
) -> tuple[sp.csr_array, sp.csr_array]:
    """B1.3 Perm: ``table(s1, s2) X`` (random reshuffle) — output structure
    is a row permutation of X, so the sparsity is exactly X's."""
    rng = _rng(seed)
    return permutation_matrix(n, seed=rng), random_sparse(n, cols, sparsity, seed=rng)


def outer_pair(n: int = 2_000) -> tuple[sp.csr_array, sp.csr_array]:
    """B1.4 Outer: ``C R`` with a dense column meeting its aligned dense
    row — the product is fully dense."""
    column, row = outer_product_pair(n)
    return column, row


def inner_pair(n: int = 2_000) -> tuple[sp.csr_array, sp.csr_array]:
    """B1.5 Inner: ``R C`` — the same operands in the opposite order yield a
    single non-zero."""
    column, row = outer_product_pair(n)
    return row, column


def scale_shift_matrix(n: int) -> sp.csr_array:
    """B3.2's scale-and-shift matrix: ``n x n`` with a fully dense diagonal
    and a fully dense last row (used to fold centering into the product and
    avoid densifying the sparse X upfront)."""
    diag_rows = np.arange(n)
    last_rows = np.full(n, n - 1)
    rows = np.concatenate([diag_rows, last_rows])
    cols = np.concatenate([diag_rows, np.arange(n)])
    data = np.ones(rows.size, dtype=np.int8)
    return as_csr(sp.coo_array((data, (rows, cols)), shape=(n, n)))
