"""Random expression-workload generator (SparsEst stress extension).

The fifteen B-cases pin down known structural patterns; this module
generates *random* well-shaped expression DAGs — mixes of products,
element-wise operations, and reorganizations over structured leaves — to
test estimators beyond hand-picked cases. Generation is seeded and
reproducible; every generated DAG is valid by construction (shapes are
tracked during generation).

The default operation mix follows the paper's observation that "chains of
pure matrix products rarely exceed a length of five; much more common are
chains of matrix products interleaved with reorganizations and
element-wise operations".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.rounding import SeedLike, resolve_rng
from repro.ir.nodes import (
    Expr,
    eq_zero,
    ewise_add,
    ewise_mult,
    leaf,
    matmul,
    neq_zero,
    transpose,
)
from repro.matrix.random import (
    diagonal_matrix,
    permutation_matrix,
    power_law_columns,
    random_sparse,
    single_nnz_per_row,
)


@dataclass
class WorkloadConfig:
    """Knobs for the random workload generator.

    Attributes:
        max_depth: maximum operation depth of a generated DAG.
        dims: candidate dimension sizes for leaf matrices.
        sparsity_range: (lo, hi) for uniform-random leaf sparsities.
        leaf_kinds: structured leaf families to draw from; any subset of
            ``{"uniform", "power_law", "single_nnz", "permutation",
            "diagonal"}``.
        product_weight / ewise_weight / reorg_weight: relative frequency of
            drawing each operation family at an internal node.
    """

    max_depth: int = 4
    dims: tuple[int, ...] = (40, 80, 120)
    sparsity_range: tuple[float, float] = (0.005, 0.4)
    leaf_kinds: tuple[str, ...] = (
        "uniform", "power_law", "single_nnz", "permutation", "diagonal"
    )
    product_weight: float = 0.4
    ewise_weight: float = 0.3
    reorg_weight: float = 0.3


_VALID_LEAF_KINDS = {
    "uniform", "power_law", "single_nnz", "permutation", "diagonal"
}


class WorkloadGenerator:
    """Seeded generator of random valid expression DAGs."""

    def __init__(self, config: Optional[WorkloadConfig] = None, seed: SeedLike = 0):
        self.config = config or WorkloadConfig()
        unknown = set(self.config.leaf_kinds) - _VALID_LEAF_KINDS
        if unknown:
            raise ValueError(f"unknown leaf kinds: {sorted(unknown)}")
        if self.config.max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        self._rng = resolve_rng(seed)
        self._counter = 0

    # ------------------------------------------------------------------

    def expression(self) -> Expr:
        """Generate one random expression DAG."""
        m = int(self._rng.choice(self.config.dims))
        n = int(self._rng.choice(self.config.dims))
        return self._grow(m, n, self.config.max_depth)

    def batch(self, count: int) -> List[Expr]:
        """Generate *count* independent expressions."""
        return [self.expression() for _ in range(count)]

    # ------------------------------------------------------------------

    def _grow(self, m: int, n: int, depth: int) -> Expr:
        if depth <= 0 or self._rng.random() < 0.25:
            return self._leaf(m, n)
        weights = np.array([
            self.config.product_weight,
            self.config.ewise_weight,
            self.config.reorg_weight,
        ])
        weights = weights / weights.sum()
        family = self._rng.choice(["product", "ewise", "reorg"], p=weights)
        if family == "product":
            k = int(self._rng.choice(self.config.dims))
            left = self._grow(m, k, depth - 1)
            right = self._grow(k, n, depth - 1)
            return matmul(left, right)
        if family == "ewise":
            left = self._grow(m, n, depth - 1)
            right = self._grow(m, n, depth - 1)
            if self._rng.random() < 0.5:
                return ewise_add(left, right)
            return ewise_mult(left, right)
        # Reorganizations that preserve an (m, n) output shape.
        choice = self._rng.choice(["transpose", "neq", "eq"])
        if choice == "transpose":
            return transpose(self._grow(n, m, depth - 1))
        if choice == "neq":
            return neq_zero(self._grow(m, n, depth - 1))
        return eq_zero(self._grow(m, n, depth - 1))

    def _leaf(self, m: int, n: int) -> Expr:
        self._counter += 1
        kind = self._rng.choice(self.config.leaf_kinds)
        lo, hi = self.config.sparsity_range
        sparsity = float(self._rng.uniform(lo, hi))
        seed = self._rng
        if kind == "single_nnz":
            matrix = single_nnz_per_row(m, n, seed=seed)
        elif kind == "power_law":
            total = max(1, int(sparsity * m * n))
            matrix = power_law_columns(m, n, total_nnz=total, seed=seed)
        elif kind == "permutation" and m == n:
            matrix = permutation_matrix(m, seed=seed)
        elif kind == "diagonal" and m == n:
            matrix = diagonal_matrix(m, seed=seed)
        else:
            matrix = random_sparse(m, n, sparsity, seed=seed)
        return leaf(matrix, name=f"L{self._counter}:{kind}")


def workload_errors(
    expressions: List[Expr],
    estimator_names: List[str],
    **estimator_kwargs: Dict,
) -> Dict[str, List[float]]:
    """Relative errors of each estimator over a batch of expressions.

    Estimators that cannot express a DAG contribute no entry for it (their
    lists can be shorter); callers can compare geometric means over the
    supported subsets.
    """
    from repro.errors import UnsupportedOperationError
    from repro.estimators import make_estimator
    from repro.ir.estimate import estimate_root_nnz
    from repro.ir.interpreter import evaluate
    from repro.sparsest.metrics import relative_error

    errors: Dict[str, List[float]] = {name: [] for name in estimator_names}
    for expression in expressions:
        truth = float(evaluate(expression).nnz)
        for name in estimator_names:
            estimator = make_estimator(name, **estimator_kwargs.get(name, {}))
            try:
                estimate = estimate_root_nnz(expression, estimator)
            except UnsupportedOperationError:
                continue
            errors[name].append(relative_error(truth, estimate))
    return errors
