"""Operation vocabulary shared by the expression IR and the estimators.

Both :mod:`repro.ir` (which builds expression DAGs) and
:mod:`repro.estimators` (which propagate synopses over those DAGs) need to
agree on operation identity; keeping the enum in a leaf module avoids a
dependency cycle between the two packages.
"""

from __future__ import annotations

import enum


class Op(enum.Enum):
    """Operations supported by the expression IR (paper Sections 3–4)."""

    LEAF = "leaf"
    MATMUL = "matmul"
    EWISE_ADD = "ewise_add"
    EWISE_MULT = "ewise_mult"
    TRANSPOSE = "transpose"
    RESHAPE = "reshape"
    DIAG_V2M = "diag_v2m"  # vector -> diagonal matrix
    DIAG_M2V = "diag_m2v"  # matrix -> diagonal vector
    RBIND = "rbind"
    CBIND = "cbind"
    NEQ_ZERO = "neq_zero"  # A != 0
    EQ_ZERO = "eq_zero"    # A == 0
    ROW_SUMS = "row_sums"  # aggregate each row to one cell (m x 1)
    COL_SUMS = "col_sums"  # aggregate each column to one cell (1 x n)

    @property
    def arity(self) -> int:
        """Number of matrix operands the operation consumes."""
        if self in _BINARY_OPS:
            return 2
        if self is Op.LEAF:
            return 0
        return 1

    @property
    def is_elementwise(self) -> bool:
        """True for the element-wise operations of paper Section 4."""
        return self in (Op.EWISE_ADD, Op.EWISE_MULT)

    @property
    def is_reorganization(self) -> bool:
        """True for reorganizations (position changes, Section 4)."""
        return self in (
            Op.TRANSPOSE, Op.RESHAPE, Op.DIAG_V2M, Op.DIAG_M2V,
            Op.RBIND, Op.CBIND, Op.NEQ_ZERO, Op.EQ_ZERO,
        )

    @property
    def is_aggregation(self) -> bool:
        """True for the row/column aggregations (structural sums)."""
        return self in (Op.ROW_SUMS, Op.COL_SUMS)


_BINARY_OPS = frozenset(
    {Op.MATMUL, Op.EWISE_ADD, Op.EWISE_MULT, Op.RBIND, Op.CBIND}
)
