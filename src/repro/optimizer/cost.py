"""FLOP cost models for matrix-multiplication plans.

The sparse cost of one product is the number of non-zero multiply pairs,
``sum_k nnz(A[:, k]) * nnz(B[k, :]) = hc_A . hr_B`` — independent of the
output sparsity (paper Eq 17, following Cohen). The dense cost is the
classic ``m * n * l``.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.core.propagate import propagate_product
from repro.core.rounding import SeedLike, resolve_rng
from repro.core.sketch import MNCSketch
from repro.errors import PlanError
from repro.matrix import ops as mops
from repro.matrix.conversion import MatrixLike, as_csr
from repro.matrix.properties import col_nnz, row_nnz

# A plan is a leaf index or a recursive (left, right) pair.
Plan = Union[int, tuple]


def dense_matmul_flops(m: int, n: int, l: int) -> float:
    """Dense cost of an ``(m x n) @ (n x l)`` product."""
    return float(m) * float(n) * float(l)


def sparse_matmul_flops(h_a: MNCSketch, h_b: MNCSketch) -> float:
    """Sparse multiply-pair cost from sketches: ``hc_A . hr_B`` (Eq 17).

    Reads the sketches' cached float64 count views: the chain DP evaluates
    this O(n^3) times over O(n^2) distinct sketches, so the one-off cast
    per sketch replaces two array allocations per call.
    """
    if h_a.ncols != h_b.nrows:
        raise PlanError(f"cost of mismatched product: {h_a.shape} x {h_b.shape}")
    return float(h_a.hc_f64 @ h_b.hr_f64)


def plan_cost_estimated(
    plan: Plan,
    sketches: Sequence[MNCSketch],
    rng: SeedLike = None,
) -> float:
    """Sparsity-aware cost of *plan* using MNC sketch propagation.

    Intermediate sketches are derived with
    :func:`~repro.core.propagate.propagate_product`, so the cost of deep
    plans reflects estimated intermediate structure rather than dense shapes.
    """
    generator = resolve_rng(rng)
    cost, _ = _walk_estimated(plan, sketches, generator)
    return cost


def _walk_estimated(
    plan: Plan, sketches: Sequence[MNCSketch], rng: np.random.Generator
) -> tuple[float, MNCSketch]:
    if isinstance(plan, int):
        return 0.0, sketches[plan]
    if len(plan) != 2:
        raise PlanError(f"malformed plan node: {plan!r}")
    left_cost, left = _walk_estimated(plan[0], sketches, rng)
    right_cost, right = _walk_estimated(plan[1], sketches, rng)
    cost = left_cost + right_cost + sparse_matmul_flops(left, right)
    return cost, propagate_product(left, right, rng=rng)


def plan_cost_true(plan: Plan, matrices: Sequence[MatrixLike]) -> float:
    """Exact sparse cost of *plan*: materializes every intermediate
    structure. Only feasible for small chains (used to validate the
    estimated costs in tests)."""
    cost, _ = _walk_true(plan, [as_csr(m) for m in matrices])
    return cost


def _walk_true(plan: Plan, matrices: Sequence) -> tuple[float, object]:
    if isinstance(plan, int):
        return 0.0, matrices[plan]
    left_cost, left = _walk_true(plan[0], matrices)
    right_cost, right = _walk_true(plan[1], matrices)
    pair_cost = float(
        col_nnz(left).astype(np.float64) @ row_nnz(right).astype(np.float64)
    )
    return left_cost + right_cost + pair_cost, mops.matmul(left, right)
