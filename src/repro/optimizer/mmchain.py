"""Matrix-multiplication-chain dynamic programming (paper Appendix C).

``optimize_chain_dense`` is the CLRS textbook O(n^3) DP over dimensions.
``optimize_chain_sparse`` extends it with an extra memo table ``E`` of MNC
sketches for optimal subchains: the cost of joining two subchains is the
sparse multiply-pair count ``E[i][k].hc . E[k+1][j].hr`` (Eq 17), and after
choosing the best split the joined sketch is propagated and memoized —
reusing intermediate sketches across overlapping subproblems exactly as the
paper describes.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.propagate import propagate_product
from repro.core.rounding import SeedLike, resolve_rng
from repro.core.sketch import MNCSketch
from repro.errors import PlanError
from repro.optimizer.cost import Plan, dense_matmul_flops, sparse_matmul_flops
from repro.parallel.engine import map_values, resolve_workers


@dataclass(frozen=True)
class ChainSolution:
    """Result of a chain optimization."""

    plan: Plan
    cost: float


def _validate_chain_shapes(shapes: Sequence[tuple[int, int]]) -> None:
    if not shapes:
        raise PlanError("cannot optimize an empty chain")
    for left, right in zip(shapes, shapes[1:]):
        if left[1] != right[0]:
            raise PlanError(f"chain shape mismatch: {left} then {right}")


def _extract_plan(splits: np.ndarray, i: int, j: int) -> Plan:
    if i == j:
        return i
    k = int(splits[i, j])
    return (_extract_plan(splits, i, k), _extract_plan(splits, k + 1, j))


def optimize_chain_dense(shapes: Sequence[tuple[int, int]]) -> ChainSolution:
    """Classic dimensions-only DP: minimizes dense FLOPs ``m*n*l``.

    Args:
        shapes: the chain matrices' shapes, inner dimensions matching.
    """
    _validate_chain_shapes(shapes)
    n = len(shapes)
    costs = np.zeros((n, n), dtype=np.float64)
    splits = np.zeros((n, n), dtype=np.int64)
    for span in range(2, n + 1):
        for i in range(n - span + 1):
            j = i + span - 1
            best_cost, best_k = np.inf, i
            for k in range(i, j):
                join = dense_matmul_flops(
                    shapes[i][0], shapes[k][1], shapes[j][1]
                )
                cost = costs[i, k] + costs[k + 1, j] + join
                if cost < best_cost:
                    best_cost, best_k = cost, k
            costs[i, j] = best_cost
            splits[i, j] = best_k
    return ChainSolution(plan=_extract_plan(splits, 0, n - 1), cost=float(costs[0, n - 1]))


def _solve_cell(
    costs: np.ndarray,
    memo: List[List[Optional[MNCSketch]]],
    i: int,
    j: int,
    rng,
) -> Tuple[float, int, MNCSketch]:
    """One DP cell: pick the cheapest split of subchain ``[i, j]`` and
    propagate its joined sketch. Reads only strictly shorter spans, so all
    cells of one span are independent."""
    best_cost, best_k = np.inf, i
    for k in range(i, j):
        join = sparse_matmul_flops(memo[i][k], memo[k + 1][j])
        cost = costs[i, k] + costs[k + 1, j] + join
        if cost < best_cost:
            best_cost, best_k = cost, k
    sketch = propagate_product(memo[i][best_k], memo[best_k + 1][j], rng=rng)
    return best_cost, best_k, sketch


def optimize_chain_sparse(
    sketches: Sequence[MNCSketch],
    rng: SeedLike = None,
    workers: Optional[int] = None,
) -> ChainSolution:
    """Sparsity-aware DP over MNC sketches (Appendix C, Eq 17).

    Args:
        sketches: MNC sketches of the chain matrices (build once with
            :meth:`MNCSketch.from_matrix`).
        rng: randomness for probabilistic rounding during sketch propagation.
        workers: thread count for evaluating one span's (independent) DP
            cells concurrently; ``None`` reads ``$REPRO_WORKERS`` (default
            1). Serial runs consume *rng* cell by cell exactly as before;
            parallel runs pre-draw one child seed per cell in deterministic
            (span, i) order, so any ``workers > 1`` yields identical plans
            and costs regardless of thread count (which may round — hence
            cost — differently than the serial stream).
    """
    _validate_chain_shapes([h.shape for h in sketches])
    workers = resolve_workers(workers)
    generator = resolve_rng(rng)
    n = len(sketches)
    costs = np.zeros((n, n), dtype=np.float64)
    splits = np.zeros((n, n), dtype=np.int64)
    memo: list[list[Optional[MNCSketch]]] = [[None] * n for _ in range(n)]
    for i, sketch in enumerate(sketches):
        memo[i][i] = sketch
    for span in range(2, n + 1):
        starts = list(range(n - span + 1))
        if workers > 1 and len(starts) > 1:
            # Sketch propagation (not the flops scan) dominates a cell, and
            # it is numpy-bound, so threads are the right pool here — the
            # memo tables stay shared without any serialization.
            seeds = [int(generator.integers(0, 2**63)) for _ in starts]
            with ThreadPoolExecutor(
                max_workers=min(workers, len(starts))
            ) as pool:
                solved = list(pool.map(
                    lambda pair: _solve_cell(
                        costs, memo, pair[0], pair[0] + span - 1,
                        resolve_rng(pair[1]),
                    ),
                    zip(starts, seeds),
                ))
        else:
            solved = [
                _solve_cell(costs, memo, i, i + span - 1, generator)
                for i in starts
            ]
        for i, (best_cost, best_k, sketch) in zip(starts, solved):
            j = i + span - 1
            costs[i, j] = best_cost
            splits[i, j] = best_k
            memo[i][j] = sketch
    return ChainSolution(plan=_extract_plan(splits, 0, n - 1), cost=float(costs[0, n - 1]))


def _sketch_matrix(matrix) -> MNCSketch:
    """Worker entry point for parallel leaf sketching."""
    return MNCSketch.from_matrix(matrix)


def optimize_chain_matrices(
    matrices: Sequence,
    rng: SeedLike = None,
    catalog: Optional[object] = None,
    workers: Optional[int] = None,
) -> ChainSolution:
    """Sparsity-aware chain DP straight from concrete matrices.

    Args:
        matrices: the chain matrices (matrix-like, inner dims matching).
        rng: randomness for probabilistic rounding during propagation.
        catalog: optional :class:`~repro.catalog.service.EstimationService`
            (or anything with ``sketch_for``); when given, leaf sketches
            come from the catalog — matrices already registered there (or
            optimized before) are never re-sketched.
        workers: process count for sketching leaves in parallel (catalog-less
            runs only — a catalog's store already deduplicates that work),
            and thread count for the DP's per-span cells. ``None`` reads
            ``$REPRO_WORKERS`` (default 1). Sketch construction is
            deterministic, so leaf parallelism never changes results.
    """
    if catalog is not None:
        sketches = [catalog.sketch_for(matrix) for matrix in matrices]
    else:
        sketches = map_values(
            _sketch_matrix, list(matrices), workers=workers,
            label="mmchain.sketch",
        )
    return optimize_chain_sparse(sketches, rng=rng, workers=workers)


def left_deep_plan(n: int) -> Plan:
    """The left-deep plan ``((((M1 M2) M3) ...) Mn)``."""
    if n < 1:
        raise PlanError("chain must contain at least one matrix")
    plan: Plan = 0
    for index in range(1, n):
        plan = (plan, index)
    return plan


def random_plan(n: int, rng: SeedLike = None) -> Plan:
    """A random parenthesization of an ``n``-matrix chain.

    Splits are drawn uniformly at each recursion level; this covers the full
    plan space (every plan has positive probability) without the machinery
    needed for an exactly uniform Catalan draw, which is all Figure 16's
    random baseline requires.
    """
    generator = resolve_rng(rng)

    def build(i: int, j: int) -> Plan:
        if i == j:
            return i
        k = int(generator.integers(i, j))
        return (build(i, k), build(k + 1, j))

    if n < 1:
        raise PlanError("chain must contain at least one matrix")
    return build(0, n - 1)


def enumerate_random_plans(n: int, count: int, rng: SeedLike = None) -> list[Plan]:
    """Draw *count* random plans (duplicates possible, as in a random
    sample of the plan space)."""
    generator = resolve_rng(rng)
    return [random_plan(n, generator) for _ in range(count)]


def plan_to_string(plan: Plan, names: Optional[Sequence[str]] = None) -> str:
    """Render a plan as a parenthesized product, e.g. ``((M1 M2) M3)``."""
    if isinstance(plan, int):
        return names[plan] if names is not None else f"M{plan + 1}"
    left, right = plan
    return f"({plan_to_string(left, names)} {plan_to_string(right, names)})"
