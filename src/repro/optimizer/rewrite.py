"""Sparsity-aware MM-chain rewrite over expression DAGs (Appendix C).

SystemML applies the sparsity-aware chain DP as a *rewrite*: wherever the
DAG contains a chain of consecutive matrix products, the parenthesization
is re-chosen with sketch-based costs. This module brings that rewrite to
:mod:`repro.ir`:

1. :func:`collect_chain` flattens a maximal product-only subtree into its
   ordered operand list;
2. :func:`rewrite_chains` walks a DAG bottom-up, re-optimizes every maximal
   chain of length >= 3 with :func:`~repro.optimizer.mmchain.optimize_chain_sparse`,
   and rebuilds the products according to the optimal plan.

The rewrite is semantics-preserving (matrix products are associative, and
the structural interpreter verifies this in the tests) and leaves all
non-product operations untouched — chains are cut at element-wise
operations, reorganizations, and shared (multi-parent) intermediates, the
same boundaries SystemML's rewrite respects.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.rounding import SeedLike, resolve_rng
from repro.core.sketch import MNCSketch
from repro.ir.nodes import Expr, matmul
from repro.opcodes import Op
from repro.optimizer.cost import Plan
from repro.optimizer.mmchain import optimize_chain_sparse


def collect_chain(root: Expr, reference_counts: Optional[Dict[int, int]] = None) -> List[Expr]:
    """Flatten the maximal product chain rooted at *root*.

    Returns the ordered operand expressions ``[M1, M2, ..., Mk]`` such that
    ``root`` computes ``M1 @ M2 @ ... @ Mk`` (k >= 2 when *root* is a
    product; ``[root]`` otherwise). Flattening stops at non-product nodes
    and — when *reference_counts* is given — at products that other parts
    of the DAG also consume (re-parenthesizing those would duplicate work).
    """
    if root.op is not Op.MATMUL:
        return [root]
    operands: List[Expr] = []
    stack = [root]
    while stack:
        node = stack.pop()
        shared = (
            reference_counts is not None
            and node is not root
            and reference_counts.get(id(node), 0) > 1
        )
        if node.op is Op.MATMUL and not shared:
            stack.append(node.inputs[1])
            stack.append(node.inputs[0])
        else:
            operands.append(node)
    return operands


def _reference_counts(root: Expr) -> Dict[int, int]:
    counts: Dict[int, int] = {}
    for node in root.postorder():
        for child in node.inputs:
            counts[id(child)] = counts.get(id(child), 0) + 1
    return counts


def _build_plan(plan: Plan, operands: List[Expr]) -> Expr:
    if isinstance(plan, int):
        return operands[plan]
    left = _build_plan(plan[0], operands)
    right = _build_plan(plan[1], operands)
    return matmul(left, right)


def rewrite_chains(
    root: Expr,
    rng: SeedLike = None,
    min_chain_length: int = 3,
) -> Expr:
    """Re-parenthesize every maximal product chain in the DAG.

    Chains are costed with MNC sketches: leaf operands are sketched from
    their matrices, non-leaf operands (chain inputs produced by other
    operations) are sketched from their *exactly evaluated structure* when
    they are leaves of the chain — here we propagate synopses instead,
    using the MNC estimator over the sub-DAG, so no materialization
    happens.

    Args:
        root: expression to rewrite (not mutated; a new DAG is returned,
            sharing unchanged sub-expressions).
        rng: randomness for sketch propagation inside the DP.
        min_chain_length: chains shorter than this are left as-is (the
            default 3 skips plain binary products, which have one plan).

    Returns:
        The rewritten root expression.
    """
    from repro.estimators.mnc import MNCEstimator
    from repro.ir.estimate import _propagate_dag

    generator = resolve_rng(rng)
    counts = _reference_counts(root)
    estimator = MNCEstimator(seed=generator)
    rewritten: Dict[int, Expr] = {}

    def rebuild(node: Expr) -> Expr:
        cached = rewritten.get(id(node))
        if cached is not None:
            return cached
        if node.op is Op.LEAF:
            rewritten[id(node)] = node
            return node
        if node.op is Op.MATMUL:
            operands = collect_chain(node, counts)
            if len(operands) >= min_chain_length:
                new_operands = [rebuild(operand) for operand in operands]
                sketches = [_sketch_of(operand, estimator) for operand in new_operands]
                solution = optimize_chain_sparse(sketches, rng=generator)
                result = _build_plan(solution.plan, new_operands)
                rewritten[id(node)] = result
                return result
        new_inputs = tuple(rebuild(child) for child in node.inputs)
        if all(new is old for new, old in zip(new_inputs, node.inputs)):
            result = node
        else:
            result = Expr(
                node.op, new_inputs, matrix=node.matrix,
                params=node.params, name=node.name,
            )
        rewritten[id(node)] = result
        return result

    def _sketch_of(operand: Expr, mnc: MNCEstimator) -> MNCSketch:
        if operand.op is Op.LEAF:
            return MNCSketch.from_matrix(operand.matrix)
        synopses = _propagate_dag_cached(operand, mnc)
        return synopses[id(operand)].sketch

    propagation_cache: Dict[int, Dict[int, object]] = {}

    def _propagate_dag_cached(operand: Expr, mnc: MNCEstimator):
        cached = propagation_cache.get(id(operand))
        if cached is None:
            # Propagate including the operand itself (it is not the DAG
            # root here, so _propagate_dag covers it).
            wrapper = Expr(Op.NEQ_ZERO, (operand,))
            cached = _propagate_dag(wrapper, mnc)
            propagation_cache[id(operand)] = cached
        return cached

    return rebuild(root)
