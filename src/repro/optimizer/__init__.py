"""Matrix-multiplication-chain optimization (paper Appendix C).

- :mod:`repro.optimizer.cost` — dense and sparsity-aware FLOP cost models.
- :mod:`repro.optimizer.mmchain` — the textbook O(n^3) dynamic program and
  its sparsity-aware extension that memoizes MNC sketches of optimal
  subchains (Eq 17), plus random-plan enumeration for Figure 16.
- :mod:`repro.optimizer.rewrite` — the SystemML-style dynamic rewrite that
  re-parenthesizes maximal product chains inside expression DAGs.
"""

from repro.optimizer.cost import (
    dense_matmul_flops,
    plan_cost_estimated,
    plan_cost_true,
    sparse_matmul_flops,
)
from repro.optimizer.rewrite import collect_chain, rewrite_chains
from repro.optimizer.mmchain import (
    Plan,
    enumerate_random_plans,
    left_deep_plan,
    optimize_chain_dense,
    optimize_chain_matrices,
    optimize_chain_sparse,
    plan_to_string,
    random_plan,
)

__all__ = [
    "Plan",
    "collect_chain",
    "dense_matmul_flops",
    "enumerate_random_plans",
    "left_deep_plan",
    "optimize_chain_dense",
    "optimize_chain_matrices",
    "optimize_chain_sparse",
    "plan_cost_estimated",
    "plan_cost_true",
    "plan_to_string",
    "random_plan",
    "rewrite_chains",
    "sparse_matmul_flops",
]
