"""Memoized estimation results keyed on structural fingerprints.

:class:`EstimateMemo` is the catalog's second table: while the
:class:`~repro.catalog.store.SketchStore` holds *synopses*, the memo holds
*results* — per-node non-zero estimates, root estimates, ground-truth
counts — keyed on ``(fingerprint, estimator, tag)``. Because fingerprints
are structural (:mod:`repro.catalog.fingerprint`), a memoized result
survives rebuilding the expression from scratch: the SparsEst runner uses
exactly this to keep ground-truth nnz across per-seed DAG reconstructions.

The memo is thread-safe, LRU-bounded by entry count (results are scalars or
small objects; a byte budget would be overkill), and supports explicit
invalidation by fingerprint and/or estimator — the hook for workloads where
a registered matrix is replaced under the same logical name.

Concurrency contract (the serving tier leans on all three):

- ``get``/``put`` are individually atomic, so a reader never observes a
  torn entry and concurrent full-value writes are last-writer-wins rather
  than lost-update-prone read-modify-write;
- :meth:`EstimateMemo.memoize` is **single-writer-per-key**: when several
  threads miss the same key simultaneously, exactly one runs ``compute``
  while the rest block on an in-flight marker and then read the stored
  value — the cold path of a popular key costs one computation, not one
  per concurrent request;
- a ``compute`` that raises releases the in-flight marker, so one waiter
  is promoted to writer instead of every waiter hanging or failing.

Hits and misses are mirrored onto the observability counters
(``catalog.memo.hit`` / ``catalog.memo.miss``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Iterable, Optional, Set, Tuple

from repro.observability.metrics import metric_set
from repro.observability.trace import count

#: Default entry bound; estimates are tiny, so this is ~megabytes.
DEFAULT_MAX_ENTRIES = 65536

_MISSING = object()

MemoKey = Tuple[str, str, str]


class EstimateMemo:
    """Thread-safe LRU memo of estimation results.

    Keys are ``(fingerprint, estimator, tag)`` triples: the structural
    fingerprint of the node or DAG, the estimator identity (its
    :attr:`~repro.estimators.base.SparsityEstimator.name`, or ``"exact"``
    for ground truth), and a tag naming what was memoized (``"nnz"``,
    ``"synopsis"``, ...).
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_entries = int(max_entries)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[MemoKey, Any]" = OrderedDict()
        #: Keys whose value is being computed right now (memoize's
        #: single-writer-per-key protocol); waiters block on the event.
        self._inflight: Dict[MemoKey, threading.Event] = {}
        #: Leaf-dependency index for partial invalidation (streaming):
        #: ``depends_on`` fingerprints -> keys of entries derived from
        #: them, plus the per-key inverse so eviction stays O(deps).
        self._dependents: Dict[str, Set[MemoKey]] = {}
        self._key_deps: Dict[MemoKey, Tuple[str, ...]] = {}
        self._hits = 0
        self._misses = 0
        self._invalidations = 0
        self._compute_waits = 0

    def get(
        self, fingerprint: str, estimator: str, tag: str, default: Any = None
    ) -> Any:
        """The memoized value, or *default*; hits refresh LRU recency."""
        key = (fingerprint, estimator, tag)
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                count("catalog.memo.miss")
                return default
            self._entries.move_to_end(key)
            self._hits += 1
            count("catalog.memo.hit")
            return value

    def _unlink_deps(self, key: MemoKey) -> None:
        """Drop *key* from the dependency index (caller holds the lock)."""
        for dep in self._key_deps.pop(key, ()):
            dependents = self._dependents.get(dep)
            if dependents is not None:
                dependents.discard(key)
                if not dependents:
                    del self._dependents[dep]

    def put(
        self,
        fingerprint: str,
        estimator: str,
        tag: str,
        value: Any,
        *,
        depends_on: Optional[Iterable[str]] = None,
    ) -> None:
        """Memoize *value*, evicting the LRU entry beyond the bound.

        ``depends_on`` lists the *leaf* fingerprints the value was derived
        from; invalidating any of them (e.g. because a streaming delta
        mutated that matrix) evicts this entry too, while entries over
        untouched leaves survive. Omitting it keeps the pre-streaming
        behavior: the entry is only dropped by its own fingerprint.
        """
        key = (fingerprint, estimator, tag)
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            self._unlink_deps(key)
            if depends_on:
                deps = tuple(dict.fromkeys(depends_on))
                self._key_deps[key] = deps
                for dep in deps:
                    self._dependents.setdefault(dep, set()).add(key)
            while len(self._entries) > self.max_entries:
                evicted, _ = self._entries.popitem(last=False)
                self._unlink_deps(evicted)
            metric_set("catalog.memo.entries", len(self._entries))

    def memoize(
        self,
        fingerprint: str,
        estimator: str,
        tag: str,
        compute: Callable[[], Any],
        *,
        depends_on: Optional[Iterable[str]] = None,
    ) -> Any:
        """Return the memoized value, computing and storing it on a miss.

        Atomic get-or-compute: when several threads miss the same key at
        once, exactly one runs ``compute`` (outside the lock — computations
        can be arbitrarily slow) while the others wait for it and then read
        the stored value. If the computing thread raises, its waiters are
        woken and one of them takes over the computation; the exception
        propagates to the original caller.
        """
        key = (fingerprint, estimator, tag)
        while True:
            with self._lock:
                value = self._entries.get(key, _MISSING)
                if value is not _MISSING:
                    self._entries.move_to_end(key)
                    self._hits += 1
                    count("catalog.memo.hit")
                    return value
                pending = self._inflight.get(key)
                if pending is None:
                    pending = self._inflight[key] = threading.Event()
                    owner = True
                    self._misses += 1
                    count("catalog.memo.miss")
                else:
                    owner = False
                    self._compute_waits += 1
                    count("catalog.memo.compute_wait")
            if owner:
                try:
                    value = compute()
                except BaseException:
                    # Promote a waiter to writer rather than caching the
                    # failure or leaving everyone blocked forever.
                    with self._lock:
                        self._inflight.pop(key, None)
                    pending.set()
                    raise
                self.put(
                    fingerprint, estimator, tag, value,
                    depends_on=depends_on,
                )
                with self._lock:
                    self._inflight.pop(key, None)
                pending.set()
                return value
            pending.wait()
            # Re-check from the top: the usual case finds the stored value;
            # if the writer failed (or the entry was already evicted) this
            # thread competes to become the new writer.

    def invalidate(
        self,
        fingerprint: Optional[str] = None,
        estimator: Optional[str] = None,
    ) -> int:
        """Drop entries matching the given fingerprint and/or estimator.

        A fingerprint matches an entry keyed on it *and* every entry that
        declared it in ``depends_on`` — so mutating one leaf evicts exactly
        the results derived from that leaf, leaving memoized work over
        untouched subexpressions in place (partial invalidation). With both
        arguments ``None`` this clears everything. Returns the number of
        entries removed.
        """
        with self._lock:
            if fingerprint is None and estimator is None:
                removed = len(self._entries)
                self._entries.clear()
                self._dependents.clear()
                self._key_deps.clear()
            else:
                dependents = (
                    self._dependents.get(fingerprint, set())
                    if fingerprint is not None
                    else set()
                )
                doomed = [
                    key
                    for key in self._entries
                    if (
                        fingerprint is None
                        or key[0] == fingerprint
                        or key in dependents
                    )
                    and (estimator is None or key[1] == estimator)
                ]
                for key in doomed:
                    del self._entries[key]
                    self._unlink_deps(key)
                removed = len(doomed)
            self._invalidations += removed
            metric_set("catalog.memo.entries", len(self._entries))
        if removed:
            count("catalog.memo.invalidation", removed)
        return removed

    def clear(self) -> None:
        """Drop every memoized result (counters are kept)."""
        self.invalidate()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: MemoKey) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> Dict[str, int]:
        """Hit/miss/size counters for reporting."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "invalidations": self._invalidations,
                "compute_waits": self._compute_waits,
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "dependency_tracked": len(self._key_deps),
            }
