"""Thread-safe, byte-budgeted LRU sketch store with optional disk spill.

The paper treats the MNC sketch as a computed-once artifact — possibly on a
distributed cluster (Section 3.1) — that the optimizer consults many times.
:class:`SketchStore` is the serving-side half of that contract: a bounded
in-memory cache of :class:`~repro.core.sketch.MNCSketch` objects keyed by
structural fingerprints (:mod:`repro.catalog.fingerprint`), with

- **LRU eviction under a byte budget** — entry sizes come from
  :meth:`MNCSketch.size_bytes`; the in-memory total never exceeds the
  budget, which the concurrency tests assert under thread hammering;
- **optional disk spill** — evicted (and oversized) sketches persist to a
  spill directory as ``<fingerprint>.npz`` via
  :mod:`repro.core.serialize`; a later ``get`` of a spilled key reloads it
  transparently (a *disk hit*);
- **warm start / persist** — a catalog directory of sketch files can be
  bulk-loaded (the distributed-sketching driver pattern) and the resident
  set written back out.

Every hit/miss/eviction/spill updates both the store's own
:meth:`SketchStore.stats` and the PR-1 observability counters
(``catalog.store.*``), so ``repro stats`` on a trace reports cache
effectiveness.
"""

from __future__ import annotations

import threading
import zipfile
import zlib
from collections import OrderedDict
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.serialize import load_sketch, save_sketch
from repro.core.sketch import MNCSketch
from repro.errors import SketchError
from repro.observability.metrics import metric_set
from repro.observability.trace import count

#: Default in-memory budget: generous for O(m + n) sketches, small enough
#: that pathological workloads spill instead of exhausting the heap.
DEFAULT_BUDGET_BYTES = 64 * 1024 * 1024


def load_sketch_or_none(path: Path) -> Optional[MNCSketch]:
    """Load one catalog file, returning ``None`` for anything unreadable.

    "Unreadable" covers the failure modes a live, shared catalog directory
    actually produces: a file deleted between listing and open, a
    partially-written or truncated npz (a writer mid-``save_sketch``, a
    crashed spill), a zip that is not an npz at all, and payloads whose
    sketch contents fail validation or carry a future format version.
    """
    try:
        return load_sketch(path)
    except (SketchError, OSError, ValueError, KeyError, EOFError,
            zipfile.BadZipFile, zlib.error):
        return None


@dataclass(frozen=True)
class StoreStats:
    """Point-in-time cache-effectiveness counters for one store."""

    hits: int
    misses: int
    disk_hits: int
    puts: int
    evictions: int
    spills: int
    entries: int
    bytes_used: int
    budget_bytes: int
    warm_skipped: int = 0

    def merge(self, other: "StoreStats") -> "StoreStats":
        """Combine two stores' counters (the sharded store's roll-up)."""
        return StoreStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            disk_hits=self.disk_hits + other.disk_hits,
            puts=self.puts + other.puts,
            evictions=self.evictions + other.evictions,
            spills=self.spills + other.spills,
            entries=self.entries + other.entries,
            bytes_used=self.bytes_used + other.bytes_used,
            budget_bytes=self.budget_bytes + other.budget_bytes,
            warm_skipped=self.warm_skipped + other.warm_skipped,
        )

    @property
    def requests(self) -> int:
        return self.hits + self.misses + self.disk_hits

    @property
    def hit_rate(self) -> float:
        """Fraction of ``get`` calls served from memory or disk."""
        requests = self.requests
        if requests == 0:
            return 0.0
        return (self.hits + self.disk_hits) / requests

    def as_dict(self) -> Dict[str, float]:
        data = dict(asdict(self))
        data["hit_rate"] = self.hit_rate
        return data


class SketchStore:
    """Byte-budgeted LRU cache of MNC sketches keyed by fingerprint.

    Args:
        budget_bytes: in-memory ceiling; the resident total never exceeds
            it (a sketch larger than the whole budget is never admitted to
            memory — it spills straight to disk when a spill directory is
            configured, and is otherwise dropped on eviction).
        spill_dir: optional directory for ``<fingerprint>.npz`` spill files;
            created on first use. ``None`` disables persistence.
    """

    def __init__(
        self,
        budget_bytes: int = DEFAULT_BUDGET_BYTES,
        spill_dir: Optional[str | Path] = None,
    ):
        if budget_bytes <= 0:
            raise SketchError(f"budget_bytes must be positive, got {budget_bytes}")
        self.budget_bytes = int(budget_bytes)
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self._lock = threading.RLock()
        self._entries: "OrderedDict[str, MNCSketch]" = OrderedDict()
        self._sizes: Dict[str, int] = {}
        self._bytes_used = 0
        self._hits = 0
        self._misses = 0
        self._disk_hits = 0
        self._puts = 0
        self._evictions = 0
        self._spills = 0
        self._warm_skipped = 0

    # ------------------------------------------------------------------
    # Core cache protocol
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[MNCSketch]:
        """The sketch stored under *key*, or ``None``.

        Memory hits refresh LRU recency; misses fall back to the spill
        directory (reloading promotes the sketch back into memory).
        """
        with self._lock:
            sketch = self._entries.get(key)
            if sketch is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                count("catalog.store.hit")
                return sketch
            spill_path = self._spill_path(key)
            if spill_path is not None and spill_path.exists():
                sketch = load_sketch(spill_path)
                self._admit(key, sketch)
                self._disk_hits += 1
                count("catalog.store.disk_hit")
                return sketch
            self._misses += 1
            count("catalog.store.miss")
            return None

    def put(self, key: str, sketch: MNCSketch) -> None:
        """Insert (or refresh) *sketch* under *key*, evicting LRU entries
        as needed to stay within the byte budget."""
        with self._lock:
            self._admit(key, sketch)
            self._puts += 1
            count("catalog.store.put")

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._entries:
                return True
        spill_path = self._spill_path(key)
        return spill_path is not None and spill_path.exists()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> List[str]:
        """Resident fingerprints, least- to most-recently used."""
        with self._lock:
            return list(self._entries)

    @property
    def bytes_used(self) -> int:
        """Current in-memory footprint (always ``<= budget_bytes``)."""
        with self._lock:
            return self._bytes_used

    def demote(self, key: str) -> bool:
        """Evict *key* from memory to the disk tier (spill, keep on disk).

        The hook the TTL eviction tier uses: an expired entry stops costing
        memory but stays reloadable as a disk hit. Without a spill
        directory the entry is simply dropped. Returns ``True`` when the
        key was resident.
        """
        with self._lock:
            sketch = self._entries.get(key)
            if sketch is None:
                return False
            del self._entries[key]
            self._bytes_used -= self._sizes.pop(key)
            self._evictions += 1
            count("catalog.store.eviction")
            self._spill(key, sketch)
            self._publish_gauges()
            return True

    def discard(self, key: str, remove_spill: bool = True) -> bool:
        """Forget *key* entirely (memory and, by default, its spill file).

        Returns ``True`` when anything was removed.
        """
        removed = False
        with self._lock:
            size = self._sizes.pop(key, None)
            if size is not None:
                del self._entries[key]
                self._bytes_used -= size
                removed = True
                self._publish_gauges()
        spill_path = self._spill_path(key)
        if remove_spill and spill_path is not None and spill_path.exists():
            spill_path.unlink()
            removed = True
        return removed

    def clear(self, remove_spill: bool = False) -> None:
        """Drop all resident entries; optionally delete spill files too."""
        with self._lock:
            self._entries.clear()
            self._sizes.clear()
            self._bytes_used = 0
            self._publish_gauges()
        if remove_spill and self.spill_dir is not None and self.spill_dir.exists():
            for path in self.spill_dir.glob("*.npz"):
                path.unlink()

    def stats(self) -> StoreStats:
        """Snapshot of the cache-effectiveness counters."""
        with self._lock:
            return StoreStats(
                hits=self._hits,
                misses=self._misses,
                disk_hits=self._disk_hits,
                puts=self._puts,
                evictions=self._evictions,
                spills=self._spills,
                entries=len(self._entries),
                bytes_used=self._bytes_used,
                budget_bytes=self.budget_bytes,
                warm_skipped=self._warm_skipped,
            )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def warm_start(self, directory: str | Path) -> List[str]:
        """Bulk-load every ``*.npz`` sketch under *directory*.

        The catalog directory layout is ``<key>.npz`` — exactly what
        :meth:`persist` and disk spill write — so keys round-trip through
        the filename stem. Files load in sorted filename order (so e.g.
        shard sketches keep their partition order); sketch contents are
        validated on load. Returns the keys in load order.

        The scan is tolerant of a live catalog: files that vanish mid-scan
        (a concurrent ``clear``/``discard``), partially-written spill
        files, and corrupt or future-versioned payloads are skipped and
        counted (``catalog.store.warm_skipped`` and the ``warm_skipped``
        stats field) instead of aborting the whole warm start, so several
        servers can warm from — and spill into — one directory at once.
        """
        source = Path(directory)
        if not source.is_dir():
            raise SketchError(f"catalog directory {source} does not exist")
        loaded: List[str] = []
        for path in sorted(source.glob("*.npz")):
            sketch = load_sketch_or_none(path)
            if sketch is None:
                self.note_warm_skipped()
                continue
            self.put(path.stem, sketch)
            loaded.append(path.stem)
        count("catalog.store.warm_start", len(loaded))
        return loaded

    def note_warm_skipped(self) -> None:
        """Count one unreadable catalog file skipped during warm start."""
        with self._lock:
            self._warm_skipped += 1
        count("catalog.store.warm_skipped")

    def persist(self, directory: Optional[str | Path] = None) -> int:
        """Write every resident sketch to *directory* (default: the spill
        directory) as ``<fingerprint>.npz``; returns the file count."""
        target = Path(directory) if directory is not None else self.spill_dir
        if target is None:
            raise SketchError("persist() needs a directory or a spill_dir")
        with self._lock:
            resident = list(self._entries.items())
        for key, sketch in resident:
            save_sketch(target / f"{key}.npz", sketch)
        return len(resident)

    # ------------------------------------------------------------------
    # Internals (call with the lock held)
    # ------------------------------------------------------------------

    def _spill_path(self, key: str) -> Optional[Path]:
        if self.spill_dir is None:
            return None
        return self.spill_dir / f"{key}.npz"

    def _publish_gauges(self) -> None:
        # Last-writer-wins gauges: with several stores in one process the
        # published values describe the most recently mutated store, which
        # in practice is the service's shared instance.
        metric_set("catalog.store.bytes_used", self._bytes_used)
        metric_set("catalog.store.entries", len(self._entries))
        metric_set("catalog.store.budget_bytes", self.budget_bytes)

    def _admit(self, key: str, sketch: MNCSketch) -> None:
        size = sketch.size_bytes()
        previous = self._sizes.pop(key, None)
        if previous is not None:
            del self._entries[key]
            self._bytes_used -= previous
        if size > self.budget_bytes:
            # Never admit something the budget cannot hold; spill directly.
            self._spill(key, sketch)
            return
        while self._bytes_used + size > self.budget_bytes and self._entries:
            self._evict_lru()
        self._entries[key] = sketch
        self._sizes[key] = size
        self._bytes_used += size
        self._publish_gauges()

    def _evict_lru(self) -> None:
        victim, sketch = self._entries.popitem(last=False)
        self._bytes_used -= self._sizes.pop(victim)
        self._evictions += 1
        count("catalog.store.eviction")
        self._spill(victim, sketch)

    def _spill(self, key: str, sketch: MNCSketch) -> None:
        path = self._spill_path(key)
        if path is None:
            return
        if not path.exists():
            save_sketch(path, sketch)
        self._spills += 1
        count("catalog.store.spill")
