"""The :class:`EstimationService` facade: register once, estimate many times.

The paper's serving story — compute the MNC sketch once (possibly on a
cluster), then consult it throughout optimization — becomes an object here:

>>> service = EstimationService()                    # MNC by default
>>> service.register(matrix_x, name="X")
>>> cold = service.estimate(expr)                    # builds + caches
>>> warm = service.estimate(rebuilt_expr)            # pure cache hits
>>> warm["cached"]
True

The service composes the three catalog tables:

- leaf sketches live in a byte-budgeted :class:`~repro.catalog.store.SketchStore`
  (the canonical, persistable artifacts — warm-startable from a catalog
  directory, spillable to disk);
- propagated synopses and root results live in an
  :class:`~repro.catalog.memo.EstimateMemo` keyed on
  ``(fingerprint, estimator, tag)``, so structurally identical sub-DAGs are
  estimated once *across* requests, not just within one DAG walk;
- fingerprints come from :mod:`repro.catalog.fingerprint` and are purely
  structural, so a rebuilt-but-identical expression hits every cache.

One caveat worth knowing: cache identity is the estimator's ``name``. Two
instances of the same estimator class configured differently (e.g. density
maps with different block sizes) share a name — give them separate services
rather than sharing one catalog.
"""

from __future__ import annotations

import tempfile
import threading
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.catalog.fingerprint import (
    delta_fingerprint,
    fingerprint_dag,
    fingerprint_expr,
    fingerprint_matrix,
)
from repro.catalog.memo import EstimateMemo
from repro.catalog.store import SketchStore
from repro.core.sketch import MNCSketch
from repro.errors import ReproError, SketchError
from repro.estimators.base import SparsityEstimator, Synopsis, make_estimator
from repro.estimators.mnc import MNCEstimator, MNCSynopsis
from repro.estimators.spec import AUTO_NAME, EstimatorSpec
from repro.ir.nodes import Expr
from repro.matrix.conversion import MatrixLike
from repro.observability.recording import unwrap_estimator
from repro.observability.trace import count, timed_span
from repro.opcodes import Op
from repro.parallel.engine import WorkerPool, resolve_workers, run_tasks
from repro.parallel.spill import PortableDag, load_dag, spill_dag


@dataclass(frozen=True)
class ServiceRequest:
    """One unit of :class:`EstimationService` work, for :meth:`~EstimationService.submit`.

    The request object is the service's single entry-point API: the three
    historical call shapes — one expression, a batch of expressions, a
    matrix-chain optimization — are ``kind`` values of the same request
    type, built with the :meth:`estimate`, :meth:`batch`, and
    :meth:`chain` constructors.
    """

    kind: str  # "estimate" | "estimate_many" | "optimize_chain"
    exprs: Tuple[Expr, ...] = ()
    matrices: Tuple[MatrixLike, ...] = ()
    include_intermediates: bool = False
    workers: Optional[int] = None
    rng: Any = None
    #: Per-request estimator override (``None`` = the service's own). An
    #: ``auto`` spec routes the request through the adaptive router.
    estimator: Optional[EstimatorSpec] = None

    @classmethod
    def estimate(
        cls,
        expr: Expr,
        *,
        include_intermediates: bool = False,
        estimator: Union[EstimatorSpec, str, Mapping, None] = None,
        tolerance: Optional[float] = None,
    ) -> "ServiceRequest":
        """Estimate one expression root."""
        return cls(kind="estimate", exprs=(expr,),
                   include_intermediates=include_intermediates,
                   estimator=_request_spec(estimator, tolerance))

    @classmethod
    def batch(
        cls,
        exprs: Sequence[Expr],
        *,
        workers: Optional[int] = None,
        estimator: Union[EstimatorSpec, str, Mapping, None] = None,
        tolerance: Optional[float] = None,
    ) -> "ServiceRequest":
        """Estimate a batch of expression roots, optionally in parallel."""
        return cls(kind="estimate_many", exprs=tuple(exprs), workers=workers,
                   estimator=_request_spec(estimator, tolerance))

    @classmethod
    def chain(cls, matrices: Sequence[MatrixLike], *, rng: Any = None,
              workers: Optional[int] = None) -> "ServiceRequest":
        """Sparsity-aware matrix-chain optimization."""
        return cls(kind="optimize_chain", matrices=tuple(matrices), rng=rng,
                   workers=workers)


def _request_spec(
    estimator: Union[EstimatorSpec, str, Mapping, None],
    tolerance: Optional[float],
) -> Optional[EstimatorSpec]:
    """Parse a per-request estimator override; a bare *tolerance* implies
    ``estimator="auto"`` (tolerance is a routing concept)."""
    if estimator is None and tolerance is None:
        return None
    default = AUTO_NAME if tolerance is not None else "mnc"
    return EstimatorSpec.parse(estimator, tolerance=tolerance, default=default)


class EstimationService:
    """Memoized sparsity estimation over a shared sketch catalog.

    Args:
        estimator: a registered estimator name, an
            :class:`~repro.estimators.spec.EstimatorSpec` (or the dict/str
            forms it parses — ``"auto"`` selects adaptive routing), or an
            estimator instance (default MNC).
        store: sketch store to use/share (any object speaking the
            :class:`SketchStore` protocol, including
            :class:`~repro.catalog.sharded.ShardedSketchStore`); a fresh
            in-memory :class:`SketchStore` by default.
        memo: result memo to use/share; fresh by default.
        pool: persistent :class:`~repro.parallel.engine.WorkerPool` for
            parallel batches; ``None`` keeps the historical per-call pool.
        policy: learned :class:`~repro.router.RoutingPolicy` for
            ``estimator="auto"``; defaults to the policy persisted next to
            the store's spill directory (when any), else a fresh one.
    """

    def __init__(
        self,
        estimator: Union[str, Mapping, EstimatorSpec, SparsityEstimator] = "mnc",
        store: Optional[SketchStore] = None,
        memo: Optional[EstimateMemo] = None,
        pool: Optional[WorkerPool] = None,
        policy: Optional["RoutingPolicy"] = None,
    ):
        self.store = store if store is not None else SketchStore()
        self.memo = memo if memo is not None else EstimateMemo()
        self.pool = pool
        self.router = None
        self.spec: Optional[EstimatorSpec] = None
        if isinstance(estimator, SparsityEstimator):
            self.estimator = estimator
        else:
            spec = EstimatorSpec.parse(estimator)
            self.spec = spec
            if spec.is_auto:
                from repro.router import AdaptiveRouter, RoutingPolicy

                if policy is None:
                    policy = RoutingPolicy.load(
                        getattr(self.store, "spill_dir", None)
                    )
                self.router = AdaptiveRouter.from_spec(spec, policy=policy)
                # Registration and chain optimization still go through the
                # canonical MNC sketch (the store's shareable artifact);
                # only estimation requests are routed.
                self.estimator = make_estimator("mnc")
            else:
                self.estimator = spec.make()
        #: Logical name -> fingerprint for matrices registered with a name.
        self.names: Dict[str, str] = {}
        # Counter lock: services are shared across server threads, and
        # unsynchronized += would drop increments under contention.
        self._counter_lock = threading.Lock()
        self._requests = 0
        self._hits = 0
        #: Per-request estimator overrides resolve to cached sibling
        #: services sharing this one's store/memo/pool/names.
        self._derived: Dict[str, "EstimationService"] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(self, matrix: MatrixLike, name: Optional[str] = None) -> str:
        """Fingerprint *matrix* and cache its leaf synopsis eagerly.

        Returns the fingerprint; with *name* given, the mapping is kept in
        :attr:`names` so later calls can resolve the logical name.
        """
        fingerprint = fingerprint_matrix(matrix)
        if name is not None:
            self.names[name] = fingerprint
        if self._builds_canonical_sketch(self.estimator):
            self.sketch_for(matrix)
        else:
            key = self._estimator_key(self.estimator)
            if self.memo.get(fingerprint, key, "synopsis") is None:
                self.memo.put(
                    fingerprint, key, "synopsis", self.estimator.build(matrix)
                )
        return fingerprint

    def register_sketched(
        self,
        matrix: MatrixLike,
        sketch: MNCSketch,
        name: Optional[str] = None,
    ) -> str:
        """Register *matrix* with a pre-built *sketch* as its leaf synopsis.

        The distributed-ingest entry point: when shards were sketched
        remotely and merged via :mod:`repro.core.distributed`, the merged
        sketch — not a locally rebuilt one — must be what estimation sees,
        because merging drops extension vectors along the merge axis and a
        rebuild would silently answer with different (tighter) bounds than
        the distributed pipeline that produced the catalog. The sketch is
        stored under the matrix's structural fingerprint unconditionally,
        replacing any cached sketch for the same non-zero pattern.
        """
        if sketch.shape != tuple(int(d) for d in matrix.shape):
            raise SketchError(
                f"sketch shape {sketch.shape} does not match matrix shape "
                f"{tuple(matrix.shape)}"
            )
        fingerprint = fingerprint_matrix(matrix)
        if name is not None:
            self.names[name] = fingerprint
        self.store.put(fingerprint, sketch)
        count("catalog.service.register_sketched")
        return fingerprint

    def sketch_for(self, matrix: MatrixLike) -> MNCSketch:
        """The canonical MNC sketch of *matrix*, built at most once.

        Goes through the store, so repeated calls — and the chain optimizer
        wired through :func:`~repro.optimizer.mmchain.optimize_chain_matrices`
        — reuse one sketch per distinct non-zero pattern.
        """
        fingerprint = fingerprint_matrix(matrix)
        sketch = self.store.get(fingerprint)
        if sketch is None:
            sketch = MNCSketch.from_matrix(matrix)
            self.store.put(fingerprint, sketch)
        return sketch

    def resolve(self, name: str) -> str:
        """Fingerprint registered under logical *name*."""
        try:
            return self.names[name]
        except KeyError:
            raise SketchError(f"no matrix registered under name {name!r}") from None

    def apply_update(self, name: str, incremental, delta) -> str:
        """Apply a streaming *delta* to the matrix registered as *name*.

        *incremental* is the caller-owned
        :class:`~repro.core.incremental.IncrementalSketch` tracking the
        matrix's structure. The delta is applied, the logical name is
        rebound to the delta-chained fingerprint (``O(|delta|)``, no
        structural rehash), and the old fingerprint is invalidated —
        including, via the memo's dependency index, every memoized result
        derived from the old structure, while entries over untouched
        leaves survive (partial invalidation). Returns the new
        fingerprint; the patched sketch is stored under it eagerly.
        """
        from repro.core.incremental import apply_update as _apply

        old_fingerprint = self.resolve(name)
        _apply(incremental, delta)
        new_fingerprint = delta_fingerprint(old_fingerprint, delta)
        self.store.discard(old_fingerprint)
        self.memo.invalidate(fingerprint=old_fingerprint)
        self.names[name] = new_fingerprint
        if self._builds_canonical_sketch(self.estimator):
            self.store.put(new_fingerprint, incremental.sketch())
        count("catalog.service.updates")
        return new_fingerprint

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------

    def submit(self, request: ServiceRequest) -> Any:
        """Execute one :class:`ServiceRequest` — the single entry point the
        historical ``estimate`` / ``estimate_many`` / ``optimize_chain``
        methods now delegate to.

        Returns the result dict for ``"estimate"``, a list of result dicts
        for ``"estimate_many"``, and the optimizer's plan object for
        ``"optimize_chain"``.
        """
        if request.estimator is not None:
            service = self._service_for(request.estimator)
            request = replace(request, estimator=None)
            if service is not self:
                return service.submit(request)
        count(f"catalog.service.requests.{request.kind}")
        if request.kind == "estimate":
            if len(request.exprs) != 1:
                raise ReproError(
                    "an 'estimate' request carries exactly one expression; "
                    f"got {len(request.exprs)} (use ServiceRequest.batch)"
                )
            return self._estimate_one(
                request.exprs[0],
                include_intermediates=request.include_intermediates,
            )
        if request.kind == "estimate_many":
            return self._estimate_batch(request.exprs, workers=request.workers)
        if request.kind == "optimize_chain":
            from repro.optimizer.mmchain import optimize_chain_matrices

            return optimize_chain_matrices(
                request.matrices, rng=request.rng, catalog=self,
                workers=request.workers,
            )
        raise ReproError(f"unknown ServiceRequest kind {request.kind!r}")

    def _service_for(self, spec: EstimatorSpec) -> "EstimationService":
        """The service answering requests for *spec*: this one when the
        spec matches, else a cached sibling sharing store/memo/pool/names
        (so every cross-estimator cache layer stays shared)."""
        if self.spec is not None and spec == self.spec:
            return self
        derived = self._derived.get(spec.key)
        if derived is None:
            shared_policy = None
            if spec.is_auto:
                # All auto routes against one service share one policy, no
                # matter which tolerance each request asked for.
                routers = [self.router] + [
                    d.router for d in self._derived.values()
                ]
                for router in routers:
                    if router is not None:
                        shared_policy = router.policy
                        break
            derived = EstimationService(
                estimator=spec, store=self.store, memo=self.memo,
                pool=self.pool, policy=shared_policy,
            )
            derived.names = self.names
            self._derived[spec.key] = derived
        return derived

    def estimate(
        self, expr: Expr, include_intermediates: bool = False
    ) -> Dict[str, Any]:
        """Estimate the root sparsity of *expr*, reusing every cached piece.

        Returns the :func:`~repro.ir.estimate.estimate_dag` result dict plus
        ``fingerprint`` (the root's structural fingerprint) and ``cached``
        (``True`` when the root estimate itself was memoized — the warm
        path performs no synopsis work at all).
        """
        return self.submit(ServiceRequest.estimate(
            expr, include_intermediates=include_intermediates
        ))

    def _estimate_one(
        self, expr: Expr, include_intermediates: bool = False
    ) -> Dict[str, Any]:
        from repro.ir.estimate import estimate_dag

        if self.router is not None:
            return self._estimate_routed(
                expr, include_intermediates=include_intermediates
            )
        root_fingerprint = fingerprint_expr(expr)
        estimator_key = self._estimator_key(self.estimator)
        with self._counter_lock:
            self._requests += 1
        with timed_span(
            "catalog.service.estimate", estimator=estimator_key
        ) as span:
            nnz = (
                None
                if include_intermediates
                else self.memo.get(root_fingerprint, estimator_key, "nnz")
            )
            intermediates = None
            if nnz is None:
                full = estimate_dag(
                    expr,
                    self.estimator,
                    include_intermediates=include_intermediates,
                    catalog=self,
                )
                nnz = full["nnz"]
                intermediates = full.get("intermediates")
                self.memo.put(
                    root_fingerprint, estimator_key, "nnz", nnz,
                    depends_on=_leaf_fingerprints(expr),
                )
                cached = False
                count("catalog.service.miss")
            else:
                with self._counter_lock:
                    self._hits += 1
                cached = True
                count("catalog.service.hit")
            span.annotate(cached=cached, result_nnz=float(nnz))
        m, n = expr.shape
        result: Dict[str, Any] = {
            "nnz": nnz,
            "sparsity": nnz / (m * n) if m and n else 0.0,
            "seconds": span.seconds,
            "fingerprint": root_fingerprint,
            "cached": cached,
        }
        if intermediates is not None:
            result["intermediates"] = intermediates
        return result

    def _estimate_routed(
        self, expr: Expr, include_intermediates: bool = False
    ) -> Dict[str, Any]:
        """Adaptive-router analogue of the single-expression path.

        Memoizes ``(nnz, router payload)`` under the spec's canonical key
        with the ``"route"`` tag, so an ``auto`` request at one tolerance
        never answers a request at another.
        """
        root_fingerprint = fingerprint_expr(expr)
        estimator_key = self.spec.key
        with self._counter_lock:
            self._requests += 1
        with timed_span(
            "catalog.service.estimate", estimator=estimator_key
        ) as span:
            cached_value = (
                None
                if include_intermediates
                else self.memo.get(root_fingerprint, estimator_key, "route")
            )
            intermediates = None
            if cached_value is None:
                nnz, decision = self.router.route(expr, catalog=self)
                router_meta = decision.to_payload()
                self.memo.put(
                    root_fingerprint, estimator_key, "route",
                    (nnz, router_meta), depends_on=_leaf_fingerprints(expr),
                )
                cached = False
                count("catalog.service.miss")
                if include_intermediates:
                    from repro.ir.estimate import estimate_dag

                    tier_estimator = self.router.make_tier_estimator(
                        expr, decision.tier
                    )
                    full = estimate_dag(
                        expr, tier_estimator, include_intermediates=True
                    )
                    intermediates = full.get("intermediates")
            else:
                nnz, router_meta = cached_value
                with self._counter_lock:
                    self._hits += 1
                cached = True
                count("catalog.service.hit")
            span.annotate(cached=cached, result_nnz=float(nnz))
        m, n = expr.shape
        result: Dict[str, Any] = {
            "nnz": nnz,
            "sparsity": nnz / (m * n) if m and n else 0.0,
            "seconds": span.seconds,
            "fingerprint": root_fingerprint,
            "cached": cached,
            "router": dict(router_meta),
        }
        if intermediates is not None:
            result["intermediates"] = intermediates
        return result

    def estimate_many(
        self, exprs: Sequence[Expr], workers: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        """Batched :meth:`estimate`.

        Serial batches (``workers`` unset/1) reuse synopses and results
        cached by earlier expressions in the batch. With ``workers > 1``,
        uncached roots fan out to worker processes over the shared-spill
        protocol: leaf matrices and resident sketches travel once through
        the catalog directory (the store's spill dir, or a temporary one),
        each worker rebuilds its expressions against a warm-started store,
        and root results flow back into this service's memo. Workers
        estimate with independent copies of the estimator, so estimators
        that consume randomness across calls (e.g. MNC's probabilistic
        rounding) may round differently than a serial batch would — results
        are deterministic for any fixed worker count > 1.
        """
        return self.submit(ServiceRequest.batch(exprs, workers=workers))

    def _estimate_batch(
        self, exprs: Sequence[Expr], workers: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        exprs = list(exprs)
        workers = resolve_workers(workers)
        with timed_span(
            "catalog.service.batch", size=len(exprs), workers=workers
        ):
            if workers <= 1 or len(exprs) <= 1:
                return [self._estimate_one(expr) for expr in exprs]
            return self._estimate_batch_parallel(exprs, workers)

    def _estimate_batch_parallel(
        self, exprs: List[Expr], workers: int
    ) -> List[Dict[str, Any]]:
        """Fan uncached roots out to worker processes via shared spill."""
        routed = self.router is not None
        tag = "route" if routed else "nnz"
        estimator_key = (
            self.spec.key if routed else self._estimator_key(self.estimator)
        )
        results: List[Optional[Dict[str, Any]]] = [None] * len(exprs)
        pending: List[Tuple[int, Expr, str]] = []
        for i, expr in enumerate(exprs):
            fingerprint = fingerprint_expr(expr)
            value = self.memo.get(fingerprint, estimator_key, tag)
            if value is None:
                pending.append((i, expr, fingerprint))
                continue
            # Warm path: answer from the parent memo without shipping.
            with self._counter_lock:
                self._requests += 1
                self._hits += 1
            count("catalog.service.hit")
            nnz, router_meta = value if routed else (value, None)
            m, n = expr.shape
            results[i] = {
                "nnz": nnz,
                "sparsity": nnz / (m * n) if m and n else 0.0,
                "seconds": 0.0,
                "fingerprint": fingerprint,
                "cached": True,
            }
            if router_meta is not None:
                results[i]["router"] = dict(router_meta)
        if not pending:
            return [result for result in results if result is not None]
        if len(pending) == 1:
            index, expr, _ = pending[0]
            results[index] = self._estimate_one(expr)
            return [result for result in results if result is not None]

        directory = self.store.spill_dir
        cleanup = None
        if directory is None:
            cleanup = tempfile.TemporaryDirectory(prefix="repro-spill-")
            directory = cleanup.name
        try:
            # Resident sketches travel to workers through the directory
            # (store.persist is a no-op for non-sketch estimators' services,
            # whose state lives in the memo instead).
            if len(self.store):
                self.store.persist(directory)
            portables = [
                (spill_dag(expr, directory), fingerprint)
                for _, expr, fingerprint in pending
            ]
            if routed:
                # Workers route against the frozen policy snapshot this
                # service would use, so parallel and serial batches take
                # bit-identical routes.
                shipped: Any = (
                    _AUTO_TASK, self.spec, self.router.policy.snapshot()
                )
            else:
                shipped = self.estimator
            tasks = [
                (shipped, str(directory), portable)
                for portable, _ in portables
            ]
            task_results = run_tasks(
                _estimate_worker, tasks, workers=workers,
                label="catalog.service.fanout", pool=self.pool,
            )
            for (index, expr, fingerprint), outcome in zip(pending, task_results):
                if not outcome.ok:
                    # Worker died: recover deterministically in-process
                    # (_estimate_one does its own counting and memoization).
                    count("catalog.service.fanout_retries")
                    results[index] = self._estimate_one(expr)
                    continue
                with self._counter_lock:
                    self._requests += 1
                count("catalog.service.miss")
                result = dict(outcome.value)
                value = (
                    (result["nnz"], result["router"]) if routed
                    else result["nnz"]
                )
                self.memo.put(
                    fingerprint, estimator_key, tag, value,
                    depends_on=_leaf_fingerprints(expr),
                )
                results[index] = result
        finally:
            if cleanup is not None:
                cleanup.cleanup()
        return [result for result in results if result is not None]

    def optimize_chain(self, matrices: Sequence[MatrixLike], rng=None,
                       workers: Optional[int] = None):
        """Sparsity-aware chain optimization over catalog-cached sketches."""
        return self.submit(ServiceRequest.chain(
            matrices, rng=rng, workers=workers
        ))

    # ------------------------------------------------------------------
    # Catalog protocol (used by repro.ir.estimate during DAG walks)
    # ------------------------------------------------------------------

    def node_synopsis_get(
        self, fingerprint: str, node: Expr, estimator: SparsityEstimator
    ) -> Optional[Synopsis]:
        """Cached synopsis for a DAG node, or ``None``."""
        key = self._estimator_key(estimator)
        synopsis = self.memo.get(fingerprint, key, "synopsis")
        if synopsis is not None:
            return synopsis
        if node.op is Op.LEAF and self._builds_canonical_sketch(estimator):
            sketch = self.store.get(fingerprint)
            if sketch is not None:
                return MNCSynopsis(sketch)
        return None

    def node_synopsis_put(
        self,
        fingerprint: str,
        node: Expr,
        estimator: SparsityEstimator,
        synopsis: Synopsis,
    ) -> None:
        """Cache a freshly built/propagated synopsis for a DAG node.

        Canonical leaf sketches go to the byte-budgeted store (persistable,
        spillable); everything else — propagated synopses and non-MNC leaf
        synopses — goes to the entry-bounded memo.
        """
        if (
            node.op is Op.LEAF
            and self._builds_canonical_sketch(estimator)
            and isinstance(synopsis, MNCSynopsis)
        ):
            self.store.put(fingerprint, synopsis.sketch)
            return
        self.memo.put(
            fingerprint, self._estimator_key(estimator), "synopsis", synopsis,
            depends_on=(
                _leaf_fingerprints(node) if node.op is not Op.LEAF else None
            ),
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def warm(self, directory) -> List[str]:
        """Warm-start the store from a catalog directory of sketch files.

        A routing policy persisted alongside the sketches
        (``routing_policy.json``) is folded into the active router's
        policy, so routing keeps improving across sessions.
        """
        loaded = self.store.warm_start(directory)
        router = self._router()
        if router is not None:
            from repro.router import RoutingPolicy

            persisted = RoutingPolicy.load(str(directory))
            if persisted is not None:
                router.policy.merge(persisted)
        return loaded

    def persist(self, directory=None) -> int:
        """Write resident sketches out as a catalog directory (plus the
        routing policy, when this service routes). Returns the number of
        sketches written."""
        written = self.store.persist(directory)
        router = self._router()
        if router is not None:
            target = directory if directory is not None else getattr(
                self.store, "spill_dir", None
            )
            if target is not None:
                router.policy.save(str(target))
        return written

    def _router(self):
        """The active router: this service's, or the first derived one."""
        if self.router is not None:
            return self.router
        for derived in self._derived.values():
            if derived.router is not None:
                return derived.router
        return None

    def invalidate(self, target: Union[str, MatrixLike]) -> None:
        """Forget everything cached for a matrix, fingerprint, or name."""
        if isinstance(target, str):
            fingerprint = self.names.get(target, target)
        else:
            fingerprint = fingerprint_matrix(target)
        self.store.discard(fingerprint)
        self.memo.invalidate(fingerprint=fingerprint)

    def clear(self) -> None:
        """Drop all cached sketches and results (names are kept)."""
        self.store.clear()
        self.memo.clear()

    def stats(self) -> Dict[str, Any]:
        """Combined service/store/memo cache-effectiveness counters.

        Requests answered by derived (per-request estimator) siblings are
        folded in; a ``router`` section appears whenever adaptive routing
        is active on this service or any sibling.
        """
        requests = self._requests + sum(
            d._requests for d in self._derived.values()
        )
        hits = self._hits + sum(d._hits for d in self._derived.values())
        payload: Dict[str, Any] = {
            "service": {
                "requests": requests,
                "hits": hits,
                "hit_rate": hits / requests if requests else 0.0,
            },
            "store": self.store.stats().as_dict(),
            "memo": self.memo.stats(),
        }
        router = self._router()
        if router is not None:
            payload["router"] = router.describe()
        return payload

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @staticmethod
    def _estimator_key(estimator: SparsityEstimator) -> str:
        return estimator.name

    @staticmethod
    def _builds_canonical_sketch(estimator: SparsityEstimator) -> bool:
        """Whether *estimator* builds the full-extension MNC leaf sketch the
        store treats as the canonical shareable artifact."""
        inner = unwrap_estimator(estimator)
        return isinstance(inner, MNCEstimator) and getattr(
            inner, "use_extensions", False
        )


def _leaf_fingerprints(expr: Expr) -> Tuple[str, ...]:
    """Distinct leaf fingerprints under *expr*, in first-visit order.

    The memo's ``depends_on`` payload: a streaming delta to any one of
    these leaves invalidates exactly the results derived from it. Cheap on
    the hot path — every per-node digest is already memoized on the Expr
    objects by :func:`fingerprint_dag`.
    """
    fingerprints = fingerprint_dag(expr)
    return tuple(
        dict.fromkeys(fingerprints[id(leaf)] for leaf in expr.leaves())
    )


#: Sentinel heading the shipped-estimator tuple for routed fan-out tasks.
_AUTO_TASK = "__auto__"


def _estimate_worker(
    task: Tuple[Any, str, PortableDag]
) -> Dict[str, Any]:
    """Worker entry point for the parallel ``estimate_many`` path.

    Rebuilds one spilled expression against a store warm-started from the
    shared catalog directory, estimates it with a private service, and
    returns the plain result dict. Routed tasks ship
    ``(_AUTO_TASK, spec, policy snapshot)`` in the estimator slot; the
    worker routes against that frozen snapshot, never its own ledger, so
    its route matches what the parent would have taken serially.
    """
    estimator, directory, portable = task
    store = SketchStore(spill_dir=directory)
    store.warm_start(directory)
    if isinstance(estimator, tuple) and estimator and estimator[0] == _AUTO_TASK:
        from repro.router import RoutingPolicy

        _, spec, policy_snapshot = estimator
        service = EstimationService(
            estimator=spec, store=store,
            policy=RoutingPolicy.from_snapshot(policy_snapshot),
        )
    else:
        service = EstimationService(estimator=estimator, store=store)
    expr = load_dag(portable, directory)
    return service._estimate_one(expr)
