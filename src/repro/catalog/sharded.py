"""Fingerprint-sharded sketch store for concurrent (serving) workloads.

One :class:`~repro.catalog.store.SketchStore` guards everything with a
single lock — correct, but a multi-tenant server answering many concurrent
requests serializes every cache touch through it. :class:`ShardedSketchStore`
keeps the same interface while partitioning the keyspace by **fingerprint
prefix** across N independent stores:

- each shard has its own lock and its own slice of the byte budget, so
  touches on different shards never contend;
- fingerprints are uniform hex digests (blake2b,
  :mod:`repro.catalog.fingerprint`), so prefix routing balances shards
  without any placement bookkeeping — the :class:`ShardRouter` is a pure
  function of the key;
- an optional **TTL tier** sits above the per-shard LRU: entries idle
  longer than ``ttl_seconds`` are demoted to the disk tier (spill) on the
  next touch of their shard, so a long-running server's memory tracks its
  *current* working set while cold sketches stay one disk hit away;
- ``warm_start`` scans the catalog directory once, routes files to their
  shards, and loads shards **concurrently** (one thread each), tolerating
  corrupt or concurrently-deleted files exactly like the flat store.

All shards may share one spill directory: keys are content fingerprints,
so distinct shards never write the same file, and the on-disk layout stays
the flat ``<fingerprint>.npz`` catalog every other tool
(``repro catalog``, :meth:`SketchStore.warm_start`, the parallel engine's
shared-spill protocol) already understands.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.catalog.store import (
    DEFAULT_BUDGET_BYTES,
    SketchStore,
    StoreStats,
    load_sketch_or_none,
)
from repro.core.sketch import MNCSketch
from repro.errors import SketchError
from repro.observability.trace import count

#: Default shard count: enough to make lock contention negligible for a
#: few dozen concurrent request threads, few enough that per-shard budgets
#: stay useful.
DEFAULT_NUM_SHARDS = 8


class ShardRouter:
    """Pure prefix-of-fingerprint shard routing.

    Keys are hex fingerprints; the first ``prefix_len`` hex characters are
    interpreted as an integer and reduced modulo the shard count. Non-hex
    keys (legacy or test keys) fall back to a stable string hash, so
    routing is total — every key maps to exactly one shard, always the
    same one.
    """

    def __init__(self, num_shards: int, prefix_len: int = 8):
        if num_shards < 1:
            raise SketchError(f"num_shards must be positive, got {num_shards}")
        if prefix_len < 1:
            raise SketchError(f"prefix_len must be positive, got {prefix_len}")
        self.num_shards = int(num_shards)
        self.prefix_len = int(prefix_len)

    def shard_for(self, key: str) -> int:
        """The shard index owning *key* (deterministic, uniform for hex)."""
        prefix = key[: self.prefix_len]
        try:
            value = int(prefix, 16)
        except ValueError:
            # Stable non-hex fallback (hash() is salted per process).
            value = sum((i + 1) * b for i, b in enumerate(prefix.encode()))
        return value % self.num_shards


class ShardedSketchStore:
    """Drop-in :class:`SketchStore` replacement partitioned across shards.

    Args:
        num_shards: independent sub-stores (locks + budget slices).
        budget_bytes: *total* in-memory ceiling, split evenly per shard.
        spill_dir: shared spill/catalog directory (flat layout, see module
            docstring); ``None`` disables persistence.
        ttl_seconds: idle lifetime of a resident entry; ``None`` disables
            the TTL tier. Expired entries demote to the disk tier lazily,
            on the next operation that touches their shard (plus
            explicitly via :meth:`evict_expired`).
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        num_shards: int = DEFAULT_NUM_SHARDS,
        budget_bytes: int = DEFAULT_BUDGET_BYTES,
        spill_dir: Optional[str | Path] = None,
        ttl_seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if budget_bytes <= 0:
            raise SketchError(f"budget_bytes must be positive, got {budget_bytes}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise SketchError(f"ttl_seconds must be positive, got {ttl_seconds}")
        self.router = ShardRouter(num_shards)
        self.budget_bytes = int(budget_bytes)
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        per_shard = max(1, self.budget_bytes // num_shards)
        self._shards: List[SketchStore] = [
            SketchStore(budget_bytes=per_shard, spill_dir=self.spill_dir)
            for _ in range(num_shards)
        ]
        #: Per-shard last-touch timestamps, guarded by the shard's own lock.
        self._touched: List[Dict[str, float]] = [{} for _ in range(num_shards)]
        self._ttl_evictions = 0

    @property
    def num_shards(self) -> int:
        return self.router.num_shards

    # ------------------------------------------------------------------
    # Core cache protocol (SketchStore-compatible)
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[MNCSketch]:
        """The sketch under *key* (memory or disk tier), or ``None``."""
        index = self.router.shard_for(key)
        self._sweep_shard(index)
        with self._shards[index]._lock:
            sketch = self._shards[index].get(key)
            if sketch is not None:
                self._touch(index, key)
        return sketch

    def put(self, key: str, sketch: MNCSketch) -> None:
        """Insert/refresh *sketch* in its shard, under that shard's budget."""
        index = self.router.shard_for(key)
        self._sweep_shard(index)
        with self._shards[index]._lock:
            self._shards[index].put(key, sketch)
            self._touch(index, key)

    def __contains__(self, key: str) -> bool:
        return key in self._shards[self.router.shard_for(key)]

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def keys(self) -> List[str]:
        """Resident fingerprints across all shards (shard-major order)."""
        keys: List[str] = []
        for shard in self._shards:
            keys.extend(shard.keys())
        return keys

    @property
    def bytes_used(self) -> int:
        return sum(shard.bytes_used for shard in self._shards)

    def discard(self, key: str, remove_spill: bool = True) -> bool:
        index = self.router.shard_for(key)
        with self._shards[index]._lock:
            self._touched[index].pop(key, None)
        return self._shards[index].discard(key, remove_spill=remove_spill)

    def clear(self, remove_spill: bool = False) -> None:
        for index, shard in enumerate(self._shards):
            with shard._lock:
                self._touched[index].clear()
            shard.clear(remove_spill=remove_spill)

    def stats(self) -> StoreStats:
        """Aggregated counters across every shard (budgets/bytes sum)."""
        merged = self._shards[0].stats()
        for shard in self._shards[1:]:
            merged = merged.merge(shard.stats())
        return merged

    def shard_stats(self) -> List[StoreStats]:
        """Per-shard counters, in shard order (balance introspection)."""
        return [shard.stats() for shard in self._shards]

    @property
    def ttl_evictions(self) -> int:
        """Entries demoted to the disk tier by TTL expiry so far."""
        return self._ttl_evictions

    # ------------------------------------------------------------------
    # TTL tier
    # ------------------------------------------------------------------

    def evict_expired(self) -> int:
        """Demote every expired entry now; returns the eviction count."""
        return sum(self._sweep_shard(i, force=True) for i in range(self.num_shards))

    def _touch(self, index: int, key: str) -> None:
        if self.ttl_seconds is None:
            return
        with self._shards[index]._lock:
            self._touched[index][key] = self._clock()

    def _sweep_shard(self, index: int, force: bool = False) -> int:
        if self.ttl_seconds is None:
            return 0
        shard = self._shards[index]
        touched = self._touched[index]
        deadline = self._clock() - self.ttl_seconds
        with shard._lock:
            expired = [
                key for key, stamp in touched.items() if stamp <= deadline
            ]
        demoted = 0
        for key in expired:
            # Re-validate and demote atomically: a put/get/warm_start that
            # re-touched the key after collection wins, keeping the fresh
            # entry resident. The timestamp is dropped only at the moment
            # of demotion, inside the same critical section — previously
            # the timestamp was removed first and demote() ran unlocked,
            # so a warm start landing in that window had its just-loaded
            # sketch demoted straight back to disk (shard._lock is an
            # RLock, so nesting demote() under it is safe).
            with shard._lock:
                stamp = touched.get(key)
                if stamp is None or stamp > deadline:
                    continue
                del touched[key]
                if shard.demote(key):
                    demoted += 1
                    self._ttl_evictions += 1
        if demoted:
            count("catalog.store.ttl_eviction", demoted)
        return demoted

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def warm_start(
        self, directory: str | Path, workers: Optional[int] = None
    ) -> List[str]:
        """Bulk-load a catalog directory, shards loading concurrently.

        The directory is scanned once; each file routes to its owning
        shard, and shards load their slices in parallel threads (the work
        is numpy I/O and validation, which release the GIL enough for real
        overlap). Unreadable files are skipped and counted exactly like
        :meth:`SketchStore.warm_start`. Returns loaded keys in sorted
        filename order, matching the flat store's contract.
        """
        source = Path(directory)
        if not source.is_dir():
            raise SketchError(f"catalog directory {source} does not exist")
        paths = sorted(source.glob("*.npz"))
        groups: Dict[int, List[Path]] = {}
        for path in paths:
            groups.setdefault(self.router.shard_for(path.stem), []).append(path)

        def load_group(index: int, group: List[Path]) -> List[str]:
            shard = self._shards[index]
            loaded: List[str] = []
            for path in group:
                sketch = load_sketch_or_none(path)
                if sketch is None:
                    shard.note_warm_skipped()
                    continue
                # put + touch must be one critical section: a TTL sweep
                # interleaving between them would see the entry resident
                # with only a stale (or missing) timestamp.
                with shard._lock:
                    shard.put(path.stem, sketch)
                    self._touch(index, path.stem)
                loaded.append(path.stem)
            return loaded

        if not groups:
            return []
        max_workers = min(
            len(groups), workers if workers is not None else self.num_shards
        )
        if max_workers <= 1:
            results = [load_group(i, group) for i, group in groups.items()]
        else:
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                futures = [
                    pool.submit(load_group, index, group)
                    for index, group in groups.items()
                ]
                results = [future.result() for future in futures]
        loaded = sorted(key for group in results for key in group)
        count("catalog.store.warm_start", len(loaded))
        return loaded

    def persist(self, directory: Optional[str | Path] = None) -> int:
        """Write every resident sketch out; returns the file count."""
        target = Path(directory) if directory is not None else self.spill_dir
        if target is None:
            raise SketchError("persist() needs a directory or a spill_dir")
        return sum(shard.persist(target) for shard in self._shards)
