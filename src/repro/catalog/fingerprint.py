"""Stable structural fingerprints for matrices, sketches, and DAG nodes.

A fingerprint is a short hex digest of the *structure* an estimator sees:
matrix shape plus the CSR index arrays (cell values are irrelevant to
structural sparsity estimation and are deliberately excluded), sketch count
vectors plus flags, and — recursively — expression DAGs (operation, sorted
parameters, child fingerprints in order). Two matrices with the same
non-zero pattern fingerprint identically, as do two independently rebuilt
but structurally identical expressions; this is what lets the catalog
(:mod:`repro.catalog.store`, :mod:`repro.catalog.memo`) reuse sketches and
estimates across requests, processes, and expression rebuilds.

Stability guarantees (see ``docs/CATALOG.md``):

- fingerprints depend only on shape and non-zero *positions* (inputs are
  canonicalized through :func:`~repro.matrix.conversion.as_csr` first, so
  explicit zeros and duplicate entries never perturb the digest);
- leaf expression nodes fingerprint identically to their wrapped matrix,
  so a matrix registered directly and one wrapped via ``leaf()`` share
  catalog entries;
- node ``name`` labels are cosmetic and excluded; operation parameters
  (e.g. reshape dimensions) are included in sorted key order;
- digests are versioned: any change to the scheme bumps
  :data:`FINGERPRINT_VERSION`, which is mixed into every digest, so stale
  on-disk catalogs can never alias new-scheme keys.

Fingerprints of :class:`~repro.ir.nodes.Expr` objects and of sparse
matrices are memoized weakly on the object, so repeated fingerprinting of a
long-lived DAG (the service's hot path) costs one dictionary lookup.
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from typing import Dict, MutableMapping, Optional

import numpy as np

from repro.matrix.conversion import MatrixLike, as_csr
from repro.opcodes import Op

#: Scheme version, mixed into every digest. Bump on any format change.
FINGERPRINT_VERSION = 1

#: Digest size in bytes; 20 bytes (40 hex chars) matches git-style ids.
_DIGEST_SIZE = 20

_LOCK = threading.Lock()
# Weak per-object memos: entries die with the fingerprinted object, so a
# recycled id() can never alias a stale digest (same reasoning as the old
# runner truth cache). Expr nodes are hashable-by-identity and weakly
# referenceable, so a WeakKeyDictionary works directly; sparse matrices are
# *unhashable* (element-wise ``__eq__``), so their memo is keyed by ``id``
# with a weakref callback evicting the entry when the matrix dies — the
# identity check on read makes a recycled id harmless even for objects
# that reject weak references (those simply never enter the memo).
_EXPR_MEMO: MutableMapping[object, str] = weakref.WeakKeyDictionary()
_MATRIX_MEMO: Dict[int, tuple] = {}


def _matrix_memo_get(matrix: object) -> Optional[str]:
    with _LOCK:
        entry = _MATRIX_MEMO.get(id(matrix))
    if entry is None:
        return None
    ref, fingerprint = entry
    return fingerprint if ref() is matrix else None


def _matrix_memo_put(matrix: object, fingerprint: str) -> None:
    key = id(matrix)
    try:
        ref = weakref.ref(
            matrix, lambda _, key=key: _MATRIX_MEMO.pop(key, None)
        )
    except TypeError:  # object does not support weak references
        return
    with _LOCK:
        _MATRIX_MEMO[key] = (ref, fingerprint)


def _hasher() -> "hashlib.blake2b":
    return hashlib.blake2b(
        digest_size=_DIGEST_SIZE, person=b"repro-catalog"
    )


def _digest(kind: str, *chunks: bytes) -> str:
    hasher = _hasher()
    hasher.update(f"v{FINGERPRINT_VERSION}:{kind}".encode())
    for chunk in chunks:
        # Length-prefix every chunk so concatenations cannot collide.
        hasher.update(len(chunk).to_bytes(8, "little"))
        hasher.update(chunk)
    return hasher.hexdigest()


def _array_bytes(array: Optional[np.ndarray]) -> bytes:
    """Canonical byte view of an index/count vector (``None`` -> marker)."""
    if array is None:
        return b"\xff:absent"
    return np.ascontiguousarray(array, dtype=np.int64).tobytes()


def _memo_get(memo: MutableMapping[object, str], key: object) -> Optional[str]:
    try:
        with _LOCK:
            return memo.get(key)
    except TypeError:  # object does not support weak references
        return None


def _memo_put(memo: MutableMapping[object, str], key: object, value: str) -> None:
    try:
        with _LOCK:
            memo[key] = value
    except TypeError:
        pass


def fingerprint_matrix(matrix: MatrixLike) -> str:
    """Structural fingerprint of a matrix: shape + CSR indptr/indices.

    Values are ignored; the digest identifies the non-zero *pattern*, which
    is the only thing sketches and estimators consume.
    """
    cached = _matrix_memo_get(matrix)
    if cached is not None:
        return cached
    csr = as_csr(matrix)
    fingerprint = _digest(
        "matrix",
        _array_bytes(np.asarray(csr.shape, dtype=np.int64)),
        _array_bytes(csr.indptr),
        _array_bytes(csr.indices),
    )
    _matrix_memo_put(matrix, fingerprint)
    if matrix is not csr:
        _matrix_memo_put(csr, fingerprint)
    return fingerprint


def assign_fingerprint(matrix: object, fingerprint: str) -> None:
    """Seed the weak matrix memo with a precomputed *fingerprint*.

    The streaming path knows a mutated matrix's fingerprint in ``O(delta)``
    via :func:`delta_fingerprint` chaining; assigning it here lets
    :func:`fingerprint_matrix` (and therefore leaf/DAG fingerprinting over
    the rematerialized matrix) resolve without an ``O(nnz)`` rehash.
    """
    _matrix_memo_put(matrix, fingerprint)


def fingerprint_delta(delta) -> str:
    """Canonical fingerprint of one incremental update (content only).

    Covers the delta kind and its full payload — patterns, positions,
    block origin and pattern bytes — so two deltas fingerprint identically
    iff they describe the same structural change.
    """
    # Imported lazily: repro.core.incremental pulls in scipy/sketch
    # machinery the fingerprint module does not otherwise need.
    from repro.core.incremental import (
        AppendCols,
        AppendRows,
        BlockUpdate,
        DeleteCols,
        DeleteRows,
    )

    if isinstance(delta, (AppendRows, AppendCols)):
        kind = "append_rows" if isinstance(delta, AppendRows) else "append_cols"
        return _digest(
            f"delta:{kind}", *(_array_bytes(p) for p in delta.patterns)
        )
    if isinstance(delta, (DeleteRows, DeleteCols)):
        kind = "delete_rows" if isinstance(delta, DeleteRows) else "delete_cols"
        return _digest(f"delta:{kind}", _array_bytes(delta.positions))
    if isinstance(delta, BlockUpdate):
        origin = np.asarray(
            [delta.row_start, delta.col_start, *delta.pattern.shape],
            dtype=np.int64,
        )
        return _digest(
            "delta:block",
            _array_bytes(origin),
            np.ascontiguousarray(delta.pattern, dtype=np.uint8).tobytes(),
        )
    raise TypeError(f"cannot fingerprint delta of type {type(delta).__name__}")


def delta_fingerprint(base_fingerprint: str, delta) -> str:
    """Chain a delta onto a matrix fingerprint in ``O(|delta|)``.

    ``delta_fingerprint(fp(A), d)`` identifies "the matrix obtained by
    applying ``d`` to the matrix fingerprinted ``fp(A)``" without touching
    the ``O(nnz)`` structure. Chaining preserves the catalog's soundness
    guarantee (equal fingerprints imply equal structure, because the chain
    pins base structure and the exact edit); it deliberately does *not*
    promise the converse — the same structure reached through a different
    edit history (or sketched fresh) gets a different digest and merely
    misses caches. See docs/STREAMING.md.
    """
    return _digest(
        "delta-chain",
        base_fingerprint.encode(),
        fingerprint_delta(delta).encode(),
    )


def fingerprint_sketch(sketch) -> str:
    """Fingerprint of an :class:`~repro.core.sketch.MNCSketch`.

    Covers shape, both count vectors, both extension vectors (presence and
    contents), and the two flags — everything serialization round-trips.
    """
    flags = np.array(
        [int(sketch.fully_diagonal), int(sketch.exact)], dtype=np.int64
    )
    return _digest(
        "sketch",
        _array_bytes(np.asarray(sketch.shape, dtype=np.int64)),
        _array_bytes(sketch.hr),
        _array_bytes(sketch.hc),
        _array_bytes(sketch.her),
        _array_bytes(sketch.hec),
        _array_bytes(flags),
    )


def _params_bytes(params: Dict[str, object]) -> bytes:
    if not params:
        return b""
    return repr(sorted(params.items())).encode()


def fingerprint_dag(root) -> Dict[int, str]:
    """Fingerprint every node of an expression DAG.

    Returns ``id(node) -> fingerprint`` for each distinct node reachable
    from *root* (the mapping the DAG estimator uses to key per-node catalog
    lookups). Leaves fingerprint as their matrix; inner nodes as
    ``(op, params, child fingerprints)`` — structurally identical DAGs built
    from different objects produce identical fingerprints.
    """
    fingerprints: Dict[int, str] = {}
    for node in root.postorder():
        cached = _memo_get(_EXPR_MEMO, node)
        if cached is not None:
            fingerprints[id(node)] = cached
            continue
        if node.op is Op.LEAF:
            fingerprint = fingerprint_matrix(node.matrix)
        else:
            children = b"".join(
                fingerprints[id(child)].encode() for child in node.inputs
            )
            fingerprint = _digest(
                "expr", node.op.value.encode(), _params_bytes(node.params), children
            )
        fingerprints[id(node)] = fingerprint
        _memo_put(_EXPR_MEMO, node, fingerprint)
    return fingerprints


def fingerprint_expr(root) -> str:
    """Fingerprint of a single expression DAG root (see :func:`fingerprint_dag`)."""
    cached = _memo_get(_EXPR_MEMO, root)
    if cached is not None:
        return cached
    return fingerprint_dag(root)[id(root)]
