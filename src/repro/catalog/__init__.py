"""Sketch catalog: content-addressed, memoized estimation serving.

The paper positions the MNC sketch as a cheap synopsis computed *once*
(possibly distributed, Section 3.1) and consulted *many times* during
optimization. This subsystem turns that into a serving-shaped architecture:

- :mod:`repro.catalog.fingerprint` — stable structural fingerprints for
  matrices, sketches, and expression DAG nodes (content hash over shape +
  index digests, recursive over DAG structure);
- :mod:`repro.catalog.store` — a thread-safe, byte-budgeted LRU
  :class:`SketchStore` with optional ``.npz`` disk spill, warm start, and
  persistence built on :mod:`repro.core.serialize`;
- :mod:`repro.catalog.sharded` — :class:`ShardedSketchStore`, the same
  store interface partitioned by fingerprint prefix across independently
  locked shards with per-shard budgets, a TTL demotion tier, and
  concurrent warm start — the serving tier's store;
- :mod:`repro.catalog.memo` — :class:`EstimateMemo`, memoized estimation
  results keyed on ``(fingerprint, estimator, tag)`` with explicit
  invalidation;
- :mod:`repro.catalog.service` — :class:`EstimationService`, the facade:
  register matrices once, answer single and batched ``estimate(expr)``
  requests, reuse cached sketches and estimates across requests.

Integration points: :func:`repro.ir.estimate.estimate_dag` accepts a
``catalog`` and skips re-estimating shared sub-DAGs,
:func:`repro.optimizer.mmchain.optimize_chain_matrices` draws its leaf
sketches from the catalog, the CLI's ``catalog`` subcommand manages on-disk
catalogs, and every hit/miss/eviction/spill is mirrored onto the
observability counters (``catalog.*``) so ``repro stats`` reports cache
effectiveness. See ``docs/CATALOG.md``.
"""

from repro.catalog.fingerprint import (
    FINGERPRINT_VERSION,
    assign_fingerprint,
    delta_fingerprint,
    fingerprint_dag,
    fingerprint_delta,
    fingerprint_expr,
    fingerprint_matrix,
    fingerprint_sketch,
)
from repro.catalog.memo import EstimateMemo
from repro.catalog.service import EstimationService, ServiceRequest
from repro.catalog.sharded import ShardedSketchStore, ShardRouter
from repro.catalog.store import DEFAULT_BUDGET_BYTES, SketchStore, StoreStats

__all__ = [
    "DEFAULT_BUDGET_BYTES",
    "EstimateMemo",
    "EstimationService",
    "ServiceRequest",
    "FINGERPRINT_VERSION",
    "ShardRouter",
    "ShardedSketchStore",
    "SketchStore",
    "StoreStats",
    "assign_fingerprint",
    "delta_fingerprint",
    "fingerprint_dag",
    "fingerprint_delta",
    "fingerprint_expr",
    "fingerprint_matrix",
    "fingerprint_sketch",
]
