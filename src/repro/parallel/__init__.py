"""Parallel estimation engine: process-pool fan-out with a serial core.

``repro.parallel`` turns the independent units of work this repository
already has — (use case x estimator) cells in the SparsEst runner, fuzz
chunks in :mod:`repro.verify`, per-root requests in
:class:`~repro.catalog.service.EstimationService`, leaf sketching in the
mm-chain optimizer — into picklable tasks executed across worker
processes, while keeping ``workers=1`` (the default) byte-for-byte
identical to the pre-parallel code paths.

Three pieces:

- :mod:`repro.parallel.engine` — ``run_tasks``/``map_values``: ordered
  fan-out with crash isolation and per-worker trace capture, merged back
  into the parent collector in task order.
- :mod:`repro.parallel.spill` — the shared-npz leaf spill protocol:
  DAGs travel to workers as fingerprint skeletons, leaf matrices travel
  once through the catalog directory.
- ``$REPRO_WORKERS`` — the ambient default worker count, read by
  :func:`resolve_workers` wherever a ``workers`` argument is left unset.

See ``docs/PARALLEL.md`` for the full design.
"""

from repro.parallel.engine import (
    WORKERS_ENV,
    TaskFailure,
    TaskResult,
    WorkerPool,
    map_values,
    resolve_workers,
    run_tasks,
)
from repro.parallel.spill import PortableDag, PortableNode, load_dag, spill_dag

__all__ = [
    "PortableDag",
    "PortableNode",
    "TaskFailure",
    "TaskResult",
    "WORKERS_ENV",
    "WorkerPool",
    "load_dag",
    "map_values",
    "resolve_workers",
    "run_tasks",
    "spill_dag",
]
