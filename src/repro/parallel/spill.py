"""Shared-npz leaf spill: ship expression DAGs to workers without
pickling CSR payloads per task.

An :class:`~repro.ir.nodes.Expr` over concrete matrices can be megabytes;
fanning a batch of such DAGs out to a process pool by pickling them per
task would serialize the same leaf matrices once per request. Instead the
parent *spills* each distinct leaf once — keyed by its structural
fingerprint — into a ``leaves/`` subdirectory of the catalog's sketch
spill directory, and sends workers a :class:`PortableDag`: a compact,
picklable skeleton of opcodes, parameters, and leaf fingerprints.

Workers rebuild the DAG by loading leaves from the shared directory
(warm across tasks thanks to the OS page cache) and warm-start their
:class:`~repro.catalog.store.SketchStore` from the same directory, so a
leaf whose sketch the parent already computed is never re-sketched.

The ``leaves/`` subdirectory keeps matrix files out of the store's
``*.npz`` sketch namespace — ``SketchStore.warm_start`` globs the catalog
root and must only ever see sketch files there.

Writes are atomic (temp file + ``os.replace``), so concurrent workers
spilling the same fingerprint — two requests sharing a leaf — can never
interleave into a corrupt file.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import scipy.sparse as sp

from repro.errors import ReproError
from repro.ir.nodes import Expr
from repro.matrix.io import load_matrix, save_matrix
from repro.opcodes import Op

#: Subdirectory (under a catalog/spill directory) holding spilled leaves.
LEAF_SUBDIR = "leaves"


@dataclass(frozen=True)
class PortableNode:
    """One node of a spilled DAG, referencing children by table index."""

    op: str
    children: Tuple[int, ...] = ()
    params: Tuple[Tuple[str, object], ...] = ()
    leaf_key: Optional[str] = None  #: leaf fingerprint (LEAF nodes only)
    name: Optional[str] = None


@dataclass(frozen=True)
class PortableDag:
    """Picklable skeleton of an expression DAG.

    Nodes are stored in post-order (children before parents; the root is
    last), so :func:`load_dag` can rebuild the DAG in one forward pass
    while preserving shared sub-expressions exactly.
    """

    nodes: Tuple[PortableNode, ...]

    @property
    def leaf_keys(self) -> List[str]:
        return [n.leaf_key for n in self.nodes if n.leaf_key is not None]


def leaf_dir(directory: str | Path) -> Path:
    """The leaf-spill subdirectory under a catalog *directory*."""
    return Path(directory) / LEAF_SUBDIR


def _atomic_save(path: Path, matrix: sp.csr_array) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    handle, temp = tempfile.mkstemp(
        dir=path.parent, prefix=path.stem, suffix=".tmp.npz"
    )
    os.close(handle)
    try:
        save_matrix(temp, matrix)
        os.replace(temp, path)
    except BaseException:
        Path(temp).unlink(missing_ok=True)
        raise


def spill_dag(root: Expr, directory: str | Path) -> PortableDag:
    """Spill *root*'s leaves under *directory* and return its skeleton.

    Each distinct leaf matrix is written once as
    ``leaves/<fingerprint>.npz``; leaves already present (from an earlier
    request in the batch, or a previous run against the same catalog) are
    not rewritten.
    """
    # Imported here, not at module level: repro.catalog itself builds on
    # this package (the service's parallel batch path), so the fingerprint
    # helper must resolve lazily to keep the import graph acyclic.
    from repro.catalog.fingerprint import fingerprint_matrix

    target = leaf_dir(directory)
    index: Dict[int, int] = {}
    nodes: List[PortableNode] = []
    for node in root.postorder():
        children = tuple(index[id(child)] for child in node.inputs)
        leaf_key = None
        if node.op is Op.LEAF:
            leaf_key = fingerprint_matrix(node.matrix)
            path = target / f"{leaf_key}.npz"
            if not path.exists():
                _atomic_save(path, node.matrix)
        index[id(node)] = len(nodes)
        nodes.append(PortableNode(
            op=node.op.value,
            children=children,
            params=tuple(sorted(node.params.items())),
            leaf_key=leaf_key,
            name=node.name,
        ))
    return PortableDag(nodes=tuple(nodes))


def load_dag(
    portable: PortableDag,
    directory: str | Path,
    _cache: Optional[Dict[str, sp.csr_array]] = None,
) -> Expr:
    """Rebuild the expression a :func:`spill_dag` call described.

    Args:
        portable: the DAG skeleton.
        directory: the catalog directory the parent spilled into.
        _cache: optional fingerprint -> matrix cache shared across calls
            (a worker handling several requests loads each leaf once).
    """
    source = leaf_dir(directory)
    cache: Dict[str, sp.csr_array] = _cache if _cache is not None else {}
    rebuilt: List[Expr] = []
    for node in portable.nodes:
        if node.leaf_key is not None:
            matrix = cache.get(node.leaf_key)
            if matrix is None:
                path = source / f"{node.leaf_key}.npz"
                if not path.exists():
                    raise ReproError(
                        f"spilled leaf {node.leaf_key[:16]} missing from {source}"
                    )
                matrix = load_matrix(path)
                cache[node.leaf_key] = matrix
            rebuilt.append(Expr(Op.LEAF, matrix=matrix, name=node.name))
            continue
        children = tuple(rebuilt[i] for i in node.children)
        rebuilt.append(Expr(
            Op(node.op), children, params=dict(node.params), name=node.name
        ))
    return rebuilt[-1]
