"""Process-pool execution engine for independent estimation work.

The engine fans *tasks* — small, picklable, self-describing work items —
out to a ``ProcessPoolExecutor`` and collects results **in task order**, so
a parallel run is a pure reordering of the same computations a serial run
performs. Three properties make that safe to rely on:

- **Serial fallback.** ``workers <= 1`` (the default: ``REPRO_WORKERS`` or
  1) never touches a pool: tasks run inline, in order, against the live
  collector, so determinism and trace output are exactly what they were
  before this module existed.
- **Crash isolation.** An exception inside a task is caught *inside the
  worker* and returned as a :class:`TaskFailure`; a hard worker death
  (``BrokenProcessPool``) converts the affected tasks to failures instead
  of hanging or killing the run. The pool never takes the parent down.
- **Trace merging.** When the parent has an enabled collector, each worker
  records its spans/counters/histograms/outcomes into a private
  :class:`~repro.observability.collector.RecordingCollector`, snapshots it
  as a picklable :class:`~repro.observability.collector.TracePayload`, and
  ships it back with the result. The parent merges payloads in task order,
  so ``repro stats`` and ``--trace`` see one coherent trace regardless of
  worker count (worker span ``start`` offsets are process-relative and
  only meaningful for intra-worker ordering).

Workers are forked where available (Linux), so they inherit warm state —
the use-case dataset disk cache, the ground-truth memo, registered
estimators — for free; on spawn-only platforms tasks must reference
importable, module-level functions, which every caller in this repository
does.
"""

from __future__ import annotations

import os
import threading
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from repro.observability.collector import (
    RecordingCollector,
    TracePayload,
    get_collector,
    using_collector,
)
from repro.observability.flight import FLIGHT
from repro.observability.metrics import METRICS
from repro.observability.trace import count, timed_span

#: Environment variable supplying the default worker count.
WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: Optional[int] = None) -> int:
    """Effective worker count: explicit argument, ``$REPRO_WORKERS``, or 1.

    Values below 1 clamp to 1 (serial); a malformed environment value is
    ignored rather than crashing the caller.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "")
        try:
            workers = int(raw) if raw else 1
        except ValueError:
            workers = 1
    return max(1, int(workers))


@dataclass(frozen=True)
class TaskFailure:
    """Picklable description of a task that raised or whose worker died."""

    kind: str  #: exception class name (or ``"BrokenProcessPool"``)
    message: str
    traceback: str = ""

    def __str__(self) -> str:
        return f"{self.kind}: {self.message}"


@dataclass
class TaskResult:
    """Outcome of one task: either a value or a failure, never both."""

    index: int
    value: Any = None
    failure: Optional[TaskFailure] = None

    @property
    def ok(self) -> bool:
        return self.failure is None


def _failure_from(exc: BaseException) -> TaskFailure:
    return TaskFailure(
        kind=type(exc).__name__,
        message=str(exc),
        traceback="".join(traceback.format_exception(exc)),
    )


def _invoke(fn: Callable[[Any], Any], task: Any, tracing: bool):
    """Worker-side shim: run one task under a private collector.

    Returns ``(value_or_failure, payload_or_None)``. Exceptions never
    escape — they become :class:`TaskFailure` values so one bad cell
    cannot poison the pool.

    Metrics travel the same road as traces: forked workers inherit the
    parent's live registry, so the shim snapshots a baseline on entry and
    ships only the task's *delta* back (inside ``payload.metrics``). That
    keeps the merge crash-safe — a worker that dies mid-task contributes
    nothing rather than a corrupt partial state — and is why a payload may
    exist even when tracing is off.
    """
    baseline = METRICS.snapshot()
    collector = RecordingCollector() if tracing else None

    def payload_with_metrics() -> Optional[TracePayload]:
        payload = collector.snapshot() if collector is not None else TracePayload()
        payload.metrics = METRICS.snapshot().delta_since(baseline)
        return None if payload.empty else payload

    try:
        if collector is None:
            value = fn(task)
        else:
            with using_collector(collector):
                value = fn(task)
        return value, payload_with_metrics()
    except Exception as exc:  # noqa: BLE001 - failures are data here
        return _failure_from(exc), payload_with_metrics()


class WorkerPool:
    """A persistent, reusable process pool for serving-shaped workloads.

    :func:`run_tasks` builds and tears down a ``ProcessPoolExecutor`` per
    call — the right trade for batch jobs, but a long-running server paying
    worker fork/spawn on every cold batch would dominate small fan-outs.
    A :class:`WorkerPool` amortizes that: the executor is created lazily on
    first use, reused across :func:`run_tasks` calls (pass it as ``pool=``),
    and transparently rebuilt after a hard worker death so one crashed
    batch does not poison the next.

    Thread-safe; usable as a context manager (``with WorkerPool(4) as p:``).
    """

    def __init__(self, workers: Optional[int] = None):
        self.workers = resolve_workers(workers)
        self._lock = threading.Lock()
        self._executor: Optional[ProcessPoolExecutor] = None

    def executor(self) -> ProcessPoolExecutor:
        """The live executor, created on first use (and after resets)."""
        with self._lock:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(max_workers=self.workers)
                count("parallel.pool_spawns")
            return self._executor

    def reset(self) -> None:
        """Discard a (presumed broken) executor; the next use rebuilds."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Shut the executor down for good (idempotent)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def run_tasks(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    *,
    workers: Optional[int] = None,
    label: str = "parallel.run",
    pool: Optional[WorkerPool] = None,
) -> List[TaskResult]:
    """Execute ``fn(task)`` for every task, possibly across processes.

    Args:
        fn: an importable (module-level) callable; it and every task must
            be picklable when ``workers > 1``.
        tasks: work items, executed independently.
        workers: process count; ``None`` reads ``$REPRO_WORKERS`` (or, with
            ``pool`` given, the pool's size); ``<= 1`` runs serially
            in-process (no pool, live collector).
        label: span name for the surrounding ``timed_span``.
        pool: a persistent :class:`WorkerPool` to run on instead of a
            per-call executor — the serving tier's amortization hook.

    Returns:
        One :class:`TaskResult` per task, **in task order** regardless of
        completion order. Exceptions (and worker deaths, in pool mode)
        surface as ``TaskFailure`` results, not raises.
    """
    if workers is None and pool is not None:
        workers = pool.workers
    workers = resolve_workers(workers)
    tasks = list(tasks)
    with timed_span(label, workers=workers, tasks=len(tasks)):
        if workers <= 1 or len(tasks) <= 1:
            return _run_serial(fn, tasks)
        return _run_pool(fn, tasks, workers, pool=pool)


def _run_serial(fn: Callable[[Any], Any], tasks: Sequence[Any]) -> List[TaskResult]:
    results: List[TaskResult] = []
    for index, task in enumerate(tasks):
        try:
            results.append(TaskResult(index=index, value=fn(task)))
        except Exception as exc:  # noqa: BLE001 - mirrored pool semantics
            failure = _failure_from(exc)
            results.append(TaskResult(index=index, failure=failure))
            count("parallel.failures")
            FLIGHT.trigger_dump(
                "task_failure", task_index=index,
                kind=failure.kind, message=failure.message,
            )
    return results


def _run_pool(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    workers: int,
    pool: Optional[WorkerPool] = None,
) -> List[TaskResult]:
    parent = get_collector()
    tracing = bool(parent.enabled)
    results: List[TaskResult] = [TaskResult(index=i) for i in range(len(tasks))]
    payloads: List[Optional[TracePayload]] = [None] * len(tasks)
    count("parallel.pool_runs")
    broken = False
    if pool is not None:
        executor = pool.executor()
        owns_executor = False
    else:
        executor = ProcessPoolExecutor(max_workers=min(workers, len(tasks)))
        owns_executor = True
    try:
        futures = [
            executor.submit(_invoke, fn, task, tracing) for task in tasks
        ]
        for index, future in enumerate(futures):
            try:
                value, payload = future.result()
            except BrokenProcessPool:
                broken = True
                # The worker died mid-task (segfault, os._exit, OOM kill).
                # Every not-yet-finished future raises the same error; each
                # becomes a failed result so callers see a complete,
                # ordered result list instead of a hung or aborted run.
                results[index].failure = TaskFailure(
                    kind="BrokenProcessPool",
                    message="worker process died before completing this task",
                )
                count("parallel.broken_pool_tasks")
                FLIGHT.trigger_dump(
                    "task_failure", task_index=index, kind="BrokenProcessPool",
                )
                continue
            except Exception as exc:  # noqa: BLE001 - e.g. unpicklable result
                results[index].failure = _failure_from(exc)
                count("parallel.failures")
                FLIGHT.trigger_dump(
                    "task_failure", task_index=index,
                    kind=results[index].failure.kind,
                    message=results[index].failure.message,
                )
                continue
            payloads[index] = payload
            if isinstance(value, TaskFailure):
                results[index].failure = value
                count("parallel.failures")
                FLIGHT.trigger_dump(
                    "task_failure", task_index=index,
                    kind=value.kind, message=value.message,
                )
            else:
                results[index].value = value
    finally:
        if owns_executor:
            executor.shutdown(wait=True)
        elif broken and pool is not None:
            # A crashed worker leaves a persistent pool permanently broken;
            # discard it so the pool's next caller gets a fresh executor.
            pool.reset()
    # Merge worker traces and metric deltas in task order — deterministic
    # independent of the order workers actually finished in. Crashed
    # workers shipped no payload, so the merged state is exactly the sum
    # of the surviving tasks.
    for payload in payloads:
        if payload is None:
            continue
        if tracing:
            parent.merge(payload)
        if payload.metrics is not None:
            METRICS.merge(payload.metrics)
    count("parallel.tasks", float(len(tasks)))
    return results


def map_values(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    *,
    workers: Optional[int] = None,
    label: str = "parallel.map",
) -> List[Any]:
    """Like :func:`run_tasks` but unwraps values, re-raising any failure.

    Convenience for callers with no partial-failure story (e.g. building
    leaf sketches, where a failure means the whole computation is wrong).
    """
    results = run_tasks(fn, tasks, workers=workers, label=label)
    for result in results:
        if not result.ok:
            raise RuntimeError(
                f"parallel task {result.index} failed: {result.failure}"
            )
    return [result.value for result in results]
