"""Dynamic (quad-tree) density map — the paper's Section 2.2 discussion,
built and evaluated.

The fixed-block density map wastes space on empty regions and loses
resolution in dense ones; the paper suggests "dynamic density maps that
adapt local block sizes to the non-zero structure, for example via a
recursive quad tree" but notes that "the non-aligned blocks in dmA and dmB
would complicate the estimator". This module implements exactly that
design point:

- **construction** recursively subdivides regions while they hold more
  than ``leaf_nnz`` non-zeros and exceed ``min_block`` cells per side —
  storage adapts to the structure (empty regions cost one node);
- **estimation** handles the non-alignment the paper warns about by
  *rasterizing* both operands' trees onto a common regular grid (the finest
  ``min_block`` granularity) and reusing the density-map product formula.

The rasterization step is where the paper's predicted complication
materializes: products pay an extra O(leaves + grid) alignment cost, and
accuracy lands between the coarse fixed map and a fine fixed map — the
quantitative answer to the paper's open design question (see
``benchmarks/bench_quadtree.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ShapeError
from repro.estimators.base import SparsityEstimator, Synopsis, register_estimator
from repro.estimators.density_map import DensityMapEstimator, DensityMapSynopsis, _block_sizes
from repro.matrix.conversion import MatrixLike, as_csr


@dataclass
class QuadNode:
    """One region of the quad tree: half-open ranges and its nnz count."""

    row_start: int
    row_stop: int
    col_start: int
    col_stop: int
    nnz: int
    children: Optional[List["QuadNode"]] = None

    @property
    def cells(self) -> int:
        return (self.row_stop - self.row_start) * (self.col_stop - self.col_start)

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class QuadTreeSynopsis(Synopsis):
    """Adaptive density map: a quad tree of region non-zero counts."""

    __slots__ = ("_shape", "root", "min_block", "_node_count")

    def __init__(self, shape: tuple[int, int], root: QuadNode, min_block: int):
        self._shape = (int(shape[0]), int(shape[1]))
        self.root = root
        self.min_block = int(min_block)
        self._node_count = _count_nodes(root)

    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    @property
    def nnz_estimate(self) -> float:
        return float(self.root.nnz)

    @property
    def node_count(self) -> int:
        """Number of tree nodes (the adaptive size)."""
        return self._node_count

    def size_bytes(self) -> int:
        # Four coordinates + count + child pointer per node.
        return self._node_count * 6 * 8

    def leaves(self) -> List[QuadNode]:
        """All leaf regions."""
        result: List[QuadNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                result.append(node)
            else:
                stack.extend(node.children)
        return result

    def rasterize(self, block: int) -> DensityMapSynopsis:
        """Project the tree onto a regular ``block``-sized grid.

        Leaf counts spread uniformly over the grid blocks they overlap —
        the alignment step that products over non-aligned trees require.
        """
        m, n = self._shape
        rows = (m + block - 1) // block or 0
        cols = (n + block - 1) // block or 0
        counts = np.zeros((rows, cols), dtype=np.float64)
        for leaf in self.leaves():
            if leaf.nnz == 0:
                continue
            _spread(counts, leaf, block, m, n)
        cells = np.outer(_block_sizes(m, block), _block_sizes(n, block)).astype(float)
        density = counts / np.maximum(cells, 1.0)
        return DensityMapSynopsis((m, n), block, density)


def _spread(counts, leaf: QuadNode, block: int, m: int, n: int) -> None:
    area = leaf.cells
    first_row, last_row = leaf.row_start // block, (leaf.row_stop - 1) // block
    first_col, last_col = leaf.col_start // block, (leaf.col_stop - 1) // block
    for row_block in range(first_row, last_row + 1):
        row_lo = max(leaf.row_start, row_block * block)
        row_hi = min(leaf.row_stop, min((row_block + 1) * block, m))
        for col_block in range(first_col, last_col + 1):
            col_lo = max(leaf.col_start, col_block * block)
            col_hi = min(leaf.col_stop, min((col_block + 1) * block, n))
            overlap = (row_hi - row_lo) * (col_hi - col_lo)
            if overlap > 0:
                counts[row_block, col_block] += leaf.nnz * overlap / area


def _count_nodes(root: QuadNode) -> int:
    count = 0
    stack = [root]
    while stack:
        node = stack.pop()
        count += 1
        if node.children:
            stack.extend(node.children)
    return count


@register_estimator("quadtree_map")
class QuadTreeEstimator(SparsityEstimator):
    """Adaptive density-map estimator (dynamic block sizes, Sec 2.2).

    Args:
        leaf_nnz: subdivide regions holding more than this many non-zeros.
        min_block: never subdivide below this side length; also the raster
            granularity used to align operands for products.
    """

    name = "QTree"
    contract_tags = frozenset()

    def __init__(self, *, leaf_nnz: int = 64, min_block: int = 8):
        if leaf_nnz < 1:
            raise ValueError(f"leaf_nnz must be positive, got {leaf_nnz}")
        if min_block < 1:
            raise ValueError(f"min_block must be positive, got {min_block}")
        self.leaf_nnz = int(leaf_nnz)
        self.min_block = int(min_block)
        self._dmap = DensityMapEstimator(block_size=min_block)

    def build(self, matrix: MatrixLike) -> QuadTreeSynopsis:
        csr = as_csr(matrix)
        coo = csr.tocoo()
        rows = coo.row.astype(np.int64)
        cols = coo.col.astype(np.int64)
        m, n = csr.shape
        root = self._subdivide(rows, cols, 0, max(m, 1), 0, max(n, 1))
        return QuadTreeSynopsis((m, n), root, self.min_block)

    def _subdivide(self, rows, cols, r0, r1, c0, c1) -> QuadNode:
        node = QuadNode(r0, r1, c0, c1, int(rows.size))
        height, width = r1 - r0, c1 - c0
        if (
            rows.size <= self.leaf_nnz
            or (height <= self.min_block and width <= self.min_block)
        ):
            return node
        row_mid = r0 + height // 2 if height > self.min_block else r1
        col_mid = c0 + width // 2 if width > self.min_block else c1
        children = []
        for row_lo, row_hi in ((r0, row_mid), (row_mid, r1)):
            if row_lo >= row_hi:
                continue
            row_mask = (rows >= row_lo) & (rows < row_hi)
            for col_lo, col_hi in ((c0, col_mid), (col_mid, c1)):
                if col_lo >= col_hi:
                    continue
                mask = row_mask & (cols >= col_lo) & (cols < col_hi)
                children.append(self._subdivide(
                    rows[mask], cols[mask], row_lo, row_hi, col_lo, col_hi
                ))
        if len(children) <= 1:
            return node
        node.children = children
        return node

    # -- products: rasterize to the common grid, reuse the DMap formula ----

    def _estimate_matmul(self, a: Synopsis, b: Synopsis) -> float:
        if a.shape[1] != b.shape[0]:
            raise ShapeError(f"matmul shape mismatch: {a.shape} x {b.shape}")
        return self._dmap._estimate_matmul(
            _as_grid(a, self.min_block), _as_grid(b, self.min_block)
        )

    def _propagate_matmul(self, a: Synopsis, b: Synopsis):
        # Propagated intermediates are regular grids (the aligned form);
        # _as_grid accepts either representation on later products.
        return self._dmap._propagate_matmul(
            _as_grid(a, self.min_block), _as_grid(b, self.min_block)
        )

    # -- element-wise (also via rasterization) ------------------------------

    def _estimate_ewise_add(self, a: Synopsis, b: Synopsis) -> float:
        return self._dmap._estimate_ewise_add(
            _as_grid(a, self.min_block), _as_grid(b, self.min_block)
        )

    def _estimate_ewise_mult(self, a: Synopsis, b: Synopsis) -> float:
        return self._dmap._estimate_ewise_mult(
            _as_grid(a, self.min_block), _as_grid(b, self.min_block)
        )

    def _propagate_ewise_add(self, a: Synopsis, b: Synopsis):
        return self._dmap._propagate_ewise_add(
            _as_grid(a, self.min_block), _as_grid(b, self.min_block)
        )

    def _propagate_ewise_mult(self, a: Synopsis, b: Synopsis):
        return self._dmap._propagate_ewise_mult(
            _as_grid(a, self.min_block), _as_grid(b, self.min_block)
        )

    # -- exact tree-structural operations -----------------------------------

    def _estimate_transpose(self, a: QuadTreeSynopsis) -> float:
        return a.nnz_estimate

    def _propagate_transpose(self, a: Synopsis) -> Synopsis:
        # Propagated products are regular grids, not trees (see
        # _propagate_matmul); structural ops must accept both forms
        # (found by repro.verify, see tests/corpus/quadtree-chain-transpose).
        if isinstance(a, DensityMapSynopsis):
            return self._dmap._propagate_transpose(a)
        return QuadTreeSynopsis(
            (a.shape[1], a.shape[0]), _transpose_node(a.root), a.min_block
        )

    def _estimate_neq_zero(self, a: QuadTreeSynopsis) -> float:
        return a.nnz_estimate

    def _propagate_neq_zero(self, a: QuadTreeSynopsis) -> QuadTreeSynopsis:
        return a

    def _estimate_eq_zero(self, a: QuadTreeSynopsis) -> float:
        return a.cells - a.nnz_estimate

    def _propagate_eq_zero(self, a: Synopsis) -> Synopsis:
        if isinstance(a, DensityMapSynopsis):
            return self._dmap._propagate_eq_zero(a)
        return QuadTreeSynopsis(a.shape, _complement_node(a.root), a.min_block)


def _as_grid(synopsis: Synopsis, block: int) -> DensityMapSynopsis:
    if isinstance(synopsis, QuadTreeSynopsis):
        return synopsis.rasterize(block)
    if isinstance(synopsis, DensityMapSynopsis):
        return synopsis
    raise ShapeError(
        f"quad-tree estimator cannot align synopsis type {type(synopsis).__name__}"
    )


def _transpose_node(node: QuadNode) -> QuadNode:
    children = None
    if node.children is not None:
        children = [_transpose_node(child) for child in node.children]
    return QuadNode(
        node.col_start, node.col_stop, node.row_start, node.row_stop,
        node.nnz, children,
    )


def _complement_node(node: QuadNode) -> QuadNode:
    children = None
    if node.children is not None:
        children = [_complement_node(child) for child in node.children]
    return QuadNode(
        node.row_start, node.row_stop, node.col_start, node.col_stop,
        node.cells - node.nnz, children,
    )
