"""Naive bitset estimator ``E_bmm`` (paper Section 2.1, Eq 3).

Boolean matrices are stored bit-packed (8 cells per byte, little bit order)
and the estimator performs an exact boolean matrix multiplication: bitwise
AND is multiply, bitwise OR is sum. The estimate is always exact, but the
synopsis is dense — ``m*n/8`` bytes — which is the estimator's downfall on
ultra-sparse inputs (Figures 9 and 11 in the paper).

Two product kernels are provided: the default vectorized kernel OR-combines
whole row blocks per output row, while ``kernel="scalar"`` ORs one operand
row at a time from the interpreter loop. The paper's Appendix B studies a
multi-threaded bitset; in this single-process reproduction the vectorized vs
scalar pair plays that role (roughly an order of magnitude apart).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.backends import get_backend
from repro.errors import ShapeError
from repro.estimators.base import SparsityEstimator, Synopsis, register_estimator
from repro.matrix import ops as mops
from repro.matrix.conversion import MatrixLike, as_csr

_CHUNK_ROWS = 2048


class BitsetSynopsis(Synopsis):
    """Bit-packed boolean structure of a matrix."""

    __slots__ = ("_shape", "_bits", "_nnz")

    def __init__(self, shape: tuple[int, int], bits: np.ndarray):
        self._shape = (int(shape[0]), int(shape[1]))
        self._bits = bits
        self._nnz = get_backend().popcount_sum(bits)

    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    @property
    def nnz_estimate(self) -> float:
        return float(self._nnz)

    @property
    def bits(self) -> np.ndarray:
        """The packed ``uint8`` bit matrix of shape ``(m, ceil(n/8))``."""
        return self._bits

    def size_bytes(self) -> int:
        return self._bits.nbytes

    def to_bool_rows(self, start: int, stop: int) -> np.ndarray:
        """Unpack rows ``start:stop`` to a dense boolean block."""
        n = self._shape[1]
        unpacked = np.unpackbits(
            self._bits[start:stop], axis=1, count=n, bitorder="little"
        )
        return unpacked.astype(bool)

    def to_csr(self) -> sp.csr_array:
        """Materialize the full boolean structure as a 0/1 CSR matrix."""
        m, n = self._shape
        blocks = []
        for start in range(0, max(m, 1), _CHUNK_ROWS):
            stop = min(start + _CHUNK_ROWS, m)
            if start >= stop:
                break
            blocks.append(sp.csr_array(self.to_bool_rows(start, stop).astype(np.int8)))
        if not blocks:
            return sp.csr_array((m, n))
        return sp.csr_array(sp.vstack(blocks, format="csr"))


def pack_matrix(matrix: MatrixLike) -> BitsetSynopsis:
    """Pack the non-zero structure of *matrix* into a bitset synopsis."""
    csr = as_csr(matrix)
    m, n = csr.shape
    words = (n + 7) // 8
    bits = np.zeros((m, max(words, 1)), dtype=np.uint8)
    coo = csr.tocoo()
    byte_col = coo.col >> 3
    bit_values = np.left_shift(
        np.uint8(1), (coo.col & 7).astype(np.uint8), dtype=np.uint8
    )
    np.bitwise_or.at(bits, (coo.row, byte_col), bit_values)
    return BitsetSynopsis((m, n), bits)


@register_estimator("bitset")
class BitsetEstimator(SparsityEstimator):
    """Exact boolean-matrix-multiply estimator.

    Args:
        kernel: ``"vectorized"`` (default) or ``"scalar"`` — see module doc.
    """

    name = "Bitset"
    contract_tags = frozenset({"exact"})

    def __init__(self, *, kernel: str = "vectorized"):
        if kernel not in ("vectorized", "scalar"):
            raise ValueError(f"unknown bitset kernel {kernel!r}")
        self.kernel = kernel

    def build(self, matrix: MatrixLike) -> BitsetSynopsis:
        return pack_matrix(matrix)

    # -- products -------------------------------------------------------

    def _propagate_matmul(self, a: BitsetSynopsis, b: BitsetSynopsis) -> BitsetSynopsis:
        if a.shape[1] != b.shape[0]:
            raise ShapeError(f"matmul shape mismatch: {a.shape} x {b.shape}")
        m = a.shape[0]
        l = b.shape[1]
        out_words = b.bits.shape[1]
        out = np.zeros((m, out_words), dtype=np.uint8)
        b_bits = b.bits
        backend = get_backend()
        for start in range(0, m, _CHUNK_ROWS):
            stop = min(start + _CHUNK_ROWS, m)
            block = a.to_bool_rows(start, stop)
            if self.kernel == "vectorized":
                backend.bitset_block_or(block, b_bits, out, start)
            else:
                for offset in range(stop - start):
                    k_indices = np.flatnonzero(block[offset])
                    if k_indices.size == 0:
                        continue
                    accumulator = out[start + offset]
                    for k in k_indices:
                        np.bitwise_or(accumulator, b_bits[k], out=accumulator)
        return BitsetSynopsis((m, l), out)

    def _estimate_matmul(self, a: BitsetSynopsis, b: BitsetSynopsis) -> float:
        return self._propagate_matmul(a, b).nnz_estimate

    # -- element-wise (exact bit operations) ------------------------------

    def _propagate_ewise_add(self, a: BitsetSynopsis, b: BitsetSynopsis) -> BitsetSynopsis:
        if a.shape != b.shape:
            raise ShapeError(f"ewise_add shape mismatch: {a.shape} vs {b.shape}")
        return BitsetSynopsis(a.shape, np.bitwise_or(a.bits, b.bits))

    def _estimate_ewise_add(self, a: BitsetSynopsis, b: BitsetSynopsis) -> float:
        return self._propagate_ewise_add(a, b).nnz_estimate

    def _propagate_ewise_mult(self, a: BitsetSynopsis, b: BitsetSynopsis) -> BitsetSynopsis:
        if a.shape != b.shape:
            raise ShapeError(f"ewise_mult shape mismatch: {a.shape} vs {b.shape}")
        return BitsetSynopsis(a.shape, np.bitwise_and(a.bits, b.bits))

    def _estimate_ewise_mult(self, a: BitsetSynopsis, b: BitsetSynopsis) -> float:
        return self._propagate_ewise_mult(a, b).nnz_estimate

    # -- reorganizations (exact via materialization) -----------------------

    def _rebuild(self, structure: sp.csr_array) -> BitsetSynopsis:
        return pack_matrix(structure)

    def _propagate_transpose(self, a: BitsetSynopsis) -> BitsetSynopsis:
        return self._rebuild(mops.transpose(a.to_csr()))

    def _estimate_transpose(self, a: BitsetSynopsis) -> float:
        return a.nnz_estimate

    def _propagate_reshape(self, a: BitsetSynopsis, *, rows: int, cols: int) -> BitsetSynopsis:
        return self._rebuild(mops.reshape_rowwise(a.to_csr(), rows, cols))

    def _estimate_reshape(self, a: BitsetSynopsis, *, rows: int, cols: int) -> float:
        if rows * cols != a.cells:
            raise ShapeError(
                f"cannot reshape {a.shape} into {rows}x{cols}: cell counts differ"
            )
        return a.nnz_estimate

    def _propagate_diag_v2m(self, a: BitsetSynopsis) -> BitsetSynopsis:
        return self._rebuild(mops.diag_matrix(a.to_csr()))

    def _estimate_diag_v2m(self, a: BitsetSynopsis) -> float:
        return a.nnz_estimate

    def _propagate_diag_m2v(self, a: BitsetSynopsis) -> BitsetSynopsis:
        return self._rebuild(mops.diag_extract(a.to_csr()))

    def _estimate_diag_m2v(self, a: BitsetSynopsis) -> float:
        return self._propagate_diag_m2v(a).nnz_estimate

    def _propagate_rbind(self, a: BitsetSynopsis, b: BitsetSynopsis) -> BitsetSynopsis:
        if a.shape[1] != b.shape[1]:
            raise ShapeError(f"rbind shape mismatch: {a.shape} vs {b.shape}")
        return BitsetSynopsis(
            (a.shape[0] + b.shape[0], a.shape[1]),
            np.vstack([a.bits, b.bits]),
        )

    def _estimate_rbind(self, a: BitsetSynopsis, b: BitsetSynopsis) -> float:
        return a.nnz_estimate + b.nnz_estimate

    def _propagate_cbind(self, a: BitsetSynopsis, b: BitsetSynopsis) -> BitsetSynopsis:
        return self._rebuild(mops.cbind(a.to_csr(), b.to_csr()))

    def _estimate_cbind(self, a: BitsetSynopsis, b: BitsetSynopsis) -> float:
        return a.nnz_estimate + b.nnz_estimate

    def _propagate_neq_zero(self, a: BitsetSynopsis) -> BitsetSynopsis:
        return a

    def _estimate_neq_zero(self, a: BitsetSynopsis) -> float:
        return a.nnz_estimate

    def _propagate_eq_zero(self, a: BitsetSynopsis) -> BitsetSynopsis:
        m, n = a.shape
        inverted = np.bitwise_not(a.bits)
        # Mask out padding bits beyond column n in the last byte.
        tail_bits = n & 7
        if tail_bits and inverted.shape[1]:
            mask = np.uint8((1 << tail_bits) - 1)
            inverted[:, -1] &= mask
        return BitsetSynopsis((m, n), inverted)

    def _estimate_eq_zero(self, a: BitsetSynopsis) -> float:
        return a.cells - a.nnz_estimate

    def _propagate_row_sums(self, a: BitsetSynopsis) -> BitsetSynopsis:
        return self._rebuild(mops.row_sums(a.to_csr()))

    def _estimate_row_sums(self, a: BitsetSynopsis) -> float:
        # Exact from the packed bits: a row is non-empty iff any word is set.
        return float(np.count_nonzero(a.bits.any(axis=1)))

    def _propagate_col_sums(self, a: BitsetSynopsis) -> BitsetSynopsis:
        return self._rebuild(mops.col_sums(a.to_csr()))

    def _estimate_col_sums(self, a: BitsetSynopsis) -> float:
        # Exact from the packed bits, mirroring the row-sums twin: a column
        # is non-empty iff its bit survives an OR over all rows. Padding
        # bits beyond column n are zero in every row, so they stay zero.
        return float(get_backend().or_popcount(a.bits))
