"""Unified estimator selection: the :class:`EstimatorSpec` value object.

Every surface that lets a caller pick an estimator — ``EstimationService``,
``ServiceRequest``, the serve wire protocol, the SparsEst runner, and the
CLI flags — historically grew its own slightly different string/kwargs
convention. :class:`EstimatorSpec` is the one value object they all parse
into: a frozen, hashable, picklable record of *which* estimator
(``name``), *how configured* (``options``), *how accurate it must be*
(``tolerance``, adaptive routing only), and *under which seed*
(``seed``).

``EstimatorSpec.parse`` accepts every historical call form:

- a registry name string (``"mnc"``),
- a wire-protocol dict (``{"name": "auto", "tolerance": 0.1}``),
- an existing spec (idempotent).

The pseudo-name ``"auto"`` selects adaptive routing (see
:mod:`repro.router`); it is deliberately *not* in the estimator registry —
``available_estimators()`` stays the authoritative list of concrete
estimators, and the contract fuzzer keeps fuzzing only those.

Note: :class:`repro.verify.contracts.EstimatorSpec` is a different,
verify-internal record (estimator-under-test + factory for the fuzz
engine). This module is the caller-facing selection API.
"""

from __future__ import annotations

import inspect
import math
from dataclasses import dataclass, replace
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.errors import EstimatorOptionError, UnknownEstimatorError
from repro.estimators.base import (
    SparsityEstimator,
    available_estimators,
    make_estimator,
)

#: The routing pseudo-estimator name understood by every spec-aware surface.
AUTO_NAME = "auto"

_WIRE_KEYS = frozenset({"name", "estimator", "options", "tolerance", "seed"})


@dataclass(frozen=True)
class EstimatorSpec:
    """One estimator selection, normalized.

    Args:
        name: registry name (see :func:`available_estimators`) or
            ``"auto"`` for adaptive routing.
        options: constructor keyword arguments as a sorted tuple of
            ``(key, value)`` pairs (a mapping is normalized); for
            ``"auto"``, router options such as ``probe``.
        tolerance: maximum acceptable relative interval width for routed
            estimates; only meaningful with ``name="auto"``.
        seed: base seed; routed per-expression, or injected into the
            estimator constructor when it accepts a ``seed`` keyword.
    """

    name: str
    options: Tuple[Tuple[str, Any], ...] = ()
    tolerance: Optional[float] = None
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        options = self.options
        if isinstance(options, Mapping):
            options = tuple(sorted(options.items()))
        else:
            try:
                options = tuple(sorted((str(k), v) for k, v in options))
            except (TypeError, ValueError):
                raise EstimatorOptionError(
                    f"options must be a mapping or (key, value) pairs, "
                    f"got {self.options!r}"
                ) from None
        object.__setattr__(self, "options", options)
        if self.tolerance is not None:
            try:
                tolerance = float(self.tolerance)
            except (TypeError, ValueError):
                raise EstimatorOptionError(
                    f"tolerance must be a number, got {self.tolerance!r}"
                ) from None
            if not math.isfinite(tolerance) or tolerance < 0.0:
                raise EstimatorOptionError(
                    f"tolerance must be finite and >= 0, got {tolerance}"
                )
            object.__setattr__(self, "tolerance", tolerance)
        if self.seed is not None:
            try:
                object.__setattr__(self, "seed", int(self.seed))
            except (TypeError, ValueError):
                raise EstimatorOptionError(
                    f"seed must be an integer, got {self.seed!r}"
                ) from None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def parse(
        cls,
        value: Union["EstimatorSpec", str, Mapping, None],
        *,
        tolerance: Optional[float] = None,
        seed: Optional[int] = None,
        default: str = "mnc",
    ) -> "EstimatorSpec":
        """Normalize any historical estimator-selection form into a spec.

        *tolerance* / *seed* keyword arguments override the parsed values
        when given (the CLI-flag path). ``None`` parses to *default*.
        """
        if value is None:
            spec = cls(name=default)
        elif isinstance(value, cls):
            spec = value
        elif isinstance(value, str):
            name = value.strip()
            if not name:
                raise EstimatorOptionError("estimator name must be non-empty")
            spec = cls(name=name)
        elif isinstance(value, Mapping):
            spec = cls._from_mapping(value)
        elif isinstance(value, SparsityEstimator):
            raise EstimatorOptionError(
                "estimator instances cannot be parsed into an EstimatorSpec; "
                "pass the instance directly where supported, or use its "
                "registry name"
            )
        else:
            raise EstimatorOptionError(
                f"cannot parse estimator selection from {type(value).__name__}"
            )
        if tolerance is not None:
            spec = replace(spec, tolerance=tolerance)
        if seed is not None:
            spec = replace(spec, seed=seed)
        spec.validate()
        return spec

    @classmethod
    def _from_mapping(cls, payload: Mapping) -> "EstimatorSpec":
        unknown = sorted(set(payload) - _WIRE_KEYS)
        if unknown:
            raise EstimatorOptionError(
                f"unknown estimator spec fields {unknown}; "
                f"expected a subset of {sorted(_WIRE_KEYS)}"
            )
        if ("name" in payload) == ("estimator" in payload):
            raise EstimatorOptionError(
                "estimator spec needs exactly one of 'name' or 'estimator'"
            )
        name = payload.get("name", payload.get("estimator"))
        if not isinstance(name, str) or not name.strip():
            raise EstimatorOptionError(
                f"estimator name must be a non-empty string, got {name!r}"
            )
        options = payload.get("options", ())
        if options and not isinstance(options, Mapping):
            raise EstimatorOptionError(
                f"'options' must be an object, got {type(options).__name__}"
            )
        return cls(
            name=name.strip(),
            options=options,
            tolerance=payload.get("tolerance"),
            seed=payload.get("seed"),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def is_auto(self) -> bool:
        """Whether this spec selects adaptive routing."""
        return self.name == AUTO_NAME

    def options_dict(self) -> Dict[str, Any]:
        return dict(self.options)

    @property
    def key(self) -> str:
        """Canonical identity string (memo keys, derived-service caches)."""
        parts = [f"{k}={v!r}" for k, v in self.options]
        if self.tolerance is not None:
            parts.append(f"tolerance={self.tolerance!r}")
        if self.seed is not None:
            parts.append(f"seed={self.seed!r}")
        if not parts:
            return self.name
        return f"{self.name}({','.join(parts)})"

    def to_wire(self) -> Dict[str, Any]:
        """JSON-safe wire form (the dict :meth:`parse` accepts back)."""
        payload: Dict[str, Any] = {"name": self.name}
        if self.options:
            payload["options"] = self.options_dict()
        if self.tolerance is not None:
            payload["tolerance"] = self.tolerance
        if self.seed is not None:
            payload["seed"] = self.seed
        return payload

    # ------------------------------------------------------------------
    # Validation and materialization
    # ------------------------------------------------------------------

    def validate(self) -> "EstimatorSpec":
        """Check the name against the registry and option coherence."""
        if not self.is_auto and self.name not in available_estimators():
            raise UnknownEstimatorError(
                f"unknown estimator {self.name!r}; available: "
                f"{available_estimators()} (plus 'auto' for adaptive routing)",
                details={
                    "estimator": self.name,
                    "available_estimators": available_estimators(),
                },
            )
        if self.tolerance is not None and not self.is_auto:
            raise EstimatorOptionError(
                f"'tolerance' is only meaningful with estimator='auto' "
                f"(got estimator={self.name!r})",
                details={"estimator": self.name},
            )
        return self

    def make(self) -> SparsityEstimator:
        """Instantiate the concrete estimator this spec selects.

        ``seed`` is injected into the constructor when the estimator
        accepts a ``seed`` keyword and the options do not already pin one.
        Auto specs are routed, not instantiated — build an
        :class:`repro.router.AdaptiveRouter` from the spec instead.
        """
        self.validate()
        if self.is_auto:
            raise EstimatorOptionError(
                "estimator='auto' is routed, not instantiated; build an "
                "AdaptiveRouter (repro.router) from this spec instead"
            )
        options = self.options_dict()
        if self.seed is not None and "seed" not in options:
            if estimator_accepts_seed(self.name):
                options["seed"] = self.seed
        return make_estimator(self.name, **options)


def estimator_accepts_seed(name: str) -> bool:
    """Whether the registered factory takes a ``seed`` keyword."""
    from repro.estimators.base import _REGISTRY

    factory = _REGISTRY.get(name)
    if factory is None:
        return False
    try:
        return "seed" in inspect.signature(factory).parameters
    except (TypeError, ValueError):  # pragma: no cover - exotic factories
        return False
