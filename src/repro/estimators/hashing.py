"""Hash- and sampling-based size estimator of Amossen, Campagna and Pagh
(paper Appendix A, reference [5]).

The boolean product ``Z = union_k(A_k x B_k)`` is a set of distinct (i, j)
pairs; estimating ``nnz(AB)`` is estimating ``|Z|``. The estimator:

1. hashes row ids of A and column ids of B to [0, 1) with independent
   integer mixers,
2. keeps rows/columns whose hash falls below ``sqrt(f)`` — a distinct
   sampler that retains each *pair identity* with probability ``f``,
3. enumerates only the sampled pairs while scanning the slices of the
   common dimension (O(d + nnz + sampled pairs)),
4. counts distinct sampled pairs — exactly if few, else with a KMV
   (k-minimum-values) synopsis over a third pair-level hash — and scales by
   ``1/f``.

The sample fraction automatically shrinks when the expected number of
sampled pairs would exceed ``max_pairs``, keeping the scan bounded the way
the published algorithm's adaptive threshold does.

This is also the repo's **streaming reference estimator** (tag
``streaming``, see ``docs/STREAMING.md``): every hash decision depends
only on a (row, column) identity and a fixed salt, never on build order
or on any precomputed global statistic, so the estimate over a matrix
that grew through :mod:`repro.core.incremental` deltas is bit-identical
to the estimate over the same structure built from scratch. That makes
it the natural independent cross-check for patched
:class:`~repro.core.sketch.MNCSketch` objects on the streaming path.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.rounding import SeedLike, resolve_rng
from repro.errors import EstimationError, ShapeError, UnsupportedOperationError
from repro.estimators.base import SparsityEstimator, Synopsis, register_estimator
from repro.matrix.conversion import MatrixLike, as_csc, as_csr

_MIX_CONSTANTS = (0x9E3779B97F4A7C15, 0xBF58476D1CE4E5B9, 0x94D049BB133111EB)


def _mix64(values: np.ndarray, salt: int) -> np.ndarray:
    """SplitMix64-style integer mixer mapping int64 ids to uniform [0, 1)."""
    x = (values.astype(np.uint64) + np.uint64(salt)) * np.uint64(_MIX_CONSTANTS[0])
    x ^= x >> np.uint64(30)
    x *= np.uint64(_MIX_CONSTANTS[1])
    x ^= x >> np.uint64(27)
    x *= np.uint64(_MIX_CONSTANTS[2])
    x ^= x >> np.uint64(31)
    return x.astype(np.float64) / float(2**64)


class HashSynopsis(Synopsis):
    """Leaf synopsis: the estimator is scan-based, so it keeps slice lists.

    ``col_lists`` (CSC view of A) serves left operands and ``row_lists``
    (CSR view of B) serves right operands. The reported size is the KMV
    buffer, the quantity the algorithm actually materializes.
    """

    __slots__ = ("_shape", "_nnz", "csc", "csr", "buffer_size")

    def __init__(self, matrix: sp.csr_array, buffer_size: int):
        self._shape = (int(matrix.shape[0]), int(matrix.shape[1]))
        self._nnz = float(matrix.nnz)
        self.csr = matrix
        self.csc = as_csc(matrix)
        self.buffer_size = int(buffer_size)

    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    @property
    def nnz_estimate(self) -> float:
        return self._nnz

    def size_bytes(self) -> int:
        return self.buffer_size * 8


@register_estimator("hash")
class HashEstimator(SparsityEstimator):
    """KMV + distinct-sampling estimator for single matrix products.

    Tagged ``streaming``: estimates are a pure function of the current
    structure and the salts, so this estimator needs no repair step after
    a :mod:`repro.core.incremental` delta — rebuilding its synopsis from
    the mutated matrix is the whole update. The streaming docs
    (``docs/STREAMING.md``) use it as the reference check for patched
    MNC sketches.

    Args:
        buffer_size: KMV buffer size ``k`` (paper suggests ``1/eps^2``).
        fraction: target pair-sampling probability ``f``.
        max_pairs: cap on enumerated sampled pairs; ``f`` shrinks to respect
            it (adaptive thresholding).
        seed: salt for the three hash functions.
    """

    name = "Hash"
    contract_tags = frozenset({"randomized", "streaming"})

    def __init__(
        self,
        *,
        buffer_size: int = 1024,
        fraction: float = 0.05,
        max_pairs: int = 2_000_000,
        seed: SeedLike = 7,
    ):
        if buffer_size < 2:
            raise ValueError("buffer_size must be at least 2")
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.buffer_size = int(buffer_size)
        self.fraction = float(fraction)
        self.max_pairs = int(max_pairs)
        rng = resolve_rng(seed)
        self._salts = tuple(int(s) for s in rng.integers(1, 2**62, size=3))

    def build(self, matrix: MatrixLike) -> HashSynopsis:
        return HashSynopsis(as_csr(matrix), self.buffer_size)

    def _propagate_matmul(self, a: Synopsis, b: Synopsis) -> Synopsis:
        raise UnsupportedOperationError(
            "the hash estimator applies to single matrix products only"
        )

    def _estimate_matmul(self, a: HashSynopsis, b: HashSynopsis) -> float:
        if a.shape[1] != b.shape[0]:
            raise ShapeError(f"matmul shape mismatch: {a.shape} x {b.shape}")
        m, n = a.shape
        l = b.shape[1]
        if a.nnz_estimate == 0 or b.nnz_estimate == 0:
            return 0.0

        col_counts_a = np.diff(a.csc.indptr).astype(np.float64)
        row_counts_b = np.diff(b.csr.indptr).astype(np.float64)
        expected_pairs = float(col_counts_a @ row_counts_b)
        fraction = self.fraction
        if expected_pairs * fraction > self.max_pairs:
            fraction = self.max_pairs / expected_pairs
        threshold = float(np.sqrt(fraction))

        row_keep = _mix64(np.arange(m, dtype=np.int64), self._salts[0]) < threshold
        col_keep = _mix64(np.arange(l, dtype=np.int64), self._salts[1]) < threshold

        pair_chunks: list[np.ndarray] = []
        a_indptr, a_indices = a.csc.indptr, a.csc.indices
        b_indptr, b_indices = b.csr.indptr, b.csr.indices
        for k in range(n):
            rows = a_indices[a_indptr[k]:a_indptr[k + 1]]
            if rows.size == 0:
                continue
            cols = b_indices[b_indptr[k]:b_indptr[k + 1]]
            if cols.size == 0:
                continue
            rows = rows[row_keep[rows]]
            if rows.size == 0:
                continue
            cols = cols[col_keep[cols]]
            if cols.size == 0:
                continue
            keys = (rows.astype(np.int64)[:, None] * l + cols.astype(np.int64)).ravel()
            pair_chunks.append(keys)

        if not pair_chunks:
            # Degenerate sample: nothing observed. Fall back to the
            # average-case expectation of the enumerated pair mass.
            if fraction <= 0:
                raise EstimationError("hash estimator sampled an empty universe")
            return min(expected_pairs, float(m) * float(l))

        keys = np.unique(np.concatenate(pair_chunks))
        if keys.size <= self.buffer_size:
            distinct_sampled = float(keys.size)
        else:
            # KMV over a third, pair-level hash.
            pair_hashes = _mix64(keys, self._salts[2])
            smallest = np.partition(pair_hashes, self.buffer_size - 1)
            kth = smallest[self.buffer_size - 1]
            distinct_sampled = (self.buffer_size - 1) / float(kth)
        estimate = distinct_sampled / fraction
        return min(estimate, float(m) * float(l))
