"""Cohen's layered-graph estimator ``E_gph`` (paper Section 2.4, Eq 6).

The layered graph of a chain ``M1 M2 ... Mk`` has the rows of ``M1`` as
leaves and one level per matrix; edges follow the non-zero positions. Each
leaf holds an *r-vector* of ``r`` i.i.d. Exp(1) draws; inner nodes take the
element-wise minimum over their in-neighbors. For a node reached by ``N``
leaves, each entry of its r-vector is the minimum of ``N`` Exp(1) variables,
so ``(r - 1) / sum(rv)`` is the classic unbiased estimate of ``N`` — which is
exactly the non-zero count of that node's column in the chain product.

The implementation propagates a *frontier* (r-vectors at the current level's
column nodes) through one matrix structure at a time with a vectorized
``minimum.reduceat``. Unreachable nodes carry ``+inf`` r-vectors and
contribute zero. Because propagation needs the right operand's non-zero
*structure*, only left-deep chains of leaf matrices are supported — the same
restriction the paper's benchmarks observe (no element-wise operations, no
reorganizations).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.core.rounding import SeedLike, resolve_rng
from repro.errors import ShapeError, UnsupportedOperationError
from repro.estimators.base import SparsityEstimator, Synopsis, register_estimator
from repro.matrix.conversion import MatrixLike, as_csc

DEFAULT_ROUNDS = 32


class LayeredGraphSynopsis(Synopsis):
    """Leaf (structure-bearing) or frontier (propagated) synopsis."""

    __slots__ = ("_shape", "_nnz", "structure", "frontier", "rounds")

    def __init__(
        self,
        shape: tuple[int, int],
        nnz: float,
        rounds: int,
        structure: Optional[sp.csc_array] = None,
        frontier: Optional[np.ndarray] = None,
    ):
        self._shape = (int(shape[0]), int(shape[1]))
        self._nnz = float(nnz)
        self.rounds = int(rounds)
        self.structure = structure
        self.frontier = frontier

    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    @property
    def nnz_estimate(self) -> float:
        return self._nnz

    @property
    def is_leaf(self) -> bool:
        """True when the full non-zero structure is available."""
        return self.structure is not None

    def size_bytes(self) -> int:
        size = 0
        if self.frontier is not None:
            size += self.frontier.nbytes
        if self.structure is not None:
            size += self.structure.indices.nbytes + self.structure.indptr.nbytes
        return size


def propagate_frontier(frontier: np.ndarray, structure: sp.csc_array) -> np.ndarray:
    """Push r-vectors one level down: out[j] = min over non-zero rows of
    column j. Columns without incoming edges become ``+inf`` (unreachable)."""
    n_rows, n_cols = structure.shape
    if frontier.shape[0] != n_rows:
        raise ShapeError(
            f"frontier has {frontier.shape[0]} nodes, structure expects {n_rows}"
        )
    rounds = frontier.shape[1]
    out = np.full((n_cols, rounds), np.inf, dtype=np.float64)
    counts = np.diff(structure.indptr)
    nonempty = counts > 0
    if not nonempty.any():
        return out
    stacked = frontier[structure.indices]
    starts = structure.indptr[:-1][nonempty]
    out[nonempty] = np.minimum.reduceat(stacked, starts, axis=0)
    return out


def frontier_nnz_estimate(frontier: np.ndarray) -> float:
    """Total non-zero estimate: sum of per-column reach-set estimates."""
    rounds = frontier.shape[1]
    finite = np.isfinite(frontier).all(axis=1)
    if not finite.any():
        return 0.0
    sums = frontier[finite].sum(axis=1)
    return float(((rounds - 1) / sums).sum())


def frontier_column_estimates(frontier: np.ndarray) -> np.ndarray:
    """Per-column non-zero estimates (used for sparsity-aware chain costs)."""
    rounds = frontier.shape[1]
    estimates = np.zeros(frontier.shape[0], dtype=np.float64)
    finite = np.isfinite(frontier).all(axis=1)
    sums = frontier[finite].sum(axis=1)
    estimates[finite] = (rounds - 1) / sums
    return estimates


@register_estimator("layered_graph")
class LayeredGraphEstimator(SparsityEstimator):
    """Layered-graph estimator with configurable r-vector length.

    Args:
        rounds: length ``r`` of the r-vectors (paper default 32; must be >= 2
            for the ``(r - 1) / sum`` estimate to exist).
        seed: randomness for the Exp(1) leaf draws.
    """

    name = "LGraph"
    contract_tags = frozenset({"randomized"})

    def __init__(self, *, rounds: int = DEFAULT_ROUNDS, seed: SeedLike = 0xFACADE):
        if rounds < 2:
            raise ValueError(f"rounds must be >= 2, got {rounds}")
        self.rounds = int(rounds)
        self._rng = resolve_rng(seed)

    def build(self, matrix: MatrixLike) -> LayeredGraphSynopsis:
        csc = as_csc(matrix)
        return LayeredGraphSynopsis(csc.shape, csc.nnz, self.rounds, structure=csc)

    def _leaf_frontier(self, synopsis: LayeredGraphSynopsis) -> np.ndarray:
        """Frontier of a leaf: Exp(1) r-vectors at its rows pushed through
        its own structure (levels 1 -> 2 of the layered graph)."""
        leaves = self._rng.exponential(
            scale=1.0, size=(synopsis.shape[0], self.rounds)
        )
        return propagate_frontier(leaves, synopsis.structure)

    def _frontier_of(self, synopsis: LayeredGraphSynopsis) -> np.ndarray:
        if synopsis.frontier is not None:
            return synopsis.frontier
        if synopsis.structure is None:
            raise UnsupportedOperationError(
                "layered-graph synopsis lacks both frontier and structure"
            )
        frontier = self._leaf_frontier(synopsis)
        # Cache so repeated subchain estimates reuse the same randomness.
        synopsis.frontier = frontier
        return frontier

    def _propagate_matmul(
        self, a: LayeredGraphSynopsis, b: LayeredGraphSynopsis
    ) -> LayeredGraphSynopsis:
        if a.shape[1] != b.shape[0]:
            raise ShapeError(f"matmul shape mismatch: {a.shape} x {b.shape}")
        if not b.is_leaf:
            raise UnsupportedOperationError(
                "the layered graph supports left-deep chains: the right "
                "operand must be a base matrix"
            )
        frontier_a = self._frontier_of(a)
        frontier_out = propagate_frontier(frontier_a, b.structure)
        nnz = frontier_nnz_estimate(frontier_out)
        return LayeredGraphSynopsis(
            (a.shape[0], b.shape[1]), nnz, self.rounds, frontier=frontier_out
        )

    def _estimate_matmul(self, a: LayeredGraphSynopsis, b: LayeredGraphSynopsis) -> float:
        return self._propagate_matmul(a, b).nnz_estimate
