"""Analytical synopsis-size models (paper Figure 9 and Table 1).

Figure 9 plots synopsis sizes for matrices far too large to materialize
(e.g. 1M x 1M at sparsity 1.0); these closed-form models mirror the actual
implementations' footprints so the figure can be regenerated analytically.
The constants match this reproduction: int64 count vectors for MNC, float64
density maps, packed bits for the bitset, float64 r-vectors plus index
arrays for the layered graph.
"""

from __future__ import annotations

from repro.errors import UnsupportedOperationError


def bitset_size_bytes(m: int, n: int, nnz: int) -> float:
    """Packed boolean structure: one bit per cell."""
    return m * ((n + 7) // 8)


def density_map_size_bytes(m: int, n: int, nnz: int, block_size: int = 256) -> float:
    """One float64 per ``b x b`` block."""
    row_blocks = -(-m // block_size) if m else 0
    col_blocks = -(-n // block_size) if n else 0
    return row_blocks * col_blocks * 8


def mnc_size_bytes(m: int, n: int, nnz: int, with_extensions: bool = True) -> float:
    """Row + column count vectors (int64), doubled when extensions exist."""
    vectors = 4 if with_extensions else 2
    return vectors * (m + n) / 2 * 8 + 9 * 8


def layered_graph_size_bytes(m: int, n: int, nnz: int, rounds: int = 32) -> float:
    """r-vectors for all nodes plus edge arrays: O(r*d + nnz)."""
    nodes = m + n
    return nodes * rounds * 8 + nnz * 4 + (n + 1) * 4


def metadata_size_bytes(m: int, n: int, nnz: int) -> float:
    """Dimensions and a count."""
    return 3 * 8


def sampling_size_bytes(m: int, n: int, nnz: int, fraction: float = 0.05) -> float:
    """Sample indices only (nothing materialized)."""
    return max(1, round(fraction * n)) * 8


_MODELS = {
    "bitset": bitset_size_bytes,
    "density_map": density_map_size_bytes,
    "mnc": mnc_size_bytes,
    "layered_graph": layered_graph_size_bytes,
    "meta_ac": metadata_size_bytes,
    "meta_wc": metadata_size_bytes,
    "sampling": sampling_size_bytes,
}


def synopsis_size_bytes(name: str, m: int, n: int, nnz: int, **params: object) -> float:
    """Analytical synopsis size for estimator *name* on an ``m x n`` matrix
    with *nnz* non-zeros.

    Args:
        name: registry name of the estimator.
        **params: model parameters (``block_size``, ``rounds``,
            ``fraction``, ``with_extensions``).
    """
    try:
        model = _MODELS[name]
    except KeyError:
        raise UnsupportedOperationError(
            f"no size model for estimator {name!r}; available: {sorted(_MODELS)}"
        ) from None
    return model(m, n, nnz, **params)
