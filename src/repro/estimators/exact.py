"""Exact oracle "estimator": materializes every intermediate structure.

This is not a practical estimator — it performs the full (boolean) work of
the expression — but it provides the ground truth the SparsEst metrics are
computed against, through exactly the same interface as the real estimators.
"""

from __future__ import annotations

import scipy.sparse as sp

from repro.estimators.base import SparsityEstimator, Synopsis, register_estimator
from repro.matrix import ops as mops
from repro.matrix.conversion import MatrixLike, boolean_structure


class ExactSynopsis(Synopsis):
    """The materialized 0/1 structure of the (intermediate) matrix."""

    __slots__ = ("matrix",)

    def __init__(self, matrix: sp.csr_array):
        self.matrix = matrix

    @property
    def shape(self) -> tuple[int, int]:
        return tuple(int(d) for d in self.matrix.shape)

    @property
    def nnz_estimate(self) -> float:
        return float(self.matrix.nnz)

    def size_bytes(self) -> int:
        return (
            self.matrix.data.nbytes
            + self.matrix.indices.nbytes
            + self.matrix.indptr.nbytes
        )


@register_estimator("exact")
class ExactOracle(SparsityEstimator):
    """Ground-truth oracle implementing every operation exactly."""

    name = "Exact"
    contract_tags = frozenset({"exact"})

    def build(self, matrix: MatrixLike) -> ExactSynopsis:
        return ExactSynopsis(boolean_structure(matrix))

    # Every op: materialize, then read off the count.

    def _propagate_matmul(self, a: ExactSynopsis, b: ExactSynopsis) -> ExactSynopsis:
        return ExactSynopsis(mops.matmul(a.matrix, b.matrix))

    def _estimate_matmul(self, a: ExactSynopsis, b: ExactSynopsis) -> float:
        return self._propagate_matmul(a, b).nnz_estimate

    def _propagate_ewise_add(self, a: ExactSynopsis, b: ExactSynopsis) -> ExactSynopsis:
        return ExactSynopsis(mops.ewise_add(a.matrix, b.matrix))

    def _estimate_ewise_add(self, a: ExactSynopsis, b: ExactSynopsis) -> float:
        return self._propagate_ewise_add(a, b).nnz_estimate

    def _propagate_ewise_mult(self, a: ExactSynopsis, b: ExactSynopsis) -> ExactSynopsis:
        return ExactSynopsis(mops.ewise_mult(a.matrix, b.matrix))

    def _estimate_ewise_mult(self, a: ExactSynopsis, b: ExactSynopsis) -> float:
        return self._propagate_ewise_mult(a, b).nnz_estimate

    def _propagate_transpose(self, a: ExactSynopsis) -> ExactSynopsis:
        return ExactSynopsis(mops.transpose(a.matrix))

    def _estimate_transpose(self, a: ExactSynopsis) -> float:
        return a.nnz_estimate

    def _propagate_reshape(self, a: ExactSynopsis, *, rows: int, cols: int) -> ExactSynopsis:
        return ExactSynopsis(mops.reshape_rowwise(a.matrix, rows, cols))

    def _estimate_reshape(self, a: ExactSynopsis, *, rows: int, cols: int) -> float:
        return a.nnz_estimate

    def _propagate_diag_v2m(self, a: ExactSynopsis) -> ExactSynopsis:
        return ExactSynopsis(mops.diag_matrix(a.matrix))

    def _estimate_diag_v2m(self, a: ExactSynopsis) -> float:
        return a.nnz_estimate

    def _propagate_diag_m2v(self, a: ExactSynopsis) -> ExactSynopsis:
        return ExactSynopsis(mops.diag_extract(a.matrix))

    def _estimate_diag_m2v(self, a: ExactSynopsis) -> float:
        return self._propagate_diag_m2v(a).nnz_estimate

    def _propagate_rbind(self, a: ExactSynopsis, b: ExactSynopsis) -> ExactSynopsis:
        return ExactSynopsis(mops.rbind(a.matrix, b.matrix))

    def _estimate_rbind(self, a: ExactSynopsis, b: ExactSynopsis) -> float:
        return a.nnz_estimate + b.nnz_estimate

    def _propagate_cbind(self, a: ExactSynopsis, b: ExactSynopsis) -> ExactSynopsis:
        return ExactSynopsis(mops.cbind(a.matrix, b.matrix))

    def _estimate_cbind(self, a: ExactSynopsis, b: ExactSynopsis) -> float:
        return a.nnz_estimate + b.nnz_estimate

    def _propagate_neq_zero(self, a: ExactSynopsis) -> ExactSynopsis:
        return ExactSynopsis(mops.not_equals_zero(a.matrix))

    def _estimate_neq_zero(self, a: ExactSynopsis) -> float:
        return a.nnz_estimate

    def _propagate_eq_zero(self, a: ExactSynopsis) -> ExactSynopsis:
        return ExactSynopsis(mops.equals_zero(a.matrix))

    def _estimate_eq_zero(self, a: ExactSynopsis) -> float:
        return a.cells - a.nnz_estimate

    def _propagate_row_sums(self, a: ExactSynopsis) -> ExactSynopsis:
        return ExactSynopsis(mops.row_sums(a.matrix))

    def _estimate_row_sums(self, a: ExactSynopsis) -> float:
        return self._propagate_row_sums(a).nnz_estimate

    def _propagate_col_sums(self, a: ExactSynopsis) -> ExactSynopsis:
        return ExactSynopsis(mops.col_sums(a.matrix))

    def _estimate_col_sums(self, a: ExactSynopsis) -> float:
        return self._propagate_col_sums(a).nnz_estimate
