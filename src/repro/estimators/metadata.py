"""Naive metadata estimators (paper Section 2.1).

These derive the output sparsity solely from the operand sparsities, which
are available as metadata without touching the data:

- ``MetaAC`` (average case, Eq 1) assumes uniformly distributed non-zeros
  and estimates the complementary probability of an output cell being zero.
- ``MetaWC`` (worst case, Eq 2) assumes an adversarial alignment of dense
  columns/rows and upper-bounds the output sparsity.

Both run in O(1) per operation and propagate a scalar-only synopsis.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.estimators.base import SparsityEstimator, Synopsis, register_estimator
from repro.matrix.conversion import MatrixLike, as_csr


class MetaSynopsis(Synopsis):
    """Scalar synopsis: shape plus (estimated) non-zero count."""

    __slots__ = ("_shape", "_nnz")

    def __init__(self, shape: tuple[int, int], nnz: float):
        self._shape = (int(shape[0]), int(shape[1]))
        self._nnz = float(nnz)

    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    @property
    def nnz_estimate(self) -> float:
        return self._nnz

    def size_bytes(self) -> int:
        return 3 * 8  # two dimensions and one count


class _MetadataEstimator(SparsityEstimator):
    """Shared scaffolding: everything except the product formula.

    Reorganizations are exact from metadata for both variants; element-wise
    operations use the average-/worst-case combination rules respectively.
    """

    def build(self, matrix: MatrixLike) -> MetaSynopsis:
        csr = as_csr(matrix)
        return MetaSynopsis(csr.shape, csr.nnz)

    # -- products -------------------------------------------------------

    def _product_sparsity(self, s_a: float, s_b: float, n: int) -> float:
        raise NotImplementedError

    def _estimate_matmul(self, a: Synopsis, b: Synopsis) -> float:
        if a.shape[1] != b.shape[0]:
            raise ShapeError(f"matmul shape mismatch: {a.shape} x {b.shape}")
        n = a.shape[1]
        m, l = a.shape[0], b.shape[1]
        sparsity = self._product_sparsity(a.sparsity_estimate, b.sparsity_estimate, n)
        return sparsity * m * l

    def _propagate_matmul(self, a: Synopsis, b: Synopsis) -> MetaSynopsis:
        return MetaSynopsis(
            (a.shape[0], b.shape[1]), self._estimate_matmul(a, b)
        )

    # -- element-wise ----------------------------------------------------

    def _ewise_add_sparsity(self, s_a: float, s_b: float) -> float:
        raise NotImplementedError

    def _ewise_mult_sparsity(self, s_a: float, s_b: float) -> float:
        raise NotImplementedError

    def _estimate_ewise_add(self, a: Synopsis, b: Synopsis) -> float:
        if a.shape != b.shape:
            raise ShapeError(f"ewise_add shape mismatch: {a.shape} vs {b.shape}")
        return self._ewise_add_sparsity(a.sparsity_estimate, b.sparsity_estimate) * a.cells

    def _estimate_ewise_mult(self, a: Synopsis, b: Synopsis) -> float:
        if a.shape != b.shape:
            raise ShapeError(f"ewise_mult shape mismatch: {a.shape} vs {b.shape}")
        return self._ewise_mult_sparsity(a.sparsity_estimate, b.sparsity_estimate) * a.cells

    def _propagate_ewise_add(self, a: Synopsis, b: Synopsis) -> MetaSynopsis:
        return MetaSynopsis(a.shape, self._estimate_ewise_add(a, b))

    def _propagate_ewise_mult(self, a: Synopsis, b: Synopsis) -> MetaSynopsis:
        return MetaSynopsis(a.shape, self._estimate_ewise_mult(a, b))

    # -- reorganizations (exact from metadata) ----------------------------

    def _estimate_transpose(self, a: Synopsis) -> float:
        return a.nnz_estimate

    def _propagate_transpose(self, a: Synopsis) -> MetaSynopsis:
        return MetaSynopsis((a.shape[1], a.shape[0]), a.nnz_estimate)

    def _estimate_reshape(self, a: Synopsis, *, rows: int, cols: int) -> float:
        if rows * cols != a.cells:
            raise ShapeError(
                f"cannot reshape {a.shape} into {rows}x{cols}: cell counts differ"
            )
        return a.nnz_estimate

    def _propagate_reshape(self, a: Synopsis, *, rows: int, cols: int) -> MetaSynopsis:
        return MetaSynopsis((rows, cols), self._estimate_reshape(a, rows=rows, cols=cols))

    def _estimate_diag_v2m(self, a: Synopsis) -> float:
        return a.nnz_estimate

    def _propagate_diag_v2m(self, a: Synopsis) -> MetaSynopsis:
        return MetaSynopsis((a.shape[0], a.shape[0]), a.nnz_estimate)

    def _estimate_diag_m2v(self, a: Synopsis) -> float:
        # Expected diagonal hits under uniformity: nnz / n per row, m rows.
        m, n = a.shape
        if n == 0:
            return 0.0
        return a.nnz_estimate / n

    def _propagate_diag_m2v(self, a: Synopsis) -> MetaSynopsis:
        return MetaSynopsis((a.shape[0], 1), self._estimate_diag_m2v(a))

    def _estimate_rbind(self, a: Synopsis, b: Synopsis) -> float:
        return a.nnz_estimate + b.nnz_estimate

    def _propagate_rbind(self, a: Synopsis, b: Synopsis) -> MetaSynopsis:
        if a.shape[1] != b.shape[1]:
            raise ShapeError(f"rbind shape mismatch: {a.shape} vs {b.shape}")
        return MetaSynopsis(
            (a.shape[0] + b.shape[0], a.shape[1]), a.nnz_estimate + b.nnz_estimate
        )

    def _estimate_cbind(self, a: Synopsis, b: Synopsis) -> float:
        return a.nnz_estimate + b.nnz_estimate

    def _propagate_cbind(self, a: Synopsis, b: Synopsis) -> MetaSynopsis:
        if a.shape[0] != b.shape[0]:
            raise ShapeError(f"cbind shape mismatch: {a.shape} vs {b.shape}")
        return MetaSynopsis(
            (a.shape[0], a.shape[1] + b.shape[1]), a.nnz_estimate + b.nnz_estimate
        )

    def _estimate_neq_zero(self, a: Synopsis) -> float:
        return a.nnz_estimate

    def _propagate_neq_zero(self, a: Synopsis) -> MetaSynopsis:
        return MetaSynopsis(a.shape, a.nnz_estimate)

    def _estimate_eq_zero(self, a: Synopsis) -> float:
        return a.cells - a.nnz_estimate

    def _propagate_eq_zero(self, a: Synopsis) -> MetaSynopsis:
        return MetaSynopsis(a.shape, self._estimate_eq_zero(a))

    # -- aggregations (average-case non-empty-row/column counts) --------------

    def _aggregate_nnz(self, a: Synopsis, groups: int, width: int) -> float:
        # Expected number of non-empty groups of `width` cells each under a
        # uniform scatter of the non-zeros.
        if groups == 0 or width == 0:
            return 0.0
        sparsity = a.sparsity_estimate
        if sparsity >= 1.0:
            return float(groups)
        return float(groups) * float(-np.expm1(width * np.log1p(-sparsity)))

    def _estimate_row_sums(self, a: Synopsis) -> float:
        return self._aggregate_nnz(a, a.shape[0], a.shape[1])

    def _propagate_row_sums(self, a: Synopsis) -> MetaSynopsis:
        return MetaSynopsis((a.shape[0], 1), self._estimate_row_sums(a))

    def _estimate_col_sums(self, a: Synopsis) -> float:
        return self._aggregate_nnz(a, a.shape[1], a.shape[0])

    def _propagate_col_sums(self, a: Synopsis) -> MetaSynopsis:
        return MetaSynopsis((1, a.shape[1]), self._estimate_col_sums(a))


@register_estimator("meta_ac")
class MetaACEstimator(_MetadataEstimator):
    """Average-case metadata estimator ``E_ac`` (Eq 1), unbiased under
    uniformly and independently distributed non-zeros."""

    name = "MetaAC"
    contract_tags = frozenset({"unbiased_model"})

    def _product_sparsity(self, s_a: float, s_b: float, n: int) -> float:
        product = s_a * s_b
        if product >= 1.0:
            return 1.0
        # 1 - (1 - sA*sB)^n, evaluated in log space for numerical stability
        # with large n and tiny products.
        return float(-np.expm1(n * np.log1p(-product)))

    def _ewise_add_sparsity(self, s_a: float, s_b: float) -> float:
        return s_a + s_b - s_a * s_b

    def _ewise_mult_sparsity(self, s_a: float, s_b: float) -> float:
        return s_a * s_b


@register_estimator("meta_ultrasparse")
class MetaUltraSparseEstimator(_MetadataEstimator):
    """The even simpler ultra-sparse estimator ``sC = sA * sB * n`` the
    paper cites in footnote 2 (due to Cohen [16]).

    This is the first-order Taylor expansion of Eq 1 — accurate while
    ``sA * sB * n << 1`` (no collisions expected) and increasingly wrong as
    products densify; element-wise and reorganization handling follows the
    average-case rules.
    """

    name = "MetaUS"

    def _product_sparsity(self, s_a: float, s_b: float, n: int) -> float:
        return min(1.0, s_a * s_b * n)

    def _ewise_add_sparsity(self, s_a: float, s_b: float) -> float:
        return min(1.0, s_a + s_b)

    def _ewise_mult_sparsity(self, s_a: float, s_b: float) -> float:
        return s_a * s_b


@register_estimator("meta_wc")
class MetaWCEstimator(_MetadataEstimator):
    """Worst-case metadata estimator ``E_wc`` (Eq 2), an upper bound used for
    conservative memory estimates."""

    name = "MetaWC"
    contract_tags = frozenset({"upper_bound"})

    def _product_sparsity(self, s_a: float, s_b: float, n: int) -> float:
        return min(1.0, s_a * n) * min(1.0, s_b * n)

    def _ewise_add_sparsity(self, s_a: float, s_b: float) -> float:
        return min(1.0, s_a + s_b)

    def _ewise_mult_sparsity(self, s_a: float, s_b: float) -> float:
        return min(s_a, s_b)

    def _estimate_diag_m2v(self, a: Synopsis) -> float:
        # Worst case: every non-zero sits on the diagonal. The inherited
        # average-case rule (nnz / n) under-estimates — e.g. a dense diagonal
        # matrix extracts n non-zeros while nnz / n = 1 — which breaks the
        # estimator's upper-bound guarantee (found by repro.verify, see
        # tests/corpus/metawc-diag-extract).
        return float(min(a.shape[0], a.nnz_estimate))

    def _aggregate_nnz(self, a: Synopsis, groups: int, width: int) -> float:
        # Worst case: every non-zero lands in a distinct group.
        return float(min(groups, a.nnz_estimate))
