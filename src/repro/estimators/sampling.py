"""Sampling-based sparsity estimators (paper Section 2.3 and Appendix A).

Both variants draw a uniform sample ``S`` of positions along the common
dimension and look at the aligned column of A and row of B:

- The **biased** estimator of Yu et al. (Eq 5) uses the sparsity of the
  largest sampled outer product — a strict lower bound on the true output
  sparsity that does not converge even for ``|S| = n``.
- The **unbiased** extension (Appendix A, Eq 16) treats the unsampled outer
  products as drawn from the empirical distribution of the sampled ones and
  combines them with the probabilistic-union rule.

No synopsis is materialized at build time: the leaf synopsis carries the
per-column/per-row count vectors the sample would read from the matrix, and
its reported size is the sample footprint ``O(|S|)`` of Table 1. For chains,
the unbiased variant propagates the scalar estimate and assumes uniform
slice counts downstream (``nnz(M:k) = m * s``), exactly as Appendix A
prescribes; the biased variant supports single products only.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.rounding import SeedLike, resolve_rng
from repro.errors import ShapeError, UnsupportedOperationError
from repro.estimators.base import SparsityEstimator, Synopsis, register_estimator
from repro.matrix.conversion import MatrixLike, as_csr
from repro.matrix.properties import col_nnz, row_nnz

DEFAULT_SAMPLE_FRACTION = 0.05


class SamplingSynopsis(Synopsis):
    """Leaf or propagated state for the sampling estimators.

    Leaves keep the exact per-row/per-column counts (reads into the actual
    matrix at estimation time); propagated intermediates only know their
    shape and estimated count and fall back to uniform slice counts.
    """

    __slots__ = ("_shape", "_nnz", "row_counts", "col_counts", "sample_size")

    def __init__(
        self,
        shape: tuple[int, int],
        nnz: float,
        row_counts: Optional[np.ndarray] = None,
        col_counts: Optional[np.ndarray] = None,
        sample_size: int = 0,
    ):
        self._shape = (int(shape[0]), int(shape[1]))
        self._nnz = float(nnz)
        self.row_counts = row_counts
        self.col_counts = col_counts
        self.sample_size = int(sample_size)

    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    @property
    def nnz_estimate(self) -> float:
        return self._nnz

    def size_bytes(self) -> int:
        # Table 1: O(|S|) — the sample indices; the count vectors model reads
        # into the (already resident) input matrix.
        return self.sample_size * 8

    def column_slice_counts(self, sample: np.ndarray) -> np.ndarray:
        """``nnz(A[:, k])`` for each sampled ``k`` (uniform if propagated)."""
        if self.col_counts is not None:
            return self.col_counts[sample].astype(np.float64)
        m, n = self._shape
        uniform = self._nnz / n if n else 0.0
        return np.full(sample.size, min(uniform, m), dtype=np.float64)

    def row_slice_counts(self, sample: np.ndarray) -> np.ndarray:
        """``nnz(B[k, :])`` for each sampled ``k`` (uniform if propagated)."""
        if self.row_counts is not None:
            return self.row_counts[sample].astype(np.float64)
        m, n = self._shape
        uniform = self._nnz / m if m else 0.0
        return np.full(sample.size, min(uniform, n), dtype=np.float64)


class _SamplingBase(SparsityEstimator):
    """Shared sampling machinery; subclasses choose the combiner."""

    def __init__(
        self,
        *,
        fraction: float = DEFAULT_SAMPLE_FRACTION,
        seed: SeedLike = 0xC0FFEE,
    ):
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"sample fraction must be in (0, 1], got {fraction}")
        self.fraction = float(fraction)
        self._rng = resolve_rng(seed)

    def build(self, matrix: MatrixLike) -> SamplingSynopsis:
        csr = as_csr(matrix)
        sample_size = max(1, round(self.fraction * csr.shape[1]))
        return SamplingSynopsis(
            csr.shape, csr.nnz,
            row_counts=row_nnz(csr), col_counts=col_nnz(csr),
            sample_size=sample_size,
        )

    def _draw_sample(self, n: int) -> np.ndarray:
        size = max(1, min(n, round(self.fraction * n)))
        return self._rng.choice(n, size=size, replace=False)

    def _sampled_outer_counts(
        self, a: SamplingSynopsis, b: SamplingSynopsis
    ) -> tuple[np.ndarray, int]:
        if a.shape[1] != b.shape[0]:
            raise ShapeError(f"matmul shape mismatch: {a.shape} x {b.shape}")
        n = a.shape[1]
        if n == 0:
            return np.zeros(0), 0
        sample = self._draw_sample(n)
        counts = a.column_slice_counts(sample) * b.row_slice_counts(sample)
        return counts, n

    # Element-wise support: per-slice average case over sampled rows
    # (paper Section 4.1's baseline approach).

    def _estimate_ewise_mult(self, a: SamplingSynopsis, b: SamplingSynopsis) -> float:
        if a.shape != b.shape:
            raise ShapeError(f"ewise_mult shape mismatch: {a.shape} vs {b.shape}")
        m, n = a.shape
        if m == 0 or n == 0:
            return 0.0
        sample = self._rng.choice(m, size=max(1, min(m, round(self.fraction * m))),
                                  replace=False)
        rows_a = a.row_slice_counts(sample)
        rows_b = b.row_slice_counts(sample)
        per_row = rows_a * rows_b / n
        return float(per_row.mean() * m)

    def _estimate_ewise_add(self, a: SamplingSynopsis, b: SamplingSynopsis) -> float:
        if a.shape != b.shape:
            raise ShapeError(f"ewise_add shape mismatch: {a.shape} vs {b.shape}")
        overlap = self._estimate_ewise_mult(a, b)
        return min(a.nnz_estimate + b.nnz_estimate - overlap, float(a.cells))


@register_estimator("sampling")
class SamplingEstimator(_SamplingBase):
    """Biased sampling estimator of Yu et al. (Eq 5): a strict lower bound.

    Single matrix products only (Table 1's chain column is empty for it).
    """

    name = "Sample"
    contract_tags = frozenset({"lower_bound", "randomized"})

    def _estimate_matmul(self, a: SamplingSynopsis, b: SamplingSynopsis) -> float:
        counts, n = self._sampled_outer_counts(a, b)
        if counts.size == 0:
            return 0.0
        return float(counts.max())

    def _propagate_matmul(self, a: Synopsis, b: Synopsis) -> Synopsis:
        raise UnsupportedOperationError(
            "the biased sampling estimator applies to single matrix products only"
        )


@register_estimator("sampling_unbiased")
class UnbiasedSamplingEstimator(_SamplingBase):
    """Unbiased sampling estimator (Appendix A, Eq 16)."""

    name = "SampleUB"
    contract_tags = frozenset({"unbiased", "randomized"})

    def _estimate_matmul(self, a: SamplingSynopsis, b: SamplingSynopsis) -> float:
        counts, n = self._sampled_outer_counts(a, b)
        if counts.size == 0:
            return 0.0
        m, l = a.shape[0], b.shape[1]
        cells = float(m) * float(l)
        if cells == 0:
            return 0.0
        v = np.clip(counts / cells, 0.0, 1.0)
        if np.any(v >= 1.0):
            return cells
        q = n - counts.size
        v_bar = float(v.mean())
        log_zero = q * np.log1p(-v_bar) + np.log1p(-v).sum()
        return cells * float(-np.expm1(log_zero))

    def _propagate_matmul(
        self, a: SamplingSynopsis, b: SamplingSynopsis
    ) -> SamplingSynopsis:
        nnz = self._estimate_matmul(a, b)
        sample_size = max(1, round(self.fraction * b.shape[1]))
        return SamplingSynopsis(
            (a.shape[0], b.shape[1]), nnz, sample_size=sample_size
        )
