"""All sparsity estimators behind one common interface.

Importing this package registers every estimator; use
:func:`~repro.estimators.base.make_estimator` to instantiate by name:

==================  =============================================  ========
Registry name       Estimator (paper reference)                    Class
==================  =============================================  ========
``meta_ac``         average-case metadata, Eq 1                    MetaACEstimator
``meta_ultrasparse``  first-order ultra-sparse, footnote 2          MetaUltraSparseEstimator
``meta_wc``         worst-case metadata, Eq 2                      MetaWCEstimator
``bitset``          exact boolean MM, Eq 3                         BitsetEstimator
``density_map``     block density map, Eq 4                        DensityMapEstimator
``sampling``        biased sampling, Eq 5                          SamplingEstimator
``sampling_unbiased``  unbiased sampling, Appendix A Eq 16         UnbiasedSamplingEstimator
``hash``            KMV/hashing of Amossen et al., Appendix A      HashEstimator
``layered_graph``   Cohen's layered graph, Eq 6                    LayeredGraphEstimator
``mnc``             the MNC sketch, Sections 3-4                   MNCEstimator
``mnc_basic``       MNC without extensions/bounds                  MNCBasicEstimator
``quadtree_map``    dynamic (quad-tree) density map, Sec 2.2       QuadTreeEstimator
``exact``           ground-truth oracle                            ExactOracle
==================  =============================================  ========

:func:`available_estimators` is the authoritative name list (``repro
estimators`` prints it with contract tags and cost tiers). The
pseudo-name ``"auto"`` — accepted by :class:`EstimatorSpec` and every
spec-aware surface — selects adaptive routing (:mod:`repro.router`) and
is deliberately *not* a registry entry.
"""

from repro.estimators.base import (
    SparsityEstimator,
    Synopsis,
    available_estimators,
    make_estimator,
    register_estimator,
)
from repro.estimators.bitset import BitsetEstimator, BitsetSynopsis, pack_matrix
from repro.estimators.density_map import DensityMapEstimator, DensityMapSynopsis
from repro.estimators.exact import ExactOracle, ExactSynopsis
from repro.estimators.hashing import HashEstimator, HashSynopsis
from repro.estimators.layered_graph import (
    LayeredGraphEstimator,
    LayeredGraphSynopsis,
)
from repro.estimators.metadata import (
    MetaACEstimator,
    MetaSynopsis,
    MetaUltraSparseEstimator,
    MetaWCEstimator,
)
from repro.estimators.mnc import MNCBasicEstimator, MNCEstimator, MNCSynopsis
from repro.estimators.quadtree import QuadTreeEstimator, QuadTreeSynopsis
from repro.estimators.sampling import (
    SamplingEstimator,
    SamplingSynopsis,
    UnbiasedSamplingEstimator,
)
from repro.estimators.spec import AUTO_NAME, EstimatorSpec, estimator_accepts_seed

__all__ = [
    "AUTO_NAME",
    "BitsetEstimator",
    "BitsetSynopsis",
    "DensityMapEstimator",
    "DensityMapSynopsis",
    "EstimatorSpec",
    "ExactOracle",
    "ExactSynopsis",
    "HashEstimator",
    "HashSynopsis",
    "LayeredGraphEstimator",
    "LayeredGraphSynopsis",
    "MetaACEstimator",
    "MetaSynopsis",
    "MetaUltraSparseEstimator",
    "MetaWCEstimator",
    "MNCBasicEstimator",
    "MNCEstimator",
    "MNCSynopsis",
    "QuadTreeEstimator",
    "QuadTreeSynopsis",
    "SamplingEstimator",
    "SamplingSynopsis",
    "SparsityEstimator",
    "Synopsis",
    "UnbiasedSamplingEstimator",
    "available_estimators",
    "estimator_accepts_seed",
    "make_estimator",
    "pack_matrix",
    "register_estimator",
]
