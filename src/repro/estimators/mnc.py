"""MNC estimator adapter: exposes :mod:`repro.core` behind the common
estimator interface so the SparsEst runner treats it like any baseline.

Two registered variants mirror the paper's figures:

- ``"mnc"`` — the full estimator (extension vectors + Theorem 3.2 bounds).
- ``"mnc_basic"`` — count vectors only, no extensions and no bounds.
"""

from __future__ import annotations

from repro.core import ops as core_ops
from repro.core.estimate import estimate_product_nnz
from repro.core.propagate import propagate_product
from repro.core.rounding import SeedLike, resolve_rng
from repro.core.sketch import MNCSketch
from repro.errors import ShapeError
from repro.estimators.base import SparsityEstimator, Synopsis, register_estimator
from repro.matrix.conversion import MatrixLike


class MNCSynopsis(Synopsis):
    """Thin :class:`Synopsis` wrapper around an :class:`MNCSketch`."""

    __slots__ = ("sketch",)

    def __init__(self, sketch: MNCSketch):
        self.sketch = sketch

    @property
    def shape(self) -> tuple[int, int]:
        return self.sketch.shape

    @property
    def nnz_estimate(self) -> float:
        return float(self.sketch.total_nnz)

    def size_bytes(self) -> int:
        return self.sketch.size_bytes()


@register_estimator("mnc")
class MNCEstimator(SparsityEstimator):
    """The paper's MNC estimator (Sections 3–4).

    Args:
        use_extensions: build and exploit the extended count vectors.
        use_bounds: apply the Theorem 3.2 bounds and the reduced output size.
        seed: randomness for probabilistic rounding during propagation.
    """

    name = "MNC"
    contract_tags = frozenset(
        {"theorem31", "theorem32", "sketch", "randomized_propagation"}
    )

    def __init__(
        self,
        *,
        use_extensions: bool = True,
        use_bounds: bool = True,
        seed: SeedLike = 0x5EED,
    ):
        self.use_extensions = bool(use_extensions)
        self.use_bounds = bool(use_bounds)
        self._rng = resolve_rng(seed)

    def build(self, matrix: MatrixLike) -> MNCSynopsis:
        sketch = MNCSketch.from_matrix(matrix, with_extensions=self.use_extensions)
        return MNCSynopsis(sketch)

    # -- products ---------------------------------------------------------

    def _estimate_matmul(self, a: MNCSynopsis, b: MNCSynopsis) -> float:
        return estimate_product_nnz(
            a.sketch, b.sketch,
            use_extensions=self.use_extensions, use_bounds=self.use_bounds,
        )

    def _propagate_matmul(self, a: MNCSynopsis, b: MNCSynopsis) -> MNCSynopsis:
        sketch = propagate_product(
            a.sketch, b.sketch, rng=self._rng,
            use_extensions=self.use_extensions, use_bounds=self.use_bounds,
        )
        return MNCSynopsis(sketch)

    # -- element-wise (Eq 13 / Eq 15) ---------------------------------------

    def _estimate_ewise_add(self, a: MNCSynopsis, b: MNCSynopsis) -> float:
        return core_ops.estimate_ewise_add_nnz(a.sketch, b.sketch)

    def _propagate_ewise_add(self, a: MNCSynopsis, b: MNCSynopsis) -> MNCSynopsis:
        return MNCSynopsis(core_ops.propagate_ewise_add(a.sketch, b.sketch, rng=self._rng))

    def _estimate_ewise_mult(self, a: MNCSynopsis, b: MNCSynopsis) -> float:
        return core_ops.estimate_ewise_mult_nnz(a.sketch, b.sketch)

    def _propagate_ewise_mult(self, a: MNCSynopsis, b: MNCSynopsis) -> MNCSynopsis:
        return MNCSynopsis(core_ops.propagate_ewise_mult(a.sketch, b.sketch, rng=self._rng))

    # -- reorganizations (Eq 14, exact where possible) -------------------------

    def _estimate_transpose(self, a: MNCSynopsis) -> float:
        return a.nnz_estimate

    def _propagate_transpose(self, a: MNCSynopsis) -> MNCSynopsis:
        return MNCSynopsis(core_ops.propagate_transpose(a.sketch))

    def _estimate_reshape(self, a: MNCSynopsis, *, rows: int, cols: int) -> float:
        if rows * cols != a.cells:
            raise ShapeError(
                f"cannot reshape {a.shape} into {rows}x{cols}: cell counts differ"
            )
        return a.nnz_estimate

    def _propagate_reshape(self, a: MNCSynopsis, *, rows: int, cols: int) -> MNCSynopsis:
        return MNCSynopsis(
            core_ops.propagate_reshape(a.sketch, rows, cols, rng=self._rng)
        )

    def _estimate_diag_v2m(self, a: MNCSynopsis) -> float:
        return a.nnz_estimate

    def _propagate_diag_v2m(self, a: MNCSynopsis) -> MNCSynopsis:
        return MNCSynopsis(core_ops.propagate_diag_vector(a.sketch))

    def _estimate_diag_m2v(self, a: MNCSynopsis) -> float:
        return self._propagate_diag_m2v(a).nnz_estimate

    def _propagate_diag_m2v(self, a: MNCSynopsis) -> MNCSynopsis:
        return MNCSynopsis(core_ops.propagate_diag_extract(a.sketch, rng=self._rng))

    def _estimate_rbind(self, a: MNCSynopsis, b: MNCSynopsis) -> float:
        return a.nnz_estimate + b.nnz_estimate

    def _propagate_rbind(self, a: MNCSynopsis, b: MNCSynopsis) -> MNCSynopsis:
        return MNCSynopsis(core_ops.propagate_rbind(a.sketch, b.sketch))

    def _estimate_cbind(self, a: MNCSynopsis, b: MNCSynopsis) -> float:
        return a.nnz_estimate + b.nnz_estimate

    def _propagate_cbind(self, a: MNCSynopsis, b: MNCSynopsis) -> MNCSynopsis:
        return MNCSynopsis(core_ops.propagate_cbind(a.sketch, b.sketch))

    def _estimate_neq_zero(self, a: MNCSynopsis) -> float:
        return a.nnz_estimate

    def _propagate_neq_zero(self, a: MNCSynopsis) -> MNCSynopsis:
        return MNCSynopsis(core_ops.propagate_not_equals_zero(a.sketch))

    def _estimate_eq_zero(self, a: MNCSynopsis) -> float:
        return a.cells - a.nnz_estimate

    def _propagate_eq_zero(self, a: MNCSynopsis) -> MNCSynopsis:
        return MNCSynopsis(core_ops.propagate_equals_zero(a.sketch))

    # -- aggregations (exact from the count vectors) -------------------------

    def _estimate_row_sums(self, a: MNCSynopsis) -> float:
        return float(a.sketch.nnz_rows)

    def _propagate_row_sums(self, a: MNCSynopsis) -> MNCSynopsis:
        return MNCSynopsis(core_ops.propagate_row_sums(a.sketch))

    def _estimate_col_sums(self, a: MNCSynopsis) -> float:
        return float(a.sketch.nnz_cols)

    def _propagate_col_sums(self, a: MNCSynopsis) -> MNCSynopsis:
        return MNCSynopsis(core_ops.propagate_col_sums(a.sketch))


@register_estimator("mnc_basic")
class MNCBasicEstimator(MNCEstimator):
    """MNC without extension vectors and Theorem 3.2 bounds (ablation)."""

    name = "MNC Basic"

    def __init__(self, *, seed: SeedLike = 0x5EED):
        super().__init__(use_extensions=False, use_bounds=False, seed=seed)
