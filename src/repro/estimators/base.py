"""Common estimator interface and registry.

Every sparsity estimator in the paper — and this reproduction — follows the
same life cycle:

1. ``build(matrix)`` constructs a *synopsis* for a leaf matrix (possibly a
   trivial one, e.g. just ``(shape, nnz)`` for the metadata estimators).
2. ``propagate(op, operands, **params)`` derives the synopsis of an
   intermediate result from operand synopses.
3. ``estimate_nnz(op, operands, **params)`` estimates the non-zero count of
   an operation's result directly (used at DAG roots, where no synopsis is
   needed — mirroring the paper's implementation detail of estimating roots
   directly instead of propagating to them).

Estimators advertise what they support through
:meth:`SparsityEstimator.supports`; unsupported combinations raise
:class:`~repro.errors.UnsupportedOperationError`, which the SparsEst runner
reports as the paper's figures do (an "x" instead of a bar).
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Dict, Sequence

from repro.errors import (
    EstimatorOptionError,
    ReproError,
    UnknownEstimatorError,
    UnsupportedOperationError,
)
from repro.matrix.conversion import MatrixLike
from repro.observability.flight import FLIGHT
from repro.observability.metrics import metric_inc
from repro.opcodes import Op


class Synopsis(abc.ABC):
    """Base class for per-matrix synopses.

    Subclasses carry whatever structure their estimator needs; the two
    universally required pieces are the matrix shape and an estimate of the
    non-zero count (exact for leaf synopses, estimated for propagated ones).
    """

    __slots__ = ()

    @property
    @abc.abstractmethod
    def shape(self) -> tuple[int, int]:
        """Shape of the (possibly virtual) matrix this synopsis describes."""

    @property
    @abc.abstractmethod
    def nnz_estimate(self) -> float:
        """(Estimated) number of structural non-zeros."""

    @property
    def cells(self) -> int:
        """Total number of matrix cells."""
        m, n = self.shape
        return m * n

    @property
    def sparsity_estimate(self) -> float:
        """(Estimated) sparsity ``nnz / cells`` (0.0 for empty shapes)."""
        if self.cells == 0:
            return 0.0
        return self.nnz_estimate / self.cells

    def size_bytes(self) -> int:
        """Approximate memory footprint of the synopsis in bytes."""
        return 0


class SparsityEstimator(abc.ABC):
    """Abstract base class for all sparsity estimators.

    Subclasses implement :meth:`build` plus handlers for the operations they
    support; the generic :meth:`estimate_nnz`/:meth:`propagate` entry points
    dispatch on :class:`~repro.opcodes.Op`. Handler methods follow the naming
    convention ``_estimate_<op>`` / ``_propagate_<op>`` and receive the
    operand synopses positionally plus operation parameters as keywords.
    """

    #: Short identifier used in benchmark tables (e.g. ``"MNC"``).
    name: str = "abstract"

    #: Declarative invariant tags consumed by :mod:`repro.verify.contracts`.
    #: Each tag names a relational guarantee the estimator claims to honor
    #: (e.g. ``"exact"`` for oracles, ``"upper_bound"`` for MetaWC,
    #: ``"theorem31"`` for MNC's exactness cases); the differential-testing
    #: engine checks every claimed tag against the exact oracle.
    contract_tags: frozenset = frozenset()

    @abc.abstractmethod
    def build(self, matrix: MatrixLike) -> Synopsis:
        """Construct the synopsis of a leaf matrix."""

    def contract_metadata(self) -> Dict[str, Any]:
        """Machine-readable description of this estimator's verified surface.

        Returns the estimator name, its claimed contract tags, and the
        operations it supports for direct estimation and for synopsis
        propagation — the coordinates :mod:`repro.verify` uses to build its
        (estimator x contract x generator) cell matrix.
        """
        ops = [op for op in Op if op is not Op.LEAF]
        return {
            "name": self.name,
            "tags": sorted(self.contract_tags),
            "estimates": [op.value for op in ops if self.supports(op)],
            "propagates": [op.value for op in ops if self.supports_propagation(op)],
        }

    # ------------------------------------------------------------------
    # Generic dispatch
    # ------------------------------------------------------------------

    def estimate_nnz(self, op: Op, operands: Sequence[Synopsis], **params: Any) -> float:
        """Estimate the non-zero count of ``op`` applied to *operands*."""
        handler = self._handler("estimate", op)
        try:
            return float(handler(*operands, **params))
        except UnsupportedOperationError:
            raise
        except Exception as exc:
            # An unexpected estimator crash (not a declared capability gap)
            # is exactly what the flight recorder exists for: capture the
            # last-N events and metrics state before re-raising.
            self._record_crash("estimate", op, exc)
            raise

    def estimate_sparsity(self, op: Op, operands: Sequence[Synopsis], **params: Any) -> float:
        """Estimate the sparsity of ``op`` applied to *operands*."""
        nnz = self.estimate_nnz(op, operands, **params)
        m, n = self.output_shape(op, operands, **params)
        if m == 0 or n == 0:
            return 0.0
        return nnz / (m * n)

    def propagate(self, op: Op, operands: Sequence[Synopsis], **params: Any) -> Synopsis:
        """Derive the synopsis of ``op`` applied to *operands*."""
        handler = self._handler("propagate", op)
        try:
            return handler(*operands, **params)
        except UnsupportedOperationError:
            raise
        except Exception as exc:
            self._record_crash("propagate", op, exc)
            raise

    def _record_crash(self, kind: str, op: Op, exc: Exception) -> None:
        """Log an unexpected handler exception to metrics + flight recorder."""
        metric_inc(f"estimator.exceptions.{self.name}")
        FLIGHT.record(
            "estimator_exception", f"{self.name}.{kind}.{op.value}",
            detail={"error": type(exc).__name__, "message": str(exc)[:200]},
        )
        FLIGHT.trigger_dump(
            "estimator_exception", estimator=self.name, kind=kind,
            op=op.value, error=type(exc).__name__, message=str(exc),
        )

    def supports(self, op: Op) -> bool:
        """Whether this estimator implements estimation for ``op``."""
        return hasattr(self, f"_estimate_{op.value}")

    def supports_propagation(self, op: Op) -> bool:
        """Whether this estimator can derive intermediate synopses for ``op``."""
        return hasattr(self, f"_propagate_{op.value}")

    def _handler(self, kind: str, op: Op) -> Callable[..., Any]:
        """Resolve the ``_<kind>_<op>`` handler method, *kind* being the
        plain verb ``"estimate"`` or ``"propagate"`` (also used verbatim in
        the error message)."""
        handler = getattr(self, f"_{kind}_{op.value}", None)
        if handler is None:
            raise UnsupportedOperationError(
                f"estimator {self.name!r} does not support "
                f"{kind} of {op.value!r}"
            )
        return handler

    # ------------------------------------------------------------------
    # Shape inference (shared by all estimators)
    # ------------------------------------------------------------------

    @staticmethod
    def output_shape(op: Op, operands: Sequence[Synopsis], **params: Any) -> tuple[int, int]:
        """Shape of the result of ``op`` on *operands* (pure metadata)."""
        shapes = [operand.shape for operand in operands]
        if op is Op.MATMUL:
            return (shapes[0][0], shapes[1][1])
        if op in (Op.EWISE_ADD, Op.EWISE_MULT, Op.NEQ_ZERO, Op.EQ_ZERO):
            return shapes[0]
        if op is Op.TRANSPOSE:
            return (shapes[0][1], shapes[0][0])
        if op is Op.RESHAPE:
            return (params["rows"], params["cols"])
        if op is Op.DIAG_V2M:
            return (shapes[0][0], shapes[0][0])
        if op is Op.DIAG_M2V:
            return (shapes[0][0], 1)
        if op is Op.RBIND:
            return (shapes[0][0] + shapes[1][0], shapes[0][1])
        if op is Op.CBIND:
            return (shapes[0][0], shapes[0][1] + shapes[1][1])
        if op is Op.ROW_SUMS:
            return (shapes[0][0], 1)
        if op is Op.COL_SUMS:
            return (1, shapes[0][1])
        raise UnsupportedOperationError(f"no shape rule for {op!r}")


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_REGISTRY: Dict[str, Callable[..., SparsityEstimator]] = {}


def register_estimator(name: str) -> Callable[[type], type]:
    """Class decorator registering an estimator factory under *name*."""

    def decorator(cls: type) -> type:
        _REGISTRY[name] = cls
        return cls

    return decorator


def available_estimators() -> list[str]:
    """Names of all registered estimators."""
    return sorted(_REGISTRY)


def make_estimator(name: str, **kwargs: Any) -> SparsityEstimator:
    """Instantiate a registered estimator by name.

    Args:
        name: registry key (see :func:`available_estimators` — the
            authoritative name list; ``repro estimators`` prints it with
            contract tags and cost tiers).
        **kwargs: forwarded to the estimator constructor (e.g.
            ``block_size=256`` for the density map).

    Raises:
        UnknownEstimatorError: *name* is not registered (a subclass of the
            historical :class:`UnsupportedOperationError`).
        EstimatorOptionError: the constructor rejected **kwargs** (unknown
            keyword or invalid value).
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise UnknownEstimatorError(
            f"unknown estimator {name!r}; available: {available_estimators()}",
            details={
                "estimator": name,
                "available_estimators": available_estimators(),
            },
        ) from None
    try:
        return factory(**kwargs)
    except (TypeError, ValueError) as exc:
        if isinstance(exc, ReproError):
            raise
        raise EstimatorOptionError(
            f"invalid options for estimator {name!r}: {exc}",
            details={"estimator": name, "options": sorted(kwargs)},
        ) from exc
