"""Density map estimator ``E_dm`` (paper Section 2.2, Eq 4).

The synopsis partitions the matrix into ``b x b`` blocks (``b = 256`` by
default) and stores each block's density. Products combine blocks with a
pseudo matrix multiplication that replaces multiply with the average-case
estimator and plus with probabilistic union, evaluated here in log space.

Block size trades accuracy for overhead: ``b = 1`` degenerates to the bitset
estimator and ``b = max(dim)`` to MetaAC. The paper's Figure 12(c–d) sweeps
this parameter; :class:`DensityMapEstimator` takes it as a constructor
argument for that purpose.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.estimators.base import SparsityEstimator, Synopsis, register_estimator
from repro.matrix.conversion import MatrixLike, as_csr

DEFAULT_BLOCK_SIZE = 256


def _block_sizes(dim: int, block: int) -> np.ndarray:
    """Sizes of the ``ceil(dim/block)`` blocks along one dimension."""
    if dim == 0:
        return np.zeros(0, dtype=np.int64)
    count = (dim + block - 1) // block
    sizes = np.full(count, block, dtype=np.int64)
    remainder = dim - (count - 1) * block
    sizes[-1] = remainder
    return sizes


class DensityMapSynopsis(Synopsis):
    """Per-block density grid for a matrix."""

    __slots__ = ("_shape", "_block", "_density", "_row_sizes", "_col_sizes", "_nnz")

    def __init__(self, shape: tuple[int, int], block: int, density: np.ndarray):
        self._shape = (int(shape[0]), int(shape[1]))
        self._block = int(block)
        self._density = np.clip(density, 0.0, 1.0)
        self._row_sizes = _block_sizes(self._shape[0], self._block)
        self._col_sizes = _block_sizes(self._shape[1], self._block)
        cells = np.outer(self._row_sizes, self._col_sizes).astype(np.float64)
        self._nnz = float((self._density * cells).sum())

    @property
    def shape(self) -> tuple[int, int]:
        return self._shape

    @property
    def block(self) -> int:
        """Configured block size ``b``."""
        return self._block

    @property
    def density(self) -> np.ndarray:
        """The block density grid of shape ``(ceil(m/b), ceil(n/b))``."""
        return self._density

    @property
    def block_cells(self) -> np.ndarray:
        """Cell count of each block (edge blocks are smaller)."""
        return np.outer(self._row_sizes, self._col_sizes).astype(np.float64)

    @property
    def nnz_estimate(self) -> float:
        return self._nnz

    def size_bytes(self) -> int:
        return self._density.nbytes

    def block_counts(self) -> np.ndarray:
        """Estimated non-zeros per block."""
        return self._density * self.block_cells


def auto_block_size(m: int, n: int, target_blocks: int = 4096) -> int:
    """Pick a block size so the grid holds about *target_blocks* entries.

    The paper (Section 2.2) observes that a fixed default block size can
    make the density map larger than an ultra-sparse input and that the
    best size is data-dependent; this policy is the simple dimension-aware
    compromise (a full dynamic quad-tree would complicate the estimator,
    as the paper notes). The result is clamped to [1, DEFAULT_BLOCK_SIZE]
    so small matrices get cell-exact maps and large ones never exceed the
    classic default.
    """
    cells = max(m * n, 1)
    size = int(np.ceil(np.sqrt(cells / target_blocks)))
    return max(1, min(size, DEFAULT_BLOCK_SIZE))


@register_estimator("density_map")
class DensityMapEstimator(SparsityEstimator):
    """Density-map sparsity estimator with configurable block size.

    Args:
        block_size: blocks are ``block_size x block_size``; pass the string
            ``"auto"`` to derive the size from each matrix's dimensions via
            :func:`auto_block_size`. Note that products require operands
            with *matching* block sizes, so ``"auto"`` fixes the size at
            the first :meth:`build` call of the estimator instance.
    """

    name = "DMap"
    contract_tags = frozenset({"block_consistent"})

    def __init__(self, *, block_size: int | str = DEFAULT_BLOCK_SIZE):
        if block_size == "auto":
            self.block_size = 0  # resolved on first build
        else:
            if not isinstance(block_size, int) or block_size < 1:
                raise ValueError(f"block_size must be positive, got {block_size}")
            self.block_size = int(block_size)

    def build(self, matrix: MatrixLike) -> DensityMapSynopsis:
        csr = as_csr(matrix)
        m, n = csr.shape
        if self.block_size == 0:
            self.block_size = auto_block_size(m, n)
        b = self.block_size
        grid = np.zeros(((m + b - 1) // b or 0, (n + b - 1) // b or 0), dtype=np.float64)
        if csr.nnz:
            coo = csr.tocoo()
            np.add.at(grid, (coo.row // b, coo.col // b), 1.0)
        cells = np.outer(_block_sizes(m, b), _block_sizes(n, b)).astype(np.float64)
        density = grid / np.maximum(cells, 1.0)
        return DensityMapSynopsis((m, n), b, density)

    # -- products (Eq 4) ---------------------------------------------------

    def _propagate_matmul(
        self, a: DensityMapSynopsis, b: DensityMapSynopsis
    ) -> DensityMapSynopsis:
        if a.shape[1] != b.shape[0]:
            raise ShapeError(f"matmul shape mismatch: {a.shape} x {b.shape}")
        if a.block != b.block:
            raise ShapeError(
                f"density maps need matching block sizes: {a.block} vs {b.block}"
            )
        common_sizes = _block_sizes(a.shape[1], a.block).astype(np.float64)
        dm_a, dm_b = a.density, b.density
        log_zero = np.zeros((dm_a.shape[0], dm_b.shape[1]), dtype=np.float64)
        with np.errstate(divide="ignore"):
            for k in range(dm_a.shape[1]):
                collision = np.outer(dm_a[:, k], dm_b[k, :])
                np.clip(collision, 0.0, 1.0, out=collision)
                log_zero += common_sizes[k] * np.log1p(-collision)
        density = -np.expm1(log_zero)
        return DensityMapSynopsis((a.shape[0], b.shape[1]), a.block, density)

    def _estimate_matmul(self, a: DensityMapSynopsis, b: DensityMapSynopsis) -> float:
        return self._propagate_matmul(a, b).nnz_estimate

    # -- element-wise (block-wise average case) ------------------------------

    def _propagate_ewise_add(
        self, a: DensityMapSynopsis, b: DensityMapSynopsis
    ) -> DensityMapSynopsis:
        if a.shape != b.shape or a.block != b.block:
            raise ShapeError("ewise_add requires matching shapes and block sizes")
        density = a.density + b.density - a.density * b.density
        return DensityMapSynopsis(a.shape, a.block, density)

    def _estimate_ewise_add(self, a: DensityMapSynopsis, b: DensityMapSynopsis) -> float:
        return self._propagate_ewise_add(a, b).nnz_estimate

    def _propagate_ewise_mult(
        self, a: DensityMapSynopsis, b: DensityMapSynopsis
    ) -> DensityMapSynopsis:
        if a.shape != b.shape or a.block != b.block:
            raise ShapeError("ewise_mult requires matching shapes and block sizes")
        return DensityMapSynopsis(a.shape, a.block, a.density * b.density)

    def _estimate_ewise_mult(self, a: DensityMapSynopsis, b: DensityMapSynopsis) -> float:
        return self._propagate_ewise_mult(a, b).nnz_estimate

    # -- reorganizations -----------------------------------------------------

    def _propagate_transpose(self, a: DensityMapSynopsis) -> DensityMapSynopsis:
        return DensityMapSynopsis((a.shape[1], a.shape[0]), a.block, a.density.T.copy())

    def _estimate_transpose(self, a: DensityMapSynopsis) -> float:
        return a.nnz_estimate

    def _propagate_neq_zero(self, a: DensityMapSynopsis) -> DensityMapSynopsis:
        return a

    def _estimate_neq_zero(self, a: DensityMapSynopsis) -> float:
        return a.nnz_estimate

    def _propagate_eq_zero(self, a: DensityMapSynopsis) -> DensityMapSynopsis:
        return DensityMapSynopsis(a.shape, a.block, 1.0 - a.density)

    def _estimate_eq_zero(self, a: DensityMapSynopsis) -> float:
        return a.cells - a.nnz_estimate

    def _propagate_diag_v2m(self, a: DensityMapSynopsis) -> DensityMapSynopsis:
        if a.shape[1] != 1:
            raise ShapeError(f"diag expects an m x 1 vector synopsis, got {a.shape}")
        m = a.shape[0]
        counts = a.block_counts()[:, 0]
        row_sizes = _block_sizes(m, a.block).astype(np.float64)
        blocks = row_sizes.size
        density = np.zeros((blocks, blocks), dtype=np.float64)
        with np.errstate(invalid="ignore", divide="ignore"):
            diagonal = np.where(row_sizes > 0, counts / (row_sizes * row_sizes), 0.0)
        np.fill_diagonal(density, diagonal)
        return DensityMapSynopsis((m, m), a.block, density)

    def _estimate_diag_v2m(self, a: DensityMapSynopsis) -> float:
        return a.nnz_estimate

    def _propagate_diag_m2v(self, a: DensityMapSynopsis) -> DensityMapSynopsis:
        if a.shape[0] != a.shape[1]:
            raise ShapeError(f"diag extraction expects a square synopsis, got {a.shape}")
        # Average-case: a diagonal cell of block (I, I) is non-zero with the
        # block's density.
        diagonal_density = np.diagonal(a.density).reshape(-1, 1).copy()
        return DensityMapSynopsis((a.shape[0], 1), a.block, diagonal_density)

    def _estimate_diag_m2v(self, a: DensityMapSynopsis) -> float:
        return self._propagate_diag_m2v(a).nnz_estimate

    def _propagate_rbind(
        self, a: DensityMapSynopsis, b: DensityMapSynopsis
    ) -> DensityMapSynopsis:
        if a.shape[1] != b.shape[1] or a.block != b.block:
            raise ShapeError("rbind requires matching column counts and block sizes")
        m = a.shape[0] + b.shape[0]
        counts = _regrid_axis(
            [a.block_counts(), b.block_counts()],
            offsets=[0, a.shape[0]],
            old_dims=[a.shape[0], b.shape[0]],
            new_dim=m,
            block=a.block,
            axis=0,
        )
        return _from_counts((m, a.shape[1]), a.block, counts)

    def _estimate_rbind(self, a: DensityMapSynopsis, b: DensityMapSynopsis) -> float:
        return a.nnz_estimate + b.nnz_estimate

    def _propagate_cbind(
        self, a: DensityMapSynopsis, b: DensityMapSynopsis
    ) -> DensityMapSynopsis:
        if a.shape[0] != b.shape[0] or a.block != b.block:
            raise ShapeError("cbind requires matching row counts and block sizes")
        n = a.shape[1] + b.shape[1]
        counts = _regrid_axis(
            [a.block_counts(), b.block_counts()],
            offsets=[0, a.shape[1]],
            old_dims=[a.shape[1], b.shape[1]],
            new_dim=n,
            block=a.block,
            axis=1,
        )
        return _from_counts((a.shape[0], n), a.block, counts)

    def _estimate_cbind(self, a: DensityMapSynopsis, b: DensityMapSynopsis) -> float:
        return a.nnz_estimate + b.nnz_estimate

    def _propagate_reshape(
        self, a: DensityMapSynopsis, *, rows: int, cols: int
    ) -> DensityMapSynopsis:
        """Best-effort reshape: the total count is preserved exactly but the
        blocked grid cannot track the row-major scramble, so the result is a
        uniform map (the same information MetaAC would carry)."""
        if rows * cols != a.cells:
            raise ShapeError(
                f"cannot reshape {a.shape} into {rows}x{cols}: cell counts differ"
            )
        sparsity = a.sparsity_estimate
        b = a.block
        grid_shape = ((rows + b - 1) // b or 0, (cols + b - 1) // b or 0)
        return DensityMapSynopsis((rows, cols), b, np.full(grid_shape, sparsity))

    def _estimate_reshape(self, a: DensityMapSynopsis, *, rows: int, cols: int) -> float:
        if rows * cols != a.cells:
            raise ShapeError(
                f"cannot reshape {a.shape} into {rows}x{cols}: cell counts differ"
            )
        return a.nnz_estimate

    # -- aggregations (block-wise average case) --------------------------------

    def _estimate_row_sums(self, a: DensityMapSynopsis) -> float:
        return self._propagate_row_sums(a).nnz_estimate

    def _propagate_row_sums(self, a: DensityMapSynopsis) -> DensityMapSynopsis:
        # P(row block-slice empty) per block = (1 - density)^block_cols; a
        # row is non-empty unless every block slice along it is empty.
        col_sizes = _block_sizes(a.shape[1], a.block).astype(np.float64)
        with np.errstate(divide="ignore"):
            log_empty = (np.log1p(-np.clip(a.density, 0.0, 1.0)) * col_sizes).sum(axis=1)
        density = -np.expm1(log_empty).reshape(-1, 1)
        return DensityMapSynopsis((a.shape[0], 1), a.block, density)

    def _estimate_col_sums(self, a: DensityMapSynopsis) -> float:
        return self._propagate_col_sums(a).nnz_estimate

    def _propagate_col_sums(self, a: DensityMapSynopsis) -> DensityMapSynopsis:
        row_sizes = _block_sizes(a.shape[0], a.block).astype(np.float64)
        with np.errstate(divide="ignore"):
            log_empty = (
                np.log1p(-np.clip(a.density, 0.0, 1.0)) * row_sizes[:, None]
            ).sum(axis=0)
        density = -np.expm1(log_empty).reshape(1, -1)
        return DensityMapSynopsis((1, a.shape[1]), a.block, density)


def _regrid_axis(
    count_grids: list[np.ndarray],
    offsets: list[int],
    old_dims: list[int],
    new_dim: int,
    block: int,
    axis: int,
) -> np.ndarray:
    """Re-aggregate block counts onto the output grid along *axis*.

    Each source grid occupies the half-open global range
    ``[offset, offset + old_dim)`` along *axis*; counts are spread uniformly
    within each source block and accumulated into the blocks of the output
    grid by overlap length. Exact when the concatenation boundary is
    block-aligned, a proportional approximation otherwise.
    """
    other_blocks = count_grids[0].shape[1 - axis]
    new_blocks = (new_dim + block - 1) // block or 0
    if axis == 0:
        result = np.zeros((new_blocks, other_blocks), dtype=np.float64)
    else:
        result = np.zeros((other_blocks, new_blocks), dtype=np.float64)
    for grid, offset, old_dim in zip(count_grids, offsets, old_dims):
        sizes = _block_sizes(old_dim, block)
        starts = np.concatenate([[0], np.cumsum(sizes)[:-1]]) + offset
        for index, (start, size) in enumerate(zip(starts, sizes)):
            end = start + size
            first = start // block
            last = (end - 1) // block if size else first
            for target in range(first, last + 1):
                t_start, t_end = target * block, min((target + 1) * block, new_dim)
                overlap = min(end, t_end) - max(start, t_start)
                if overlap <= 0:
                    continue
                weight = overlap / size
                if axis == 0:
                    result[target] += grid[index] * weight
                else:
                    result[:, target] += grid[:, index] * weight
    return result


def _from_counts(
    shape: tuple[int, int], block: int, counts: np.ndarray
) -> DensityMapSynopsis:
    row_sizes = _block_sizes(shape[0], block)
    col_sizes = _block_sizes(shape[1], block)
    cells = np.outer(row_sizes, col_sizes).astype(np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        density = np.where(cells > 0, counts / np.maximum(cells, 1.0), 0.0)
    return DensityMapSynopsis(shape, block, density)
