"""Estimator-driven sparsity estimation over expression DAGs.

Propagates any estimator's synopses bottom-up through the DAG with
memoization (shared sub-expressions are sketched once), and — following the
paper's implementation detail — estimates the *root* directly from its
children's synopses instead of propagating a synopsis to it.

All entry points accept an optional ``catalog`` (usually an
:class:`~repro.catalog.service.EstimationService`): when given, every node
is keyed by its structural fingerprint and looked up before any synopsis
work happens, so sub-DAGs shared *across* estimation calls — not just
within one DAG — are sketched exactly once. The catalog is duck-typed: any
object with ``node_synopsis_get(fingerprint, node, estimator)`` and
``node_synopsis_put(fingerprint, node, estimator, synopsis)`` works.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.estimators.base import SparsityEstimator, Synopsis
from repro.ir.nodes import Expr
from repro.observability.trace import maybe_trace, timed_span
from repro.opcodes import Op


@dataclass(frozen=True)
class NodeEstimate:
    """Estimate for one DAG node."""

    shape: tuple[int, int]
    nnz: float
    label: str

    @property
    def sparsity(self) -> float:
        m, n = self.shape
        if m == 0 or n == 0:
            return 0.0
        return self.nnz / (m * n)


def _propagate_dag(
    root: Expr, estimator: SparsityEstimator, catalog: Optional[object] = None
) -> Dict[int, Synopsis]:
    """Memoized bottom-up synopsis propagation for every non-root node.

    With a *catalog*, nodes are additionally keyed by structural
    fingerprint and reused across calls: cached nodes skip their entire
    sub-DAG's build/propagate work.
    """
    synopses: Dict[int, Synopsis] = {}
    fingerprints: Dict[int, str] = {}
    if catalog is not None:
        from repro.catalog.fingerprint import fingerprint_dag

        fingerprints = fingerprint_dag(root)
    with maybe_trace("dag.propagate", estimator=estimator.name):
        for node in root.postorder():
            if node is root and node.op is not Op.LEAF:
                continue  # roots are estimated directly, not propagated
            if catalog is not None:
                cached = catalog.node_synopsis_get(
                    fingerprints[id(node)], node, estimator
                )
                if cached is not None:
                    synopses[id(node)] = cached
                    continue
            if node.op is Op.LEAF:
                synopsis = estimator.build(node.matrix)
            else:
                children = [synopses[id(child)] for child in node.inputs]
                synopsis = estimator.propagate(node.op, children, **node.params)
            synopses[id(node)] = synopsis
            if catalog is not None:
                catalog.node_synopsis_put(
                    fingerprints[id(node)], node, estimator, synopsis
                )
    return synopses


def estimate_root_nnz(
    root: Expr,
    estimator: SparsityEstimator,
    catalog: Optional[object] = None,
) -> float:
    """Estimate the non-zero count of the DAG root with *estimator*."""
    synopses = _propagate_dag(root, estimator, catalog=catalog)
    if root.op is Op.LEAF:
        return synopses[id(root)].nnz_estimate
    children = [synopses[id(child)] for child in root.inputs]
    return estimator.estimate_nnz(root.op, children, **root.params)


def estimate_root_sparsity(
    root: Expr,
    estimator: SparsityEstimator,
    catalog: Optional[object] = None,
) -> float:
    """Estimate the sparsity of the DAG root with *estimator*."""
    m, n = root.shape
    if m == 0 or n == 0:
        return 0.0
    return estimate_root_nnz(root, estimator, catalog=catalog) / (m * n)


def estimate_dag(
    root: Expr,
    estimator: SparsityEstimator,
    include_intermediates: bool = False,
    catalog: Optional[object] = None,
) -> Dict[str, object]:
    """Full DAG estimation with timing.

    Args:
        root: the expression to estimate.
        estimator: any registered estimator instance.
        include_intermediates: also report per-node estimates (used by the
            Figure 15 style all-intermediates experiments).
        catalog: optional sketch catalog (see module docstring); shared
            sub-DAGs cached there are not re-estimated.

    Returns:
        A dict with keys ``nnz`` (root estimate), ``sparsity``,
        ``seconds`` (wall-clock for build + propagation + estimation), and
        optionally ``intermediates`` (``id(node) -> NodeEstimate``).
    """
    with timed_span("dag.estimate", estimator=estimator.name) as span:
        synopses = _propagate_dag(root, estimator, catalog=catalog)
        if root.op is Op.LEAF:
            nnz = synopses[id(root)].nnz_estimate
        else:
            children = [synopses[id(child)] for child in root.inputs]
            nnz = estimator.estimate_nnz(root.op, children, **root.params)
        span.annotate(result_nnz=float(nnz))
    seconds = span.seconds
    m, n = root.shape
    result: Dict[str, object] = {
        "nnz": nnz,
        "sparsity": nnz / (m * n) if m and n else 0.0,
        "seconds": seconds,
    }
    if include_intermediates:
        intermediates: Dict[int, NodeEstimate] = {}
        for node in root.postorder():
            synopsis: Optional[Synopsis] = synopses.get(id(node))
            node_nnz = nnz if node is root else (
                synopsis.nnz_estimate if synopsis is not None else float("nan")
            )
            intermediates[id(node)] = NodeEstimate(
                shape=node.shape, nnz=node_nnz, label=node.label
            )
        result["intermediates"] = intermediates
    return result
