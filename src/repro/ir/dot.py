"""DAG introspection: statistics and Graphviz export.

Handy when debugging estimator behaviour on a benchmark expression: the
DOT rendering shows each node's operation, shape, and — when an estimator
is supplied — its estimated sparsity next to the exact one.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.estimators.base import SparsityEstimator
from repro.ir.estimate import estimate_dag
from repro.ir.nodes import Expr
from repro.opcodes import Op


def dag_stats(root: Expr) -> Dict[str, int]:
    """Node counts by category for a DAG."""
    nodes = list(root.postorder())
    return {
        "nodes": len(nodes),
        "leaves": sum(1 for n in nodes if n.op is Op.LEAF),
        "products": sum(1 for n in nodes if n.op is Op.MATMUL),
        "elementwise": sum(1 for n in nodes if n.op.is_elementwise),
        "reorganizations": sum(1 for n in nodes if n.op.is_reorganization),
        "aggregations": sum(1 for n in nodes if n.op.is_aggregation),
        "depth": _depth(root),
    }


def _depth(root: Expr) -> int:
    depths: Dict[int, int] = {}
    for node in root.postorder():
        if not node.inputs:
            depths[id(node)] = 1
        else:
            depths[id(node)] = 1 + max(depths[id(child)] for child in node.inputs)
    return depths[id(root)]


def to_dot(
    root: Expr,
    estimator: Optional[SparsityEstimator] = None,
    graph_name: str = "expression",
) -> str:
    """Render the DAG as a Graphviz DOT string.

    Args:
        root: the expression.
        estimator: when given, each node's label includes the estimator's
            sparsity estimate for that node.
        graph_name: DOT graph identifier.
    """
    estimates = None
    if estimator is not None:
        result = estimate_dag(root, estimator, include_intermediates=True)
        estimates = result["intermediates"]
    lines = [f"digraph {graph_name} {{", "  rankdir=BT;", "  node [shape=box];"]
    ids: Dict[int, str] = {}
    for index, node in enumerate(root.postorder()):
        ids[id(node)] = f"n{index}"
        label = f"{node.label}\\n{node.shape[0]}x{node.shape[1]}"
        if estimates is not None:
            node_estimate = estimates.get(id(node))
            if node_estimate is not None:
                label += f"\\ns~{node_estimate.sparsity:.4g}"
        shape_attr = ', style=filled, fillcolor="#e8f0fe"' if node.op is Op.LEAF else ""
        lines.append(f'  {ids[id(node)]} [label="{label}"{shape_attr}];')
    for node in root.postorder():
        for child in node.inputs:
            lines.append(f"  {ids[id(child)]} -> {ids[id(node)]};")
    lines.append("}")
    return "\n".join(lines)
