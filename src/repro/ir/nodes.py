"""Expression DAG nodes with shape inference and operator sugar.

An :class:`Expr` is an immutable node in a DAG: a leaf wrapping a concrete
matrix, or an operation over child expressions. Shapes are inferred and
validated at construction, so malformed expressions fail fast at build time
(the compiler analogue of the paper's IR validation).

Nodes compare by identity: building the DAG with shared sub-expressions is
what enables the interpreter's and the estimators' memoization, mirroring
the paper's "memoize intermediate sketches because nodes might be reachable
over multiple paths".
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

import scipy.sparse as sp

from repro.errors import ShapeError
from repro.matrix.conversion import MatrixLike, as_csr
from repro.opcodes import Op


class Expr:
    """A node of a matrix-expression DAG.

    Build leaves with :func:`leaf` and operations with the module-level
    constructors or the operator sugar:

    >>> x = leaf(matrix_x, name="X")
    >>> w = leaf(matrix_w, name="W")
    >>> product = x @ w
    >>> masked = x * neq_zero(x)   # element-wise
    """

    __slots__ = ("op", "inputs", "matrix", "params", "name", "_shape", "__weakref__")

    def __init__(
        self,
        op: Op,
        inputs: tuple["Expr", ...] = (),
        matrix: Optional[sp.csr_array] = None,
        params: Optional[dict[str, Any]] = None,
        name: Optional[str] = None,
    ):
        self.op = op
        self.inputs = tuple(inputs)
        self.matrix = matrix
        self.params = dict(params or {})
        self.name = name
        self._shape = self._infer_shape()

    # ------------------------------------------------------------------
    # Shape inference
    # ------------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        """The (validated) output shape of this node."""
        return self._shape

    def _infer_shape(self) -> tuple[int, int]:
        op = self.op
        if op is Op.LEAF:
            if self.matrix is None:
                raise ShapeError("leaf nodes require a matrix")
            return tuple(int(d) for d in self.matrix.shape)
        if len(self.inputs) != op.arity:
            raise ShapeError(
                f"{op.value} expects {op.arity} inputs, got {len(self.inputs)}"
            )
        shapes = [child.shape for child in self.inputs]
        if op is Op.MATMUL:
            if shapes[0][1] != shapes[1][0]:
                raise ShapeError(f"matmul shape mismatch: {shapes[0]} x {shapes[1]}")
            return (shapes[0][0], shapes[1][1])
        if op in (Op.EWISE_ADD, Op.EWISE_MULT):
            if shapes[0] != shapes[1]:
                raise ShapeError(f"{op.value} shape mismatch: {shapes[0]} vs {shapes[1]}")
            return shapes[0]
        if op is Op.TRANSPOSE:
            return (shapes[0][1], shapes[0][0])
        if op is Op.RESHAPE:
            rows, cols = self.params["rows"], self.params["cols"]
            if rows * cols != shapes[0][0] * shapes[0][1]:
                raise ShapeError(
                    f"cannot reshape {shapes[0]} into {rows}x{cols}: cell counts differ"
                )
            return (rows, cols)
        if op is Op.DIAG_V2M:
            if shapes[0][1] != 1:
                raise ShapeError(f"diag expects an m x 1 vector, got {shapes[0]}")
            return (shapes[0][0], shapes[0][0])
        if op is Op.DIAG_M2V:
            if shapes[0][0] != shapes[0][1]:
                raise ShapeError(f"diag extraction expects a square input, got {shapes[0]}")
            return (shapes[0][0], 1)
        if op is Op.RBIND:
            if shapes[0][1] != shapes[1][1]:
                raise ShapeError(f"rbind shape mismatch: {shapes[0]} vs {shapes[1]}")
            return (shapes[0][0] + shapes[1][0], shapes[0][1])
        if op is Op.CBIND:
            if shapes[0][0] != shapes[1][0]:
                raise ShapeError(f"cbind shape mismatch: {shapes[0]} vs {shapes[1]}")
            return (shapes[0][0], shapes[0][1] + shapes[1][1])
        if op in (Op.NEQ_ZERO, Op.EQ_ZERO):
            return shapes[0]
        if op is Op.ROW_SUMS:
            return (shapes[0][0], 1)
        if op is Op.COL_SUMS:
            return (1, shapes[0][1])
        raise ShapeError(f"unknown operation {op!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # DAG traversal
    # ------------------------------------------------------------------

    def postorder(self) -> Iterator["Expr"]:
        """Yield nodes in post-order (children before parents), each once."""
        seen: set[int] = set()
        stack: list[tuple["Expr", bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if id(node) in seen:
                continue
            if expanded:
                seen.add(id(node))
                yield node
            else:
                stack.append((node, True))
                for child in reversed(node.inputs):
                    if id(child) not in seen:
                        stack.append((child, False))

    def leaves(self) -> list["Expr"]:
        """All distinct leaf nodes of the DAG."""
        return [node for node in self.postorder() if node.op is Op.LEAF]

    @property
    def label(self) -> str:
        """Human-readable node label for reports and plan printing."""
        if self.name:
            return self.name
        if self.op is Op.LEAF:
            return f"leaf{self.shape}"
        return self.op.value

    def __repr__(self) -> str:
        if self.op is Op.LEAF:
            return f"Expr(leaf {self.label} {self.shape})"
        children = ", ".join(child.label for child in self.inputs)
        return f"Expr({self.op.value}({children}) -> {self.shape})"

    # ------------------------------------------------------------------
    # Operator sugar
    # ------------------------------------------------------------------

    def __matmul__(self, other: "Expr") -> "Expr":
        return matmul(self, other)

    def __add__(self, other: "Expr") -> "Expr":
        return ewise_add(self, other)

    def __mul__(self, other: "Expr") -> "Expr":
        return ewise_mult(self, other)

    @property
    def T(self) -> "Expr":  # noqa: N802 - numpy-style transpose property
        return transpose(self)

    def reshape(self, rows: int, cols: int) -> "Expr":
        return reshape(self, rows, cols)


# ----------------------------------------------------------------------
# Constructors
# ----------------------------------------------------------------------

def leaf(matrix: MatrixLike, name: Optional[str] = None) -> Expr:
    """Wrap a concrete matrix as a DAG leaf."""
    return Expr(Op.LEAF, matrix=as_csr(matrix), name=name)


def matmul(a: Expr, b: Expr, name: Optional[str] = None) -> Expr:
    """Matrix product node ``A B``."""
    return Expr(Op.MATMUL, (a, b), name=name)


def ewise_add(a: Expr, b: Expr, name: Optional[str] = None) -> Expr:
    """Element-wise addition node ``A + B``."""
    return Expr(Op.EWISE_ADD, (a, b), name=name)


def ewise_mult(a: Expr, b: Expr, name: Optional[str] = None) -> Expr:
    """Element-wise (Hadamard) multiplication node ``A (*) B``."""
    return Expr(Op.EWISE_MULT, (a, b), name=name)


def transpose(a: Expr, name: Optional[str] = None) -> Expr:
    """Transpose node ``A^T``."""
    return Expr(Op.TRANSPOSE, (a,), name=name)


def reshape(a: Expr, rows: int, cols: int, name: Optional[str] = None) -> Expr:
    """Row-wise reshape node."""
    return Expr(Op.RESHAPE, (a,), params={"rows": int(rows), "cols": int(cols)}, name=name)


def diag(a: Expr, name: Optional[str] = None) -> Expr:
    """Diag node: vector input -> diagonal matrix; square input -> vector."""
    if a.shape[1] == 1:
        return Expr(Op.DIAG_V2M, (a,), name=name)
    return Expr(Op.DIAG_M2V, (a,), name=name)


def rbind(a: Expr, b: Expr, name: Optional[str] = None) -> Expr:
    """Row-wise concatenation node."""
    return Expr(Op.RBIND, (a, b), name=name)


def cbind(a: Expr, b: Expr, name: Optional[str] = None) -> Expr:
    """Column-wise concatenation node."""
    return Expr(Op.CBIND, (a, b), name=name)


def neq_zero(a: Expr, name: Optional[str] = None) -> Expr:
    """Indicator node ``A != 0``."""
    return Expr(Op.NEQ_ZERO, (a,), name=name)


def eq_zero(a: Expr, name: Optional[str] = None) -> Expr:
    """Complement indicator node ``A == 0``."""
    return Expr(Op.EQ_ZERO, (a,), name=name)


def row_sums(a: Expr, name: Optional[str] = None) -> Expr:
    """Structural row-aggregation node (``m x 1`` output)."""
    return Expr(Op.ROW_SUMS, (a,), name=name)


def col_sums(a: Expr, name: Optional[str] = None) -> Expr:
    """Structural column-aggregation node (``1 x n`` output)."""
    return Expr(Op.COL_SUMS, (a,), name=name)
