"""Ground-truth structural evaluation of expression DAGs.

Evaluates every node with the exact structural operations of
:mod:`repro.matrix.ops` (assumptions A1/A2), memoizing shared sub-DAGs.
This provides the true sparsity the SparsEst benchmark scores estimators
against, for roots and for all intermediates.
"""

from __future__ import annotations

from typing import Dict

import scipy.sparse as sp

from repro.errors import ReproError
from repro.ir.nodes import Expr
from repro.matrix import ops as mops
from repro.opcodes import Op


def evaluate(root: Expr) -> sp.csr_array:
    """Evaluate *root* and return its exact 0/1 non-zero structure."""
    return evaluate_all(root)[id(root)]


def evaluate_all(root: Expr) -> Dict[int, sp.csr_array]:
    """Evaluate the whole DAG; returns ``id(node) -> structure`` for every
    node (the id-keyed map keeps distinct nodes distinct even when equal)."""
    results: Dict[int, sp.csr_array] = {}
    for node in root.postorder():
        results[id(node)] = _evaluate_node(node, results)
    return results


def _evaluate_node(node: Expr, results: Dict[int, sp.csr_array]) -> sp.csr_array:
    op = node.op
    children = [results[id(child)] for child in node.inputs]
    if op is Op.LEAF:
        return mops.not_equals_zero(node.matrix)
    if op is Op.MATMUL:
        return mops.matmul(children[0], children[1])
    if op is Op.EWISE_ADD:
        return mops.ewise_add(children[0], children[1])
    if op is Op.EWISE_MULT:
        return mops.ewise_mult(children[0], children[1])
    if op is Op.TRANSPOSE:
        return mops.transpose(children[0])
    if op is Op.RESHAPE:
        return mops.reshape_rowwise(children[0], node.params["rows"], node.params["cols"])
    if op is Op.DIAG_V2M:
        return mops.diag_matrix(children[0])
    if op is Op.DIAG_M2V:
        return mops.diag_extract(children[0])
    if op is Op.RBIND:
        return mops.rbind(children[0], children[1])
    if op is Op.CBIND:
        return mops.cbind(children[0], children[1])
    if op is Op.NEQ_ZERO:
        return mops.not_equals_zero(children[0])
    if op is Op.EQ_ZERO:
        return mops.equals_zero(children[0])
    if op is Op.ROW_SUMS:
        return mops.row_sums(children[0])
    if op is Op.COL_SUMS:
        return mops.col_sums(children[0])
    raise ReproError(f"cannot evaluate operation {op!r}")  # pragma: no cover
