"""Expression IR: DAGs of linear-algebra operations.

The paper's estimators run over an intermediate representation in which
nodes are input matrices (leaves) or operations, and edges are data
dependencies. This package provides:

- :mod:`repro.ir.nodes` — the :class:`~repro.ir.nodes.Expr` node type with
  shape inference and operator sugar (``@``, ``+``, ``*``, ``.T``);
- :mod:`repro.ir.interpreter` — ground-truth structural evaluation with
  memoization of shared sub-DAGs;
- :mod:`repro.ir.estimate` — sparsity estimation of DAG roots by
  propagating any estimator's synopses bottom-up with memoization.
"""

from repro.ir.estimate import (
    NodeEstimate,
    estimate_dag,
    estimate_root_nnz,
    estimate_root_sparsity,
)
from repro.ir.dot import dag_stats, to_dot
from repro.ir.interpreter import evaluate, evaluate_all
from repro.ir.nodes import (
    Expr,
    cbind,
    col_sums,
    diag,
    eq_zero,
    ewise_add,
    ewise_mult,
    leaf,
    matmul,
    neq_zero,
    rbind,
    reshape,
    row_sums,
    transpose,
)

__all__ = [
    "Expr",
    "NodeEstimate",
    "cbind",
    "col_sums",
    "dag_stats",
    "diag",
    "eq_zero",
    "estimate_dag",
    "estimate_root_nnz",
    "estimate_root_sparsity",
    "evaluate",
    "evaluate_all",
    "ewise_add",
    "ewise_mult",
    "leaf",
    "matmul",
    "neq_zero",
    "rbind",
    "reshape",
    "row_sums",
    "to_dot",
    "transpose",
]
