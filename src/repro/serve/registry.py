"""Named-matrix registry backing the estimation server.

The wire protocol references matrices by logical name (``{"ref": "X"}``);
:class:`MatrixRegistry` owns that namespace. Beyond a name -> matrix map it
keeps one **cached leaf Expr per name**: expression identity is object
identity for the fingerprint layer's weak memo, so handing every request
the *same* leaf object makes a re-sent expression hit every cache from
fingerprints down to memoized root estimates. Rebinding a name invalidates
the old fingerprint through the service, so stale estimates cannot leak
into answers for the replacement matrix.

Shard-merged registration is the distributed-ingest path of paper
Section 3.1: shards are sketched individually, merged exactly via
:mod:`repro.core.distributed`, and the merged sketch is registered as the
full matrix's canonical synopsis (see
:meth:`~repro.catalog.service.EstimationService.register_sketched` for why
the merged — not rebuilt — sketch must win).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence

import scipy.sparse as sp

from repro.catalog.fingerprint import assign_fingerprint
from repro.catalog.service import EstimationService
from repro.core.distributed import merge_partitions
from repro.core.incremental import IncrementalSketch
from repro.core.sketch import MNCSketch
from repro.errors import ProtocolError, SketchError
from repro.ir.nodes import Expr, leaf
from repro.observability.trace import count


class MatrixRegistry:
    """Thread-safe name -> (matrix, leaf Expr, fingerprint) registry."""

    def __init__(self, service: EstimationService):
        self.service = service
        self._lock = threading.Lock()
        self._matrices: Dict[str, sp.csr_array] = {}
        self._leaves: Dict[str, Expr] = {}
        self._fingerprints: Dict[str, str] = {}
        #: Per-name streaming trackers, created lazily on the first delta
        #: and discarded whenever the name is re-registered wholesale.
        self._incrementals: Dict[str, IncrementalSketch] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(self, name: str, matrix: sp.csr_array) -> str:
        """Register a whole matrix under *name*; returns its fingerprint."""
        self._invalidate_rebind(name)
        fingerprint = self.service.register(matrix, name=name)
        with self._lock:
            self._matrices[name] = matrix
            self._leaves[name] = leaf(matrix, name=name)
            self._fingerprints[name] = fingerprint
            self._incrementals.pop(name, None)
        count("serve.registry.register")
        return fingerprint

    def register_partitioned(
        self,
        name: str,
        shards: Sequence[sp.csr_array],
        axis: int = 0,
        indices: Optional[Sequence[int]] = None,
    ) -> str:
        """Register shards of one matrix, merging sketches on ingest.

        Shards are sketched individually, merged exactly (out-of-order
        arrival handled via *indices*), and the merged sketch becomes the
        canonical synopsis of the reassembled matrix. Returns the full
        matrix's fingerprint.
        """
        if not shards:
            raise ProtocolError("'shards' must be a non-empty list")
        try:
            merged_sketch = merge_partitions(
                [MNCSketch.from_matrix(shard) for shard in shards],
                axis=axis,
                indices=indices,
            )
        except SketchError as exc:
            raise ProtocolError(f"cannot merge shards: {exc}") from None
        ordered = list(shards)
        if indices is not None:
            order = sorted(range(len(shards)), key=lambda i: indices[i])
            ordered = [shards[i] for i in order]
        stack = sp.vstack if axis == 0 else sp.hstack
        matrix = sp.csr_array(stack(ordered))
        self._invalidate_rebind(name)
        fingerprint = self.service.register_sketched(matrix, merged_sketch, name=name)
        with self._lock:
            self._matrices[name] = matrix
            self._leaves[name] = leaf(matrix, name=name)
            self._fingerprints[name] = fingerprint
            self._incrementals.pop(name, None)
        count("serve.registry.register_partitioned")
        return fingerprint

    # ------------------------------------------------------------------
    # Streaming updates
    # ------------------------------------------------------------------

    def apply_update(self, name: str, delta: Any) -> str:
        """Apply a streaming *delta* to the matrix registered as *name*.

        The name's :class:`~repro.core.incremental.IncrementalSketch` is
        created lazily from the registered matrix on the first delta and
        patched in place afterwards. The service chains the fingerprint in
        ``O(|delta|)`` and partially invalidates memoized results
        (:meth:`EstimationService.apply_update`); here the registry rebinds
        the name to the rematerialized matrix and a fresh leaf Expr, with
        the chained fingerprint pre-assigned so no ``O(nnz)`` rehash ever
        runs. Held under the registry lock end to end, so concurrent
        deltas on one name serialize. Returns the new fingerprint.
        """
        with self._lock:
            if name not in self._matrices:
                raise ProtocolError(
                    f"no matrix registered under name {name!r}"
                )
            incremental = self._incrementals.get(name)
            if incremental is None:
                incremental = IncrementalSketch(self._matrices[name])
                self._incrementals[name] = incremental
            try:
                fingerprint = self.service.apply_update(
                    name, incremental, delta
                )
            except SketchError as exc:
                raise ProtocolError(f"cannot apply delta: {exc}") from None
            matrix = sp.csr_array(incremental.to_matrix())
            assign_fingerprint(matrix, fingerprint)
            self._matrices[name] = matrix
            self._leaves[name] = leaf(matrix, name=name)
            self._fingerprints[name] = fingerprint
        count("serve.registry.update")
        return fingerprint

    def _invalidate_rebind(self, name: str) -> None:
        with self._lock:
            stale = self._fingerprints.get(name)
        if stale is not None:
            self.service.invalidate(stale)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def resolve(self, name: str) -> Expr:
        """The cached leaf Expr for *name* (the wire decoder's resolver)."""
        with self._lock:
            try:
                return self._leaves[name]
            except KeyError:
                raise ProtocolError(f"no matrix registered under name {name!r}") from None

    def matrix(self, name: str) -> sp.csr_array:
        """The registered matrix itself (the chain optimizer's input)."""
        with self._lock:
            try:
                return self._matrices[name]
            except KeyError:
                raise ProtocolError(f"no matrix registered under name {name!r}") from None

    def fingerprint(self, name: str) -> str:
        with self._lock:
            try:
                return self._fingerprints[name]
            except KeyError:
                raise ProtocolError(f"no matrix registered under name {name!r}") from None

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._matrices)

    def __len__(self) -> int:
        with self._lock:
            return len(self._matrices)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._matrices

    def describe(self) -> List[Dict[str, Any]]:
        """JSON-safe listing for ``GET /stats``."""
        with self._lock:
            return [
                {
                    "name": name,
                    "shape": [int(d) for d in matrix.shape],
                    "nnz": int(matrix.nnz),
                    "fingerprint": self._fingerprints[name],
                }
                for name, matrix in sorted(self._matrices.items())
            ]
