"""JSON wire format for the estimation server.

Everything the server speaks is plain JSON over HTTP; this module is the
single place where wire payloads become library objects and back. Design
rules:

- **Structure only travels.** The estimators are structural, so matrices
  cross the wire as sparsity *patterns*: a COO structure payload
  ``{"shape": [m, n], "rows": [...], "cols": [...]}`` (all listed cells
  are non-zero) or, for small inputs, ``{"dense": [[...]]}`` whose
  non-zeros define the pattern. Values never travel.
- **Expressions are trees with named leaves.** A leaf is
  ``{"ref": name}`` resolved against the registry (which returns a cached
  :class:`~repro.ir.nodes.Expr`, so resends hit every fingerprint memo);
  an inner node is ``{"op": <Op value>, "inputs": [...]}`` with optional
  ``"params"`` (only ``reshape`` has any: ``rows``/``cols``).
- **Malformed input is a 400, not a 500.** Every decoder raises
  :class:`~repro.errors.ProtocolError` with a message naming the bad
  field; the server maps that to a client error.

:func:`canonical_expr_key` gives the cache key the server uses to avoid
re-parsing a resent expression: canonical JSON (sorted keys, no spaces) of
the wire tree, which is exactly identity under the wire format.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional

import numpy as np
import scipy.sparse as sp

from repro.errors import ProtocolError
from repro.ir.nodes import Expr
from repro.opcodes import Op

#: Guard rail for wire matrices: reject absurd dense payloads outright.
MAX_DENSE_CELLS = 4_000_000


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError(message)


# ----------------------------------------------------------------------
# Matrices
# ----------------------------------------------------------------------

def decode_matrix(obj: Any) -> sp.csr_array:
    """Wire matrix payload -> structural CSR (all non-zeros are 1.0)."""
    _require(isinstance(obj, dict), f"matrix payload must be an object, got {type(obj).__name__}")
    if "dense" in obj:
        return _decode_dense(obj["dense"])
    for field in ("shape", "rows", "cols"):
        _require(field in obj, f"matrix payload missing {field!r}")
    shape = obj["shape"]
    _require(
        isinstance(shape, (list, tuple)) and len(shape) == 2,
        f"matrix shape must be [rows, cols], got {shape!r}",
    )
    try:
        m, n = int(shape[0]), int(shape[1])
    except (TypeError, ValueError):
        raise ProtocolError(f"matrix shape must be integers, got {shape!r}") from None
    _require(m >= 0 and n >= 0, f"matrix shape must be non-negative, got {shape!r}")
    try:
        rows = np.asarray(obj["rows"], dtype=np.int64)
        cols = np.asarray(obj["cols"], dtype=np.int64)
    except (TypeError, ValueError):
        raise ProtocolError("matrix rows/cols must be integer arrays") from None
    _require(rows.ndim == 1 and cols.ndim == 1, "matrix rows/cols must be flat arrays")
    _require(
        rows.shape == cols.shape,
        f"matrix rows/cols lengths differ: {rows.size} != {cols.size}",
    )
    if rows.size:
        _require(
            bool(rows.min() >= 0 and rows.max() < m),
            f"matrix row index out of range for {m} rows",
        )
        _require(
            bool(cols.min() >= 0 and cols.max() < n),
            f"matrix column index out of range for {n} columns",
        )
    data = np.ones(rows.size, dtype=np.float64)
    matrix = sp.csr_array(sp.coo_array((data, (rows, cols)), shape=(m, n)))
    # Duplicate coordinates collapse structurally (1+1 is still non-zero).
    matrix.data[:] = 1.0
    return matrix


def _decode_dense(cells: Any) -> sp.csr_array:
    _require(isinstance(cells, list), "dense payload must be a list of rows")
    try:
        array = np.asarray(cells, dtype=np.float64)
    except (TypeError, ValueError):
        raise ProtocolError("dense payload must be numeric and rectangular") from None
    _require(array.ndim == 2, f"dense payload must be 2-D, got {array.ndim}-D")
    _require(
        array.size <= MAX_DENSE_CELLS,
        f"dense payload too large ({array.size} cells > {MAX_DENSE_CELLS})",
    )
    return sp.csr_array(array)


def encode_matrix(matrix: Any) -> Dict[str, Any]:
    """Matrix-like -> COO structure wire payload (the client's encoder)."""
    coo = sp.coo_array(sp.csr_array(matrix))
    return {
        "shape": [int(coo.shape[0]), int(coo.shape[1])],
        "rows": [int(r) for r in coo.row],
        "cols": [int(c) for c in coo.col],
    }


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------

def decode_expr(obj: Any, resolve: Callable[[str], Expr]) -> Expr:
    """Wire expression tree -> :class:`Expr` DAG.

    *resolve* maps a leaf name to its (cached) leaf expression; it should
    raise :class:`ProtocolError` for unknown names.
    """
    _require(isinstance(obj, dict), f"expression node must be an object, got {type(obj).__name__}")
    if "ref" in obj:
        name = obj["ref"]
        _require(isinstance(name, str), f"ref must be a string, got {name!r}")
        return resolve(name)
    if "matrix" in obj:
        # Anonymous inline leaf: useful for one-shot queries, but it skips
        # the registry's Expr cache, so repeated queries should register.
        from repro.ir.nodes import leaf

        return leaf(decode_matrix(obj["matrix"]))
    _require("op" in obj, "expression node needs 'ref', 'matrix', or 'op'")
    try:
        op = Op(obj["op"])
    except ValueError:
        raise ProtocolError(f"unknown operation {obj['op']!r}") from None
    _require(op is not Op.LEAF, "leaf nodes travel as {'ref': name}, not op='leaf'")
    inputs = obj.get("inputs", [])
    _require(isinstance(inputs, list), "'inputs' must be a list of nodes")
    _require(
        len(inputs) == op.arity,
        f"{op.value} expects {op.arity} inputs, got {len(inputs)}",
    )
    params = obj.get("params", {})
    _require(isinstance(params, dict), "'params' must be an object")
    if op is Op.RESHAPE:
        for field in ("rows", "cols"):
            _require(field in params, f"reshape needs params.{field}")
        params = {"rows": int(params["rows"]), "cols": int(params["cols"])}
    children = tuple(decode_expr(child, resolve) for child in inputs)
    from repro.errors import ShapeError

    try:
        return Expr(op, children, params=params)
    except ShapeError as exc:
        raise ProtocolError(f"invalid expression: {exc}") from None


def canonical_expr_key(obj: Any) -> str:
    """Canonical JSON of a wire expression — the parse-cache key."""
    try:
        return json.dumps(obj, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError):
        raise ProtocolError("expression is not JSON-serializable") from None


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------

def encode_estimate_result(result: Dict[str, Any]) -> Dict[str, Any]:
    """Service result dict -> JSON-safe response payload."""
    payload: Dict[str, Any] = {
        "nnz": float(result["nnz"]),
        "sparsity": float(result["sparsity"]),
        "fingerprint": str(result["fingerprint"]),
        "cached": bool(result["cached"]),
        "seconds": float(result.get("seconds", 0.0)),
    }
    router = result.get("router")
    if router is not None:
        # Routed requests echo the decision: chosen tier, escalation
        # count, and the uncertainty interval the stop was based on.
        payload["router"] = _jsonable_dict(router)
    intermediates = result.get("intermediates")
    if intermediates is not None:
        # estimate_dag reports id(node) -> NodeEstimate; node identity is
        # meaningless across the wire, so ship the per-node records only
        # (postorder — children before parents, root last).
        payload["intermediates"] = [
            {
                "label": str(entry.label),
                "shape": [int(d) for d in entry.shape],
                "nnz": float(entry.nnz),
            }
            for entry in intermediates.values()
        ]
    return payload


def encode_chain_solution(solution: Any) -> Dict[str, Any]:
    """ChainSolution -> ``{"plan": nested lists, "cost": float}``."""
    return {"plan": _plan_to_json(solution.plan), "cost": float(solution.cost)}


def _plan_to_json(plan: Any) -> Any:
    if isinstance(plan, (int, np.integer)):
        return int(plan)
    left, right = plan
    return [_plan_to_json(left), _plan_to_json(right)]


def _jsonable(value: Any) -> Any:
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return _jsonable_dict(value)
    return value


def _jsonable_dict(payload: Dict[str, Any]) -> Dict[str, Any]:
    return {str(key): _jsonable(value) for key, value in payload.items()}


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------

def decode_estimate_request(body: Dict[str, Any]) -> Dict[str, Any]:
    """Classify and validate a ``POST /estimate`` body.

    Returns a dict with ``kind`` in ``{"estimate", "estimate_many",
    "optimize_chain"}`` plus the kind's raw fields, leaving expression
    parsing to the server (which owns the parse cache). Exactly one of
    ``expr`` / ``exprs`` / ``chain`` must be present.
    """
    _require(isinstance(body, dict), "request body must be a JSON object")
    present = [field for field in ("expr", "exprs", "chain") if field in body]
    _require(
        len(present) == 1,
        f"request needs exactly one of 'expr', 'exprs', 'chain'; got {present or 'none'}",
    )
    workers = body.get("workers")
    if workers is not None:
        try:
            workers = int(workers)
        except (TypeError, ValueError):
            raise ProtocolError(f"'workers' must be an integer, got {workers!r}") from None
    estimator_spec = _decode_estimator(body)
    if "expr" in body:
        return {
            "kind": "estimate",
            "expr": body["expr"],
            "include_intermediates": bool(body.get("include_intermediates", False)),
            "estimator_spec": estimator_spec,
        }
    if "exprs" in body:
        exprs = body["exprs"]
        _require(isinstance(exprs, list) and exprs, "'exprs' must be a non-empty list")
        return {
            "kind": "estimate_many",
            "exprs": exprs,
            "workers": workers,
            "estimator_spec": estimator_spec,
        }
    _require(
        estimator_spec is None,
        "'estimator'/'tolerance' do not apply to chain optimization "
        "(plans cost with the catalog's canonical sketches)",
    )
    chain = body["chain"]
    _require(isinstance(chain, list) and len(chain) >= 2, "'chain' must list >= 2 matrix names")
    _require(
        all(isinstance(name, str) for name in chain),
        "'chain' entries must be registered matrix names",
    )
    seed = body.get("seed")
    if seed is not None:
        try:
            seed = int(seed)
        except (TypeError, ValueError):
            raise ProtocolError(f"'seed' must be an integer, got {seed!r}") from None
    return {"kind": "optimize_chain", "chain": chain, "seed": seed, "workers": workers}


def _decode_estimator(body: Dict[str, Any]):
    """Optional per-request estimator selection.

    ``"estimator"`` may be a name string (``"auto"`` routes adaptively) or
    a spec object (``{"name": ..., "options": ..., ...}``); a bare
    ``"tolerance"`` implies ``"auto"``. Returns an
    :class:`~repro.estimators.spec.EstimatorSpec` or ``None``. Malformed
    selections raise :class:`~repro.errors.EstimatorError` subclasses,
    which the server maps to a structured 400.
    """
    from repro.estimators.spec import AUTO_NAME, EstimatorSpec

    estimator = body.get("estimator")
    tolerance = body.get("tolerance")
    seed = body.get("seed") if "expr" in body or "exprs" in body else None
    if estimator is None and tolerance is None and seed is None:
        return None
    if seed is not None:
        try:
            seed = int(seed)
        except (TypeError, ValueError):
            raise ProtocolError(f"'seed' must be an integer, got {seed!r}") from None
    default = AUTO_NAME if tolerance is not None else "mnc"
    return EstimatorSpec.parse(
        estimator, tolerance=tolerance, seed=seed, default=default
    )


def decode_update_request(body: Dict[str, Any]) -> List[Any]:
    """Validate a ``POST /matrices/{name}/updates`` body.

    The body carries either one ``"delta"`` or a non-empty ordered
    ``"deltas"`` list, each entry in the
    :func:`repro.core.incremental.delta_to_payload` wire format. Returns
    the decoded delta objects in application order; malformed payloads are
    a 400 (:class:`ProtocolError`), never a 500.
    """
    from repro.core.incremental import delta_from_payload
    from repro.errors import SketchError

    _require(isinstance(body, dict), "request body must be a JSON object")
    has_delta = "delta" in body
    has_deltas = "deltas" in body
    _require(
        has_delta != has_deltas,
        "provide exactly one of 'delta' or 'deltas'",
    )
    raw = [body["delta"]] if has_delta else body["deltas"]
    _require(
        isinstance(raw, list) and bool(raw),
        "'deltas' must be a non-empty list",
    )
    deltas: List[Any] = []
    for position, payload in enumerate(raw):
        try:
            deltas.append(delta_from_payload(payload))
        except SketchError as exc:
            raise ProtocolError(f"delta {position}: {exc}") from None
    return deltas


def decode_register_request(body: Dict[str, Any]) -> Dict[str, Any]:
    """Validate a ``POST /matrices`` body (whole matrix or shards)."""
    _require(isinstance(body, dict), "request body must be a JSON object")
    name = body.get("name")
    _require(
        isinstance(name, str) and bool(name),
        "'name' (non-empty string) is required",
    )
    has_matrix = "matrix" in body
    has_shards = "shards" in body
    _require(
        has_matrix != has_shards,
        "provide exactly one of 'matrix' or 'shards'",
    )
    if has_matrix:
        return {"name": name, "matrix": body["matrix"]}
    shards = body["shards"]
    _require(isinstance(shards, list) and shards, "'shards' must be a non-empty list")
    axis = body.get("axis", 0)
    _require(axis in (0, 1), f"'axis' must be 0 (rows) or 1 (cols), got {axis!r}")
    indices: Optional[List[int]] = None
    entries: List[Any] = []
    for position, shard in enumerate(shards):
        _require(isinstance(shard, dict), f"shard {position} must be an object")
        entries.append(shard.get("matrix", shard))
        if "index" in shard:
            if indices is None:
                _require(position == 0, "either every shard carries 'index' or none does")
                indices = []
            try:
                indices.append(int(shard["index"]))
            except (TypeError, ValueError):
                raise ProtocolError(f"shard {position} 'index' must be an integer") from None
        else:
            _require(indices is None, "either every shard carries 'index' or none does")
    return {"name": name, "shards": entries, "axis": axis, "indices": indices}
