"""Asyncio HTTP/1.1 estimation server (stdlib only, no framework).

One process serves many tenants' estimation traffic over a shared catalog:

- the **event loop** owns connections: a handwritten, keep-alive HTTP/1.1
  reader/writer (request line, headers, ``Content-Length`` body — the
  subset a JSON API needs, implemented in ~60 lines rather than imported);
- all estimation work runs on a dedicated **single-thread executor**, so
  the loop never blocks and — more importantly — cold estimates issue
  sequentially in arrival order. That is the determinism contract: the MNC
  estimator consumes instance-local randomness per estimate, so a serial
  issue order makes server answers bit-identical to calling
  :meth:`EstimationService.submit` directly in the same order (the serving
  benchmark asserts exactly this); parallelism inside one batch still fans
  out over :mod:`repro.parallel` worker processes;
- a bounded **expression parse cache** keyed on canonical wire JSON hands
  repeated queries the same :class:`Expr` object, so the warm path runs
  entirely on memo hits (microseconds per estimate).

Endpoints: ``POST /matrices`` (whole or row/col-partitioned, shards merged
on ingest), ``POST /matrices/{name}/updates`` (streaming deltas patched
into the name's incremental sketch, fingerprint chained in ``O(|delta|)``),
``POST /estimate`` (single / batch / chain), ``GET /stats``,
``GET /metrics`` (Prometheus text), ``GET /healthz``. Per-endpoint request
counters and latency histograms land in the global metrics registry as
``serve.requests.<route>`` / ``serve.latency_seconds.<route>``.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.catalog.service import EstimationService, ServiceRequest
from repro.errors import EstimatorError, ProtocolError, ReproError
from repro.estimators.base import available_estimators
from repro.ir.nodes import Expr
from repro.observability.export import prometheus_exposition
from repro.observability.metrics import metric_observe, metrics_snapshot
from repro.observability.trace import count
from repro.serve.protocol import (
    canonical_expr_key,
    decode_estimate_request,
    decode_expr,
    decode_matrix,
    decode_register_request,
    decode_update_request,
    encode_chain_solution,
    encode_estimate_result,
)
from repro.serve.registry import MatrixRegistry

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8642
#: Upper bound on request bodies; larger payloads get a 413.
MAX_BODY_BYTES = 64 * 1024 * 1024
#: Parsed-expression cache entries (wire JSON -> Expr).
PARSE_CACHE_ENTRIES = 4096

_JSON = "application/json"
_TEXT = "text/plain; charset=utf-8"
_STATUS_LINES = {
    200: "200 OK",
    400: "400 Bad Request",
    404: "404 Not Found",
    405: "405 Method Not Allowed",
    413: "413 Payload Too Large",
    500: "500 Internal Server Error",
}


class _HttpError(Exception):
    """Internal signal carrying an HTTP status + message to the writer."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class EstimationServer:
    """The serving front end around one :class:`EstimationService`.

    Args:
        service: the backing service (bring your own store/memo/pool);
            a default MNC service over a fresh in-memory store if omitted.
        host/port: bind address; port 0 picks a free port (see
            :attr:`port` after :meth:`start`).
        max_body_bytes: request-body cap (413 beyond it).
    """

    def __init__(
        self,
        service: Optional[EstimationService] = None,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        max_body_bytes: int = MAX_BODY_BYTES,
    ):
        self.service = service if service is not None else EstimationService()
        self.registry = MatrixRegistry(self.service)
        self.host = host
        self.port = port
        self.max_body_bytes = int(max_body_bytes)
        self._server: Optional[asyncio.AbstractServer] = None
        # Single thread == sequential estimation == deterministic rng
        # consumption (see module docstring). Do not widen casually.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-estimate"
        )
        self._parse_lock = threading.Lock()
        self._parse_cache: "OrderedDict[str, Expr]" = OrderedDict()
        self._started = time.time()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections (resolves :attr:`port`)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self, announce=None) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        if announce is not None:
            announce(self.host, self.port)
        async with self._server:
            await self._server.serve_forever()

    def run(self, announce=None) -> None:
        """Blocking entry point (the CLI's).

        *announce*, if given, is called with ``(host, port)`` once the
        socket is bound — after port 0 has resolved to a real port.
        """
        try:
            asyncio.run(self.serve_forever(announce))
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            pass
        finally:
            self.close()

    def close(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)
        if self.service.pool is not None:
            self.service.pool.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HttpError as exc:
                    # Unparseable request: answer once, then hang up (the
                    # stream position is unknown, so keep-alive is unsafe).
                    writer.write(_render_response(
                        exc.status, _json_bytes({"error": exc.message}), _JSON, False
                    ))
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = headers.get("connection", "keep-alive").lower() != "close"
                status, payload, content_type = await self._dispatch(method, path, body)
                writer.write(_render_response(status, payload, content_type, keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            asyncio.LimitOverrunError,
        ):
            pass  # client went away mid-request; nothing to answer
        except asyncio.CancelledError:
            pass  # server shutting down with this connection idle/open
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                # Cancellation can land while awaiting the close handshake
                # (shutdown cancels handler tasks); the transport is already
                # closed, so swallowing here is safe.
                asyncio.CancelledError,
            ):  # pragma: no cover - timing-dependent
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        """Parse one HTTP/1.1 request; ``None`` on clean connection close."""
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _HttpError(400, "malformed request line")
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            raise _HttpError(400, "malformed Content-Length") from None
        if length > self.max_body_bytes:
            raise _HttpError(413, f"request body exceeds {self.max_body_bytes} bytes")
        body = await reader.readexactly(length) if length else b""
        path = target.split("?", 1)[0]
        return method, path, headers, body

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, bytes, str]:
        route = _route_name(method, path)
        started = time.perf_counter()
        try:
            status, payload, content_type = await self._route(method, path, body)
        except _HttpError as exc:
            status = exc.status
            payload = _json_bytes({"error": exc.message})
            content_type = _JSON
        except ProtocolError as exc:
            status, payload, content_type = 400, _json_bytes({"error": str(exc)}), _JSON
        except EstimatorError as exc:
            # Estimator selection failures get a structured body: the
            # offending name/options plus the authoritative estimator list,
            # so wire clients can self-correct without a docs round-trip.
            detail: Dict[str, Any] = {"error": str(exc)}
            detail.update(exc.details)
            detail.setdefault("available_estimators", available_estimators())
            status, payload, content_type = 400, _json_bytes(detail), _JSON
        except ReproError as exc:
            status, payload, content_type = 400, _json_bytes({"error": str(exc)}), _JSON
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            status = 500
            payload = _json_bytes({"error": f"{type(exc).__name__}: {exc}"})
            content_type = _JSON
        elapsed = time.perf_counter() - started
        count(f"serve.requests.{route}")
        metric_observe(f"serve.latency_seconds.{route}", elapsed)
        if status >= 400:
            count(f"serve.errors.{status}")
        return status, payload, content_type

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, bytes, str]:
        if path == "/healthz":
            if method != "GET":
                raise _HttpError(405, "use GET /healthz")
            return 200, _json_bytes({"status": "ok", "uptime_seconds": time.time() - self._started}), _JSON
        if path == "/metrics":
            if method != "GET":
                raise _HttpError(405, "use GET /metrics")
            return 200, prometheus_exposition(metrics_snapshot()).encode(), _TEXT
        if path == "/stats":
            if method != "GET":
                raise _HttpError(405, "use GET /stats")
            return 200, _json_bytes(self._stats_payload()), _JSON
        if path == "/matrices":
            if method != "POST":
                raise _HttpError(405, "use POST /matrices")
            payload = await self._in_executor(self._handle_register, _parse_json(body))
            return 200, _json_bytes(payload), _JSON
        if path == "/estimate":
            if method != "POST":
                raise _HttpError(405, "use POST /estimate")
            payload = await self._in_executor(self._handle_estimate, _parse_json(body))
            return 200, _json_bytes(payload), _JSON
        name = _update_target(path)
        if name is not None:
            if method != "POST":
                raise _HttpError(405, f"use POST /matrices/{name}/updates")
            payload = await self._in_executor(
                self._handle_update, name, _parse_json(body)
            )
            return 200, _json_bytes(payload), _JSON
        raise _HttpError(404, f"unknown path {path!r}")

    async def _in_executor(self, fn, *args) -> Any:
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, fn, *args
        )

    # ------------------------------------------------------------------
    # Handlers (run on the estimation thread)
    # ------------------------------------------------------------------

    def _handle_register(self, body: Dict[str, Any]) -> Dict[str, Any]:
        request = decode_register_request(body)
        name = request["name"]
        # Cached parses hold leaf Expr objects; a (re)bind would leave them
        # pointing at the name's old matrix. Registration is rare relative
        # to estimation, so flushing the whole cache is the simple safe move.
        with self._parse_lock:
            self._parse_cache.clear()
        if "matrix" in request:
            matrix = decode_matrix(request["matrix"])
            fingerprint = self.registry.register(name, matrix)
            merged = False
            shard_count = 0
        else:
            shards = [decode_matrix(shard) for shard in request["shards"]]
            fingerprint = self.registry.register_partitioned(
                name, shards, axis=request["axis"], indices=request["indices"]
            )
            matrix = self.registry.matrix(name)
            merged = True
            shard_count = len(shards)
        return {
            "name": name,
            "fingerprint": fingerprint,
            "shape": [int(d) for d in matrix.shape],
            "nnz": int(matrix.nnz),
            "merged": merged,
            "shards": shard_count,
        }

    def _handle_estimate(self, body: Dict[str, Any]) -> Dict[str, Any]:
        request = decode_estimate_request(body)
        if request["kind"] == "estimate":
            expr = self._parse_expr(request["expr"])
            result = self.service.submit(
                ServiceRequest.estimate(
                    expr,
                    include_intermediates=request["include_intermediates"],
                    estimator=request["estimator_spec"],
                )
            )
            return encode_estimate_result(result)
        if request["kind"] == "estimate_many":
            exprs = [self._parse_expr(wire) for wire in request["exprs"]]
            results = self.service.submit(
                ServiceRequest.batch(
                    exprs,
                    workers=request["workers"],
                    estimator=request["estimator_spec"],
                )
            )
            return {"results": [encode_estimate_result(result) for result in results]}
        matrices = [self.registry.matrix(name) for name in request["chain"]]
        rng = (
            np.random.default_rng(request["seed"])
            if request["seed"] is not None
            else None
        )
        solution = self.service.submit(
            ServiceRequest.chain(matrices, rng=rng, workers=request["workers"])
        )
        payload = encode_chain_solution(solution)
        payload["names"] = list(request["chain"])
        return payload

    def _handle_update(self, name: str, body: Dict[str, Any]) -> Dict[str, Any]:
        deltas = decode_update_request(body)
        # Same reasoning as registration: cached parses hold the name's old
        # leaf Expr, which after a delta points at the pre-update structure.
        with self._parse_lock:
            self._parse_cache.clear()
        fingerprint = self.registry.fingerprint(name)
        for delta in deltas:
            fingerprint = self.registry.apply_update(name, delta)
        matrix = self.registry.matrix(name)
        return {
            "name": name,
            "fingerprint": fingerprint,
            "shape": [int(d) for d in matrix.shape],
            "nnz": int(matrix.nnz),
            "updates": len(deltas),
        }

    def _parse_expr(self, wire: Any) -> Expr:
        key = canonical_expr_key(wire)
        with self._parse_lock:
            cached = self._parse_cache.get(key)
            if cached is not None:
                self._parse_cache.move_to_end(key)
                count("serve.parse_cache.hit")
                return cached
        expr = decode_expr(wire, self.registry.resolve)
        with self._parse_lock:
            self._parse_cache[key] = expr
            self._parse_cache.move_to_end(key)
            while len(self._parse_cache) > PARSE_CACHE_ENTRIES:
                self._parse_cache.popitem(last=False)
        count("serve.parse_cache.miss")
        return expr

    def _stats_payload(self) -> Dict[str, Any]:
        payload = {
            "uptime_seconds": time.time() - self._started,
            "matrices": self.registry.describe(),
            "catalog": self.service.stats(),
            "parse_cache_entries": len(self._parse_cache),
        }
        store = self.service.store
        if hasattr(store, "num_shards"):
            payload["store_shards"] = store.num_shards
            payload["ttl_evictions"] = getattr(store, "ttl_evictions", 0)
        return payload


# ----------------------------------------------------------------------
# Wire helpers
# ----------------------------------------------------------------------

def _route_name(method: str, path: str) -> str:
    known = {"/matrices", "/estimate", "/stats", "/metrics", "/healthz"}
    if path in known:
        return path.lstrip("/")
    if _update_target(path) is not None:
        # One label for every name, so per-route metrics stay bounded.
        return "matrix_updates"
    return "unknown"


def _update_target(path: str) -> Optional[str]:
    """The matrix name in a ``/matrices/{name}/updates`` path, else None."""
    prefix, suffix = "/matrices/", "/updates"
    if not (path.startswith(prefix) and path.endswith(suffix)):
        return None
    name = path[len(prefix): -len(suffix)]
    if not name or "/" in name:
        return None
    return name


def _parse_json(body: bytes) -> Dict[str, Any]:
    try:
        parsed = json.loads(body.decode("utf-8")) if body else {}
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise _HttpError(400, f"invalid JSON body: {exc}") from None
    if not isinstance(parsed, dict):
        raise _HttpError(400, "request body must be a JSON object")
    return parsed


def _json_bytes(payload: Any) -> bytes:
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def _render_response(
    status: int, payload: bytes, content_type: str, keep_alive: bool
) -> bytes:
    head = (
        f"HTTP/1.1 {_STATUS_LINES.get(status, status)}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + payload


# ----------------------------------------------------------------------
# Embedded server (tests, benchmark, smoke jobs)
# ----------------------------------------------------------------------

class ServerHandle:
    """A running server on a background thread; ``stop()`` to shut down."""

    def __init__(self, server: EstimationServer, thread: threading.Thread,
                 loop: asyncio.AbstractEventLoop, task: "asyncio.Task[Any]"):
        self.server = server
        self._thread = thread
        self._loop = loop
        self._task = task

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self, timeout: float = 10.0) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._task.cancel)
            self._thread.join(timeout)
        self.server.close()

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_server_thread(
    server: Optional[EstimationServer] = None,
    host: str = DEFAULT_HOST,
    port: int = 0,
    timeout: float = 10.0,
) -> ServerHandle:
    """Run an :class:`EstimationServer` on a daemon thread; returns once
    the port is bound (``handle.port`` is the real port even for 0)."""
    if server is None:
        server = EstimationServer(host=host, port=port)
    started = threading.Event()
    holder: Dict[str, Any] = {}

    def main() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        holder["loop"] = loop

        async def body() -> None:
            await server.start()
            started.set()
            assert server._server is not None
            async with server._server:
                await server._server.serve_forever()

        task = loop.create_task(body())
        holder["task"] = task
        try:
            loop.run_until_complete(task)
        except asyncio.CancelledError:
            pass
        finally:
            # Give cancelled connection handlers a chance to unwind.
            pending = asyncio.all_tasks(loop)
            for item in pending:
                item.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    thread = threading.Thread(target=main, daemon=True, name="repro-serve")
    thread.start()
    if not started.wait(timeout):
        raise RuntimeError(f"server failed to bind {host}:{port} within {timeout}s")
    return ServerHandle(server, thread, holder["loop"], holder["task"])
