"""Multi-tenant estimation serving over the sketch catalog.

The paper's deployment story — sketch once (possibly distributed), consult
many times during optimization — becomes a long-running process here: an
asyncio HTTP/JSON server (stdlib only, no framework) in front of one
:class:`~repro.catalog.service.EstimationService` backed by a
:class:`~repro.catalog.sharded.ShardedSketchStore`.

- :mod:`repro.serve.protocol` — the JSON wire format: matrix payloads
  (COO structure or dense), expression trees with ``{"ref": name}``
  leaves, request/response codecs over :class:`ServiceRequest`;
- :mod:`repro.serve.registry` — :class:`MatrixRegistry`, named matrices
  with cached leaf :class:`~repro.ir.nodes.Expr` objects (so re-sent
  expressions hit the fingerprint memo) and shard-merged registration via
  :mod:`repro.core.distributed`;
- :mod:`repro.serve.server` — :class:`EstimationServer`, the handwritten
  HTTP/1.1 front end: ``POST /matrices``, ``POST /matrices/{name}/updates``
  (streaming deltas, see ``docs/STREAMING.md``), ``POST /estimate``,
  ``GET /stats``, ``GET /metrics`` (Prometheus), ``GET /healthz``;
- :mod:`repro.serve.client` — :class:`ServeClient`, a keep-alive
  ``http.client`` wrapper used by the tests, the benchmark, and the CI
  smoke job.

Launch with ``repro serve --catalog DIR --port 8642`` or embed via
:func:`repro.serve.server.start_server_thread`. See ``docs/SERVING.md``.
"""

from repro.serve.client import ServeClient
from repro.serve.protocol import (
    canonical_expr_key,
    decode_expr,
    decode_matrix,
    decode_update_request,
    encode_chain_solution,
    encode_estimate_result,
    encode_matrix,
)
from repro.serve.registry import MatrixRegistry
from repro.serve.server import EstimationServer, start_server_thread

__all__ = [
    "EstimationServer",
    "MatrixRegistry",
    "ServeClient",
    "canonical_expr_key",
    "decode_expr",
    "decode_matrix",
    "decode_update_request",
    "encode_chain_solution",
    "encode_estimate_result",
    "encode_matrix",
    "start_server_thread",
]
