"""Keep-alive HTTP client for the estimation server (stdlib only).

:class:`ServeClient` wraps ``http.client`` with the server's JSON protocol:
one persistent connection (reconnecting transparently if the server hung
up), matrix encoding via :func:`repro.serve.protocol.encode_matrix`, and
typed helpers for every endpoint. It exists so tests, the serving
benchmark, and the CI smoke job all speak the wire format through one
audited path instead of three hand-rolled ones.

Server-reported errors raise :class:`ServeClientError` carrying the HTTP
status and the server's ``error`` message.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.serve.protocol import encode_matrix


def _delta_payload(delta: Any) -> Dict[str, Any]:
    if isinstance(delta, dict):
        return delta
    from repro.core.incremental import delta_to_payload

    return delta_to_payload(delta)


def _add_estimator(
    body: Dict[str, Any], estimator: Any, tolerance: Optional[float]
) -> None:
    if estimator is not None:
        body["estimator"] = (
            estimator.to_wire() if hasattr(estimator, "to_wire") else estimator
        )
    if tolerance is not None:
        body["tolerance"] = float(tolerance)


class ServeClientError(ReproError):
    """The server answered with an error status.

    ``details`` holds the full decoded error body — estimator-selection
    failures, for instance, carry ``available_estimators`` there.
    """

    def __init__(self, status: int, message: str, details: Optional[Dict] = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.details = dict(details or {})


class ServeClient:
    """Minimal blocking client for one estimation server."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self._connection: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Any:
        """One round trip; returns the decoded JSON body (or raw text)."""
        body = json.dumps(payload).encode() if payload is not None else None
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (0, 1):
            connection = self._connect()
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
                break
            except (
                http.client.HTTPException,
                ConnectionError,
                BrokenPipeError,
            ):
                # Stale keep-alive connection: reconnect once, then give up.
                self.close()
                if attempt:
                    raise
        content_type = response.getheader("Content-Type", "")
        if content_type.startswith("application/json"):
            decoded: Any = json.loads(raw.decode("utf-8")) if raw else None
        else:
            decoded = raw.decode("utf-8")
        if response.status >= 400:
            message = (
                decoded.get("error", raw.decode("utf-8", "replace"))
                if isinstance(decoded, dict)
                else str(decoded)
            )
            raise ServeClientError(
                response.status, message,
                details=decoded if isinstance(decoded, dict) else None,
            )
        return decoded

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self.request("GET", "/healthz")

    def stats(self) -> Dict[str, Any]:
        return self.request("GET", "/stats")

    def metrics_text(self) -> str:
        return self.request("GET", "/metrics")

    def register(self, name: str, matrix: Any) -> Dict[str, Any]:
        """Register a whole matrix (encoded as COO structure) under *name*."""
        return self.request(
            "POST", "/matrices", {"name": name, "matrix": encode_matrix(matrix)}
        )

    def register_partitioned(
        self,
        name: str,
        shards: Sequence[Any],
        axis: int = 0,
        indices: Optional[Sequence[int]] = None,
    ) -> Dict[str, Any]:
        """Register one matrix as row/col partitions, merged server-side."""
        payload: Dict[str, Any] = {
            "name": name,
            "axis": axis,
            "shards": [{"matrix": encode_matrix(shard)} for shard in shards],
        }
        if indices is not None:
            for entry, index in zip(payload["shards"], indices):
                entry["index"] = int(index)
        return self.request("POST", "/matrices", payload)

    def apply_update(self, name: str, delta: Any) -> Dict[str, Any]:
        """Apply one streaming delta to the matrix registered as *name*.

        *delta* is either a :mod:`repro.core.incremental` delta object or
        an already-encoded wire payload dict.
        """
        return self.apply_updates(name, [delta])

    def apply_updates(
        self, name: str, deltas: Sequence[Any]
    ) -> Dict[str, Any]:
        """Apply an ordered batch of deltas in one request."""
        return self.request(
            "POST",
            f"/matrices/{name}/updates",
            {"deltas": [_delta_payload(delta) for delta in deltas]},
        )

    def estimate(
        self,
        expr: Dict[str, Any],
        include_intermediates: bool = False,
        estimator: Any = None,
        tolerance: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Estimate one wire expression.

        *estimator* is a registry name, ``"auto"``, or a spec dict;
        *tolerance* (implies ``"auto"``) caps the routed uncertainty
        width. Routed responses carry a ``"router"`` payload with the
        chosen tier and escalation count.
        """
        body: Dict[str, Any] = {"expr": expr}
        if include_intermediates:
            body["include_intermediates"] = True
        _add_estimator(body, estimator, tolerance)
        return self.request("POST", "/estimate", body)

    def estimate_batch(
        self,
        exprs: Sequence[Dict[str, Any]],
        workers: Optional[int] = None,
        estimator: Any = None,
        tolerance: Optional[float] = None,
    ) -> List[Dict[str, Any]]:
        body: Dict[str, Any] = {"exprs": list(exprs)}
        if workers is not None:
            body["workers"] = int(workers)
        _add_estimator(body, estimator, tolerance)
        return self.request("POST", "/estimate", body)["results"]

    def optimize_chain(
        self,
        names: Sequence[str],
        seed: Optional[int] = None,
        workers: Optional[int] = None,
    ) -> Dict[str, Any]:
        body: Dict[str, Any] = {"chain": list(names)}
        if seed is not None:
            body["seed"] = int(seed)
        if workers is not None:
            body["workers"] = int(workers)
        return self.request("POST", "/estimate", body)
