"""Exception hierarchy for the MNC reproduction library.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class. Shape and operand problems raise the more specific
subclasses below, mirroring the failure modes a database-style expression
compiler has to report (incompatible operands, unsupported operations,
malformed synopses).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ShapeError(ReproError, ValueError):
    """Operand shapes are incompatible for the requested operation."""


class SketchError(ReproError, ValueError):
    """A synopsis (sketch) is malformed or inconsistent with its metadata."""


class UnsupportedOperationError(ReproError, NotImplementedError):
    """An estimator does not support the requested operation.

    The SparsEst runner uses this to skip (estimator, operation) pairs the
    paper also excludes, e.g. the layered graph on element-wise operations.
    """


class EstimationError(ReproError, RuntimeError):
    """An estimator failed to produce an estimate (e.g. degenerate sample)."""


class PlanError(ReproError, ValueError):
    """A matrix-multiplication-chain plan is malformed or inconsistent."""


class ProtocolError(ReproError, ValueError):
    """A serving-protocol payload is malformed (bad JSON shape, unknown
    operation, unresolvable matrix reference, ...). The server maps this
    to an HTTP 400 rather than a 500."""
