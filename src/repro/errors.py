"""Exception hierarchy for the MNC reproduction library.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class. Shape and operand problems raise the more specific
subclasses below, mirroring the failure modes a database-style expression
compiler has to report (incompatible operands, unsupported operations,
malformed synopses).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ShapeError(ReproError, ValueError):
    """Operand shapes are incompatible for the requested operation."""


class SketchError(ReproError, ValueError):
    """A synopsis (sketch) is malformed or inconsistent with its metadata."""


class UnsupportedOperationError(ReproError, NotImplementedError):
    """An estimator does not support the requested operation.

    The SparsEst runner uses this to skip (estimator, operation) pairs the
    paper also excludes, e.g. the layered graph on element-wise operations.
    """


class EstimationError(ReproError, RuntimeError):
    """An estimator failed to produce an estimate (e.g. degenerate sample)."""


class EstimatorError(ReproError, ValueError):
    """Estimator selection or configuration failed.

    Carries an optional structured ``details`` payload (e.g. the offending
    name and ``available_estimators()``) that the serving path merges into
    its 400 response body, so wire clients get a machine-readable error
    instead of a bare string.
    """

    def __init__(self, message: str, *, details=None):
        super().__init__(message)
        self.details = dict(details or {})


class UnknownEstimatorError(EstimatorError, UnsupportedOperationError):
    """A name was not found in the estimator registry.

    Subclasses :class:`UnsupportedOperationError` for backward
    compatibility: ``make_estimator`` historically raised that class for
    unknown names, and callers catch it.
    """


class EstimatorOptionError(EstimatorError, TypeError):
    """Estimator options are malformed (bad keyword, bad value, or an
    option that is meaningless for the selected estimator)."""


class PlanError(ReproError, ValueError):
    """A matrix-multiplication-chain plan is malformed or inconsistent."""


class ProtocolError(ReproError, ValueError):
    """A serving-protocol payload is malformed (bad JSON shape, unknown
    operation, unresolvable matrix reference, ...). The server maps this
    to an HTTP 400 rather than a 500."""
