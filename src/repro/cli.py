"""Command-line interface: ``python -m repro <command>``.

Commands
--------

- ``info`` — library version, registered estimators, use cases.
- ``estimators [--format json]`` — the authoritative estimator listing
  (``repro.estimators.available_estimators()``): every registered name
  with its contract tags and adaptive-router cost tier, plus the
  ``auto`` routing pseudo-estimator.
- ``sketch FILE.npz`` — build and summarize the MNC sketch of a stored
  matrix.
- ``estimate A.npz B.npz [--estimator NAME|auto] [--tolerance W]
  [--exact] [--catalog DIR]`` — estimate the sparsity of the product
  ``A B``; ``--estimator auto`` (implied by ``--tolerance``) routes
  through the adaptive tier ladder and reports the chosen tier (see
  ``docs/ROUTING.md``); with ``--catalog`` sketches are reused from and
  persisted to an on-disk sketch catalog.
- ``catalog {stats,warm,clear} DIR`` — inspect, pre-populate, or empty an
  on-disk sketch catalog (``<fingerprint>.npz`` files, see
  ``docs/CATALOG.md``); ``catalog stats --format json`` emits the same
  summary as a JSON document for scripting.
- ``serve [--host H --port P --catalog DIR --workers N --shards K
  --budget-bytes B --ttl SECONDS --estimator NAME|auto --tolerance W]``
  — run the multi-tenant estimation server (``POST /matrices``,
  ``POST /estimate``, ``GET /stats|/metrics|/healthz``) over a
  fingerprint-sharded store warm-started from ``--catalog``; with
  ``--catalog`` the learned routing policy is persisted alongside the
  sketches on shutdown; see ``docs/SERVING.md``.
- ``sparsest [--cases ...] [--estimators ...] [--scale S]
  [--tolerance W]`` — run SparsEst use cases and print the
  relative-error table (``auto`` is a valid estimator entry and obeys
  ``--tolerance``).
- ``optimize --dims d0,d1,...,dk --sparsities s1,...,sk`` — optimize a
  random matrix chain with the dense and sparsity-aware DPs.
- ``verify [--cells ... --budget N --seed S --corpus DIR]`` — fuzz every
  (estimator x contract x generator) cell against the exact oracle,
  shrinking violations to minimal reproducers (see ``docs/VERIFY.md``);
  ``--self-test`` injects a fault to prove the shrinker works.
- ``stats FILE [FILE ...]`` — summarize one or more trace / metrics files
  (merging them when several are given, e.g. per-worker dumps): per-span
  aggregates (count/total/mean/p95), counters, the metrics snapshot and
  accuracy residual ledger, and the error-vs-time report. ``--format json``
  emits the same data as a JSON document; ``--prometheus FILE`` writes the
  merged metrics in Prometheus text exposition format.

Every command except ``info``/``stats`` accepts ``--trace FILE`` to record
an observability trace (spans from sketch construction, estimation,
propagation, plus per-(use case, estimator) outcomes) as JSON lines,
``--metrics FILE`` to dump the process metrics snapshot as JSONL, and
``--flight-recorder FILE`` to arm the postmortem flight recorder; see
``docs/OBSERVABILITY.md``.

``estimate``, ``sparsest``, and ``verify`` additionally accept
``--workers N`` to fan independent estimation work out across worker
processes (default ``$REPRO_WORKERS`` or 1; results match a serial run —
see ``docs/PARALLEL.md``). Worker traces are merged into the parent's
``--trace`` output.

Data commands (and ``estimators``/``serve``) accept ``--backend NAME``
to pick the kernel backend for the estimation hot paths — ``numpy``
(always-available reference), ``numba`` (compiled), ``python`` (debug),
or ``auto`` (default: ``$REPRO_BACKEND``, else numba when importable).
The selection is exported via ``$REPRO_BACKEND`` so ``--workers``
subprocesses inherit it; estimates are bit-identical across backends
(see docs/PERFORMANCE.md "Backends").

Matrices are exchanged in scipy ``.npz`` sparse format
(:func:`repro.matrix.io.save_matrix`).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MNC sparsity estimation (SIGMOD 2019 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    # Shared telemetry flags: accepted after any data subcommand, e.g.
    # ``python -m repro sparsest --trace out.jsonl``.
    tracing = argparse.ArgumentParser(add_help=False)
    tracing.add_argument(
        "--trace", metavar="FILE", default=None,
        help="record an observability trace (JSON lines) to FILE; includes "
             "the metrics snapshot and accuracy residual ledger",
    )
    tracing.add_argument(
        "--flight-recorder", metavar="FILE", default=None,
        help="arm the flight recorder: dump a postmortem JSON to FILE on "
             "estimator exceptions, failed parallel tasks, or error spans "
             "(also honors $REPRO_FLIGHT_DUMP)",
    )
    tracing.add_argument(
        "--metrics", metavar="FILE", default=None,
        help="write a metrics snapshot (counters, gauges, histograms, "
             "residual ledger) as JSONL to FILE when the command finishes",
    )

    # Shared fan-out flag for the commands with parallel execution paths.
    parallelism = argparse.ArgumentParser(add_help=False)
    parallelism.add_argument(
        "--workers", type=int, metavar="N", default=None,
        help="worker processes for independent estimation work "
             "(default: $REPRO_WORKERS or 1; results are identical to a "
             "serial run)",
    )

    # Shared kernel-backend flag; exported via $REPRO_BACKEND so worker
    # processes inherit the selection (results are bit-identical across
    # backends either way — see docs/PERFORMANCE.md "Backends").
    backend_opts = argparse.ArgumentParser(add_help=False)
    backend_opts.add_argument(
        "--backend", metavar="NAME", default=None,
        help="kernel backend for the estimation hot paths: numpy, numba, "
             "python, or auto (default: $REPRO_BACKEND, else auto-detect; "
             "an unavailable backend falls back to numpy with a warning)",
    )

    commands.add_parser("info", help="show version, estimators, use cases")

    estimators_cmd = commands.add_parser(
        "estimators",
        help="list registered estimators with contract tags and router "
             "cost tiers",
        parents=[backend_opts],
    )
    estimators_cmd.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="output format (default: table)",
    )

    sketch_cmd = commands.add_parser(
        "sketch", help="summarize a matrix's MNC sketch",
        parents=[tracing, backend_opts]
    )
    sketch_cmd.add_argument("matrix", help="path to a .npz sparse matrix")

    estimate_cmd = commands.add_parser(
        "estimate", help="estimate the sparsity of a product A @ B",
        parents=[tracing, parallelism, backend_opts],
    )
    estimate_cmd.add_argument("left", help="path to A (.npz)")
    estimate_cmd.add_argument("right", help="path to B (.npz)")
    estimate_cmd.add_argument(
        "--estimator", default=None, metavar="NAME",
        help="estimator name as listed by 'repro estimators', or 'auto' for "
             "adaptive tier routing (default: mnc, or auto when --tolerance "
             "is given)",
    )
    estimate_cmd.add_argument(
        "--tolerance", type=float, default=None, metavar="W",
        help="maximum relative uncertainty width for adaptive routing "
             "(implies --estimator auto)",
    )
    estimate_cmd.add_argument(
        "--exact", action="store_true",
        help="also compute the exact result and the relative error",
    )
    estimate_cmd.add_argument(
        "--catalog", metavar="DIR", default=None,
        help="reuse/persist MNC sketches through an on-disk catalog directory",
    )

    sparsest_cmd = commands.add_parser(
        "sparsest", help="run SparsEst use cases",
        parents=[tracing, parallelism, backend_opts]
    )
    sparsest_cmd.add_argument(
        "--cases", default="",
        help="comma-separated use-case ids (default: all)",
    )
    sparsest_cmd.add_argument(
        "--estimators", default="meta_ac,mnc,density_map",
        help="comma-separated estimator names",
    )
    sparsest_cmd.add_argument("--scale", type=float, default=0.05)
    sparsest_cmd.add_argument("--seed", type=int, default=0)
    sparsest_cmd.add_argument(
        "--tolerance", type=float, default=None, metavar="W",
        help="maximum relative uncertainty width for 'auto' estimator "
             "entries (ignored by concrete estimators)",
    )

    optimize_cmd = commands.add_parser(
        "optimize", help="optimize a random matrix-product chain",
        parents=[tracing, backend_opts],
    )
    optimize_cmd.add_argument(
        "--dims", required=True,
        help="comma-separated boundary dimensions d0,...,dk (k matrices)",
    )
    optimize_cmd.add_argument(
        "--sparsities", required=True,
        help="comma-separated sparsity per matrix (k values)",
    )
    optimize_cmd.add_argument("--seed", type=int, default=0)

    verify_cmd = commands.add_parser(
        "verify", help="fuzz estimator contracts against the exact oracle",
        parents=[tracing, parallelism, backend_opts],
    )
    verify_cmd.add_argument(
        "--budget", type=int, default=100,
        help="seeded cases per generator (default 100)",
    )
    verify_cmd.add_argument("--seed", type=int, default=0)
    verify_cmd.add_argument(
        "--cells", default="",
        help="comma-separated estimator:contract:generator fnmatch patterns "
             "(e.g. 'mnc:*:*,*:bounds:adversarial')",
    )
    verify_cmd.add_argument(
        "--estimators", default="",
        help="comma-separated estimator names (default: all registered)",
    )
    verify_cmd.add_argument(
        "--generators", default="",
        help="comma-separated generator names (default: all)",
    )
    verify_cmd.add_argument(
        "--corpus", metavar="DIR", default=None,
        help="save shrunk violations as reproducers under DIR",
    )
    verify_cmd.add_argument(
        "--no-shrink", action="store_true",
        help="report original failing cases without shrinking",
    )
    verify_cmd.add_argument(
        "--self-test", action="store_true",
        help="inject a faulty estimator and prove the engine shrinks it",
    )

    stats_cmd = commands.add_parser(
        "stats", help="summarize --trace / metrics JSONL files"
    )
    stats_cmd.add_argument(
        "trace_files", nargs="+", metavar="FILE",
        help="one or more trace or metrics files (.jsonl); several files "
             "(e.g. per-worker or per-shard dumps) are merged",
    )
    stats_cmd.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="output format (default: table)",
    )
    stats_cmd.add_argument(
        "--prometheus", metavar="FILE", default=None,
        help="additionally write the merged metrics in Prometheus text "
             "exposition format to FILE ('-' for stdout)",
    )

    catalog_cmd = commands.add_parser(
        "catalog", help="manage an on-disk sketch catalog directory"
    )
    catalog_sub = catalog_cmd.add_subparsers(dest="catalog_command", required=True)
    catalog_stats = catalog_sub.add_parser(
        "stats", help="summarize the sketches stored in a catalog"
    )
    catalog_stats.add_argument("directory", help="catalog directory")
    catalog_stats.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="output format (default: table)",
    )
    catalog_warm = catalog_sub.add_parser(
        "warm", help="sketch matrices into a catalog (skips cached entries)"
    )
    catalog_warm.add_argument("directory", help="catalog directory")
    catalog_warm.add_argument(
        "matrices", nargs="+", help=".npz sparse matrices to sketch"
    )
    catalog_clear = catalog_sub.add_parser(
        "clear", help="delete every sketch in a catalog"
    )
    catalog_clear.add_argument("directory", help="catalog directory")

    serve_cmd = commands.add_parser(
        "serve", help="run the multi-tenant estimation server",
        parents=[parallelism, backend_opts],
    )
    serve_cmd.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve_cmd.add_argument(
        "--port", type=int, default=8642,
        help="bind port (default 8642; 0 picks a free port)",
    )
    serve_cmd.add_argument(
        "--catalog", metavar="DIR", default=None,
        help="sketch catalog directory: warm-started on boot, used as the "
             "store's spill/persistence tier",
    )
    serve_cmd.add_argument(
        "--shards", type=int, default=8,
        help="store shard count (independent locks/budgets; default 8)",
    )
    serve_cmd.add_argument(
        "--budget-bytes", type=int, default=None, metavar="B",
        help="total in-memory sketch budget across shards (default 64 MiB)",
    )
    serve_cmd.add_argument(
        "--ttl", type=float, default=None, metavar="SECONDS",
        help="idle seconds before a resident sketch demotes to the disk "
             "tier (default: no TTL)",
    )
    serve_cmd.add_argument(
        "--estimator", default=None, metavar="NAME",
        help="estimator name as listed by 'repro estimators', or 'auto' for "
             "adaptive tier routing (default: mnc, or auto when --tolerance "
             "is given)",
    )
    serve_cmd.add_argument(
        "--tolerance", type=float, default=None, metavar="W",
        help="default maximum relative uncertainty width for adaptive "
             "routing (implies --estimator auto; requests may override)",
    )
    return parser


def _maybe_record(estimator):
    """Wrap *estimator* in the telemetry proxy when a trace is being taken."""
    from repro.observability import RecordingEstimator, get_collector

    if get_collector().enabled:
        return RecordingEstimator(estimator)
    return estimator


def _backend_summary() -> str:
    """One-line description of the active kernel backend."""
    from repro import backends

    backend = backends.get_backend()
    kind = "compiled" if backend.compiled else "interpreted"
    availability = ", ".join(
        name for name, ok in backends.available_backends().items() if ok
    )
    return f"{backend.name} ({kind}; available: {availability})"


def _cmd_info() -> int:
    import repro
    from repro.estimators import available_estimators
    from repro.sparsest import use_case_ids

    print(f"repro {repro.__version__} — MNC sparsity estimation")
    print(f"estimators: {', '.join(available_estimators())}")
    print(f"use cases:  {', '.join(use_case_ids())}")
    print(f"backend:    {_backend_summary()}")
    return 0


def _cmd_estimators(output_format: str = "table") -> int:
    """The authoritative estimator listing.

    ``repro.estimators.available_estimators()`` is the source of truth for
    valid ``--estimator`` names; this command decorates it with each
    estimator's contract tags and its rung on the adaptive router's cost
    ladder (``-`` for estimators the router never picks, e.g. bitset).
    """
    import json as json_module

    from repro.router import estimator_catalog

    from repro import backends

    rows = estimator_catalog()
    if output_format == "json":
        backend = backends.get_backend()
        payload = {
            "estimators": rows,
            "backend": {
                "name": backend.name,
                "compiled": backend.compiled,
                "available": backends.available_backends(),
            },
        }
        print(json_module.dumps(payload, indent=2, sort_keys=True))
        return 0
    header = f"{'name':<14} {'label':<10} {'cost tier':>9}  tags"
    print(header)
    print("-" * len(header))
    for row in rows:
        tier = "-" if row["cost_tier"] is None else str(row["cost_tier"])
        print(f"{row['name']:<14} {row['label']:<10} {tier:>9}  "
              f"{', '.join(row['tags'])}")
    print(f"{'auto':<14} {'Auto':<10} {'adaptive':>9}  "
          f"routes across tiers until --tolerance is met")
    print(f"kernel backend: {_backend_summary()}")
    return 0


def _cmd_sketch(path: str) -> int:
    from repro.core.sketch import MNCSketch
    from repro.matrix.io import load_matrix

    matrix = load_matrix(path)
    sketch = MNCSketch.from_matrix(matrix)
    print(f"matrix:   {sketch.nrows} x {sketch.ncols}, nnz {sketch.total_nnz:,} "
          f"(sparsity {sketch.sparsity:.6g})")
    print(f"max nnz per row/column: {sketch.max_hr} / {sketch.max_hc}")
    print(f"non-empty rows/columns: {sketch.nnz_rows:,} / {sketch.nnz_cols:,}")
    print(f"single-nnz rows/columns: {sketch.rows_single:,} / {sketch.cols_single:,}")
    print(f"half-full rows/columns: {sketch.rows_half_full:,} / {sketch.cols_half_full:,}")
    print(f"extensions: {sketch.has_extensions}, fully diagonal: {sketch.fully_diagonal}")
    print(f"sketch size: {sketch.size_bytes():,} bytes")
    return 0


def _print_route(decision) -> None:
    """Render one routing decision's summary lines."""
    certainty = "certified" if decision.certified else "heuristic"
    print(f"router: tier {decision.tier} ({decision.estimator}), "
          f"{decision.escalations} escalation(s), {decision.skipped} "
          f"tier(s) skipped")
    print(f"  width {decision.width:.4g} <= tolerance {decision.tolerance:g} "
          f"({certainty} interval [{decision.lower:,.0f}, "
          f"{decision.upper:,.0f}])")


def _cmd_estimate(
    left: str,
    right: str,
    estimator_name: Optional[str],
    exact: bool,
    catalog_dir: Optional[str] = None,
    workers: Optional[int] = None,
    tolerance: Optional[float] = None,
) -> int:
    from repro.estimators.spec import AUTO_NAME, EstimatorSpec
    from repro.matrix.io import load_matrix
    from repro.opcodes import Op

    default = AUTO_NAME if tolerance is not None else "mnc"
    spec = EstimatorSpec.parse(estimator_name, tolerance=tolerance, default=default)
    a = load_matrix(left)
    b = load_matrix(right)
    label = spec.name
    if catalog_dir:
        from repro.catalog import EstimationService, ServiceRequest, SketchStore
        from repro.ir.nodes import leaf

        service = EstimationService(
            spec, store=SketchStore(spill_dir=catalog_dir)
        )
        request = ServiceRequest.batch([leaf(a) @ leaf(b)], workers=workers)
        result = service.submit(request)[0]
        nnz = result["nnz"]
        stored = service.persist(catalog_dir)
        store_stats = service.store.stats()
        print(f"catalog: {store_stats.disk_hits} sketch(es) reused from "
              f"{catalog_dir}, {stored} persisted")
        router_meta = result.get("router")
        if router_meta is not None:
            label = router_meta["estimator"]
            print(f"router: tier {router_meta['tier']} ({label}), "
                  f"{router_meta['escalations']} escalation(s), "
                  f"width {router_meta['width']:.4g} <= tolerance "
                  f"{router_meta['tolerance']:g}")
        else:
            label = spec.make().name
    elif spec.is_auto:
        from repro.ir.nodes import leaf
        from repro.router import AdaptiveRouter

        router = AdaptiveRouter.from_spec(spec)
        nnz, decision = router.route(leaf(a) @ leaf(b))
        label = decision.estimator
        _print_route(decision)
    else:
        estimator = _maybe_record(spec.make())
        synopses = [estimator.build(a), estimator.build(b)]
        nnz = estimator.estimate_nnz(Op.MATMUL, synopses)
        label = estimator.name
    cells = a.shape[0] * b.shape[1]
    print(f"{label} estimate: nnz ~ {nnz:,.0f}, "
          f"sparsity ~ {nnz / cells:.6g}")
    if exact:
        from repro.matrix.ops import matmul
        from repro.sparsest.metrics import relative_error

        truth = matmul(a, b).nnz
        print(f"exact:          nnz = {truth:,}, sparsity = {truth / cells:.6g}")
        print(f"relative error: {relative_error(truth, nnz):.4f}")
    return 0


def _cmd_sparsest(
    cases: str,
    estimators: str,
    scale: float,
    seed: int,
    workers: Optional[int] = None,
    tolerance: Optional[float] = None,
) -> int:
    from repro.sparsest import all_use_cases, get_use_case
    from repro.sparsest.report import outcomes_table, timings_table
    from repro.sparsest.runner import execute_outcomes, requests_for

    if cases:
        selected = [get_use_case(case_id.strip()) for case_id in cases.split(",")]
    else:
        selected = all_use_cases()
    names = [name.strip() for name in estimators.split(",")]
    # Name-based requests: each (use case, estimator) cell materializes a
    # fresh, identically-seeded estimator (or adaptive router, for "auto"
    # entries) — in workers or in-process — so the tables are the same for
    # every --workers value.
    requests = requests_for(
        selected, names, scale=scale, seed=seed, tolerance=tolerance
    )
    outcomes = execute_outcomes(requests, workers=workers)
    print(outcomes_table(outcomes, title=f"SparsEst relative errors (scale={scale})"))
    print()
    print(timings_table(outcomes, title="Estimation time [s]"))
    if len(names) > 1:
        from repro.sparsest.summary import summary_table

        print()
        print(summary_table(outcomes, title="Per-estimator summary"))
    return 0


def _cmd_optimize(dims: str, sparsities: str, seed: int) -> int:
    from repro.core.sketch import MNCSketch
    from repro.optimizer import (
        optimize_chain_dense,
        optimize_chain_sparse,
        plan_cost_estimated,
        plan_to_string,
    )

    try:
        boundary = [int(value) for value in dims.split(",")]
        sparsity_values = [float(value) for value in sparsities.split(",")]
    except ValueError as exc:
        print(f"error: could not parse --dims/--sparsities: {exc}", file=sys.stderr)
        return 2
    if len(boundary) != len(sparsity_values) + 1:
        print("error: need k+1 dims for k sparsities", file=sys.stderr)
        return 2
    rng = np.random.default_rng(seed)
    sketches = [
        MNCSketch.synthetic(m, n, s, rng)
        for (m, n), s in zip(zip(boundary, boundary[1:]), sparsity_values)
    ]
    dense = optimize_chain_dense([h.shape for h in sketches])
    sparse = optimize_chain_sparse(sketches, rng=rng)
    dense_cost = plan_cost_estimated(dense.plan, sketches, rng=rng)
    sparse_cost = plan_cost_estimated(sparse.plan, sketches, rng=rng)
    print(f"dense-DP plan:  {plan_to_string(dense.plan)}")
    print(f"  estimated sparse cost: {dense_cost:,.0f}")
    print(f"sparse-DP plan: {plan_to_string(sparse.plan)}")
    print(f"  estimated sparse cost: {sparse_cost:,.0f}")
    if sparse_cost > 0:
        print(f"dense plan overhead: {dense_cost / sparse_cost:.2f}x")
    return 0


def _cmd_verify(
    budget: int,
    seed: int,
    cells: str,
    estimators: str,
    generators: str,
    corpus_dir: Optional[str],
    shrink: bool,
    self_test: bool,
    workers: Optional[int] = None,
) -> int:
    from repro.verify import (
        FuzzEngine,
        default_estimator_specs,
        injected_fault_selftest,
    )

    if self_test:
        record = injected_fault_selftest()
        m, n = record.shrunk.root.shape
        print("self-test: injected fault detected and shrunk to "
              f"{m}x{n} in {record.shrink_steps} steps")
        print(f"  {record.shrunk_message}")
        return 0

    specs = default_estimator_specs(
        [name.strip() for name in estimators.split(",") if name.strip()] or None
    )
    engine = FuzzEngine(
        specs=specs,
        generators=[g.strip() for g in generators.split(",") if g.strip()] or None,
        budget=budget,
        seed=seed,
        shrink=shrink,
        cell_patterns=[p.strip() for p in cells.split(",") if p.strip()] or None,
        workers=workers,
    )
    report = engine.run()

    print(f"verify: budget {budget} x {len(engine.generators)} generators, "
          f"seed {seed}")
    header = f"{'estimator':<18} {'contract':<26} {'checked':>8} {'skipped':>8} {'bad':>4}"
    print(header)
    print("-" * len(header))
    for estimator, contract, checked, skipped, bad in report.summary_rows():
        if checked == 0 and bad == 0:
            continue
        print(f"{estimator:<18} {contract:<26} {checked:>8} {skipped:>8} {bad:>4}")
    print(f"total: {report.checked} checks, {report.skipped} skipped, "
          f"{len(report.violations)} violation(s)")

    for record in report.violations:
        print()
        print(f"VIOLATION {record.cell}#{record.case.index}")
        print(f"  {record.shrunk_message}")
        print(f"  case: {record.shrunk.describe()}")
        if record.shrink_steps:
            print(f"  shrunk from {record.case.describe()} "
                  f"in {record.shrink_steps} steps")
    if corpus_dir and report.violations:
        from repro.verify import Reproducer, save_reproducer

        for record in report.violations:
            path = save_reproducer(
                Reproducer.from_violation(record), corpus_dir
            )
            print(f"  reproducer -> {path}")
    return 1 if report.violations else 0


def _stats_json(data) -> dict:
    """The ``--format json`` payload for merged trace/metrics data."""
    from dataclasses import asdict

    from repro.observability import aggregate_spans

    payload: dict = {
        "spans": [asdict(entry) for entry in aggregate_spans(data.spans)],
        "counters": dict(sorted(data.counters.items())),
        "histograms": {
            name: {
                "count": len(values),
                "mean": sum(values) / len(values) if values else None,
            }
            for name, values in sorted(data.histograms.items())
        },
        "outcomes": data.outcomes,
        "metrics": data.metrics.to_dict() if data.metrics is not None else None,
        "residuals": [record.to_dict() for record in data.residuals],
    }
    if data.metrics is not None:
        payload["metric_histograms"] = data.metrics.histogram_summaries()
    return payload


def _cmd_stats(
    trace_files: Sequence[str],
    output_format: str = "table",
    prometheus: Optional[str] = None,
) -> int:
    import json as json_module

    from repro.observability import (
        aggregate_spans,
        error_time_table,
        merge_trace_data,
        prometheus_exposition,
        read_trace,
        residual_table,
        stats_table,
    )

    parts = []
    for trace_file in trace_files:
        try:
            parts.append(read_trace(trace_file))
        except OSError as exc:
            print(f"error: cannot read trace file: {exc}", file=sys.stderr)
            return 2
        except ValueError as exc:  # json decode errors subclass ValueError
            print(f"error: malformed trace file {trace_file}: {exc}",
                  file=sys.stderr)
            return 2
    data = merge_trace_data(parts)

    if prometheus is not None:
        if data.metrics is None:
            print("error: --prometheus needs at least one metrics record",
                  file=sys.stderr)
            return 2
        snapshot = data.metrics
        snapshot.residuals = list(data.residuals)
        exposition = prometheus_exposition(snapshot)
        if prometheus == "-":
            print(exposition, end="")
        else:
            with open(prometheus, "w", encoding="utf-8") as handle:
                handle.write(exposition)
            print(f"prometheus exposition -> {prometheus}", file=sys.stderr)

    if output_format == "json":
        payload = _stats_json(data)
        from repro import backends

        backend = backends.get_backend()
        payload["backend"] = {
            "name": backend.name,
            "compiled": backend.compiled,
        }
        print(json_module.dumps(payload, indent=2, sort_keys=True))
        return 0

    print(f"Kernel backend: {_backend_summary()}")
    empty = not (
        data.spans or data.counters or data.histograms or data.outcomes
        or data.residuals or (data.metrics is not None)
    )
    if empty:
        noun = "file" if len(trace_files) == 1 else "files"
        print(f"trace {noun} {', '.join(trace_files)} hold no records")
        return 0
    if data.spans:
        print(stats_table(
            aggregate_spans(data.spans),
            title=f"Span aggregates ({len(data.spans)} spans)",
        ))
    if data.counters:
        print()
        print("Counters")
        for name, value in sorted(data.counters.items()):
            print(f"  {name} = {value:g}")
    if data.histograms:
        from repro.observability.export import percentile

        print()
        print("Histograms")
        for name, values in sorted(data.histograms.items()):
            print(f"  {name}: n={len(values)} mean={sum(values) / len(values):g} "
                  f"p95={percentile(values, 95.0):g}")
    if data.metrics is not None:
        snapshot = data.metrics
        print()
        print(f"Metrics (schema v{snapshot.version})")
        for name, value in sorted(snapshot.counters.items()):
            print(f"  {name} = {value:g}")
        for name, value in sorted(snapshot.gauges.items()):
            print(f"  {name} ~ {value:g}  [gauge]")
        for name, summary in snapshot.histogram_summaries().items():
            print(f"  {name}: n={summary['count']:g} mean={summary['mean']:g} "
                  f"p50={summary['p50']:g} p95={summary['p95']:g} "
                  f"p99={summary['p99']:g} max={summary['max']:g}")
    if data.residuals:
        print()
        print(residual_table(
            data.residuals,
            title=f"Accuracy residual ledger ({len(data.residuals)} entries)",
        ))
    if data.outcomes:
        print()
        print(error_time_table(
            data.outcomes, title="Error vs time per (use case, estimator)"
        ))
    return 0


def _cmd_catalog_stats(directory: str, output_format: str = "table") -> int:
    import json as json_module
    from pathlib import Path

    from repro.catalog.store import load_sketch_or_none

    root = Path(directory)
    if not root.is_dir():
        print(f"error: catalog directory {directory} does not exist",
              file=sys.stderr)
        return 2
    files = sorted(root.glob("*.npz"))
    entries = []
    skipped = 0
    for path in files:
        sketch = load_sketch_or_none(path)
        if sketch is None:
            skipped += 1
            continue
        entries.append((path.stem, sketch))
    if output_format == "json":
        payload = {
            "directory": str(root),
            "sketches": [
                {
                    "fingerprint": stem,
                    "shape": [sketch.nrows, sketch.ncols],
                    "nnz": int(sketch.total_nnz),
                    "bytes": sketch.size_bytes(),
                    "has_extensions": bool(sketch.has_extensions),
                }
                for stem, sketch in entries
            ],
            "count": len(entries),
            "skipped": skipped,
            "total_bytes": sum(s.size_bytes() for _, s in entries),
            "total_nnz": int(sum(s.total_nnz for _, s in entries)),
        }
        print(json_module.dumps(payload, indent=2, sort_keys=True))
        return 0
    if not files:
        print(f"catalog {directory}: empty")
        return 0
    total_bytes = 0
    total_nnz = 0
    for stem, sketch in entries:
        total_bytes += sketch.size_bytes()
        total_nnz += sketch.total_nnz
        print(f"  {stem[:16]:<16}  {sketch.nrows:>8} x {sketch.ncols:<8} "
              f"nnz {sketch.total_nnz:>12,}  {sketch.size_bytes():>10,} B"
              + ("  +ext" if sketch.has_extensions else ""))
    print(f"catalog {directory}: {len(entries)} sketch(es), "
          f"{total_bytes:,} bytes, {total_nnz:,} summarized non-zeros"
          + (f" ({skipped} unreadable file(s) skipped)" if skipped else ""))
    return 0


def _cmd_catalog_warm(directory: str, matrices: Sequence[str]) -> int:
    from pathlib import Path

    from repro.catalog import fingerprint_matrix
    from repro.core.serialize import save_sketch
    from repro.core.sketch import MNCSketch
    from repro.matrix.io import load_matrix

    root = Path(directory)
    built = cached = 0
    for source in matrices:
        matrix = load_matrix(source)
        fingerprint = fingerprint_matrix(matrix)
        target = root / f"{fingerprint}.npz"
        if target.exists():
            cached += 1
            print(f"  {source}: already cataloged ({fingerprint[:16]})")
            continue
        sketch = MNCSketch.from_matrix(matrix)
        save_sketch(target, sketch)
        built += 1
        print(f"  {source}: sketched {sketch.nrows}x{sketch.ncols} "
              f"-> {fingerprint[:16]} ({sketch.size_bytes():,} B)")
    print(f"catalog {directory}: {built} built, {cached} already cached")
    return 0


def _cmd_catalog_clear(directory: str) -> int:
    from pathlib import Path

    root = Path(directory)
    if not root.is_dir():
        print(f"error: catalog directory {directory} does not exist",
              file=sys.stderr)
        return 2
    removed = 0
    for path in root.glob("*.npz"):
        path.unlink()
        removed += 1
    print(f"catalog {directory}: removed {removed} sketch(es)")
    return 0


def _cmd_serve(
    host: str,
    port: int,
    catalog: Optional[str],
    shards: int,
    budget_bytes: Optional[int],
    ttl: Optional[float],
    estimator: Optional[str],
    workers: Optional[int],
    tolerance: Optional[float] = None,
) -> int:
    from pathlib import Path

    from repro.catalog.service import EstimationService
    from repro.catalog.sharded import ShardedSketchStore
    from repro.catalog.store import DEFAULT_BUDGET_BYTES
    from repro.estimators.spec import AUTO_NAME, EstimatorSpec
    from repro.parallel import WorkerPool, resolve_workers
    from repro.serve.server import EstimationServer

    from repro import backends

    default = AUTO_NAME if tolerance is not None else "mnc"
    spec = EstimatorSpec.parse(estimator, tolerance=tolerance, default=default)
    # Warm the kernel backend before accepting traffic so the first
    # request never pays JIT compile time; the cost is recorded as the
    # backend.jit_compile_seconds gauge (visible under GET /metrics).
    # The report prints after the announce line — tooling reads the
    # first stderr line for the listening URL.
    warm_seconds = backends.warmup()
    spill_dir = None
    if catalog is not None:
        spill_dir = Path(catalog)
        spill_dir.mkdir(parents=True, exist_ok=True)
    store = ShardedSketchStore(
        num_shards=shards,
        budget_bytes=budget_bytes if budget_bytes is not None else DEFAULT_BUDGET_BYTES,
        spill_dir=spill_dir,
        ttl_seconds=ttl,
    )
    if spill_dir is not None:
        warmed = store.warm_start(spill_dir)
        if warmed:
            print(f"warm start: {len(warmed)} sketch(es) from {catalog}",
                  file=sys.stderr)
    pool = None
    if resolve_workers(workers) > 1:
        pool = WorkerPool(workers)
    service = EstimationService(spec, store=store, pool=pool)
    server = EstimationServer(service=service, host=host, port=port)
    def _announce(h: str, p: int) -> None:
        print(f"repro serve: listening on http://{h}:{p}", file=sys.stderr)
        print(f"backend: {backends.get_backend().name} kernels warm "
              f"in {warm_seconds:.3f}s", file=sys.stderr)

    try:
        server.run(announce=_announce)
    except KeyboardInterrupt:
        print("repro serve: shutting down", file=sys.stderr)
    finally:
        if spill_dir is not None:
            # Persists the sketches and, when routing, the learned policy.
            service.persist(str(spill_dir))
    return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "info":
        return _cmd_info()
    if args.command == "estimators":
        return _cmd_estimators(args.format)
    if args.command == "sketch":
        return _cmd_sketch(args.matrix)
    if args.command == "estimate":
        return _cmd_estimate(
            args.left, args.right, args.estimator, args.exact, args.catalog,
            workers=args.workers, tolerance=args.tolerance,
        )
    if args.command == "sparsest":
        return _cmd_sparsest(
            args.cases, args.estimators, args.scale, args.seed,
            workers=args.workers, tolerance=args.tolerance,
        )
    if args.command == "optimize":
        return _cmd_optimize(args.dims, args.sparsities, args.seed)
    if args.command == "verify":
        return _cmd_verify(
            args.budget, args.seed, args.cells, args.estimators,
            args.generators, args.corpus, not args.no_shrink, args.self_test,
            workers=args.workers,
        )
    if args.command == "stats":
        return _cmd_stats(args.trace_files, args.format, args.prometheus)
    if args.command == "catalog":
        if args.catalog_command == "stats":
            return _cmd_catalog_stats(args.directory, args.format)
        if args.catalog_command == "warm":
            return _cmd_catalog_warm(args.directory, args.matrices)
        if args.catalog_command == "clear":
            return _cmd_catalog_clear(args.directory)
    if args.command == "serve":
        return _cmd_serve(
            args.host, args.port, args.catalog, args.shards,
            args.budget_bytes, args.ttl, args.estimator,
            workers=args.workers, tolerance=args.tolerance,
        )
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    backend_name = getattr(args, "backend", None)
    if backend_name:
        import os

        from repro import backends

        # Export through the environment (not just set_backend) so worker
        # processes spawned by --workers inherit the same selection.
        os.environ[backends.BACKEND_ENV] = backend_name
        backends.set_backend(None)
    trace_path = getattr(args, "trace", None)
    flight_path = getattr(args, "flight_recorder", None)
    metrics_path = getattr(args, "metrics", None)

    if flight_path:
        from repro.observability import FLIGHT

        FLIGHT.arm(flight_path)

    if not trace_path and not metrics_path:
        return _dispatch(args)

    from repro.observability import (
        RecordingCollector,
        metrics_snapshot,
        using_collector,
        write_metrics_jsonl,
        write_trace,
    )

    code: int
    if trace_path:
        collector = RecordingCollector()
        with using_collector(collector):
            code = _dispatch(args)
        try:
            records = write_trace(trace_path, collector, metrics=metrics_snapshot())
        except OSError as exc:
            print(f"error: cannot write trace file: {exc}", file=sys.stderr)
            return code or 1
        print(f"trace: {records} records -> {trace_path}", file=sys.stderr)
    else:
        code = _dispatch(args)
    if metrics_path:
        try:
            write_metrics_jsonl(metrics_path, metrics_snapshot())
        except OSError as exc:
            print(f"error: cannot write metrics file: {exc}", file=sys.stderr)
            return code or 1
        print(f"metrics: snapshot -> {metrics_path}", file=sys.stderr)
    return code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
