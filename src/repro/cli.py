"""Command-line interface: ``python -m repro <command>``.

Commands
--------

- ``info`` — library version, registered estimators, use cases.
- ``sketch FILE.npz`` — build and summarize the MNC sketch of a stored
  matrix.
- ``estimate A.npz B.npz [--estimator NAME]`` — estimate the sparsity of
  the product ``A B`` (optionally comparing against the exact result).
- ``sparsest [--cases ...] [--estimators ...] [--scale S]`` — run SparsEst
  use cases and print the relative-error table.
- ``optimize --dims d0,d1,...,dk --sparsities s1,...,sk`` — optimize a
  random matrix chain with the dense and sparsity-aware DPs.

Matrices are exchanged in scipy ``.npz`` sparse format
(:func:`repro.matrix.io.save_matrix`).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MNC sparsity estimation (SIGMOD 2019 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("info", help="show version, estimators, use cases")

    sketch_cmd = commands.add_parser("sketch", help="summarize a matrix's MNC sketch")
    sketch_cmd.add_argument("matrix", help="path to a .npz sparse matrix")

    estimate_cmd = commands.add_parser(
        "estimate", help="estimate the sparsity of a product A @ B"
    )
    estimate_cmd.add_argument("left", help="path to A (.npz)")
    estimate_cmd.add_argument("right", help="path to B (.npz)")
    estimate_cmd.add_argument(
        "--estimator", default="mnc", help="registered estimator name (default mnc)"
    )
    estimate_cmd.add_argument(
        "--exact", action="store_true",
        help="also compute the exact result and the relative error",
    )

    sparsest_cmd = commands.add_parser("sparsest", help="run SparsEst use cases")
    sparsest_cmd.add_argument(
        "--cases", default="",
        help="comma-separated use-case ids (default: all)",
    )
    sparsest_cmd.add_argument(
        "--estimators", default="meta_ac,mnc,density_map",
        help="comma-separated estimator names",
    )
    sparsest_cmd.add_argument("--scale", type=float, default=0.05)
    sparsest_cmd.add_argument("--seed", type=int, default=0)

    optimize_cmd = commands.add_parser(
        "optimize", help="optimize a random matrix-product chain"
    )
    optimize_cmd.add_argument(
        "--dims", required=True,
        help="comma-separated boundary dimensions d0,...,dk (k matrices)",
    )
    optimize_cmd.add_argument(
        "--sparsities", required=True,
        help="comma-separated sparsity per matrix (k values)",
    )
    optimize_cmd.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_info() -> int:
    import repro
    from repro.estimators import available_estimators
    from repro.sparsest import use_case_ids

    print(f"repro {repro.__version__} — MNC sparsity estimation")
    print(f"estimators: {', '.join(available_estimators())}")
    print(f"use cases:  {', '.join(use_case_ids())}")
    return 0


def _cmd_sketch(path: str) -> int:
    from repro.core.sketch import MNCSketch
    from repro.matrix.io import load_matrix

    matrix = load_matrix(path)
    sketch = MNCSketch.from_matrix(matrix)
    print(f"matrix:   {sketch.nrows} x {sketch.ncols}, nnz {sketch.total_nnz:,} "
          f"(sparsity {sketch.sparsity:.6g})")
    print(f"max nnz per row/column: {sketch.max_hr} / {sketch.max_hc}")
    print(f"non-empty rows/columns: {sketch.nnz_rows:,} / {sketch.nnz_cols:,}")
    print(f"single-nnz rows/columns: {sketch.rows_single:,} / {sketch.cols_single:,}")
    print(f"half-full rows/columns: {sketch.rows_half_full:,} / {sketch.cols_half_full:,}")
    print(f"extensions: {sketch.has_extensions}, fully diagonal: {sketch.fully_diagonal}")
    print(f"sketch size: {sketch.size_bytes():,} bytes")
    return 0


def _cmd_estimate(left: str, right: str, estimator_name: str, exact: bool) -> int:
    from repro.estimators import make_estimator
    from repro.matrix.io import load_matrix
    from repro.opcodes import Op

    a = load_matrix(left)
    b = load_matrix(right)
    estimator = make_estimator(estimator_name)
    synopses = [estimator.build(a), estimator.build(b)]
    nnz = estimator.estimate_nnz(Op.MATMUL, synopses)
    cells = a.shape[0] * b.shape[1]
    print(f"{estimator.name} estimate: nnz ~ {nnz:,.0f}, "
          f"sparsity ~ {nnz / cells:.6g}")
    if exact:
        from repro.matrix.ops import matmul
        from repro.sparsest.metrics import relative_error

        truth = matmul(a, b).nnz
        print(f"exact:          nnz = {truth:,}, sparsity = {truth / cells:.6g}")
        print(f"relative error: {relative_error(truth, nnz):.4f}")
    return 0


def _cmd_sparsest(cases: str, estimators: str, scale: float, seed: int) -> int:
    from repro.estimators import make_estimator
    from repro.sparsest import all_use_cases, get_use_case, run_estimators
    from repro.sparsest.report import outcomes_table, timings_table

    if cases:
        selected = [get_use_case(case_id.strip()) for case_id in cases.split(",")]
    else:
        selected = all_use_cases()
    lineup = [make_estimator(name.strip()) for name in estimators.split(",")]
    outcomes = run_estimators(selected, lineup, scale=scale, seed=seed)
    print(outcomes_table(outcomes, title=f"SparsEst relative errors (scale={scale})"))
    print()
    print(timings_table(outcomes, title="Estimation time [s]"))
    if len(lineup) > 1:
        from repro.sparsest.summary import summary_table

        print()
        print(summary_table(outcomes, title="Per-estimator summary"))
    return 0


def _cmd_optimize(dims: str, sparsities: str, seed: int) -> int:
    from repro.core.sketch import MNCSketch
    from repro.optimizer import (
        optimize_chain_dense,
        optimize_chain_sparse,
        plan_cost_estimated,
        plan_to_string,
    )

    try:
        boundary = [int(value) for value in dims.split(",")]
        sparsity_values = [float(value) for value in sparsities.split(",")]
    except ValueError as exc:
        print(f"error: could not parse --dims/--sparsities: {exc}", file=sys.stderr)
        return 2
    if len(boundary) != len(sparsity_values) + 1:
        print("error: need k+1 dims for k sparsities", file=sys.stderr)
        return 2
    rng = np.random.default_rng(seed)
    sketches = [
        MNCSketch.synthetic(m, n, s, rng)
        for (m, n), s in zip(zip(boundary, boundary[1:]), sparsity_values)
    ]
    dense = optimize_chain_dense([h.shape for h in sketches])
    sparse = optimize_chain_sparse(sketches, rng=rng)
    dense_cost = plan_cost_estimated(dense.plan, sketches, rng=rng)
    sparse_cost = plan_cost_estimated(sparse.plan, sketches, rng=rng)
    print(f"dense-DP plan:  {plan_to_string(dense.plan)}")
    print(f"  estimated sparse cost: {dense_cost:,.0f}")
    print(f"sparse-DP plan: {plan_to_string(sparse.plan)}")
    print(f"  estimated sparse cost: {sparse_cost:,.0f}")
    if sparse_cost > 0:
        print(f"dense plan overhead: {dense_cost / sparse_cost:.2f}x")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "info":
        return _cmd_info()
    if args.command == "sketch":
        return _cmd_sketch(args.matrix)
    if args.command == "estimate":
        return _cmd_estimate(args.left, args.right, args.estimator, args.exact)
    if args.command == "sparsest":
        return _cmd_sparsest(args.cases, args.estimators, args.scale, args.seed)
    if args.command == "optimize":
        return _cmd_optimize(args.dims, args.sparsities, args.seed)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
