"""Allocation decisions and their regret.

An ML runtime pre-allocates each operation's output from the *estimated*
sparsity: it chooses a format and sizes the buffer. Both failure modes the
paper names are measurable:

- **over-allocation** ("wrong dense allocation of truly sparse outputs"):
  allocated bytes exceed what the true count needed;
- **under-allocation** ("wrong sparse allocation ... of truly dense
  outputs"): the buffer is too small and the runtime must reallocate and
  copy mid-operation.

:func:`plan_allocation` turns one (estimate, truth) pair into a decision
record; :class:`AllocationReport` aggregates records across a whole DAG.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.observability.metrics import metric_inc, metric_observe, record_residual
from repro.runtime.formats import (
    MatrixFormat,
    choose_format,
    memory_bytes,
    optimal_memory_bytes,
)


@dataclass(frozen=True)
class AllocationDecision:
    """One output-allocation decision and its evaluation against truth."""

    label: str
    shape: tuple[int, int]
    estimated_nnz: float
    true_nnz: float
    chosen_format: MatrixFormat
    optimal_format: MatrixFormat
    allocated_bytes: float
    required_bytes: float
    optimal_bytes: float

    @property
    def format_correct(self) -> bool:
        """Whether the estimator picked the format truth would pick."""
        return self.chosen_format is self.optimal_format

    @property
    def over_allocated_bytes(self) -> float:
        """Bytes allocated beyond what the truth-optimal layout needs
        (e.g. a dense buffer for a truly sparse output)."""
        return max(0.0, self.allocated_bytes - self.optimal_bytes)

    @property
    def under_allocated_bytes(self) -> float:
        """Missing bytes that force a mid-operation reallocation."""
        return max(0.0, self.required_bytes - self.allocated_bytes)

    @property
    def regret_bytes(self) -> float:
        """Bytes beyond the optimal allocation (waste plus the cost of
        growing an undersized buffer to the required size)."""
        return max(self.allocated_bytes, self.required_bytes) - self.optimal_bytes


def plan_allocation(
    label: str,
    shape: tuple[int, int],
    estimated_nnz: float,
    true_nnz: float,
    *,
    estimator: Optional[str] = None,
) -> AllocationDecision:
    """Make the allocation decision an estimator's output would cause.

    The format is chosen from the *estimated* sparsity, the buffer sized
    for the *estimated* count in that format; requirements are evaluated at
    the true count in the chosen format, and the optimum at the true count
    in the truth-optimal format.

    Every decision feeds the metrics registry: regret becomes a
    first-class ``runtime.regret_bytes`` observation (with over-/under-
    allocation and wrong-format counters), and the (estimate, truth) pair
    joins the accuracy residual ledger under ``source="allocator"`` —
    tagged with *estimator* when the caller knows which estimator produced
    the estimate.
    """
    m, n = shape
    cells = max(m * n, 1)
    estimated_nnz = min(max(estimated_nnz, 0.0), float(m * n))
    chosen = choose_format(estimated_nnz / cells if m and n else 0.0)
    optimal = choose_format(true_nnz / cells if m and n else 0.0)
    allocated = memory_bytes(m, n, estimated_nnz, chosen)
    required = memory_bytes(m, n, true_nnz, chosen)
    optimal_bytes = optimal_memory_bytes(m, n, true_nnz)
    decision = AllocationDecision(
        label=label, shape=(m, n),
        estimated_nnz=estimated_nnz, true_nnz=true_nnz,
        chosen_format=chosen, optimal_format=optimal,
        allocated_bytes=allocated, required_bytes=required,
        optimal_bytes=optimal_bytes,
    )
    metric_inc("runtime.allocations")
    metric_observe("runtime.regret_bytes", decision.regret_bytes)
    if decision.over_allocated_bytes:
        metric_inc("runtime.over_allocated_bytes", decision.over_allocated_bytes)
    if decision.under_allocated_bytes:
        metric_inc(
            "runtime.under_allocated_bytes", decision.under_allocated_bytes
        )
    if not decision.format_correct:
        metric_inc("runtime.wrong_format")
    record_residual(
        source="allocator",
        estimator=estimator or "unknown",
        workload=label,
        op="alloc",
        estimate=estimated_nnz,
        truth=true_nnz,
    )
    return decision


@dataclass
class AllocationReport:
    """Aggregate decision quality over a set of operations."""

    decisions: List[AllocationDecision] = field(default_factory=list)

    def add(self, decision: AllocationDecision) -> None:
        """Record one decision."""
        self.decisions.append(decision)

    @property
    def total(self) -> int:
        return len(self.decisions)

    @property
    def wrong_format_count(self) -> int:
        """Operations where the estimator chose the wrong format."""
        return sum(1 for d in self.decisions if not d.format_correct)

    @property
    def over_allocated_bytes(self) -> float:
        return sum(d.over_allocated_bytes for d in self.decisions)

    @property
    def under_allocated_bytes(self) -> float:
        return sum(d.under_allocated_bytes for d in self.decisions)

    @property
    def regret_bytes(self) -> float:
        return sum(d.regret_bytes for d in self.decisions)

    @property
    def optimal_bytes(self) -> float:
        return sum(d.optimal_bytes for d in self.decisions)

    @property
    def regret_ratio(self) -> float:
        """Total regret relative to the optimal allocation (0 is perfect)."""
        if self.optimal_bytes == 0:
            return 0.0
        return self.regret_bytes / self.optimal_bytes
