"""EXPLAIN-style plan reports for expression DAGs.

Database systems expose the optimizer's view of a query via EXPLAIN; this
module does the same for a matrix expression: per node, the operation,
output shape, the estimator's sparsity estimate, the format decision it
implies, the estimated memory, and (for products) the estimated sparse
multiply-pair cost. The report is what a SystemML-style compiler would log
when compiling the expression with MNC-backed statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.estimators.base import SparsityEstimator, Synopsis
from repro.estimators.mnc import MNCSynopsis
from repro.ir.estimate import _propagate_dag
from repro.ir.nodes import Expr
from repro.opcodes import Op
from repro.optimizer.cost import sparse_matmul_flops
from repro.runtime.formats import MatrixFormat, choose_format, memory_bytes


@dataclass(frozen=True)
class PlanLine:
    """One node of the explained plan."""

    depth: int
    label: str
    op: str
    shape: tuple[int, int]
    sparsity: float
    format: MatrixFormat
    memory_bytes: float
    flops: Optional[float]


def explain_lines(root: Expr, estimator: SparsityEstimator) -> List[PlanLine]:
    """Compute the per-node plan lines, leaves first (post-order)."""
    synopses = _propagate_dag(root, estimator)
    if root.op is not Op.LEAF:
        children = [synopses[id(child)] for child in root.inputs]
        root_nnz = estimator.estimate_nnz(root.op, children, **root.params)
    depths = _depths(root)
    lines: List[PlanLine] = []
    for node in root.postorder():
        if node is root and node.op is not Op.LEAF:
            nnz = root_nnz
            synopsis: Optional[Synopsis] = None
        else:
            synopsis = synopses[id(node)]
            nnz = synopsis.nnz_estimate
        m, n = node.shape
        sparsity = nnz / (m * n) if m and n else 0.0
        fmt = choose_format(min(max(sparsity, 0.0), 1.0))
        memory = memory_bytes(m, n, min(nnz, m * n), fmt)
        flops = _product_flops(node, synopses)
        lines.append(PlanLine(
            depth=depths[id(node)], label=node.label, op=node.op.value,
            shape=node.shape, sparsity=sparsity, format=fmt,
            memory_bytes=memory, flops=flops,
        ))
    return lines


def _product_flops(node: Expr, synopses) -> Optional[float]:
    if node.op is not Op.MATMUL:
        return None
    left = synopses.get(id(node.inputs[0]))
    right = synopses.get(id(node.inputs[1]))
    if isinstance(left, MNCSynopsis) and isinstance(right, MNCSynopsis):
        return sparse_matmul_flops(left.sketch, right.sketch)
    if left is not None and right is not None:
        # Generic estimators: expected pairs under uniform slice counts.
        common = node.inputs[0].shape[1]
        if common == 0:
            return 0.0
        return left.nnz_estimate * right.nnz_estimate / common
    return None


def _depths(root: Expr) -> dict[int, int]:
    depths: dict[int, int] = {}
    order = list(root.postorder())
    depths[id(root)] = 0
    for node in reversed(order):
        for child in node.inputs:
            proposed = depths.get(id(node), 0) + 1
            if proposed > depths.get(id(child), -1):
                depths[id(child)] = proposed
    return depths


def explain(root: Expr, estimator: SparsityEstimator) -> str:
    """Render an EXPLAIN report for *root* under *estimator*.

    Nodes print root-first (the reverse of evaluation order), indented by
    DAG depth, e.g.::

        masked-scores  ewise_mult  1000x2500  s~0.0056  SPARSE  0.2 MB
          known        neq_zero    1000x2500  ...
    """
    lines = explain_lines(root, estimator)
    by_id = {id(node): line for node, line in zip(root.postorder(), lines)}
    rendered = [f"plan for {root.label} under {estimator.name}:"]
    seen: set[int] = set()

    def render(node: Expr) -> None:
        if id(node) in seen:
            line = by_id[id(node)]
            rendered.append(f"{'  ' * line.depth}{line.label}  (shared, see above)")
            return
        seen.add(id(node))
        line = by_id[id(node)]
        flops = f"  flops~{line.flops:,.0f}" if line.flops is not None else ""
        rendered.append(
            f"{'  ' * line.depth}{line.label}  [{line.op}]  "
            f"{line.shape[0]}x{line.shape[1]}  s~{line.sparsity:.4g}  "
            f"{line.format.value}  {line.memory_bytes / 1e6:.2f} MB{flops}"
        )
        for child in node.inputs:
            render(child)

    render(root)
    return "\n".join(rendered)
