"""Matrix format selection and memory models.

Mirrors the rules SystemML (and the paper, footnote 3) uses:

- a block is stored **sparse** when its sparsity is below 0.4 — above
  that the CSR overhead (value + column index per non-zero, row pointer
  per row) exceeds the dense layout;
- dense blocks cost ``m * n * 8`` bytes (FP64);
- sparse CSR blocks cost ``nnz * (8 + 4) + (m + 1) * 4`` bytes
  (FP64 values, int32 indices/pointers).

These constants are what the allocation experiments charge estimators
against; they match this reproduction's scipy substrate closely enough
(scipy may promote indices to int64 for very large matrices, a uniform
factor that does not affect comparisons).
"""

from __future__ import annotations

import enum

from repro.errors import ShapeError

#: SystemML's dense/sparse switch point (paper footnote 3).
SPARSE_FORMAT_THRESHOLD = 0.4

_FP64 = 8
_INDEX = 4


class MatrixFormat(enum.Enum):
    """Physical block layout."""

    DENSE = "dense"
    SPARSE = "sparse"


def choose_format(sparsity: float, threshold: float = SPARSE_FORMAT_THRESHOLD) -> MatrixFormat:
    """Pick the block format for a matrix of the given (estimated) sparsity.

    Args:
        sparsity: fraction of non-zero cells in [0, 1].
        threshold: sparsity at or above which dense wins (default 0.4).
    """
    if not 0.0 <= sparsity <= 1.0:
        raise ShapeError(f"sparsity must be in [0, 1], got {sparsity}")
    if sparsity >= threshold:
        return MatrixFormat.DENSE
    return MatrixFormat.SPARSE


def memory_bytes(m: int, n: int, nnz: float, fmt: MatrixFormat) -> float:
    """Memory footprint of an ``m x n`` block with *nnz* non-zeros in *fmt*.

    For dense blocks the non-zero count is irrelevant; for sparse blocks it
    determines the payload. Sparse allocation for a truly dense result is
    the paper's "wrong sparse allocation" failure mode — the returned size
    grows past the dense one, which the allocator reports as waste.
    """
    if m < 0 or n < 0 or nnz < 0:
        raise ShapeError("dimensions and nnz must be non-negative")
    if nnz > m * n:
        raise ShapeError(f"nnz {nnz} exceeds cell count {m * n}")
    if fmt is MatrixFormat.DENSE:
        return float(m) * float(n) * _FP64
    return nnz * (_FP64 + _INDEX) + (m + 1) * _INDEX


def optimal_memory_bytes(m: int, n: int, nnz: float) -> float:
    """Memory of the *best* format for the true non-zero count."""
    return min(
        memory_bytes(m, n, nnz, MatrixFormat.DENSE),
        memory_bytes(m, n, nnz, MatrixFormat.SPARSE),
    )
