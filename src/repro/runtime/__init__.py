"""Runtime consumers of sparsity estimates (the paper's motivation).

Sparsity estimates exist to drive decisions: output *format* selection
(sparse vs dense blocks), memory *pre-allocation*, and plan costing. This
subpackage implements those consumers so the estimators can be evaluated on
the decisions they cause, not just on relative error:

- :mod:`repro.runtime.formats` — SystemML-style format rule and memory
  models for dense FP64 and CSR blocks;
- :mod:`repro.runtime.allocator` — per-operation allocation decisions and
  the regret (waste / undersizing) an estimator's error induces;
- :mod:`repro.runtime.executor` — executes an expression DAG with
  estimator-guided decisions and aggregates decision quality.
"""

from repro.runtime.allocator import AllocationDecision, AllocationReport, plan_allocation
from repro.runtime.executor import DecisionSummary, execute_with_decisions
from repro.runtime.explain import PlanLine, explain, explain_lines
from repro.runtime.formats import (
    SPARSE_FORMAT_THRESHOLD,
    MatrixFormat,
    choose_format,
    memory_bytes,
)

__all__ = [
    "AllocationDecision",
    "AllocationReport",
    "DecisionSummary",
    "MatrixFormat",
    "PlanLine",
    "SPARSE_FORMAT_THRESHOLD",
    "choose_format",
    "execute_with_decisions",
    "explain",
    "explain_lines",
    "memory_bytes",
    "plan_allocation",
]
