"""Estimator-guided execution of expression DAGs.

Walks a DAG the way a runtime would: before materializing each operation's
output, it commits to a format and buffer size from the estimator's
propagated synopsis; afterwards the exact structural result reveals what
the decision cost. The result is a :class:`DecisionSummary` — the "M3"
style evaluation the paper marks optional (how estimates affect the plan's
execution, not just their error).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.estimators.base import SparsityEstimator
from repro.ir.estimate import _propagate_dag
from repro.ir.interpreter import evaluate_all
from repro.ir.nodes import Expr
from repro.observability.trace import maybe_trace
from repro.opcodes import Op
from repro.runtime.allocator import AllocationReport, plan_allocation


@dataclass(frozen=True)
class DecisionSummary:
    """Outcome of executing a DAG under an estimator's guidance."""

    estimator: str
    report: AllocationReport

    @property
    def operations(self) -> int:
        return self.report.total

    @property
    def wrong_formats(self) -> int:
        return self.report.wrong_format_count

    @property
    def regret_mb(self) -> float:
        return self.report.regret_bytes / 1e6

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (
            f"{self.estimator}: {self.operations} ops, "
            f"{self.wrong_formats} wrong formats, "
            f"regret {self.regret_mb:.2f} MB "
            f"({self.report.regret_ratio * 100:.1f}% of optimal)"
        )


def execute_with_decisions(
    root: Expr, estimator: SparsityEstimator
) -> DecisionSummary:
    """Execute *root* with estimator-guided allocation for every operation.

    Leaves are inputs (already resident, no decision); every operation node
    gets one allocation decision scored against the exact structural
    result.

    Args:
        root: the expression DAG (will be fully evaluated — use benchmark
            scales).
        estimator: any registered estimator instance.
    """
    with maybe_trace("executor.run", estimator=estimator.name):
        synopses = _propagate_dag(root, estimator)
        with maybe_trace("executor.evaluate"):
            truths = evaluate_all(root)
        with maybe_trace("executor.decide", estimator=estimator.name):
            report = AllocationReport()
            for node in root.postorder():
                if node.op is Op.LEAF:
                    continue
                if node is root:
                    children = [synopses[id(child)] for child in node.inputs]
                    estimated = estimator.estimate_nnz(
                        node.op, children, **node.params
                    )
                else:
                    estimated = synopses[id(node)].nnz_estimate
                truth = float(truths[id(node)].nnz)
                report.add(
                    plan_allocation(
                        node.label, node.shape, estimated, truth,
                        estimator=estimator.name,
                    )
                )
    return DecisionSummary(estimator=estimator.name, report=report)
