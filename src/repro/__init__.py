"""Reproduction of *MNC: Structure-Exploiting Sparsity Estimation for Matrix
Expressions* (Sommer, Boehm, Evfimievski, Reinwald, Haas — SIGMOD 2019).

The package provides:

- the MNC sketch and estimators (:mod:`repro.core`),
- every baseline estimator the paper compares against
  (:mod:`repro.estimators`),
- an expression IR with ground-truth evaluation and estimator-driven sketch
  propagation (:mod:`repro.ir`),
- sparsity-aware matrix-multiplication-chain optimization
  (:mod:`repro.optimizer`),
- the SparsEst benchmark (:mod:`repro.sparsest`).

Quickstart::

    import repro
    from repro.matrix import random_sparse

    a = random_sparse(1000, 800, 0.01, seed=1)
    b = random_sparse(800, 1200, 0.02, seed=2)
    estimate = repro.estimate_product_sparsity_of(a, b)
"""

from repro.core import MNCSketch
from repro.core.estimate import estimate_product_nnz, estimate_product_sparsity
from repro.core.propagate import propagate_product
from repro.errors import (
    EstimationError,
    PlanError,
    ReproError,
    ShapeError,
    SketchError,
    UnsupportedOperationError,
)
from repro.estimators import available_estimators, make_estimator
from repro.matrix.conversion import MatrixLike
from repro.opcodes import Op

__version__ = "1.0.0"

__all__ = [
    "EstimationError",
    "MNCSketch",
    "MatrixLike",
    "Op",
    "PlanError",
    "ReproError",
    "ShapeError",
    "SketchError",
    "UnsupportedOperationError",
    "__version__",
    "available_estimators",
    "estimate_product_nnz",
    "estimate_product_sparsity",
    "estimate_product_sparsity_of",
    "make_estimator",
    "propagate_product",
    "sketch",
]


def sketch(matrix: MatrixLike) -> MNCSketch:
    """Build the MNC sketch of a matrix (convenience for
    :meth:`MNCSketch.from_matrix`)."""
    return MNCSketch.from_matrix(matrix)


def estimate_product_sparsity_of(a: MatrixLike, b: MatrixLike) -> float:
    """One-call MNC sparsity estimate for the product ``A B``.

    Builds both sketches and runs Algorithm 1; for repeated estimates over
    the same matrices, build the sketches once with :func:`sketch` and call
    :func:`estimate_product_sparsity` directly.
    """
    return estimate_product_sparsity(
        MNCSketch.from_matrix(a), MNCSketch.from_matrix(b)
    )
