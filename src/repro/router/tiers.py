"""The router's accuracy/cost ladder over the registered estimators.

The paper's estimators form a spectrum from free metadata formulas to the
exact oracle. :data:`TIER_LADDER` orders a representative subset of that
spectrum by cost; the :class:`~repro.router.adaptive.AdaptiveRouter` walks
it bottom-up, escalating only while its uncertainty about the current
tier's answer exceeds the caller's tolerance.

``prior_error`` is each tier's default multiplicative error band (the
factor by which estimate and truth may differ) used before the
:class:`~repro.router.policy.RoutingPolicy` has observed any residuals
for that tier; the numbers are deliberately conservative readings of the
paper's accuracy figures, and learned statistics replace them as soon as
the residual ledger has data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.estimators.base import (
    SparsityEstimator,
    available_estimators,
    make_estimator,
)
from repro.ir.nodes import Expr
from repro.opcodes import Op


@dataclass(frozen=True)
class Tier:
    """One rung of the router's escalation ladder.

    Args:
        name: registry name of the tier's estimator.
        label: estimator display name (``SparsityEstimator.name``).
        cost: ladder position; strictly increasing with expected runtime.
        prior_error: default multiplicative error band before the policy
            has residual observations for this tier.
        seeded: whether the estimator constructor takes a ``seed``.
        structural: how the router derives an uncertainty width for this
            tier — ``"metadata"`` (MetaAC/MetaWC bracket), ``"mnc"``
            (Theorem 3.2 interval where applicable), ``"exact"``
            (zero width), or ``""`` (policy band only).
    """

    name: str
    label: str
    cost: int
    prior_error: float
    seeded: bool
    structural: str = ""


TIER_LADDER: Tuple[Tier, ...] = (
    Tier("meta_ac", "MetaAC", 0, 8.0, False, "metadata"),
    Tier("density_map", "DMap", 1, 3.0, False, ""),
    Tier("sampling", "Sample", 2, 2.5, True, ""),
    Tier("hash", "Hash", 3, 2.0, True, ""),
    Tier("mnc", "MNC", 4, 1.2, True, "mnc"),
    Tier("exact", "Exact", 5, 1.0, False, "exact"),
)

_TIER_BY_NAME: Dict[str, Tier] = {tier.name: tier for tier in TIER_LADDER}

# Capability probes: one throwaway instance per ladder estimator, used only
# for supports()/supports_propagation() checks (never fed matrices).
_PROBES: Dict[str, SparsityEstimator] = {}


def _probe(name: str) -> SparsityEstimator:
    probe = _PROBES.get(name)
    if probe is None:
        probe = make_estimator(name)
        _PROBES[name] = probe
    return probe


def tier_by_name(name: str) -> Optional[Tier]:
    """The ladder tier backed by estimator *name*, if any."""
    return _TIER_BY_NAME.get(name)


def tier_supports(tier: Tier, root: Expr) -> bool:
    """Whether *tier*'s estimator can evaluate the whole DAG under *root*:
    direct estimation of the root op, synopsis propagation everywhere else.
    """
    probe = _probe(tier.name)
    if root.op is not Op.LEAF and not probe.supports(root.op):
        return False
    for node in root.postorder():
        if node is root or node.op is Op.LEAF:
            continue
        if not probe.supports_propagation(node.op):
            return False
    return True


def admissible_tiers(root: Expr) -> List[Tier]:
    """The ladder restricted to tiers that can evaluate *root*'s DAG.

    Never empty: the exact oracle supports every operation.
    """
    return [tier for tier in TIER_LADDER if tier_supports(tier, root)]


def estimator_catalog() -> List[Dict[str, object]]:
    """Rows for ``repro estimators``: every registered estimator with its
    display label, contract tags, and ladder cost tier (``None`` when the
    estimator is not on the router's ladder)."""
    rows: List[Dict[str, object]] = []
    for name in available_estimators():
        probe = _probe(name)
        tier = _TIER_BY_NAME.get(name)
        rows.append(
            {
                "name": name,
                "label": probe.name,
                "tags": sorted(probe.contract_tags),
                "cost_tier": tier.cost if tier is not None else None,
            }
        )
    return rows
