"""Adaptive estimator routing (``estimator="auto"``).

The router walks the accuracy/cost ladder (:mod:`repro.router.tiers`)
from the cheapest admissible estimator upward, stopping as soon as its
uncertainty about the answer — a Theorem 3.2 interval, the MetaAC/MetaWC
bracket, or a learned error band — fits the caller's tolerance. The
:class:`RoutingPolicy` learns those bands from the residual ledger and
persists them alongside the catalog. See ``docs/ROUTING.md``.
"""

from repro.router.adaptive import (
    DEFAULT_TOLERANCE,
    AdaptiveRouter,
    RouteDecision,
    derive_tier_seed,
)
from repro.router.policy import POLICY_FILENAME, ErrorStats, RoutingPolicy
from repro.router.probe import ProbeReport, probe_hardness
from repro.router.tiers import (
    TIER_LADDER,
    Tier,
    admissible_tiers,
    estimator_catalog,
    tier_by_name,
)

__all__ = [
    "AdaptiveRouter",
    "DEFAULT_TOLERANCE",
    "ErrorStats",
    "POLICY_FILENAME",
    "ProbeReport",
    "RouteDecision",
    "RoutingPolicy",
    "TIER_LADDER",
    "Tier",
    "admissible_tiers",
    "derive_tier_seed",
    "estimator_catalog",
    "probe_hardness",
    "tier_by_name",
]
