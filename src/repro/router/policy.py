"""Learned routing policy: per-(workload, op, estimator) error statistics.

The :class:`RoutingPolicy` closes the feedback loop the residual ledger
(:mod:`repro.observability.metrics`, PR 6) opened: every
:class:`~repro.observability.metrics.ResidualRecord` — an estimate paired
with ground truth — becomes an observation of how wrong a given estimator
tends to be on a given workload/op, and the router consults those bands
instead of its static priors once data exists.

Like :class:`~repro.observability.metrics.MetricsSnapshot`, a policy is
snapshot-serializable and mergeable, so parallel workers can each route
against the same frozen snapshot (determinism) and their observations can
be folded back together afterwards. ``save``/``load`` persist the policy
as ``routing_policy.json`` alongside the sketch catalog, so routing keeps
improving across sessions.
"""

from __future__ import annotations

import json
import math
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ReproError
from repro.observability.metrics import METRICS, ResidualRecord

#: File name used when persisting next to a catalog spill directory.
POLICY_FILENAME = "routing_policy.json"

_SNAPSHOT_VERSION = 1

#: Pseudo-observations anchoring the smoothed band to the prior, so one
#: lucky residual cannot instantly declare a cheap estimator trustworthy.
_PSEUDO_COUNT = 4.0

Key = Tuple[str, str, str]  # (workload, op, estimator label)


@dataclass
class ErrorStats:
    """Accumulated multiplicative-error observations for one key.

    Errors are the ledger's symmetric relative errors
    (``max(est, truth) / min(est, truth)``, always >= 1); the geometric
    mean (via ``sum_log_error``) is the natural average for a
    multiplicative quantity.
    """

    count: int = 0
    sum_log_error: float = 0.0
    max_error: float = 1.0
    sum_seconds: float = 0.0

    def observe(self, relative_error: float, seconds: float = 0.0) -> None:
        self.count += 1
        self.sum_log_error += math.log(max(relative_error, 1.0))
        self.max_error = max(self.max_error, relative_error)
        self.sum_seconds += max(seconds, 0.0)

    def merge(self, other: "ErrorStats") -> None:
        self.count += other.count
        self.sum_log_error += other.sum_log_error
        self.max_error = max(self.max_error, other.max_error)
        self.sum_seconds += other.sum_seconds

    @property
    def geometric_mean_error(self) -> float:
        if self.count == 0:
            return 1.0
        return math.exp(self.sum_log_error / self.count)

    def smoothed_error(self, prior: float) -> float:
        """Geometric mean shrunk toward *prior* by pseudo-observations."""
        total = _PSEUDO_COUNT + self.count
        log_band = (math.log(max(prior, 1.0)) * _PSEUDO_COUNT + self.sum_log_error)
        return math.exp(log_band / total)

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum_log_error": self.sum_log_error,
            "max_error": self.max_error,
            "sum_seconds": self.sum_seconds,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, float]) -> "ErrorStats":
        return cls(
            count=int(payload.get("count", 0)),
            sum_log_error=float(payload.get("sum_log_error", 0.0)),
            max_error=float(payload.get("max_error", 1.0)),
            sum_seconds=float(payload.get("sum_seconds", 0.0)),
        )


@dataclass
class RoutingPolicy:
    """Mergeable, serializable error statistics keyed by
    ``(workload, op, estimator label)``.

    Observations are written under the specific key *and* the wildcard
    rollups ``("*", op, estimator)`` and ``("*", "*", estimator)``;
    :meth:`predicted_error` reads the most specific key with data.
    """

    _stats: Dict[Key, ErrorStats] = field(default_factory=dict)
    _seen: int = 0  # residuals_seen high-water mark for sync_from_registry
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def observe(
        self,
        estimator: str,
        *,
        workload: str = "*",
        op: str = "*",
        relative_error: float,
        seconds: float = 0.0,
    ) -> None:
        """Record one estimate-vs-truth observation for *estimator*."""
        if not math.isfinite(relative_error) or relative_error < 1.0:
            return
        keys = {(workload, op, estimator), ("*", op, estimator), ("*", "*", estimator)}
        with self._lock:
            for key in keys:
                stats = self._stats.get(key)
                if stats is None:
                    stats = self._stats[key] = ErrorStats()
                stats.observe(relative_error, seconds)

    def ingest(self, records: Iterable[ResidualRecord]) -> int:
        """Fold residual-ledger records into the policy; returns how many
        were usable (finite error >= 1)."""
        used = 0
        for record in records:
            error = record.relative_error
            if not math.isfinite(error) or error < 1.0:
                continue
            self.observe(
                record.estimator,
                workload=record.workload or "*",
                op=record.op or "*",
                relative_error=error,
                seconds=record.seconds,
            )
            used += 1
        return used

    def sync_from_registry(self, registry=METRICS) -> int:
        """Ingest residuals the metrics registry accumulated since the last
        sync. Never called mid-request — routing stays deterministic for a
        given policy state."""
        snapshot = registry.snapshot(sync_hotpath=False)
        if snapshot.residuals_seen <= self._seen:
            return 0
        records = snapshot.residuals
        # The ledger is a bounded deque: records[0] is global index
        # residuals_seen - len(records), not 0.
        start = snapshot.residuals_seen - len(records)
        fresh = records[max(self._seen - start, 0):]
        used = self.ingest(fresh)
        self._seen = snapshot.residuals_seen
        return used

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def predicted_error(
        self,
        estimator: str,
        *,
        workload: str = "*",
        op: str = "*",
        prior: Optional[float] = None,
    ) -> Optional[float]:
        """Smoothed multiplicative error band for *estimator*.

        Falls back from ``(workload, op)`` to ``("*", op)`` to
        ``("*", "*")``; with no observations anywhere, returns *prior*
        (which may be ``None``, meaning "no information").
        """
        with self._lock:
            for key in (
                (workload, op, estimator),
                ("*", op, estimator),
                ("*", "*", estimator),
            ):
                stats = self._stats.get(key)
                if stats is not None and stats.count > 0:
                    return stats.smoothed_error(prior if prior is not None else 1.0)
        return prior

    def observation_count(self, estimator: str) -> int:
        with self._lock:
            stats = self._stats.get(("*", "*", estimator))
            return stats.count if stats is not None else 0

    # ------------------------------------------------------------------
    # Snapshot / merge / persistence
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe frozen copy (sorted keys — byte-stable for a given
        state, so workers routing against the same snapshot agree)."""
        with self._lock:
            entries = {
                "|".join(key): stats.to_dict()
                for key, stats in sorted(self._stats.items())
            }
        return {"version": _SNAPSHOT_VERSION, "stats": entries}

    @classmethod
    def from_snapshot(cls, payload: Dict[str, object]) -> "RoutingPolicy":
        version = int(payload.get("version", _SNAPSHOT_VERSION))
        if version > _SNAPSHOT_VERSION:
            raise ReproError(
                f"routing policy snapshot version {version} is newer than "
                f"supported version {_SNAPSHOT_VERSION}"
            )
        policy = cls()
        for joined, stats in dict(payload.get("stats", {})).items():
            parts = joined.split("|")
            if len(parts) != 3:
                continue
            policy._stats[tuple(parts)] = ErrorStats.from_dict(stats)
        return policy

    def merge(self, other: "RoutingPolicy") -> None:
        """Fold another policy's observations into this one (worker join)."""
        with other._lock:
            items = [(key, ErrorStats.from_dict(stats.to_dict()))
                     for key, stats in other._stats.items()]
        with self._lock:
            for key, stats in items:
                mine = self._stats.get(key)
                if mine is None:
                    self._stats[key] = stats
                else:
                    mine.merge(stats)

    def save(self, directory: str) -> str:
        """Persist as ``routing_policy.json`` under *directory*."""
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, POLICY_FILENAME)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self.snapshot(), handle, sort_keys=True, indent=1)
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, directory: Optional[str]) -> Optional["RoutingPolicy"]:
        """Load a persisted policy, or ``None`` when absent/unset."""
        if not directory:
            return None
        path = os.path.join(directory, POLICY_FILENAME)
        if not os.path.exists(path):
            return None
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_snapshot(json.load(handle))

    def describe(self) -> Dict[str, object]:
        """Compact summary for ``repro stats`` / ``/stats``."""
        with self._lock:
            per_estimator: List[Dict[str, object]] = []
            for (workload, op, estimator), stats in sorted(self._stats.items()):
                if workload != "*" or op != "*":
                    continue
                per_estimator.append(
                    {
                        "estimator": estimator,
                        "observations": stats.count,
                        "geometric_mean_error": round(stats.geometric_mean_error, 4),
                        "max_error": round(stats.max_error, 4),
                    }
                )
            keys = len(self._stats)
        return {"keys": keys, "estimators": per_estimator}
