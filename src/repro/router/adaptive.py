"""The adaptive estimator router behind ``estimator="auto"``.

Per request, :class:`AdaptiveRouter` starts at the cheapest admissible
tier of :data:`~repro.router.tiers.TIER_LADDER` and escalates only while
its uncertainty about the current answer exceeds the caller's tolerance.
Uncertainty comes from the strongest available source per tier:

- **metadata**: the structural MetaAC-vs-MetaWC bracket — when the
  average-case and worst-case formulas agree, nothing more expensive can
  tell a materially different story;
- **mnc**: the Theorem 3.2 confidence interval
  (:func:`repro.core.intervals.estimate_product_interval`) for matmul
  roots over MNC-sketched children;
- **exact**: zero, by definition;
- everything else: the learned multiplicative error band from the
  :class:`~repro.router.policy.RoutingPolicy` (static priors until the
  residual ledger has observations).

Tolerance is a *relative interval width*: ``(upper - lower) /
max(estimate, 1)``. The router stops at the first tier whose width fits.

Determinism contract: for a fixed ``(policy snapshot, seed)`` the route
and the returned estimate are bit-identical regardless of worker count or
call order. Every seeded tier gets a fresh estimator whose seed is
derived from ``(router seed, root fingerprint, tier name)``; the policy
is only consulted, never updated, during a request; and when a catalog is
shared, only (seed-independent) leaf synopses are shared through it.
"""

from __future__ import annotations

import hashlib
import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.intervals import estimate_product_interval
from repro.errors import EstimationError, EstimatorOptionError
from repro.estimators.base import SparsityEstimator, make_estimator
from repro.estimators.mnc import MNCSynopsis
from repro.estimators.spec import EstimatorSpec
from repro.ir.estimate import _propagate_dag, estimate_root_nnz
from repro.ir.nodes import Expr
from repro.observability.metrics import metric_observe
from repro.observability.trace import count
from repro.opcodes import Op
from repro.router.policy import RoutingPolicy
from repro.router.probe import ProbeReport, probe_hardness
from repro.router.tiers import TIER_LADDER, Tier, admissible_tiers

#: Default relative interval width a routed estimate must fit.
DEFAULT_TOLERANCE = 0.5

#: Probe hardness -> minimum ladder cost of the starting tier.
_PROBE_START_COST = {"easy": 0, "medium": 1, "hard": 4}


def derive_tier_seed(base_seed: int, root_fingerprint: str, tier_name: str) -> int:
    """Deterministic per-(expression, tier) seed: the route must not depend
    on call order or worker placement, only on the expression itself."""
    digest = hashlib.blake2b(
        f"{base_seed}:{root_fingerprint}:{tier_name}".encode("utf-8"),
        digest_size=8,
    ).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class RouteDecision:
    """How one request was routed.

    ``certified`` means the truth provably lies in ``[lower, upper]``
    (Theorem 3.2 interval or exact evaluation); policy bands and the
    MetaAC/MetaWC bracket are empirical/heuristic widths.
    """

    tier: str
    estimator: str
    tier_index: int
    escalations: int
    skipped: int
    tolerance: float
    width: float
    lower: float
    upper: float
    certified: bool
    probe: Optional[ProbeReport]
    tiers_tried: Tuple[str, ...]

    def to_payload(self) -> Dict[str, object]:
        """JSON-safe form echoed in service results and wire responses."""
        payload: Dict[str, object] = {
            "tier": self.tier,
            "estimator": self.estimator,
            "escalations": self.escalations,
            "skipped": self.skipped,
            "tolerance": self.tolerance,
            "width": self.width,
            "lower": self.lower,
            "upper": self.upper,
            "certified": self.certified,
            "tiers_tried": list(self.tiers_tried),
        }
        if self.probe is not None:
            payload["probe"] = self.probe.to_payload()
        return payload


class _LeafCatalogView:
    """Catalog adapter that shares only leaf synopses.

    Propagated synopses depend on the per-(expression, tier) derived seed,
    so caching them across expressions would break the ``workers=1`` ==
    ``workers=N`` bit-identity guarantee. Leaf builds of every ladder
    estimator are seed-independent and safe to share.
    """

    def __init__(self, catalog: object):
        self._catalog = catalog

    def node_synopsis_get(self, fingerprint, node, estimator):
        if node.op is not Op.LEAF:
            return None
        return self._catalog.node_synopsis_get(fingerprint, node, estimator)

    def node_synopsis_put(self, fingerprint, node, estimator, synopsis):
        if node.op is not Op.LEAF:
            return
        self._catalog.node_synopsis_put(fingerprint, node, estimator, synopsis)


class AdaptiveRouter:
    """Escalating tier router with residual feedback.

    Args:
        tolerance: maximum acceptable relative interval width
            (default :data:`DEFAULT_TOLERANCE`).
        seed: base seed for seeded tiers and the probe.
        policy: learned error statistics; a fresh (prior-only) policy when
            omitted.
        probe: run the Du-style hardness probe to pick the starting tier.
        confidence: confidence level for Theorem 3.2 intervals.
    """

    def __init__(
        self,
        *,
        tolerance: Optional[float] = None,
        seed: Optional[int] = None,
        policy: Optional[RoutingPolicy] = None,
        probe: bool = False,
        confidence: float = 0.95,
    ):
        self.tolerance = DEFAULT_TOLERANCE if tolerance is None else float(tolerance)
        if not math.isfinite(self.tolerance) or self.tolerance < 0.0:
            raise EstimatorOptionError(
                f"tolerance must be finite and >= 0, got {tolerance!r}"
            )
        self.seed = 0 if seed is None else int(seed)
        self.policy = policy if policy is not None else RoutingPolicy()
        self.probe = bool(probe)
        self.confidence = float(confidence)

    @classmethod
    def from_spec(
        cls, spec: EstimatorSpec, *, policy: Optional[RoutingPolicy] = None
    ) -> "AdaptiveRouter":
        """Build a router from an ``auto`` :class:`EstimatorSpec`."""
        if not spec.is_auto:
            raise EstimatorOptionError(
                f"AdaptiveRouter.from_spec needs estimator='auto', "
                f"got {spec.name!r}"
            )
        options = spec.options_dict()
        probe = bool(options.pop("probe", False))
        confidence = float(options.pop("confidence", 0.95))
        if options:
            raise EstimatorOptionError(
                f"unknown router options {sorted(options)}; "
                f"supported: ['confidence', 'probe']",
                details={"estimator": "auto", "options": sorted(options)},
            )
        return cls(
            tolerance=spec.tolerance,
            seed=spec.seed,
            policy=policy,
            probe=probe,
            confidence=confidence,
        )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def route(
        self,
        root: Expr,
        *,
        workload: str = "*",
        catalog: Optional[object] = None,
    ) -> Tuple[float, RouteDecision]:
        """Estimate ``nnz(root)``, escalating tiers until the uncertainty
        width fits the tolerance. Returns ``(nnz, decision)``."""
        count("router.requests")
        # Fingerprinting hashes every leaf's data — as expensive as some
        # whole tiers. Only seeded tiers need it (for seed derivation), so
        # compute it lazily: a metadata-only route never pays for it.
        fp_cache: List[str] = []

        def root_fp() -> str:
            if not fp_cache:
                fp_cache.append(self._root_fingerprint(root))
            return fp_cache[0]

        view = _LeafCatalogView(catalog) if catalog is not None else None
        op_label = "leaf" if root.op is Op.LEAF else root.op.value

        if root.op is Op.LEAF:
            nnz = float(root.matrix.nnz)
            decision = RouteDecision(
                tier="exact", estimator="Exact", tier_index=0, escalations=0,
                skipped=0, tolerance=self.tolerance, width=0.0, lower=nnz,
                upper=nnz, certified=True, probe=None, tiers_tried=("exact",),
            )
            count("router.tier_used.exact")
            metric_observe("router.escalations", 0.0)
            return nnz, decision

        ladder = admissible_tiers(root)
        report: Optional[ProbeReport] = None
        start = 0
        if self.probe:
            report = probe_hardness(root, seed=self.seed)
            count(f"router.probe.{report.hardness}")
            min_cost = _PROBE_START_COST[report.hardness]
            for index, tier in enumerate(ladder):
                if tier.cost >= min_cost:
                    start = index
                    break

        tried: List[str] = []
        skipped = start
        evaluations = 0
        best: Optional[Tuple[float, Tier, int, float, float, float, bool]] = None
        last_error: Optional[Exception] = None
        for index in range(start, len(ladder)):
            tier = ladder[index]
            is_last = index == len(ladder) - 1
            if not tier.structural and not is_last:
                # Policy-band tiers cannot shrink their width by running:
                # the band is known before evaluation. Skip hopeless ones.
                band = self._band(tier, workload, op_label, prior=tier.prior_error)
                if self._band_width(band) > self.tolerance:
                    skipped += 1
                    continue
            tried.append(tier.name)
            try:
                nnz, width, lower, upper, certified = self._evaluate(
                    tier, root, root_fp, workload, op_label, view
                )
            except (EstimationError,) as exc:
                last_error = exc
                count(f"router.tier_failed.{tier.name}")
                continue
            evaluations += 1
            best = (nnz, tier, index, width, lower, upper, certified)
            if width <= self.tolerance:
                break
        if best is None:
            raise EstimationError(
                f"no router tier could evaluate the expression "
                f"(last error: {last_error})"
            )
        nnz, tier, index, width, lower, upper, certified = best
        escalations = max(evaluations - 1, 0)
        decision = RouteDecision(
            tier=tier.name,
            estimator=tier.label,
            tier_index=index,
            escalations=escalations,
            skipped=skipped,
            tolerance=self.tolerance,
            width=width,
            lower=lower,
            upper=upper,
            certified=certified,
            probe=report,
            tiers_tried=tuple(tried),
        )
        count(f"router.tier_used.{tier.name}")
        metric_observe("router.escalations", float(escalations))
        if skipped:
            count("router.tiers_skipped", float(skipped))
        return nnz, decision

    def estimate(
        self,
        root: Expr,
        *,
        workload: str = "*",
        catalog: Optional[object] = None,
    ) -> Dict[str, object]:
        """Routed analogue of :func:`repro.ir.estimate.estimate_dag`."""
        started = time.perf_counter()
        nnz, decision = self.route(root, workload=workload, catalog=catalog)
        seconds = time.perf_counter() - started
        m, n = root.shape
        return {
            "nnz": nnz,
            "sparsity": nnz / (m * n) if m and n else 0.0,
            "seconds": seconds,
            "router": decision.to_payload(),
        }

    # ------------------------------------------------------------------
    # Tier evaluation
    # ------------------------------------------------------------------

    def make_tier_estimator(self, root: Expr, tier_name: str) -> SparsityEstimator:
        """The exact estimator instance a route through *tier_name* used
        for *root* (fresh, deterministically seeded). Lets callers re-run
        e.g. ``include_intermediates`` reporting on the chosen tier."""
        tier = next(t for t in TIER_LADDER if t.name == tier_name)
        root_fp = self._root_fingerprint(root)
        return self._tier_estimator(tier, root_fp)

    def _tier_estimator(self, tier: Tier, root_fp) -> SparsityEstimator:
        """*root_fp* is the fingerprint string or a zero-arg supplier of it
        (so unseeded tiers never force fingerprint computation)."""
        if tier.seeded:
            fingerprint = root_fp() if callable(root_fp) else root_fp
            return make_estimator(
                tier.name, seed=derive_tier_seed(self.seed, fingerprint, tier.name)
            )
        return make_estimator(tier.name)

    def _evaluate(
        self,
        tier: Tier,
        root: Expr,
        root_fp,
        workload: str,
        op_label: str,
        view: Optional[_LeafCatalogView],
    ) -> Tuple[float, float, float, float, bool]:
        """Run *tier* and derive its uncertainty width.

        *root_fp* may be the fingerprint string or a lazy supplier of it.

        Returns ``(nnz, relative width, lower, upper, certified)``.
        """
        estimator = self._tier_estimator(tier, root_fp)
        synopses = _propagate_dag(root, estimator, catalog=view)
        children = [synopses[id(child)] for child in root.inputs]
        nnz = float(estimator.estimate_nnz(root.op, children, **root.params))

        if tier.structural == "exact":
            return nnz, 0.0, nnz, nnz, True

        if tier.structural == "metadata":
            return self._metadata_width(tier, root, nnz, workload, op_label, view)

        if tier.structural == "mnc" and root.op is Op.MATMUL and all(
            isinstance(child, MNCSynopsis) for child in children
        ):
            interval = estimate_product_interval(
                children[0].sketch, children[1].sketch, self.confidence
            )
            width = interval.width / max(nnz, 1.0)
            return nnz, width, interval.lower, interval.upper, True

        band = self._band(tier, workload, op_label, prior=tier.prior_error)
        width = self._band_width(band)
        return nnz, width, nnz / band, nnz * band, False

    def _metadata_width(
        self,
        tier: Tier,
        root: Expr,
        nnz: float,
        workload: str,
        op_label: str,
        view: Optional[_LeafCatalogView],
    ) -> Tuple[float, float, float, float, bool]:
        """MetaAC estimate with the structural MetaAC/MetaWC bracket.

        The bracket alone decides the width unless the policy has actual
        observations for this tier, in which case the learned band can
        only widen it (MetaAC is not a lower bound, so the bracket is a
        heuristic, not a certificate).
        """
        wc = estimate_root_nnz(root, make_estimator("meta_wc"), catalog=view)
        lower, upper = min(nnz, wc), max(nnz, wc)
        width = (upper - lower) / max(nnz, 1.0)
        if self.policy.observation_count(tier.label) > 0:
            band = self.policy.predicted_error(
                tier.label, workload=workload, op=op_label, prior=None
            )
            if band is not None:
                policy_width = self._band_width(band)
                if policy_width > width:
                    width = policy_width
                    lower = min(lower, nnz / band)
                    upper = max(upper, nnz * band)
        return nnz, width, lower, upper, False

    def _band(self, tier: Tier, workload: str, op_label: str, prior: float) -> float:
        band = self.policy.predicted_error(
            tier.label, workload=workload, op=op_label, prior=prior
        )
        return max(band if band is not None else prior, 1.0)

    @staticmethod
    def _band_width(band: float) -> float:
        """Relative width of the symmetric multiplicative band
        ``[est / band, est * band]``."""
        return band - 1.0 / band

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def refresh(self) -> int:
        """Fold new residual-ledger observations into the policy. Never
        called mid-request; callers decide when routing may change."""
        return self.policy.sync_from_registry()

    def describe(self) -> Dict[str, object]:
        """Summary for ``repro stats`` / ``/stats``."""
        return {
            "tolerance": self.tolerance,
            "seed": self.seed,
            "probe": self.probe,
            "ladder": [tier.name for tier in TIER_LADDER],
            "policy": self.policy.describe(),
        }

    @staticmethod
    def _root_fingerprint(root: Expr) -> str:
        from repro.catalog.fingerprint import fingerprint_dag

        return fingerprint_dag(root)[id(root)]
