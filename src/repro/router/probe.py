"""Du-style cheap hardness probe for routing start-tier selection.

Du et al. (PAPERS.md) predict whether a cheap estimator will do by
spending a tiny sampled probe on the instance first. Our analogue reads
two nearly-free signals before any sketching happens:

- **metadata spread**: the ratio between the MetaWC and MetaAC root
  estimates. When the worst-case and average-case formulas agree, the
  instance has little structural room to surprise anybody and the cheap
  tiers are likely adequate; a wide bracket means structure matters.
- **row-degree skew**: max/mean non-zeros per row over a small
  deterministic sample of leaf rows. Skewed degree distributions are the
  classic failure mode of density-blind estimators.

The probe is advisory only — it moves the router's *starting* tier, never
its stopping rule — and is off by default (``options={"probe": True}``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.estimators.base import make_estimator
from repro.ir.estimate import estimate_root_nnz
from repro.ir.nodes import Expr
from repro.opcodes import Op

#: meta_wc / meta_ac spread above which an instance is "hard".
HARD_SPREAD = 16.0
#: Row-degree skew above which an instance is "hard".
HARD_SKEW = 8.0
#: Spread below which (with mild skew) an instance is "easy".
EASY_SPREAD = 1.5
#: Skew at or below which an instance may still be "easy".
EASY_SKEW = 4.0


@dataclass(frozen=True)
class ProbeReport:
    """Outcome of one hardness probe.

    ``hardness`` is ``"easy"``, ``"medium"``, or ``"hard"``.
    """

    hardness: str
    row_skew: float
    meta_spread: float
    sampled_rows: int

    def to_payload(self) -> dict:
        return {
            "hardness": self.hardness,
            "row_skew": round(self.row_skew, 4),
            "meta_spread": round(self.meta_spread, 4),
            "sampled_rows": self.sampled_rows,
        }


def _leaf_row_skew(root: Expr, sample_rows: int, seed: int) -> tuple[float, int]:
    """Max/mean sampled row-degree ratio over all leaf matrices."""
    rng = np.random.default_rng(seed)
    worst = 1.0
    sampled = 0
    for node in root.postorder():
        if node.op is not Op.LEAF or node.matrix is None:
            continue
        csr = node.matrix
        rows = csr.shape[0]
        if rows == 0:
            continue
        take = min(sample_rows, rows)
        if take == rows:
            idx = np.arange(rows)
        else:
            idx = rng.choice(rows, size=take, replace=False)
        degrees = np.diff(csr.indptr)[np.sort(idx)]
        sampled += take
        mean = float(degrees.mean())
        if mean <= 0.0:
            continue
        worst = max(worst, float(degrees.max()) / mean)
    return worst, sampled


def _meta_spread(root: Expr) -> float:
    """(MetaWC + 1) / (MetaAC + 1) at the root — the structural bracket
    width the free metadata formulas already reveal."""
    ac = estimate_root_nnz(root, make_estimator("meta_ac"))
    wc = estimate_root_nnz(root, make_estimator("meta_wc"))
    low, high = min(ac, wc), max(ac, wc)
    return (high + 1.0) / (low + 1.0)


def probe_hardness(root: Expr, *, sample_rows: int = 64, seed: int = 0) -> ProbeReport:
    """Classify *root*'s hardness from the two cheap signals.

    Deterministic for a given ``(root, sample_rows, seed)``.
    """
    skew, sampled = _leaf_row_skew(root, sample_rows, seed)
    spread = _meta_spread(root)
    if spread > HARD_SPREAD or skew > HARD_SKEW:
        hardness = "hard"
    elif spread < EASY_SPREAD and skew <= EASY_SKEW:
        hardness = "easy"
    else:
        hardness = "medium"
    return ProbeReport(
        hardness=hardness, row_skew=skew, meta_spread=spread, sampled_rows=sampled
    )
