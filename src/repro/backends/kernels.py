"""Pure-array kernel definitions shared by the compiled backends.

Every function here is written in the numba-compatible subset of Python
(flat loops, scalar math, basic indexing, ``np.zeros``) and is entirely
self-contained — kernels never call each other, so each one can be
independently wrapped with ``numba.njit(cache=True)`` (the ``numba``
backend) or run as-is under the interpreter (the ``python`` debug
backend, which keeps the definitions testable on machines without
numba).

Bit-identity with the vectorized numpy reference backend holds by
construction (see ``repro.backends.base``): integer-valued arithmetic
is exact, element-wise float steps mirror the reference op-for-op, and
the one order-sensitive reduction (:func:`tree_sum_f64`) follows the
same explicitly specified halving tree as the reference.

The density-map kernel embeds a shared ``log1p`` formulation (the
classic fdlibm/Sun algorithm: frexp range reduction to
``[sqrt(1/2), sqrt(2))``, an atanh-series polynomial, and a rounding
correction term) instead of deferring to the platform's ``log1p``:
numpy's SIMD transcendentals and libm scalars disagree in the last
ulp, so a bit-identical contract across backends requires evaluating
the *same* elementary-operation sequence everywhere. The numpy
reference backend evaluates the identical sequence vectorized
(``repro.backends.numpy_backend._log1p_into``); keep the two in sync
— ``tests/test_backends.py`` cross-checks them element-for-element.
"""

from __future__ import annotations

import math

import numpy as np

# fdlibm log constants (Sun Microsystems, public domain reference
# implementation of the C math library).
_LN2_HI = 6.93147180369123816490e-01
_LN2_LO = 1.90821492927058770002e-10
_LG1 = 6.666666666666735130e-01
_LG2 = 3.999999999940941908e-01
_LG3 = 2.857142874366239149e-01
_LG4 = 2.222219843214978396e-01
_LG5 = 1.818357216161805012e-01
_LG6 = 1.531383769920937332e-01
_LG7 = 1.479819860511658591e-01
#: Below this magnitude ``log1p(x)`` is ``x - x*x/2`` to double precision.
_LOG1P_TINY = 2.0 ** -29
#: Mantissa threshold for the ``[sqrt(1/2), sqrt(2))`` range reduction.
_SQRT_HALF = 0.7071067811865476


def dot_f64(a, b):
    """Dot product of integer-valued float64 vectors (exact, order-free)."""
    acc = 0.0
    for i in range(a.shape[0]):
        acc += a[i] * b[i]
    return acc


def subtract_f64(a, b, out):
    """``out[i] = a[i] - b[i]`` (exact on integer-valued float64)."""
    for i in range(a.shape[0]):
        out[i] = a[i] - b[i]


def tree_sum_f64(values):
    """Halving-tree float64 sum; destroys *values*.

    Folds the top half onto the bottom half until one element remains:
    with ``m`` live elements and ``k = m // 2``, element ``i`` absorbs
    element ``(m - k) + i``; an odd middle element is carried down
    untouched. The numpy reference backend performs the identical folds
    with vectorized adds, so both backends round the same operation
    sequence.
    """
    n = values.shape[0]
    if n == 0:
        return 0.0
    m = n
    while m > 1:
        k = m // 2
        hi = m - k
        for i in range(k):
            values[i] = values[i] + values[hi + i]
        m = hi
    return values[0]


def dm_collision_log1p(v_a, v_b, neg_inv_cells, out):
    """Density-map collision probabilities in log space (fused kernel).

    Writes ``out[i] = log1p((v_a[i] * v_b[i]) * neg_inv_cells)``; returns
    True (with ``out`` unspecified) when any slice saturates at
    probability >= 1, in which case the caller's estimate collapses to
    ``cells``. The log1p evaluation mirrors, op for op, the vectorized
    sequence of ``numpy_backend._log1p_into``.
    """
    n = v_a.shape[0]
    for i in range(n):
        c = (v_a[i] * v_b[i]) * neg_inv_cells
        if c <= -1.0:
            return True
        out[i] = c
    for i in range(n):
        x = out[i]
        if abs(x) < _LOG1P_TINY:
            t = x * x
            t = t * 0.5
            out[i] = x - t
        else:
            u = 1.0 + x
            cc = u - 1.0
            cc = x - cc  # rounding error of 1+x, folded back in below
            f, e = math.frexp(u)
            if f < _SQRT_HALF:
                f = f + f
                e = e - 1
            k = float(e)
            big_f = f - 1.0
            hfsq = big_f * big_f
            hfsq = hfsq * 0.5
            denom = big_f + 2.0
            s = big_f / denom
            z = s * s
            w = z * z
            t1 = w * _LG6
            t1 = t1 + _LG4
            t1 = t1 * w
            t1 = t1 + _LG2
            t1 = t1 * w
            t2 = w * _LG7
            t2 = t2 + _LG5
            t2 = t2 * w
            t2 = t2 + _LG3
            t2 = t2 * w
            t2 = t2 + _LG1
            t2 = t2 * z
            r = t2 + t1
            inner = hfsq + r
            inner = s * inner
            corr = cc / u
            klo = k * _LN2_LO
            corr = klo + corr
            inner = inner + corr
            res = hfsq - inner
            res = res - big_f
            khi = k * _LN2_HI
            out[i] = khi - res
    return False


def prob_round_into(values, draws, maximum, out):
    """Probabilistic rounding with threaded-in uniform draws.

    ``out[i] = min(floor(max(values[i], 0)) + (draws[i] < frac), maximum)``
    with ``maximum < 0`` meaning "no cap". Mirrors the reference
    sequence: clamp, floor, fractional part, compare, truncating cast.
    """
    for i in range(values.shape[0]):
        x = values[i]
        if x < 0.0:
            x = 0.0
        f = np.floor(x)
        r = int(f)
        if draws[i] < x - f:
            r = r + 1
        if maximum >= 0 and r > maximum:
            r = maximum
        out[i] = r


def scale_round_into(histogram, factor, draws, maximum, out):
    """Fused Eq 11 scale + probabilistic round of an int64 histogram.

    ``histogram[i] * factor`` (int64 -> float64 conversion is exact for
    counts) followed by the identical rounding sequence as
    :func:`prob_round_into`, so fusing saves a pass without changing a
    bit.
    """
    for i in range(histogram.shape[0]):
        x = histogram[i] * factor
        if x < 0.0:
            x = 0.0
        f = np.floor(x)
        r = int(f)
        if draws[i] < x - f:
            r = r + 1
        if maximum >= 0 and r > maximum:
            r = maximum
        out[i] = r


def reconcile_bulk(target, remaining):
    """Bulk phase of histogram-total reconciliation (exact int64).

    Binary-searches the largest per-entry decrement ``r`` whose total
    removal ``sum(min(target, r))`` still fits in *remaining*, applies
    it in place (``target = max(target - r, 0)``), and returns the units
    left for the driver's random partial round.
    """
    n = target.shape[0]
    hi = 0
    for i in range(n):
        if target[i] > hi:
            hi = target[i]
    lo = 0
    while lo < hi:
        mid = (lo + hi + 1) // 2
        removed = 0
        for i in range(n):
            v = target[i]
            if v < mid:
                removed += v
            else:
                removed += mid
        if removed <= remaining:
            lo = mid
        else:
            hi = mid - 1
    if lo > 0:
        removed = 0
        for i in range(n):
            v = target[i]
            if v < lo:
                c = v
            else:
                c = lo
            removed += c
            target[i] = v - c
        remaining = remaining - removed
    return remaining


def popcount_sum_u8(bits):
    """Total set bits of a packed uint8 bit matrix (SWAR per byte)."""
    total = 0
    for i in range(bits.shape[0]):
        for j in range(bits.shape[1]):
            x = int(bits[i, j])
            x = (x & 0x55) + ((x >> 1) & 0x55)
            x = (x & 0x33) + ((x >> 2) & 0x33)
            total += (x + (x >> 4)) & 0x0F
    return total


def or_popcount_u8(bits):
    """Set bits of the OR of all rows of a packed uint8 bit matrix."""
    rows = bits.shape[0]
    words = bits.shape[1]
    merged = np.zeros(words, dtype=np.uint8)
    for i in range(rows):
        for j in range(words):
            merged[j] |= bits[i, j]
    total = 0
    for j in range(words):
        x = int(merged[j])
        x = (x & 0x55) + ((x >> 1) & 0x55)
        x = (x & 0x33) + ((x >> 2) & 0x33)
        total += (x + (x >> 4)) & 0x0F
    return total


def bitset_block_or(block, b_bits, out, start):
    """Boolean matmul of an unpacked row block against packed B rows.

    ``out[start + r] |= b_bits[k]`` for every set ``block[r, k]`` —
    bitwise OR is exact, so any evaluation order matches the reference.
    """
    rows = block.shape[0]
    n = block.shape[1]
    words = b_bits.shape[1]
    for r in range(rows):
        for k in range(n):
            if block[r, k]:
                for j in range(words):
                    out[start + r, j] |= b_bits[k, j]


#: Kernel table used by the backend wrappers and the warmup probe.
ALL_KERNELS = (
    dot_f64,
    subtract_f64,
    tree_sum_f64,
    dm_collision_log1p,
    prob_round_into,
    scale_round_into,
    reconcile_bulk,
    popcount_sum_u8,
    or_popcount_u8,
    bitset_block_or,
)
