"""Backend interface for the compiled-kernel dispatch layer.

A :class:`Backend` implements the proven-hot inner loops of the MNC
reproduction — Algorithm 1's dot products and density-map fallback,
Eq 11 scale-and-round, ``_reconcile_totals``' bulk rounding, and the
bitset popcount kernels — as pure array-in/array-out primitives. The
surrounding driver code (shape checks, sketch objects, RNG draws,
tracing guards) lives once in ``repro.core`` and calls whichever
backend :func:`repro.backends.get_backend` resolved.

Bit-identity contract (docs/PERFORMANCE.md "Backends"): every backend
must produce **byte-identical** results for identical inputs. The
primitives are designed so this holds by construction on any machine:

- integer-valued float64 arithmetic (dot products, histogram totals,
  capped sums) is exact below 2**53, so summation order is free;
- element-wise kernels (multiply, floor, compare, the shared log1p
  formulation) are IEEE-754 correctly rounded per element in every
  implementation;
- the single order-sensitive float reduction (the density map's
  log-space sum) uses an explicitly specified halving-tree order (see
  :meth:`Backend.tree_sum`) rather than deferring to ``np.sum``, whose
  accumulation order is an implementation detail of the numpy build;
- randomness is drawn from the caller's ``numpy.random.Generator`` in
  driver code and threaded into the kernels, never re-derived inside.

All array arguments are C-contiguous with the documented dtypes;
drivers guarantee this (count vectors come from the sketches' cached
views, scratch comes from :class:`repro.core.scratch.ScratchBuffer`).
Output arrays are owned by the caller: a backend must never retain a
reference to (or return a view of) any buffer it was handed.
"""

from __future__ import annotations

import numpy as np


class BackendUnavailable(RuntimeError):
    """Raised by a backend factory whose runtime requirements are missing."""


class Backend:
    """Abstract kernel backend (see module docstring for the contract)."""

    #: Registry name (``"numpy"``, ``"numba"``, ``"python"``).
    name: str = "abstract"
    #: True when the kernels run as compiled machine code.
    compiled: bool = False
    #: True for the always-available reference implementation.
    is_reference: bool = False

    # -- Algorithm 1 ----------------------------------------------------

    def dot(self, a: np.ndarray, b: np.ndarray) -> float:
        """Dot product of two integer-valued float64 count vectors.

        Exact (hence order-independent) because every partial sum of
        products of counts stays below 2**53.
        """
        raise NotImplementedError

    def subtract(self, a: np.ndarray, b: np.ndarray, out: np.ndarray) -> None:
        """``out[i] = a[i] - b[i]`` (float64; exact on integer-valued input)."""
        raise NotImplementedError

    def dm_collision_log1p(
        self,
        v_a: np.ndarray,
        v_b: np.ndarray,
        neg_inv_cells: float,
        out: np.ndarray,
    ) -> bool:
        """Density-map collision probabilities, in log space.

        Writes ``out[i] = log1p((v_a[i] * v_b[i]) * neg_inv_cells)`` using
        the shared log1p formulation of ``repro.backends.kernels`` and
        returns True when any slice saturates (``<= -1``), in which case
        ``out`` is unspecified and the caller returns ``cells``.
        """
        raise NotImplementedError

    def tree_sum(self, values: np.ndarray) -> float:
        """Float64 sum in the shared halving-tree order.

        The tree folds the top half onto the bottom half
        (``v[i] += v[ceil(m/2) + i]``) until one element remains; with an
        odd length the middle element is carried down untouched. The
        order is part of the cross-backend contract. **Destroys**
        ``values`` (drivers pass consumable scratch).
        """
        raise NotImplementedError

    # -- probabilistic rounding / Eq 11 scaling -------------------------

    def prob_round_into(
        self,
        values: np.ndarray,
        draws: np.ndarray,
        maximum: int,
        out: np.ndarray,
    ) -> None:
        """``out[i] = min(floor(max(values[i], 0)) + (draws[i] < frac), maximum)``.

        ``draws`` are the caller's uniform [0, 1) variates (one per entry,
        already consumed from the caller's generator); ``maximum < 0``
        disables the cap; ``out`` is int64.
        """
        raise NotImplementedError

    def scale_round_into(
        self,
        histogram: np.ndarray,
        factor: float,
        draws: np.ndarray,
        maximum: int,
        out: np.ndarray,
    ) -> None:
        """Fused Eq 11 scale + probabilistic round of an int64 histogram.

        Equivalent to ``prob_round_into(histogram * factor, ...)``; the
        fusion saves the intermediate array without changing a bit
        (``int64 -> float64`` conversion is exact for counts).
        """
        raise NotImplementedError

    def reconcile_bulk(self, target: np.ndarray, remaining: int) -> int:
        """Bulk phase of ``_reconcile_totals`` (int64, exact arithmetic).

        Binary-searches the largest full-round count ``r`` with
        ``sum(min(target, r)) <= remaining`` over the positive entries,
        applies ``target = max(target - r, 0)`` in place, and returns the
        units still to remove (handled by the driver's random partial
        round).
        """
        raise NotImplementedError

    # -- bitset popcount kernels ----------------------------------------

    def popcount_sum(self, bits: np.ndarray) -> int:
        """Total set bits of a packed uint8 bit matrix."""
        raise NotImplementedError

    def or_popcount(self, bits: np.ndarray) -> int:
        """Set bits of the OR of all rows of a packed uint8 bit matrix."""
        raise NotImplementedError

    def bitset_block_or(
        self,
        block: np.ndarray,
        b_bits: np.ndarray,
        out: np.ndarray,
        start: int,
    ) -> None:
        """Boolean matmul of an unpacked row block against packed B.

        For each row ``r`` of the boolean ``block``,
        ``out[start + r] |= b_bits[k]`` for every ``k`` with
        ``block[r, k]`` set.
        """
        raise NotImplementedError

    # -- lifecycle ------------------------------------------------------

    def warmup(self) -> None:
        """Touch every primitive once on tiny inputs.

        For compiled backends this forces JIT compilation (or loads the
        on-disk cache) so first-request latency and benchmark timings
        exclude compile time. The base implementation exercises the full
        interface and is shared by all backends.
        """
        v = np.array([3.0, 0.0, 1.0, 2.0], dtype=np.float64)
        w = np.array([1.0, 2.0, 0.0, 1.0], dtype=np.float64)
        scratch = np.empty(4, dtype=np.float64)
        self.dot(v, w)
        self.subtract(v, w, scratch)
        self.dm_collision_log1p(v, w, -0.125, scratch)
        self.tree_sum(scratch)
        draws = np.array([0.1, 0.9, 0.5, 0.2], dtype=np.float64)
        out_i = np.empty(4, dtype=np.int64)
        self.prob_round_into(v, draws, -1, out_i)
        hist = np.array([4, 0, 2, 1], dtype=np.int64)
        self.scale_round_into(hist, 0.5, draws, 3, out_i)
        self.reconcile_bulk(out_i, 1)
        bits = np.array([[3, 1], [0, 255]], dtype=np.uint8)
        self.popcount_sum(bits)
        self.or_popcount(bits)
        block = np.array([[True, False]], dtype=np.bool_)
        self.bitset_block_or(block, bits, np.zeros((1, 2), dtype=np.uint8), 0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} name={self.name!r} compiled={self.compiled}>"
