"""Backend registry: selection, graceful fallback, and JIT warmup.

Selection rules (docs/PERFORMANCE.md "Backends"):

- ``REPRO_BACKEND=numpy|numba|python`` picks a backend explicitly (the
  CLI ``--backend`` flag sets the same variable so worker processes
  inherit it);
- unset or ``auto``: numba when importable, else the numpy reference;
- a requested backend that is registered but fails to come up (for
  example numba's import breaking mid-selection) falls back to numpy
  with a one-time warning and a ``backend.fallbacks`` counter bump —
  estimation keeps working, just slower;
- an unknown name from the environment degrades the same way; passing
  an unknown name to :func:`set_backend` programmatically is an error.

The resolved backend is cached process-wide; ``set_backend(None)``
re-resolves from the environment (worker processes therefore pick their
backend up from the inherited ``REPRO_BACKEND``). Backend *instances*
are also cached per name, so switching back and forth (benchmarks, the
equivalence suite) never recompiles.
"""

from __future__ import annotations

import importlib.util
import os
import threading
import warnings
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional

from repro.backends.base import Backend, BackendUnavailable
from repro.observability.metrics import metric_inc, metric_set
from repro.observability.trace import timed_span

#: Environment variable driving backend selection.
BACKEND_ENV = "REPRO_BACKEND"

#: The always-available reference backend every fallback lands on.
REFERENCE_BACKEND = "numpy"

#: Auto-detection preference order (``python`` is debug-only, never auto).
AUTO_ORDER = ("numba", "numpy")

_FACTORIES: Dict[str, Callable[[], Backend]] = {}
_PROBES: Dict[str, Callable[[], bool]] = {}
_INSTANCES: Dict[str, Backend] = {}
_ACTIVE: Optional[Backend] = None
_WARNED: set = set()
_LOCK = threading.Lock()


def register_backend(
    name: str,
    factory: Callable[[], Backend],
    probe: Optional[Callable[[], bool]] = None,
) -> None:
    """Register a backend *factory* under *name*.

    *probe* is a cheap availability check (no heavy imports) used by
    auto-detection and :func:`available_backends`; the factory itself
    may still raise :class:`BackendUnavailable` when probing was too
    optimistic.
    """
    _FACTORIES[name] = factory
    _PROBES[name] = probe if probe is not None else (lambda: True)


def available_backends() -> Dict[str, bool]:
    """Registered backend names mapped to cheap availability probes."""
    return {name: bool(_PROBES[name]()) for name in sorted(_FACTORIES)}


def numba_importable() -> bool:
    """Whether a numba distribution is present (without importing it)."""
    return importlib.util.find_spec("numba") is not None


def resolve_backend_name(requested: Optional[str] = None) -> str:
    """The backend name selection would pick for *requested* (or the env)."""
    name = requested if requested is not None else os.environ.get(BACKEND_ENV, "")
    name = (name or "").strip().lower()
    if not name or name == "auto":
        for candidate in AUTO_ORDER:
            if candidate in _FACTORIES and _PROBES[candidate]():
                return candidate
        return REFERENCE_BACKEND
    return name


def _warn_once(key: str, message: str) -> None:
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(message, RuntimeWarning, stacklevel=3)


def _instantiate(name: str) -> Backend:
    backend = _INSTANCES.get(name)
    if backend is None:
        backend = _FACTORIES[name]()
        _INSTANCES[name] = backend
    return backend


def _activate(name: str, from_env: bool) -> Backend:
    global _ACTIVE
    with _LOCK:
        if name not in _FACTORIES:
            if not from_env:
                raise ValueError(
                    f"unknown backend {name!r}; registered: {sorted(_FACTORIES)}"
                )
            _warn_once(
                f"unknown:{name}",
                f"{BACKEND_ENV}={name!r} names no registered backend "
                f"(registered: {sorted(_FACTORIES)}); "
                f"falling back to {REFERENCE_BACKEND}",
            )
            metric_inc("backend.fallbacks")
            backend = _instantiate(REFERENCE_BACKEND)
        else:
            try:
                backend = _instantiate(name)
            except BackendUnavailable as exc:
                _warn_once(
                    f"unavailable:{name}",
                    f"backend {name!r} is unavailable ({exc}); "
                    f"falling back to {REFERENCE_BACKEND}",
                )
                metric_inc("backend.fallbacks")
                backend = _instantiate(REFERENCE_BACKEND)
        _ACTIVE = backend
        metric_set("backend.compiled", 1.0 if backend.compiled else 0.0)
        metric_inc(f"backend.selected.{backend.name}")
        return backend


def get_backend() -> Backend:
    """The process-wide active backend (resolving it on first use)."""
    backend = _ACTIVE
    if backend is not None:
        return backend
    return _activate(resolve_backend_name(), from_env=True)


def set_backend(name: Optional[str]) -> Backend:
    """Select a backend by name; ``None`` re-resolves from the environment.

    An unknown *name* raises ``ValueError``; a registered-but-unavailable
    one (numba missing) falls back to the reference backend with a
    one-time warning, mirroring the environment-variable semantics.
    """
    global _ACTIVE
    if name is None:
        with _LOCK:
            _ACTIVE = None
        return get_backend()
    return _activate(resolve_backend_name(name), from_env=False)


@contextmanager
def use_backend(name: str) -> Iterator[Backend]:
    """Temporarily activate backend *name* (restores the previous one)."""
    previous = _ACTIVE
    backend = set_backend(name)
    try:
        yield backend
    finally:
        with _LOCK:
            globals()["_ACTIVE"] = previous


def warmup() -> float:
    """Force-compile the active backend's kernels; returns the seconds spent.

    Called by ``repro serve`` startup and the benchmark harness so
    first-request latency and timings exclude JIT compile time. The
    duration is recorded as the ``backend.jit_compile_seconds`` gauge
    and traced as a ``backend.warmup`` span.
    """
    backend = get_backend()
    with timed_span("backend.warmup", backend=backend.name) as span:
        backend.warmup()
    seconds = float(span.seconds or 0.0)
    metric_set("backend.jit_compile_seconds", seconds)
    metric_inc("backend.warmups")
    return seconds
