"""Always-available vectorized numpy reference backend.

This is the ground truth the compiled backends are checked against: the
primitives reproduce the pre-dispatch hot-path op sequences (multiply
into scratch, clamp/floor/compare rounding, binary-searched bulk
reconciliation, popcount reductions) with one deliberate exception —
the density map's ``log1p`` and log-space sum follow the explicitly
specified shared formulations of ``repro.backends.kernels`` instead of
``np.log1p``/``np.sum``, whose last-ulp behavior and accumulation order
vary across numpy builds. That is what makes the bit-identity contract
between backends machine-independent (docs/PERFORMANCE.md "Backends").

All intermediates live in per-thread scratch buffers owned by this
backend, keeping the reference path allocation-free like the kernels it
replaced.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import Backend
from repro.backends.kernels import (
    _LG1,
    _LG2,
    _LG3,
    _LG4,
    _LG5,
    _LG6,
    _LG7,
    _LN2_HI,
    _LN2_LO,
    _LOG1P_TINY,
    _SQRT_HALF,
)
from repro.core.scratch import ScratchBuffer


class NumpyBackend(Backend):
    """Vectorized reference implementation of the kernel interface."""

    name = "numpy"
    compiled = False
    is_reference = True

    def __init__(self) -> None:
        # log1p temporaries (one buffer per role; see _log1p_into).
        self._u = ScratchBuffer(np.float64)
        self._c = ScratchBuffer(np.float64)
        self._f = ScratchBuffer(np.float64)
        self._e = ScratchBuffer(np.int32)
        self._k = ScratchBuffer(np.float64)
        self._hfsq = ScratchBuffer(np.float64)
        self._s = ScratchBuffer(np.float64)
        self._z = ScratchBuffer(np.float64)
        self._w = ScratchBuffer(np.float64)
        self._t1 = ScratchBuffer(np.float64)
        self._t2 = ScratchBuffer(np.float64)
        self._tiny = ScratchBuffer(np.float64)
        self._cond = ScratchBuffer(np.bool_)
        # probabilistic-rounding temporaries.
        self._round_clip = ScratchBuffer(np.float64)
        self._round_floor = ScratchBuffer(np.float64)
        self._round_bump = ScratchBuffer(np.bool_)
        self._scale = ScratchBuffer(np.float64)

    # -- Algorithm 1 ----------------------------------------------------

    def dot(self, a: np.ndarray, b: np.ndarray) -> float:
        # BLAS accumulation order is machine-specific but irrelevant:
        # count dot products are exact below 2**53.
        return float(a @ b)

    def subtract(self, a: np.ndarray, b: np.ndarray, out: np.ndarray) -> None:
        np.subtract(a, b, out=out)

    def dm_collision_log1p(
        self,
        v_a: np.ndarray,
        v_b: np.ndarray,
        neg_inv_cells: float,
        out: np.ndarray,
    ) -> bool:
        np.multiply(v_a, v_b, out=out)
        np.multiply(out, neg_inv_cells, out=out)
        if out.size and out.min() <= -1.0:
            return True
        self._log1p_into(out)
        return False

    def tree_sum(self, values: np.ndarray) -> float:
        m = values.shape[0]
        if m == 0:
            return 0.0
        while m > 1:
            k = m // 2
            hi = m - k
            # hi >= k always, so the two slices never overlap.
            np.add(values[:k], values[hi:m], out=values[:k])
            m = hi
        return float(values[0])

    def _log1p_into(self, x: np.ndarray) -> None:
        """In-place ``log1p`` over ``(-1, 0]`` values.

        Vectorized mirror of the scalar sequence embedded in
        ``kernels.dm_collision_log1p`` — every numbered step below
        performs the same correctly-rounded elementary operation, so the
        selected results agree bit-for-bit. Keep the two in sync.
        """
        n = x.shape[0]
        if n == 0:
            return
        u = self._u.get(n)
        c = self._c.get(n)
        f = self._f.get(n)
        e = self._e.get(n)
        k = self._k.get(n)
        hfsq = self._hfsq.get(n)
        s = self._s.get(n)
        z = self._z.get(n)
        w = self._w.get(n)
        t1 = self._t1.get(n)
        t2 = self._t2.get(n)
        tiny = self._tiny.get(n)
        cond = self._cond.get(n)
        np.add(x, 1.0, out=u)                     # u = 1 + x
        np.subtract(u, 1.0, out=c)
        np.subtract(x, c, out=c)                  # c = x - (u - 1)
        np.frexp(u, f, e)                         # u = f * 2**e, f in [1/2, 1)
        np.less(f, _SQRT_HALF, out=cond)          # reduce f to [sqrt(1/2), sqrt(2))
        np.add(f, f, out=f, where=cond)
        np.subtract(e, cond, out=e)
        np.add(e, 0.0, out=k)                     # k = float(e)
        np.subtract(f, 1.0, out=f)                # f now holds F = f - 1
        np.multiply(f, f, out=hfsq)
        np.multiply(hfsq, 0.5, out=hfsq)          # hfsq = F*F * 0.5
        np.add(f, 2.0, out=s)
        np.divide(f, s, out=s)                    # s = F / (2 + F)
        np.multiply(s, s, out=z)
        np.multiply(z, z, out=w)
        np.multiply(w, _LG6, out=t1)              # t1 = w*(Lg2 + w*(Lg4 + w*Lg6))
        np.add(t1, _LG4, out=t1)
        np.multiply(t1, w, out=t1)
        np.add(t1, _LG2, out=t1)
        np.multiply(t1, w, out=t1)
        np.multiply(w, _LG7, out=t2)              # t2 = z*(Lg1 + w*(Lg3 + ...))
        np.add(t2, _LG5, out=t2)
        np.multiply(t2, w, out=t2)
        np.add(t2, _LG3, out=t2)
        np.multiply(t2, w, out=t2)
        np.add(t2, _LG1, out=t2)
        np.multiply(t2, z, out=t2)
        np.add(t2, t1, out=t1)                    # r = t2 + t1
        np.add(hfsq, t1, out=t1)                  # inner = hfsq + r
        np.multiply(s, t1, out=t1)                # inner = s * inner
        np.divide(c, u, out=c)                    # corr = c / u
        np.multiply(k, _LN2_LO, out=u)            # u free: klo = k * ln2_lo
        np.add(u, c, out=c)                       # corr = klo + corr
        np.add(t1, c, out=t1)                     # inner = inner + corr
        np.subtract(hfsq, t1, out=t1)             # res = hfsq - inner
        np.subtract(t1, f, out=t1)                # res = res - F
        np.multiply(k, _LN2_HI, out=k)            # khi = k * ln2_hi
        np.multiply(x, x, out=tiny)               # small-|x| branch: x - x*x/2
        np.multiply(tiny, 0.5, out=tiny)
        np.subtract(x, tiny, out=tiny)
        np.absolute(x, out=u)
        np.less(u, _LOG1P_TINY, out=cond)
        np.subtract(k, t1, out=x)                 # log1p = khi - res
        np.copyto(x, tiny, where=cond)

    # -- probabilistic rounding / Eq 11 scaling -------------------------

    def prob_round_into(
        self,
        values: np.ndarray,
        draws: np.ndarray,
        maximum: int,
        out: np.ndarray,
    ) -> None:
        n = values.shape[0]
        clipped = self._round_clip.get(n)
        np.maximum(values, 0.0, out=clipped)
        floor = self._round_floor.get(n)
        np.floor(clipped, out=floor)
        np.subtract(clipped, floor, out=clipped)
        bump = self._round_bump.get(n)
        np.less(draws, clipped, out=bump)
        np.copyto(out, floor, casting="unsafe")
        out += bump
        if maximum >= 0:
            np.minimum(out, maximum, out=out)

    def scale_round_into(
        self,
        histogram: np.ndarray,
        factor: float,
        draws: np.ndarray,
        maximum: int,
        out: np.ndarray,
    ) -> None:
        scaled = self._scale.get(histogram.shape[0])
        np.multiply(histogram, factor, out=scaled)
        self.prob_round_into(scaled, draws, maximum, out)

    def reconcile_bulk(self, target: np.ndarray, remaining: int) -> int:
        values = target[target > 0]
        lo, hi = 0, int(values.max()) if values.size else 0
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if int(np.minimum(values, mid).sum()) <= remaining:
                lo = mid
            else:
                hi = mid - 1
        if lo > 0:
            remaining -= int(np.minimum(values, lo).sum())
            np.subtract(target, lo, out=target)
            np.maximum(target, 0, out=target)
        return int(remaining)

    # -- bitset popcount kernels ----------------------------------------

    def popcount_sum(self, bits: np.ndarray) -> int:
        return int(np.bitwise_count(bits).sum())

    def or_popcount(self, bits: np.ndarray) -> int:
        if bits.shape[0] == 0:
            return 0
        merged = np.bitwise_or.reduce(bits, axis=0)
        return int(np.bitwise_count(merged).sum())

    def bitset_block_or(
        self,
        block: np.ndarray,
        b_bits: np.ndarray,
        out: np.ndarray,
        start: int,
    ) -> None:
        for offset in range(block.shape[0]):
            k_indices = np.flatnonzero(block[offset])
            if k_indices.size == 0:
                continue
            out[start + offset] = np.bitwise_or.reduce(b_bits[k_indices], axis=0)
