"""Multi-backend kernel dispatch for the estimation hot paths.

``repro.backends`` hosts the compiled-kernel backend layer: the
:class:`~repro.backends.base.Backend` interface, the always-available
vectorized numpy reference, a numba-jitted backend, and a plain-Python
debug backend that runs the numba kernel definitions under the
interpreter. Selection is driven by ``REPRO_BACKEND`` (see
:mod:`repro.backends.registry`); all backends are bit-identical by
construction.

Importing this package stays light: backend modules (and numba itself)
load lazily, on first activation.
"""

from __future__ import annotations

from repro.backends.base import Backend, BackendUnavailable
from repro.backends.registry import (
    AUTO_ORDER,
    BACKEND_ENV,
    REFERENCE_BACKEND,
    available_backends,
    get_backend,
    numba_importable,
    register_backend,
    resolve_backend_name,
    set_backend,
    use_backend,
    warmup,
)

__all__ = [
    "AUTO_ORDER",
    "BACKEND_ENV",
    "Backend",
    "BackendUnavailable",
    "REFERENCE_BACKEND",
    "available_backends",
    "get_backend",
    "numba_importable",
    "register_backend",
    "resolve_backend_name",
    "set_backend",
    "use_backend",
    "warmup",
]


def _numpy_factory() -> Backend:
    from repro.backends.numpy_backend import NumpyBackend

    return NumpyBackend()


def _python_factory() -> Backend:
    from repro.backends.jit_backend import KernelBackend

    return KernelBackend()


def _numba_factory() -> Backend:
    from repro.backends.jit_backend import NumbaBackend

    return NumbaBackend()


register_backend("numpy", _numpy_factory)
register_backend("python", _python_factory)
register_backend("numba", _numba_factory, probe=numba_importable)
