"""Kernel-driven backends: numba-compiled and plain-Python debug.

Both backends execute the exact same kernel *definitions*
(``repro.backends.kernels``); the only difference is the wrapper —
``numba.njit(cache=True, nogil=True)`` for the compiled backend, the
bare interpreter for the ``python`` debug backend. The debug backend
exists so the kernel code paths (and their bit-identity against the
numpy reference) stay testable on machines without numba, including the
no-numba CI leg; it is never auto-selected.

``nogil=True`` matters for the chain DP: ``optimize_chain_sparse``
evaluates one span's cells from a thread pool, and compiled kernels
release the GIL so those threads actually overlap. ``cache=True``
persists compiled machine code next to ``kernels.py``, so only the
first process on a machine pays the compile; either way
``repro.backends.warmup()`` moves that cost out of the serving/benching
path and records it as ``backend.jit_compile_seconds``.
"""

from __future__ import annotations

from repro.backends import kernels as _k
from repro.backends.base import Backend, BackendUnavailable


class KernelBackend(Backend):
    """Runs the shared kernel definitions, optionally through a jit."""

    name = "python"
    compiled = False

    def __init__(self, jit=None) -> None:
        wrap = (lambda fn: fn) if jit is None else jit
        self._dot = wrap(_k.dot_f64)
        self._subtract = wrap(_k.subtract_f64)
        self._tree_sum = wrap(_k.tree_sum_f64)
        self._dm = wrap(_k.dm_collision_log1p)
        self._prob_round = wrap(_k.prob_round_into)
        self._scale_round = wrap(_k.scale_round_into)
        self._reconcile = wrap(_k.reconcile_bulk)
        self._popcount = wrap(_k.popcount_sum_u8)
        self._or_popcount = wrap(_k.or_popcount_u8)
        self._block_or = wrap(_k.bitset_block_or)

    def dot(self, a, b):
        return float(self._dot(a, b))

    def subtract(self, a, b, out):
        self._subtract(a, b, out)

    def dm_collision_log1p(self, v_a, v_b, neg_inv_cells, out):
        return bool(self._dm(v_a, v_b, neg_inv_cells, out))

    def tree_sum(self, values):
        return float(self._tree_sum(values))

    def prob_round_into(self, values, draws, maximum, out):
        self._prob_round(values, draws, maximum, out)

    def scale_round_into(self, histogram, factor, draws, maximum, out):
        self._scale_round(histogram, factor, draws, maximum, out)

    def reconcile_bulk(self, target, remaining):
        return int(self._reconcile(target, remaining))

    def popcount_sum(self, bits):
        return int(self._popcount(bits))

    def or_popcount(self, bits):
        return int(self._or_popcount(bits))

    def bitset_block_or(self, block, b_bits, out, start):
        self._block_or(block, b_bits, out, start)


class NumbaBackend(KernelBackend):
    """The kernels compiled to machine code with numba.

    Compilation is lazy per signature (``warmup()`` forces it); compiled
    code is disk-cached beside ``kernels.py`` via ``cache=True``.
    """

    name = "numba"
    compiled = True

    def __init__(self) -> None:
        try:
            import numba
        except Exception as exc:  # ImportError or a broken install
            raise BackendUnavailable(
                f"numba backend requested but numba failed to import: {exc}"
            ) from exc
        super().__init__(jit=numba.njit(cache=True, nogil=True))
