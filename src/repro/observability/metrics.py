"""Process-wide metrics registry and accuracy residual ledger.

The tracing layer (:mod:`repro.observability.trace`) answers "where did the
time go *in this traced run*"; this module answers the longer-lived
questions the adaptive router and the serving tier need: how many times did
each subsystem event happen in this process, what do the latency
distributions look like, and — crucially for the paper's accuracy/cost
trade-off — *how wrong was each estimator wherever ground truth was
available, and what did that error cost*.

Three instruments live in one :class:`MetricsRegistry`:

- **Counters** — monotonic floats (``catalog.store.hit``,
  ``parallel.tasks``, the absorbed ``hotpath.*`` slots, ...). Every
  :func:`repro.observability.trace.count` call feeds the registry
  unconditionally, so counters survive whether or not a trace collector is
  listening.
- **Gauges** — last-written point-in-time values
  (``catalog.store.bytes_used``, ``catalog.store.entries``).
- **Histograms** — log2-bucketed distributions with *exact* ``min``/``max``
  /``count``/``sum`` and bucketed ``p50``/``p95``/``p99`` (quantiles are
  read from the bucket containing the rank, so their error is bounded by
  one octave and clamped into ``[min, max]``).

The **residual ledger** is a bounded ring of :class:`ResidualRecord`
entries — ``(source, estimator, workload, op, estimate, truth,
relative_error, seconds)`` — appended wherever truth is computed anyway:
the SparsEst runner's truth cache, ``repro.verify`` contract checks, and
the runtime allocator's regret accounting. The paper's M1 metric,
measured continuously instead of only inside benchmark harnesses.

Snapshots (:class:`MetricsSnapshot`, schema version
:data:`METRICS_SCHEMA_VERSION`) are picklable and support two algebraic
operations the parallel engine relies on:

- ``delta_since(baseline)`` — what happened between two snapshots. Workers
  are forked and therefore inherit the parent's registry state; each task
  snapshots a baseline on entry and ships only the delta back.
- ``merge(other)`` — fold a delta (or another file's snapshot) in.
  Counters and histogram buckets add, gauges take the later writer,
  residual ledgers concatenate. The parent merges worker deltas in task
  order, so merged output is deterministic regardless of scheduling, and a
  crashed worker simply contributes nothing (merged = sum of survivors).

Durability: :func:`flush` (also registered via ``atexit``) writes a JSONL
snapshot to ``$REPRO_METRICS_DUMP`` (a file, or a directory that receives
``metrics-<pid>.jsonl``), so counters and the ledger survive a process
that exits mid-run without an explicit export step.
"""

from __future__ import annotations

import atexit
import math
import os
import threading
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Deque, Dict, List, Mapping, Optional

#: Version stamp embedded in every snapshot record; readers reject
#: payloads from a newer format (mirroring ``repro.core.serialize``).
METRICS_SCHEMA_VERSION = 1

#: Environment variable naming the flush target (file, or directory).
METRICS_DUMP_ENV = "REPRO_METRICS_DUMP"

#: Residual ledger ring size; older entries are dropped (and counted).
DEFAULT_LEDGER_CAPACITY = 4096


def _relative_error(truth: float, estimate: float) -> float:
    """The paper's M1 metric ``max(t, e) / min(t, e)`` in ``[1, inf)``.

    Local mirror of :func:`repro.sparsest.metrics.relative_error` (kept
    import-cycle-free: the sparsest package itself records residuals here).
    Degenerate conventions match: two zeros agree (1.0), a zero against a
    non-zero is an infinite error. Negative inputs are clamped to zero —
    residuals measure allocation/estimation outputs that are already
    clamped upstream.
    """
    t, e = max(float(truth), 0.0), max(float(estimate), 0.0)
    if math.isnan(t) or math.isnan(e):
        return math.nan
    if t == 0.0 and e == 0.0:
        return 1.0
    if t == 0.0 or e == 0.0:
        return math.inf
    return max(t, e) / min(t, e)


@dataclass(frozen=True)
class ResidualRecord:
    """One estimate-vs-truth observation.

    Attributes:
        source: which subsystem measured it (``"sparsest"``, ``"verify"``,
            ``"allocator"``, ...).
        estimator: estimator display name (``"MNC"``, ``"MetaWC"``, ...).
        workload: workload tag — a use-case id, ``generator#index`` fuzz
            coordinate, or DAG node label.
        op: opcode (``"matmul"``), ``"dag"`` for whole-expression roots, or
            ``"alloc"`` for allocation decisions.
        estimate: the estimator's non-zero estimate.
        truth: the exact non-zero count.
        relative_error: paper M1, ``max/min`` (``inf`` for zero-vs-nonzero).
        seconds: wall time attributed to producing the estimate (0.0 when
            not measured at this site).
    """

    source: str
    estimator: str
    workload: str
    op: str
    estimate: float
    truth: float
    relative_error: float
    seconds: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "estimator": self.estimator,
            "workload": self.workload,
            "op": self.op,
            "estimate": self.estimate,
            "truth": self.truth,
            "relative_error": self.relative_error,
            "seconds": self.seconds,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ResidualRecord":
        return cls(
            source=str(data.get("source", "?")),
            estimator=str(data.get("estimator", "?")),
            workload=str(data.get("workload", "?")),
            op=str(data.get("op", "?")),
            estimate=float(data.get("estimate", math.nan)),
            truth=float(data.get("truth", math.nan)),
            relative_error=float(data.get("relative_error", math.nan)),
            seconds=float(data.get("seconds", 0.0)),
        )


# ----------------------------------------------------------------------
# Histograms
# ----------------------------------------------------------------------


class _Histogram:
    """Log2-bucketed histogram with exact count/sum/min/max.

    Positive observations land in bucket ``floor(log2(v))`` (so bucket *i*
    covers ``[2^i, 2^(i+1))``); non-positive observations are counted in a
    dedicated zero bucket. Quantiles interpolate to the geometric midpoint
    of the bucket holding the rank and are clamped into ``[min, max]``.
    """

    __slots__ = ("buckets", "zeros", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.buckets: Dict[int, int] = {}
        self.zeros = 0
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            return
        if value > 0.0:
            index = math.frexp(value)[1] - 1  # floor(log2(value)), exact
            self.buckets[index] = self.buckets.get(index, 0) + 1
        else:
            self.zeros += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def quantile(self, q: float) -> float:
        """The *q*-th percentile (0-100), bucket-resolved, ``nan`` if empty."""
        if self.count == 0:
            return math.nan
        target = max(1, math.ceil((q / 100.0) * self.count))
        cumulative = self.zeros
        if cumulative >= target:
            return max(self.min, 0.0) if self.min <= 0.0 else 0.0
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= target:
                midpoint = 2.0 ** (index + 0.5)  # geometric bucket center
                return min(max(midpoint, self.min), self.max)
        return self.max  # pragma: no cover - counts always sum to count

    def state(self) -> Dict[str, Any]:
        """JSON-able snapshot of the histogram internals."""
        return {
            "buckets": {str(index): n for index, n in sorted(self.buckets.items())},
            "zeros": self.zeros,
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "_Histogram":
        histogram = cls()
        histogram.buckets = {
            int(index): int(n) for index, n in state.get("buckets", {}).items()
        }
        histogram.zeros = int(state.get("zeros", 0))
        histogram.count = int(state.get("count", 0))
        histogram.total = float(state.get("sum", 0.0))
        low, high = state.get("min"), state.get("max")
        histogram.min = math.inf if low is None else float(low)
        histogram.max = -math.inf if high is None else float(high)
        return histogram

    def merge_state(self, state: Mapping[str, Any]) -> None:
        other = _Histogram.from_state(state)
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n
        self.zeros += other.zeros
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def summary(self) -> Dict[str, float]:
        """count/sum/mean/min/max/p50/p95/p99 for reports."""
        mean = self.total / self.count if self.count else math.nan
        return {
            "count": self.count,
            "sum": self.total,
            "mean": mean,
            "min": self.min if self.count else math.nan,
            "max": self.max if self.count else math.nan,
            "p50": self.quantile(50.0),
            "p95": self.quantile(95.0),
            "p99": self.quantile(99.0),
        }


def _subtract_histogram_state(
    current: Mapping[str, Any], baseline: Mapping[str, Any]
) -> Optional[Dict[str, Any]]:
    """Bucket-wise ``current - baseline``; ``None`` when nothing changed.

    The delta's ``min``/``max`` are taken from *current*: exact extremes of
    only-the-new observations are unrecoverable from bucket counts, and
    re-merging the current extremes into the parent is conservative (the
    inherited extremes came from the parent's own data).
    """
    count_delta = int(current.get("count", 0)) - int(baseline.get("count", 0))
    if count_delta <= 0:
        return None
    base_buckets = baseline.get("buckets", {})
    buckets = {}
    for index, n in current.get("buckets", {}).items():
        remaining = int(n) - int(base_buckets.get(index, 0))
        if remaining > 0:
            buckets[index] = remaining
    return {
        "buckets": buckets,
        "zeros": int(current.get("zeros", 0)) - int(baseline.get("zeros", 0)),
        "count": count_delta,
        "sum": float(current.get("sum", 0.0)) - float(baseline.get("sum", 0.0)),
        "min": current.get("min"),
        "max": current.get("max"),
    }


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------


@dataclass
class MetricsSnapshot:
    """Picklable, versioned point-in-time copy of a registry.

    The transport format of the parallel engine (shipped as deltas inside
    :class:`~repro.observability.collector.TracePayload`) and the payload
    of the JSONL/Prometheus exporters in
    :mod:`repro.observability.export`.
    """

    version: int = METRICS_SCHEMA_VERSION
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    residuals: List[ResidualRecord] = field(default_factory=list)
    residuals_seen: int = 0
    residuals_dropped: int = 0

    @property
    def empty(self) -> bool:
        return not (
            self.counters or self.gauges or self.histograms or self.residuals
        )

    def delta_since(self, baseline: "MetricsSnapshot") -> "MetricsSnapshot":
        """What happened between *baseline* and this snapshot.

        Gauges are included only when their value changed (an unchanged
        inherited gauge must not overwrite a parent-side update during the
        merge back).
        """
        counters = {}
        for name, value in self.counters.items():
            delta = value - baseline.counters.get(name, 0.0)
            if delta != 0.0:
                counters[name] = delta
        gauges = {
            name: value
            for name, value in self.gauges.items()
            if baseline.gauges.get(name) != value
        }
        histograms = {}
        for name, state in self.histograms.items():
            delta_state = _subtract_histogram_state(
                state, baseline.histograms.get(name, {})
            )
            if delta_state is not None:
                histograms[name] = delta_state
        new_records = self.residuals_seen - baseline.residuals_seen
        residuals = list(self.residuals[-new_records:]) if new_records > 0 else []
        return MetricsSnapshot(
            counters=counters,
            gauges=gauges,
            histograms=histograms,
            residuals=residuals,
            residuals_seen=max(new_records, 0),
            residuals_dropped=max(
                self.residuals_dropped - baseline.residuals_dropped, 0
            ),
        )

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """A new snapshot folding *other* in (counters add, gauges take
        *other*'s value, histogram buckets add, ledgers concatenate)."""
        merged = MetricsSnapshot(
            counters=dict(self.counters),
            gauges=dict(self.gauges),
            histograms={
                name: dict(state) for name, state in self.histograms.items()
            },
            residuals=list(self.residuals),
            residuals_seen=self.residuals_seen,
            residuals_dropped=self.residuals_dropped,
        )
        for name, value in other.counters.items():
            merged.counters[name] = merged.counters.get(name, 0.0) + value
        merged.gauges.update(other.gauges)
        for name, state in other.histograms.items():
            if name in merged.histograms:
                histogram = _Histogram.from_state(merged.histograms[name])
                histogram.merge_state(state)
                merged.histograms[name] = histogram.state()
            else:
                merged.histograms[name] = dict(state)
        merged.residuals.extend(other.residuals)
        merged.residuals_seen += other.residuals_seen
        merged.residuals_dropped += other.residuals_dropped
        return merged

    def histogram_summaries(self) -> Dict[str, Dict[str, float]]:
        """Per-histogram count/mean/min/max/p50/p95/p99 bundles."""
        return {
            name: _Histogram.from_state(state).summary()
            for name, state in sorted(self.histograms.items())
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able encoding (the JSONL ``metrics`` record body)."""
        return {
            "schema": self.version,
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: dict(state)
                for name, state in sorted(self.histograms.items())
            },
            "residuals_seen": self.residuals_seen,
            "residuals_dropped": self.residuals_dropped,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MetricsSnapshot":
        """Decode :meth:`to_dict` output; rejects future schema versions."""
        version = int(data.get("schema", METRICS_SCHEMA_VERSION))
        if version > METRICS_SCHEMA_VERSION:
            raise ValueError(
                f"metrics snapshot schema {version} is newer than this build "
                f"supports (reads up to {METRICS_SCHEMA_VERSION}); refusing "
                "to decode a payload from a future format"
            )
        return cls(
            version=version,
            counters={k: float(v) for k, v in data.get("counters", {}).items()},
            gauges={k: float(v) for k, v in data.get("gauges", {}).items()},
            histograms={
                name: dict(state)
                for name, state in data.get("histograms", {}).items()
            },
            residuals_seen=int(data.get("residuals_seen", 0)),
            residuals_dropped=int(data.get("residuals_dropped", 0)),
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


class MetricsRegistry:
    """Thread-safe counters, gauges, histograms, and the residual ledger."""

    def __init__(self, ledger_capacity: int = DEFAULT_LEDGER_CAPACITY):
        if ledger_capacity <= 0:
            raise ValueError(
                f"ledger_capacity must be positive, got {ledger_capacity}"
            )
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, _Histogram] = {}
        self._residuals: Deque[ResidualRecord] = deque(maxlen=ledger_capacity)
        self._residuals_seen = 0
        #: Last HOTPATH values folded into the counters (sync is delta-based
        #: so merged-in worker contributions are never overwritten).
        self._hotpath_synced: Dict[str, int] = {}

    # -- writes --------------------------------------------------------

    def inc(self, name: str, value: float = 1.0) -> None:
        """Add *value* to the monotonic counter *name*."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set the gauge *name* to *value* (last writer wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Append one observation to the histogram *name*."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = _Histogram()
            histogram.observe(value)

    def record_residual(self, record: ResidualRecord) -> None:
        """Append one estimate-vs-truth observation to the ledger."""
        flight = _flight
        with self._lock:
            self._residuals.append(record)
            self._residuals_seen += 1
        if flight is not None and flight.enabled:
            flight.record(
                "residual",
                f"{record.source}:{record.estimator}",
                detail={
                    "workload": record.workload,
                    "relative_error": record.relative_error,
                },
            )

    # -- hotpath absorption -------------------------------------------

    def sync_hotpath(self) -> None:
        """Fold the :data:`repro.core.hotpath.HOTPATH` slot counters into
        the registry as ``hotpath.*`` (delta-based, idempotent)."""
        try:
            from repro.core.hotpath import HOTPATH
        except ImportError:  # pragma: no cover - core always present here
            return
        current = HOTPATH.snapshot()
        with self._lock:
            for name, value in current.items():
                delta = value - self._hotpath_synced.get(name, 0)
                if delta:
                    key = f"hotpath.{name}"
                    self._counters[key] = self._counters.get(key, 0.0) + delta
                self._hotpath_synced[name] = value

    # -- reads ---------------------------------------------------------

    def snapshot(self, sync_hotpath: bool = True) -> MetricsSnapshot:
        """Copy the registry into a picklable, versioned snapshot."""
        if sync_hotpath:
            self.sync_hotpath()
        with self._lock:
            dropped = self._residuals_seen - len(self._residuals)
            return MetricsSnapshot(
                counters=dict(self._counters),
                gauges=dict(self._gauges),
                histograms={
                    name: histogram.state()
                    for name, histogram in self._histograms.items()
                },
                residuals=list(self._residuals),
                residuals_seen=self._residuals_seen,
                residuals_dropped=dropped,
            )

    def residuals(self) -> List[ResidualRecord]:
        """The retained ledger entries, oldest first."""
        with self._lock:
            return list(self._residuals)

    # -- merge / reset -------------------------------------------------

    def merge(self, snapshot: MetricsSnapshot) -> None:
        """Fold a (delta) snapshot into the live registry."""
        with self._lock:
            for name, value in snapshot.counters.items():
                self._counters[name] = self._counters.get(name, 0.0) + value
            self._gauges.update(snapshot.gauges)
            for name, state in snapshot.histograms.items():
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = self._histograms[name] = _Histogram()
                histogram.merge_state(state)
            for record in snapshot.residuals:
                self._residuals.append(record)
            self._residuals_seen += snapshot.residuals_seen

    def reset(self) -> None:
        """Zero everything (test isolation; the ledger capacity is kept)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._residuals.clear()
            self._residuals_seen = 0
            self._hotpath_synced.clear()


#: The process-wide registry every helper below writes to.
METRICS = MetricsRegistry()

#: Flight recorder attached by :mod:`repro.observability.flight` at import
#: (kept as a late-bound global to avoid an import cycle).
_flight = None


def attach_flight(recorder) -> None:
    """Install the flight recorder that mirrors registry events."""
    global _flight
    _flight = recorder


# ----------------------------------------------------------------------
# Module-level helpers (the instrumentation surface)
# ----------------------------------------------------------------------


def metric_inc(name: str, value: float = 1.0) -> None:
    """Increment the process-wide counter *name*."""
    METRICS.inc(name, value)
    flight = _flight
    if flight is not None and flight.enabled:
        flight.record("metric", name, detail={"delta": value})


def metric_set(name: str, value: float) -> None:
    """Set the process-wide gauge *name*."""
    METRICS.set_gauge(name, value)


def metric_observe(name: str, value: float) -> None:
    """Record one observation on the process-wide histogram *name*."""
    METRICS.observe(name, value)


def record_residual(
    source: str,
    estimator: str,
    workload: str,
    op: str,
    estimate: float,
    truth: float,
    seconds: float = 0.0,
) -> ResidualRecord:
    """Append one estimate-vs-truth observation to the residual ledger.

    Computes the paper's M1 relative error and mirrors per-(source,
    estimator) aggregate counters (``residual.count.<source>.<estimator>``)
    so exposition formats carry a cheap roll-up even when the bounded
    ledger has rotated.
    """
    record = ResidualRecord(
        source=source,
        estimator=estimator,
        workload=workload,
        op=op,
        estimate=float(estimate),
        truth=float(truth),
        relative_error=_relative_error(truth, estimate),
        seconds=float(seconds),
    )
    METRICS.record_residual(record)
    METRICS.inc(f"residual.count.{source}.{estimator}")
    if math.isfinite(record.relative_error):
        METRICS.observe(f"residual.relative_error.{source}", record.relative_error)
    else:
        METRICS.inc(f"residual.nonfinite.{source}.{estimator}")
    return record


def metrics_snapshot() -> MetricsSnapshot:
    """Snapshot the process-wide registry (hotpath counters included)."""
    return METRICS.snapshot()


def reset_metrics() -> None:
    """Zero the process-wide registry (test isolation)."""
    METRICS.reset()


# ----------------------------------------------------------------------
# Flush / atexit durability
# ----------------------------------------------------------------------


def _flush_target(path: Optional[os.PathLike | str]) -> Optional[Path]:
    raw = os.fspath(path) if path is not None else os.environ.get(METRICS_DUMP_ENV)
    if not raw:
        return None
    target = Path(raw)
    if target.is_dir() or raw.endswith(os.sep):
        target = target / f"metrics-{os.getpid()}.jsonl"
    return target


def flush(path: Optional[os.PathLike | str] = None) -> Optional[Path]:
    """Write the current snapshot (hotpath counters synced) as JSONL.

    The destination is *path*, or ``$REPRO_METRICS_DUMP`` when unset; a
    directory target receives a per-process ``metrics-<pid>.jsonl`` so
    worker processes never clobber the parent's dump. Returns the path
    written, or ``None`` when no destination is configured. The write is
    atomic (temp file + rename), so a dump observed on disk is complete.
    """
    target = _flush_target(path)
    if target is None:
        return None
    from repro.observability.export import write_metrics_jsonl

    target.parent.mkdir(parents=True, exist_ok=True)
    write_metrics_jsonl(target, METRICS.snapshot())
    return target


def _flush_at_exit() -> None:  # pragma: no cover - exercised via subprocess
    try:
        flush()
    except Exception:
        pass  # exiting processes must never fail on telemetry


atexit.register(_flush_at_exit)
