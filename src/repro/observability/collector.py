"""Span collectors: the pluggable sink behind the tracing API.

Exactly one collector is active per process at a time (swapped atomically
under a lock, usually via the :func:`using_collector` context manager).
The default :class:`NullCollector` advertises ``enabled = False``, which
the tracing layer uses to skip clock reads entirely — instrumentation left
in hot paths costs one attribute check per span when nobody is listening.
"""

from __future__ import annotations

import abc
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional

from repro.observability.metrics import MetricsSnapshot


@dataclass(frozen=True)
class SpanRecord:
    """One completed span.

    Attributes:
        name: span name (dotted, e.g. ``"estimator.build"``).
        start: ``time.perf_counter()`` value at span entry (monotonic,
            process-relative — useful for ordering, not wall-clock time).
        seconds: elapsed wall time of the span body.
        depth: nesting depth at entry (0 for top-level spans), derived from
            the per-thread span stack.
        attrs: free-form span attributes (operand shapes, estimator name,
            result estimates, ...).
    """

    name: str
    start: float
    seconds: float
    depth: int = 0
    attrs: Mapping[str, Any] = field(default_factory=dict)


@dataclass
class TracePayload:
    """Picklable snapshot of everything a collector accumulated.

    The transport format of the parallel engine: workers snapshot their
    private :class:`RecordingCollector` into a payload, ship it across the
    process boundary, and the parent merges payloads in task order so the
    combined trace is deterministic regardless of scheduling. Span
    ``start`` values stay process-relative — ordering is meaningful within
    one payload, not across payloads.
    """

    spans: List[SpanRecord] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, List[float]] = field(default_factory=dict)
    outcomes: List[Dict[str, Any]] = field(default_factory=list)
    #: Metrics-registry *delta* accumulated while the task ran (what the
    #: worker's registry gained relative to its entry snapshot). ``None``
    #: on payloads from builds that predate the metrics layer.
    metrics: Optional[MetricsSnapshot] = None

    @property
    def empty(self) -> bool:
        return not (
            self.spans
            or self.counters
            or self.histograms
            or self.outcomes
            or (self.metrics is not None and not self.metrics.empty)
        )


class Collector(abc.ABC):
    """Sink for spans, counters, histograms, and benchmark outcomes.

    ``enabled`` is the fast-path switch: when ``False``, instrumentation
    skips timing and never calls the ``record_*`` methods.
    """

    enabled: bool = True

    @abc.abstractmethod
    def record_span(self, record: SpanRecord) -> None:
        """Store one completed span."""

    @abc.abstractmethod
    def increment(self, name: str, value: float = 1.0) -> None:
        """Add *value* to the counter *name*."""

    @abc.abstractmethod
    def observe(self, name: str, value: float) -> None:
        """Append one observation to the histogram *name*."""

    def record_outcome(self, outcome: Mapping[str, Any]) -> None:
        """Store one benchmark outcome (error-vs-time report row)."""

    def merge(self, payload: TracePayload) -> None:
        """Fold a worker's :class:`TracePayload` into this collector.

        Implemented in terms of the primitive ``record_*`` hooks, so any
        collector (including a disabled one, which drops everything)
        handles payloads from parallel runs.
        """
        for span in payload.spans:
            self.record_span(span)
        for name, value in payload.counters.items():
            self.increment(name, value)
        for name, values in payload.histograms.items():
            for value in values:
                self.observe(name, value)
        for outcome in payload.outcomes:
            self.record_outcome(outcome)


class NullCollector(Collector):
    """The zero-overhead default: drops everything, disables timing."""

    enabled = False

    def record_span(self, record: SpanRecord) -> None:  # pragma: no cover
        pass

    def increment(self, name: str, value: float = 1.0) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass


class RecordingCollector(Collector):
    """Accumulates spans, counters, histograms, and outcomes in memory.

    Thread-safe: the SparsEst harness and the distributed-sketching helpers
    may record from worker threads.
    """

    enabled = True

    def __init__(self) -> None:
        self.spans: List[SpanRecord] = []
        self.counters: Dict[str, float] = {}
        self.histograms: Dict[str, List[float]] = {}
        self.outcomes: List[Dict[str, Any]] = []
        self._lock = threading.Lock()

    def record_span(self, record: SpanRecord) -> None:
        with self._lock:
            self.spans.append(record)

    def increment(self, name: str, value: float = 1.0) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0.0) + value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            self.histograms.setdefault(name, []).append(float(value))

    def record_outcome(self, outcome: Mapping[str, Any]) -> None:
        with self._lock:
            self.outcomes.append(dict(outcome))

    def clear(self) -> None:
        """Drop everything recorded so far."""
        with self._lock:
            self.spans.clear()
            self.counters.clear()
            self.histograms.clear()
            self.outcomes.clear()

    def span_names(self) -> List[str]:
        """Distinct span names in first-seen order."""
        with self._lock:
            seen: Dict[str, None] = {}
            for span in self.spans:
                seen.setdefault(span.name, None)
            return list(seen)

    def snapshot(self) -> TracePayload:
        """Copy everything recorded so far into a picklable payload.

        Worker processes call this once per task; the parent merges the
        payloads via :meth:`Collector.merge`.
        """
        with self._lock:
            return TracePayload(
                spans=list(self.spans),
                counters=dict(self.counters),
                histograms={name: list(vals) for name, vals in self.histograms.items()},
                outcomes=[dict(outcome) for outcome in self.outcomes],
            )


# ----------------------------------------------------------------------
# Active-collector management
# ----------------------------------------------------------------------

_ACTIVE: Collector = NullCollector()
_SWAP_LOCK = threading.Lock()


def get_collector() -> Collector:
    """The currently active collector (a :class:`NullCollector` by default)."""
    return _ACTIVE


def set_collector(collector: Collector) -> Collector:
    """Install *collector* as the process-wide sink; returns the previous one."""
    global _ACTIVE
    with _SWAP_LOCK:
        previous = _ACTIVE
        _ACTIVE = collector
    return previous


@contextmanager
def using_collector(collector: Collector) -> Iterator[Collector]:
    """Scoped collector installation::

        collector = RecordingCollector()
        with using_collector(collector):
            run_suite(...)
        print(stats_table(aggregate_spans(collector.spans)))
    """
    previous = set_collector(collector)
    try:
        yield collector
    finally:
        set_collector(previous)
