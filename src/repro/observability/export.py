"""Trace exporters: JSONL dump/load, span aggregates, error-vs-time report.

The on-disk format is JSON lines, one record per line, discriminated by a
``type`` field:

- ``{"type": "span", "name", "start", "seconds", "depth", "attrs"}``
- ``{"type": "counter", "name", "value"}``
- ``{"type": "histogram", "name", "values"}``
- ``{"type": "outcome", "use_case", "estimator", "relative_error",
  "seconds", "status", ...}``

``python -m repro stats FILE`` renders the aggregate tables from such a
file; benchmarks can also consume traces programmatically via
:func:`read_trace`.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.observability.collector import RecordingCollector, SpanRecord

PathLike = Union[str, Path]


def _jsonable(value: Any) -> Any:
    """Coerce span attributes to JSON-serializable values."""
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, (int, float)):
        return value if math.isfinite(value) else repr(value)
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    # numpy scalars expose .item(); anything else degrades to str.
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return _jsonable(item())
        except (TypeError, ValueError):
            pass
    return str(value)


@dataclass
class TraceData:
    """Contents of a trace file (or a live collector), decoded."""

    spans: List[SpanRecord] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, List[float]] = field(default_factory=dict)
    outcomes: List[Dict[str, Any]] = field(default_factory=list)


def write_trace(path: PathLike, collector: RecordingCollector) -> int:
    """Dump *collector* as JSON lines to *path*; returns the record count."""
    records: List[Dict[str, Any]] = []
    for span in collector.spans:
        records.append({
            "type": "span",
            "name": span.name,
            "start": span.start,
            "seconds": span.seconds,
            "depth": span.depth,
            "attrs": _jsonable(dict(span.attrs)),
        })
    for name, value in sorted(collector.counters.items()):
        records.append({"type": "counter", "name": name, "value": value})
    for name, values in sorted(collector.histograms.items()):
        records.append({"type": "histogram", "name": name, "values": values})
    for outcome in collector.outcomes:
        records.append({"type": "outcome", **_jsonable(outcome)})
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return len(records)


def read_trace(path: PathLike) -> TraceData:
    """Parse a JSONL trace file back into structured records.

    Unknown record types are ignored (forward compatibility); blank lines
    are skipped.
    """
    data = TraceData()
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("type")
            if kind == "span":
                data.spans.append(SpanRecord(
                    name=record["name"],
                    start=float(record.get("start") or 0.0),
                    seconds=float(record.get("seconds") or 0.0),
                    depth=int(record.get("depth", 0)),
                    attrs=record.get("attrs", {}),
                ))
            elif kind == "counter":
                data.counters[record["name"]] = float(record["value"])
            elif kind == "histogram":
                data.histograms[record["name"]] = [
                    float(v) for v in record["values"]
                ]
            elif kind == "outcome":
                data.outcomes.append({
                    key: value for key, value in record.items()
                    if key != "type"
                })
    return data


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SpanStats:
    """Aggregate statistics for one (span name, estimator) group."""

    name: str
    estimator: Optional[str]
    count: int
    total_seconds: float
    mean_seconds: float
    p95_seconds: float
    max_seconds: float


def percentile(values: Sequence[float], q: float) -> float:
    """The *q*-th percentile (0-100) by linear interpolation."""
    if not values:
        return math.nan
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = min(low + 1, len(ordered) - 1)
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


def aggregate_spans(
    spans: Sequence[SpanRecord], by_estimator: bool = True
) -> List[SpanStats]:
    """Group spans by name (and the ``estimator`` attribute, if present).

    Returns one :class:`SpanStats` per group, sorted by total time
    descending — the profile view: the top row is where the run spent its
    time.
    """
    groups: Dict[tuple, List[float]] = {}
    for span in spans:
        estimator = span.attrs.get("estimator") if by_estimator else None
        groups.setdefault((span.name, estimator), []).append(span.seconds)
    stats = [
        SpanStats(
            name=name,
            estimator=estimator,
            count=len(durations),
            total_seconds=sum(durations),
            mean_seconds=sum(durations) / len(durations),
            p95_seconds=percentile(durations, 95.0),
            max_seconds=max(durations),
        )
        for (name, estimator), durations in groups.items()
    ]
    stats.sort(key=lambda s: (-s.total_seconds, s.name, s.estimator or ""))
    return stats


def stats_table(stats: Sequence[SpanStats], title: str = "") -> str:
    """Render span aggregates as the fixed-width profile table."""
    from repro.sparsest.report import simple_table  # deferred: heavy package

    rows = [
        [
            entry.name,
            entry.estimator or "-",
            entry.count,
            f"{entry.total_seconds:.6f}",
            f"{entry.mean_seconds:.6f}",
            f"{entry.p95_seconds:.6f}",
            f"{entry.max_seconds:.6f}",
        ]
        for entry in stats
    ]
    return simple_table(
        ["span", "estimator", "count", "total [s]", "mean [s]", "p95 [s]",
         "max [s]"],
        rows,
        title=title,
    )


def error_time_table(
    outcomes: Sequence[Dict[str, Any]], title: str = ""
) -> str:
    """Render the per-(use case, estimator) error-vs-time report."""
    from repro.sparsest.report import simple_table  # deferred: heavy package

    rows = []
    for outcome in outcomes:
        error = outcome.get("relative_error")
        if isinstance(error, str):  # non-finite values round-trip as repr()
            rendered_error = error
        elif error is None or (isinstance(error, float) and math.isnan(error)):
            rendered_error = "x"
        else:
            rendered_error = f"{float(error):.4f}"
        rows.append([
            str(outcome.get("use_case", "?")),
            str(outcome.get("estimator", "?")),
            rendered_error,
            f"{float(outcome.get('seconds', 0.0)):.6f}",
            str(outcome.get("status", "ok")),
        ])
    return simple_table(
        ["use case", "estimator", "rel-error", "seconds", "status"],
        rows,
        title=title,
    )
