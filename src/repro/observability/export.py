"""Trace exporters: JSONL dump/load, span aggregates, error-vs-time report.

The on-disk format is JSON lines, one record per line, discriminated by a
``type`` field:

- ``{"type": "span", "name", "start", "seconds", "depth", "attrs"}``
- ``{"type": "counter", "name", "value"}``
- ``{"type": "histogram", "name", "values"}``
- ``{"type": "outcome", "use_case", "estimator", "relative_error",
  "seconds", "status", ...}``
- ``{"type": "metrics", "schema", "counters", "gauges", "histograms",
  ...}`` — a versioned :class:`~repro.observability.metrics.MetricsSnapshot`
  (see :data:`~repro.observability.metrics.METRICS_SCHEMA_VERSION`;
  readers reject snapshots from a newer schema).
- ``{"type": "residual", "source", "estimator", "workload", "op",
  "estimate", "truth", "relative_error", "seconds"}`` — one accuracy
  ledger entry.

``python -m repro stats FILE...`` renders the aggregate tables from such
files (merging multiple); benchmarks can also consume traces
programmatically via :func:`read_trace`. :func:`write_metrics_jsonl` /
:func:`read_metrics_jsonl` move bare metric snapshots (no trace) through
the same record types, and :func:`prometheus_exposition` renders a
snapshot in the Prometheus text exposition format for scraping.
"""

from __future__ import annotations

import json
import math
import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.observability.collector import RecordingCollector, SpanRecord
from repro.observability.metrics import (
    MetricsSnapshot,
    ResidualRecord,
    _Histogram,
)

PathLike = Union[str, Path]


def _jsonable(value: Any) -> Any:
    """Coerce span attributes to JSON-serializable values."""
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, (int, float)):
        return value if math.isfinite(value) else repr(value)
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    # numpy scalars expose .item(); anything else degrades to str.
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return _jsonable(item())
        except (TypeError, ValueError):
            pass
    return str(value)


@dataclass
class TraceData:
    """Contents of a trace file (or a live collector), decoded."""

    spans: List[SpanRecord] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, List[float]] = field(default_factory=dict)
    outcomes: List[Dict[str, Any]] = field(default_factory=list)
    #: Decoded registry snapshot, when the file contained one (merged when
    #: it contained several).
    metrics: Optional[MetricsSnapshot] = None
    #: Accuracy-ledger entries from ``residual`` records.
    residuals: List[ResidualRecord] = field(default_factory=list)


def merge_trace_data(parts: Iterable[TraceData]) -> TraceData:
    """Fold several decoded trace/metric files into one view.

    Spans, outcomes, and residual ledgers concatenate in input order;
    counters add; exact-histogram value lists concatenate; metric
    snapshots merge with registry semantics (counters add, gauges take the
    later file, bucketed histograms add). The multi-file story behind
    ``repro stats FILE...`` — per-worker or per-shard dumps aggregate into
    the same shapes a single-process run would have produced.
    """
    merged = TraceData()
    for part in parts:
        merged.spans.extend(part.spans)
        for name, value in part.counters.items():
            merged.counters[name] = merged.counters.get(name, 0.0) + value
        for name, values in part.histograms.items():
            merged.histograms.setdefault(name, []).extend(values)
        merged.outcomes.extend(part.outcomes)
        merged.residuals.extend(part.residuals)
        if part.metrics is not None:
            merged.metrics = (
                part.metrics if merged.metrics is None
                else merged.metrics.merge(part.metrics)
            )
    return merged


def _metrics_records(snapshot: MetricsSnapshot) -> List[Dict[str, Any]]:
    """The JSONL records encoding *snapshot*: one ``metrics`` line plus one
    ``residual`` line per retained ledger entry."""
    records: List[Dict[str, Any]] = [
        {"type": "metrics", **_jsonable(snapshot.to_dict())}
    ]
    for residual in snapshot.residuals:
        records.append({"type": "residual", **_jsonable(residual.to_dict())})
    return records


def write_trace(
    path: PathLike,
    collector: RecordingCollector,
    metrics: Optional[MetricsSnapshot] = None,
) -> int:
    """Dump *collector* as JSON lines to *path*; returns the record count.

    When *metrics* is given, the snapshot and its residual ledger are
    appended as ``metrics``/``residual`` records, so one ``--trace`` file
    carries both the span profile and the accuracy telemetry.
    """
    records: List[Dict[str, Any]] = []
    for span in collector.spans:
        records.append({
            "type": "span",
            "name": span.name,
            "start": span.start,
            "seconds": span.seconds,
            "depth": span.depth,
            "attrs": _jsonable(dict(span.attrs)),
        })
    for name, value in sorted(collector.counters.items()):
        records.append({"type": "counter", "name": name, "value": value})
    for name, values in sorted(collector.histograms.items()):
        records.append({"type": "histogram", "name": name, "values": values})
    for outcome in collector.outcomes:
        records.append({"type": "outcome", **_jsonable(outcome)})
    if metrics is not None:
        records.extend(_metrics_records(metrics))
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return len(records)


def write_metrics_jsonl(path: PathLike, snapshot: MetricsSnapshot) -> int:
    """Dump a bare metrics snapshot (no trace) as JSONL; returns the
    record count. The write is atomic (temp file + rename) so a file seen
    on disk is always complete — this is the :func:`repro.observability.
    metrics.flush` / ``atexit`` durability path."""
    records = _metrics_records(snapshot)
    target = Path(path)
    tmp = target.with_name(target.name + f".tmp{os.getpid()}")
    with open(tmp, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    tmp.replace(target)
    return len(records)


def read_metrics_jsonl(path: PathLike) -> MetricsSnapshot:
    """Parse a metrics JSONL file back into a snapshot (ledger attached).

    Accepts full trace files too — only the ``metrics``/``residual``
    records are read. Raises ``ValueError`` when the file has no metrics
    record or the snapshot schema is newer than this build supports.
    """
    data = read_trace(path)
    if data.metrics is None:
        raise ValueError(f"no metrics record found in {path}")
    snapshot = data.metrics
    snapshot.residuals = list(data.residuals)
    return snapshot


def read_trace(path: PathLike) -> TraceData:
    """Parse a JSONL trace file back into structured records.

    Unknown record types are ignored (forward compatibility); blank lines
    are skipped.
    """
    data = TraceData()
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("type")
            if kind == "span":
                data.spans.append(SpanRecord(
                    name=record["name"],
                    start=float(record.get("start") or 0.0),
                    seconds=float(record.get("seconds") or 0.0),
                    depth=int(record.get("depth", 0)),
                    attrs=record.get("attrs", {}),
                ))
            elif kind == "counter":
                data.counters[record["name"]] = float(record["value"])
            elif kind == "histogram":
                data.histograms[record["name"]] = [
                    float(v) for v in record["values"]
                ]
            elif kind == "outcome":
                data.outcomes.append({
                    key: value for key, value in record.items()
                    if key != "type"
                })
            elif kind == "metrics":
                snapshot = MetricsSnapshot.from_dict(record)
                data.metrics = (
                    snapshot if data.metrics is None
                    else data.metrics.merge(snapshot)
                )
            elif kind == "residual":
                data.residuals.append(ResidualRecord.from_dict(record))
    return data


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SpanStats:
    """Aggregate statistics for one (span name, estimator) group."""

    name: str
    estimator: Optional[str]
    count: int
    total_seconds: float
    mean_seconds: float
    p95_seconds: float
    max_seconds: float


def percentile(values: Sequence[float], q: float) -> float:
    """The *q*-th percentile (0-100) by linear interpolation."""
    if not values:
        return math.nan
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = min(low + 1, len(ordered) - 1)
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


def aggregate_spans(
    spans: Sequence[SpanRecord], by_estimator: bool = True
) -> List[SpanStats]:
    """Group spans by name (and the ``estimator`` attribute, if present).

    Returns one :class:`SpanStats` per group, sorted by total time
    descending — the profile view: the top row is where the run spent its
    time.
    """
    groups: Dict[tuple, List[float]] = {}
    for span in spans:
        estimator = span.attrs.get("estimator") if by_estimator else None
        groups.setdefault((span.name, estimator), []).append(span.seconds)
    stats = [
        SpanStats(
            name=name,
            estimator=estimator,
            count=len(durations),
            total_seconds=sum(durations),
            mean_seconds=sum(durations) / len(durations),
            p95_seconds=percentile(durations, 95.0),
            max_seconds=max(durations),
        )
        for (name, estimator), durations in groups.items()
    ]
    stats.sort(key=lambda s: (-s.total_seconds, s.name, s.estimator or ""))
    return stats


def stats_table(stats: Sequence[SpanStats], title: str = "") -> str:
    """Render span aggregates as the fixed-width profile table."""
    from repro.sparsest.report import simple_table  # deferred: heavy package

    rows = [
        [
            entry.name,
            entry.estimator or "-",
            entry.count,
            f"{entry.total_seconds:.6f}",
            f"{entry.mean_seconds:.6f}",
            f"{entry.p95_seconds:.6f}",
            f"{entry.max_seconds:.6f}",
        ]
        for entry in stats
    ]
    return simple_table(
        ["span", "estimator", "count", "total [s]", "mean [s]", "p95 [s]",
         "max [s]"],
        rows,
        title=title,
    )


def error_time_table(
    outcomes: Sequence[Dict[str, Any]], title: str = ""
) -> str:
    """Render the per-(use case, estimator) error-vs-time report."""
    from repro.sparsest.report import simple_table  # deferred: heavy package

    rows = []
    for outcome in outcomes:
        error = outcome.get("relative_error")
        if isinstance(error, str):  # non-finite values round-trip as repr()
            rendered_error = error
        elif error is None or (isinstance(error, float) and math.isnan(error)):
            rendered_error = "x"
        else:
            rendered_error = f"{float(error):.4f}"
        rows.append([
            str(outcome.get("use_case", "?")),
            str(outcome.get("estimator", "?")),
            rendered_error,
            f"{float(outcome.get('seconds', 0.0)):.6f}",
            str(outcome.get("status", "ok")),
        ])
    return simple_table(
        ["use case", "estimator", "rel-error", "seconds", "status"],
        rows,
        title=title,
    )


def residual_table(
    residuals: Sequence[ResidualRecord], title: str = ""
) -> str:
    """Render the residual ledger aggregated per (source, estimator).

    One row per group: observation count, mean/max finite relative error
    (paper M1), the number of non-finite errors (zero-vs-nonzero), and
    total attributed wall time.
    """
    from repro.sparsest.report import simple_table  # deferred: heavy package

    groups: Dict[tuple, List[ResidualRecord]] = {}
    for record in residuals:
        groups.setdefault((record.source, record.estimator), []).append(record)
    rows = []
    for (source, estimator), records in sorted(groups.items()):
        finite = [
            r.relative_error for r in records
            if math.isfinite(r.relative_error)
        ]
        rows.append([
            source,
            estimator,
            len(records),
            f"{sum(finite) / len(finite):.4f}" if finite else "-",
            f"{max(finite):.4f}" if finite else "-",
            len(records) - len(finite),
            f"{sum(r.seconds for r in records):.6f}",
        ])
    return simple_table(
        ["source", "estimator", "n", "mean err", "max err", "non-finite",
         "seconds"],
        rows,
        title=title,
    )


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

_PROM_PREFIX = "repro_"


def _prom_name(name: str) -> str:
    """Sanitize a dotted metric name into the Prometheus charset."""
    return _PROM_PREFIX + re.sub(r"[^a-zA-Z0-9_]", "_", name)


def _prom_value(value: float) -> str:
    """Format a float the way the exposition format expects."""
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _prom_label(value: str) -> str:
    """Escape a label value per the exposition format rules."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def prometheus_exposition(snapshot: MetricsSnapshot) -> str:
    """Render *snapshot* in the Prometheus text exposition format (0.0.4).

    Counters gain a ``_total`` suffix, histograms are emitted as
    cumulative ``_bucket{le="..."}`` series (log2 bucket upper bounds)
    with ``_sum``/``_count``, and the residual ledger is aggregated into
    labelled ``repro_residual_*`` series per (source, estimator). Every
    line is either a ``# HELP``/``# TYPE`` comment or a single sample, so
    the output parses line-by-line.
    """
    lines: List[str] = []

    for name, value in sorted(snapshot.counters.items()):
        prom = _prom_name(name) + "_total"
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_prom_value(value)}")

    for name, value in sorted(snapshot.gauges.items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prom_value(value)}")

    for name, state in sorted(snapshot.histograms.items()):
        histogram = _Histogram.from_state(state)
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = histogram.zeros
        if histogram.zeros:
            lines.append(f'{prom}_bucket{{le="0"}} {cumulative}')
        for index in sorted(histogram.buckets):
            cumulative += histogram.buckets[index]
            upper = _prom_value(2.0 ** (index + 1))
            lines.append(f'{prom}_bucket{{le="{upper}"}} {cumulative}')
        lines.append(f'{prom}_bucket{{le="+Inf"}} {histogram.count}')
        lines.append(f"{prom}_sum {_prom_value(histogram.total)}")
        lines.append(f"{prom}_count {histogram.count}")

    groups: Dict[tuple, List[ResidualRecord]] = {}
    for record in snapshot.residuals:
        groups.setdefault((record.source, record.estimator), []).append(record)
    if groups:
        base = _PROM_PREFIX + "residual_ledger"
        lines.append(f"# TYPE {base}_count gauge")
        lines.append(f"# TYPE {base}_error_mean gauge")
        lines.append(f"# TYPE {base}_seconds_total gauge")
        for (source, estimator), records in sorted(groups.items()):
            labels = (
                f'source="{_prom_label(source)}",'
                f'estimator="{_prom_label(estimator)}"'
            )
            finite = [
                r.relative_error for r in records
                if math.isfinite(r.relative_error)
            ]
            mean = sum(finite) / len(finite) if finite else math.nan
            seconds = sum(r.seconds for r in records)
            lines.append(f"{base}_count{{{labels}}} {len(records)}")
            lines.append(f"{base}_error_mean{{{labels}}} {_prom_value(mean)}")
            lines.append(
                f"{base}_seconds_total{{{labels}}} {_prom_value(seconds)}"
            )

    return "\n".join(lines) + "\n" if lines else ""
