"""A transparent telemetry proxy around any sparsity estimator.

:class:`RecordingEstimator` wraps a
:class:`~repro.estimators.base.SparsityEstimator` and records every
``build`` / ``estimate_nnz`` / ``propagate`` call — operation, operand
shapes and non-zero counts, the resulting estimate, and wall time — both
into its own ``calls`` log and as spans on the active collector. It
delegates everything else, so the wrapped estimator produces bit-identical
estimates and can be used anywhere an estimator is accepted (the SparsEst
runner, DAG estimation, the allocation executor, the chain optimizer).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.estimators.base import SparsityEstimator, Synopsis
from repro.matrix.conversion import MatrixLike
from repro.observability.trace import timed_span
from repro.opcodes import Op

#: Span names emitted by the proxy, in estimator life-cycle order.
SPAN_BUILD = "estimator.build"
SPAN_ESTIMATE = "estimator.estimate"
SPAN_PROPAGATE = "estimator.propagate"


@dataclass(frozen=True)
class EstimatorCall:
    """One recorded estimator invocation."""

    method: str  # "build" | "estimate_nnz" | "propagate"
    estimator: str
    op: Optional[str]
    operand_shapes: Tuple[Tuple[int, int], ...]
    operand_nnz: Tuple[float, ...]
    result_nnz: Optional[float]
    seconds: float


def _matrix_stats(matrix: MatrixLike) -> Tuple[Tuple[int, int], float]:
    """Shape and non-zero count of a matrix-like input, computed cheaply."""
    shape = tuple(int(d) for d in matrix.shape)
    nnz = getattr(matrix, "nnz", None)
    if nnz is None:
        nnz = int(np.count_nonzero(np.asarray(matrix)))
    return shape, float(nnz)  # type: ignore[return-value]


class RecordingEstimator(SparsityEstimator):
    """Record every call to *inner* while returning its results unchanged.

    Args:
        inner: any estimator instance. Its ``name`` is preserved so tables
            and reports are unaffected by wrapping.

    Attributes:
        inner: the wrapped estimator.
        calls: chronological :class:`EstimatorCall` log.
    """

    def __init__(self, inner: SparsityEstimator) -> None:
        if isinstance(inner, RecordingEstimator):
            inner = inner.inner  # never stack proxies
        self.inner = inner
        self.name = inner.name
        self.calls: List[EstimatorCall] = []

    # ------------------------------------------------------------------
    # Recorded entry points
    # ------------------------------------------------------------------

    def build(self, matrix: MatrixLike) -> Synopsis:
        shape, nnz = _matrix_stats(matrix)
        with timed_span(
            SPAN_BUILD, estimator=self.name, shape=shape, nnz=nnz
        ) as span:
            synopsis = self.inner.build(matrix)
            span.annotate(result_nnz=float(synopsis.nnz_estimate))
        self.calls.append(EstimatorCall(
            method="build", estimator=self.name, op=None,
            operand_shapes=(shape,), operand_nnz=(nnz,),
            result_nnz=float(synopsis.nnz_estimate), seconds=span.seconds,
        ))
        return synopsis

    def estimate_nnz(
        self, op: Op, operands: Sequence[Synopsis], **params: Any
    ) -> float:
        shapes = tuple(operand.shape for operand in operands)
        nnzs = tuple(float(operand.nnz_estimate) for operand in operands)
        with timed_span(
            SPAN_ESTIMATE, estimator=self.name, op=op.value,
            operand_shapes=shapes, operand_nnz=nnzs,
        ) as span:
            estimate = self.inner.estimate_nnz(op, operands, **params)
            span.annotate(result_nnz=float(estimate))
        self.calls.append(EstimatorCall(
            method="estimate_nnz", estimator=self.name, op=op.value,
            operand_shapes=shapes, operand_nnz=nnzs,
            result_nnz=float(estimate), seconds=span.seconds,
        ))
        return estimate

    def propagate(
        self, op: Op, operands: Sequence[Synopsis], **params: Any
    ) -> Synopsis:
        shapes = tuple(operand.shape for operand in operands)
        nnzs = tuple(float(operand.nnz_estimate) for operand in operands)
        with timed_span(
            SPAN_PROPAGATE, estimator=self.name, op=op.value,
            operand_shapes=shapes, operand_nnz=nnzs,
        ) as span:
            synopsis = self.inner.propagate(op, operands, **params)
            span.annotate(result_nnz=float(synopsis.nnz_estimate))
        self.calls.append(EstimatorCall(
            method="propagate", estimator=self.name, op=op.value,
            operand_shapes=shapes, operand_nnz=nnzs,
            result_nnz=float(synopsis.nnz_estimate), seconds=span.seconds,
        ))
        return synopsis

    # ------------------------------------------------------------------
    # Transparent delegation
    # ------------------------------------------------------------------

    def supports(self, op: Op) -> bool:
        return self.inner.supports(op)

    def supports_propagation(self, op: Op) -> bool:
        return self.inner.supports_propagation(op)

    def __getattr__(self, attribute: str) -> Any:
        # Estimator-specific knobs (block sizes, sample fractions, ...)
        # resolve on the wrapped instance. Only called for misses on the
        # proxy itself.
        return getattr(self.inner, attribute)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RecordingEstimator({self.inner!r}, calls={len(self.calls)})"


def unwrap_estimator(estimator: SparsityEstimator) -> SparsityEstimator:
    """The underlying estimator, with any recording proxy removed.

    Use before ``isinstance`` checks on concrete estimator classes (e.g.
    the SparsEst runner's bitset out-of-memory guard).
    """
    if isinstance(estimator, RecordingEstimator):
        return estimator.inner
    return estimator
