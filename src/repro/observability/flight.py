"""Bounded flight recorder: the last-N observability events, dumped on crash.

Traces answer questions about runs you *planned* to inspect; the flight
recorder answers "what was the process doing just before it blew up" for
runs you did not. A fixed-size ring buffer retains the most recent spans,
metric increments, and residual notes at negligible cost, and a
*postmortem* — the ring plus a full metrics snapshot — is written as JSON
when an estimator raises an unexpected exception, a parallel task dies
(:class:`~repro.parallel.engine.TaskFailure`), or a traced span exits with
an error.

Dumps are only written when a destination is **armed**, either via
:meth:`FlightRecorder.arm` or the ``$REPRO_FLIGHT_DUMP`` environment
variable (the CLI's ``--flight-recorder PATH`` sets the former). An
unarmed recorder still maintains the ring so :meth:`postmortem` can be
inspected programmatically.

Event recording is append-to-deque cheap, but it is *not* free, so the
recorder only sees what the observability layer already touches: spans
that were actually timed (tracing enabled, or ``timed_span``), explicit
``count()`` calls, and residual-ledger appends. Raw HOTPATH slot bumps
never reach it.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional

from repro.observability import metrics as _metrics

#: Environment variable naming the postmortem destination.
FLIGHT_DUMP_ENV = "REPRO_FLIGHT_DUMP"

#: Default ring size — enough to reconstruct the last few expression
#: estimations without holding a full trace in memory.
DEFAULT_CAPACITY = 256

#: Version stamp on postmortem files (bumped with the snapshot schema).
POSTMORTEM_VERSION = 1


class FlightRecorder:
    """Thread-safe bounded ring of recent observability events."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.enabled = True
        self._lock = threading.Lock()
        self._events: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._dump_path: Optional[Path] = None
        self._dumps_written = 0

    # -- arming --------------------------------------------------------

    def arm(self, path: Optional[os.PathLike | str]) -> None:
        """Set (or clear, with ``None``) the postmortem destination."""
        self._dump_path = Path(os.fspath(path)) if path is not None else None

    def armed_path(self) -> Optional[Path]:
        """The active dump destination: armed path, else the environment."""
        if self._dump_path is not None:
            return self._dump_path
        raw = os.environ.get(FLIGHT_DUMP_ENV)
        return Path(raw) if raw else None

    # -- recording -----------------------------------------------------

    def record(
        self,
        kind: str,
        name: str,
        seconds: Optional[float] = None,
        detail: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Append one event to the ring (no-op when disabled)."""
        if not self.enabled:
            return
        event: Dict[str, Any] = {"t": time.time(), "kind": kind, "name": name}
        if seconds is not None:
            event["seconds"] = seconds
        if detail:
            event["detail"] = detail
        with self._lock:
            self._events.append(event)

    def events(self) -> List[Dict[str, Any]]:
        """The retained events, oldest first."""
        with self._lock:
            return list(self._events)

    def clear(self) -> None:
        """Drop all retained events (test isolation)."""
        with self._lock:
            self._events.clear()
        self._dumps_written = 0

    # -- postmortems ---------------------------------------------------

    def postmortem(self, trigger: str, **context: Any) -> Dict[str, Any]:
        """Assemble the crash report: trigger, ring, and metrics snapshot."""
        snapshot = _metrics.metrics_snapshot()
        report: Dict[str, Any] = {
            "version": POSTMORTEM_VERSION,
            "trigger": trigger,
            "pid": os.getpid(),
            "time": time.time(),
            "events": self.events(),
            "metrics": snapshot.to_dict(),
            "residuals": [r.to_dict() for r in snapshot.residuals],
        }
        if context:
            report["context"] = {k: _jsonable(v) for k, v in context.items()}
        return report

    def trigger_dump(self, trigger: str, **context: Any) -> Optional[Path]:
        """Write a postmortem JSON if armed; returns the path written.

        Failures to write are swallowed — the recorder must never turn a
        crash diagnosis into a second crash.
        """
        _metrics.metric_inc(f"flight.trigger.{trigger}")
        target = self.armed_path()
        if target is None:
            return None
        try:
            report = self.postmortem(trigger, **context)
            target.parent.mkdir(parents=True, exist_ok=True)
            tmp = target.with_name(target.name + f".tmp{os.getpid()}")
            tmp.write_text(json.dumps(report, indent=2, default=_jsonable))
            os.replace(tmp, target)
        except Exception:  # pragma: no cover - defensive
            return None
        self._dumps_written += 1
        return target


def _jsonable(value: Any) -> Any:
    """Best-effort JSON coercion for arbitrary context values."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


#: The process-wide recorder; forked workers inherit (and re-arm via env).
FLIGHT = FlightRecorder()

# Let the metrics registry mirror increments/residuals into the ring
# without importing this module (breaking the cycle metrics -> flight).
_metrics.attach_flight(FLIGHT)
