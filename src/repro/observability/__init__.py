"""Estimator telemetry: tracing, metrics, and profiling hooks.

The observability layer is the measurement substrate every performance PR
reports against. It has four parts:

- **Collectors** (:mod:`repro.observability.collector`): the pluggable sink
  behind the tracing API. The process-wide default is a
  :class:`NullCollector` whose spans cost one attribute check and *zero*
  clock reads, so instrumented hot paths (sketch construction, product
  estimation, propagation) stay as fast as uninstrumented code. Install a
  :class:`RecordingCollector` — usually via :func:`using_collector` — to
  accumulate spans, counters, histograms, and benchmark outcomes.
- **Spans** (:mod:`repro.observability.trace`): ``trace(name, **attrs)`` is
  both a context manager and a decorator; :class:`timed_span` additionally
  always reads the clock and exposes ``.seconds``, which is the shared
  timer the SparsEst runner and DAG estimator report from.
- **Recording proxy** (:mod:`repro.observability.recording`):
  :class:`RecordingEstimator` wraps any
  :class:`~repro.estimators.base.SparsityEstimator` and records every
  ``build``/``estimate_nnz``/``propagate`` call — op, operand shapes and
  non-zero counts, result estimate, wall time — while returning bit-identical
  results, so it is usable anywhere an estimator is accepted.
- **Exporters** (:mod:`repro.observability.export`): JSON-lines trace dump
  and re-load, per-span aggregate statistics (count/total/mean/p95), and
  the per-(use case, estimator) error-vs-time report.

CLI integration: every ``python -m repro`` subcommand accepts
``--trace FILE`` to dump a JSONL trace, and ``python -m repro stats FILE``
summarizes one. See ``docs/OBSERVABILITY.md`` for the span-name catalog.
"""

from repro.observability.collector import (
    Collector,
    NullCollector,
    RecordingCollector,
    SpanRecord,
    TracePayload,
    get_collector,
    set_collector,
    using_collector,
)
from repro.observability.export import (
    SpanStats,
    aggregate_spans,
    error_time_table,
    read_trace,
    stats_table,
    write_trace,
)
from repro.observability.trace import (
    NULL_SPAN,
    count,
    maybe_trace,
    observe,
    timed_span,
    trace,
    tracing_enabled,
)

# The recording proxy subclasses SparsityEstimator, and the estimators
# package in turn imports repro.core (which is instrumented with this
# package's spans). Resolving the proxy lazily keeps repro.observability a
# leaf dependency for the core modules and breaks that cycle.
_RECORDING_EXPORTS = ("EstimatorCall", "RecordingEstimator", "unwrap_estimator")


def __getattr__(name: str):
    if name in _RECORDING_EXPORTS:
        from repro.observability import recording

        return getattr(recording, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Collector",
    "EstimatorCall",
    "NULL_SPAN",
    "NullCollector",
    "RecordingCollector",
    "RecordingEstimator",
    "SpanRecord",
    "SpanStats",
    "TracePayload",
    "aggregate_spans",
    "count",
    "error_time_table",
    "get_collector",
    "maybe_trace",
    "observe",
    "read_trace",
    "set_collector",
    "stats_table",
    "timed_span",
    "trace",
    "tracing_enabled",
    "unwrap_estimator",
    "using_collector",
    "write_trace",
]
