"""Estimator telemetry: tracing, metrics, and profiling hooks.

The observability layer is the measurement substrate every performance PR
reports against. It has six parts:

- **Collectors** (:mod:`repro.observability.collector`): the pluggable sink
  behind the tracing API. The process-wide default is a
  :class:`NullCollector` whose spans cost one attribute check and *zero*
  clock reads, so instrumented hot paths (sketch construction, product
  estimation, propagation) stay as fast as uninstrumented code. Install a
  :class:`RecordingCollector` — usually via :func:`using_collector` — to
  accumulate spans, counters, histograms, and benchmark outcomes.
- **Spans** (:mod:`repro.observability.trace`): ``trace(name, **attrs)`` is
  both a context manager and a decorator; :class:`timed_span` additionally
  always reads the clock and exposes ``.seconds``, which is the shared
  timer the SparsEst runner and DAG estimator report from.
- **Recording proxy** (:mod:`repro.observability.recording`):
  :class:`RecordingEstimator` wraps any
  :class:`~repro.estimators.base.SparsityEstimator` and records every
  ``build``/``estimate_nnz``/``propagate`` call — op, operand shapes and
  non-zero counts, result estimate, wall time — while returning bit-identical
  results, so it is usable anywhere an estimator is accepted.
- **Metrics** (:mod:`repro.observability.metrics`): the process-wide
  :data:`METRICS` registry — monotonic counters (absorbing the
  ``hotpath.*`` slots), gauges, log2-bucketed histograms with
  p50/p95/p99 — plus the **accuracy residual ledger** recording
  estimate-vs-truth observations (paper metric M1) wherever ground truth
  is computed anyway. Unlike traces, metrics are always on; snapshots are
  versioned, picklable, and merge across parallel workers in task order.
- **Flight recorder** (:mod:`repro.observability.flight`): a bounded ring
  of the most recent spans/metric events; dumps a postmortem JSON on
  estimator exceptions, failed parallel tasks, or error spans when armed
  via ``--flight-recorder`` / ``$REPRO_FLIGHT_DUMP``.
- **Exporters** (:mod:`repro.observability.export`): JSON-lines trace dump
  and re-load, per-span aggregate statistics (count/total/mean/p95), the
  per-(use case, estimator) error-vs-time report, metrics-snapshot JSONL
  (:func:`write_metrics_jsonl`), and Prometheus text exposition
  (:func:`prometheus_exposition`).

CLI integration: every ``python -m repro`` subcommand accepts
``--trace FILE`` to dump a JSONL trace (now including the metric
snapshot and residual ledger), and ``python -m repro stats FILE...``
summarizes and merges one or more. See ``docs/OBSERVABILITY.md`` for the
span-name catalog and the metrics model.
"""

from repro.observability.collector import (
    Collector,
    NullCollector,
    RecordingCollector,
    SpanRecord,
    TracePayload,
    get_collector,
    set_collector,
    using_collector,
)
from repro.observability.export import (
    SpanStats,
    TraceData,
    aggregate_spans,
    error_time_table,
    merge_trace_data,
    prometheus_exposition,
    read_metrics_jsonl,
    read_trace,
    residual_table,
    stats_table,
    write_metrics_jsonl,
    write_trace,
)
from repro.observability.flight import FLIGHT, FlightRecorder
from repro.observability.metrics import (
    METRICS,
    METRICS_SCHEMA_VERSION,
    MetricsRegistry,
    MetricsSnapshot,
    ResidualRecord,
    flush,
    metric_inc,
    metric_observe,
    metric_set,
    metrics_snapshot,
    record_residual,
    reset_metrics,
)
from repro.observability.trace import (
    NULL_SPAN,
    count,
    maybe_trace,
    observe,
    timed_span,
    trace,
    tracing_enabled,
)

# The recording proxy subclasses SparsityEstimator, and the estimators
# package in turn imports repro.core (which is instrumented with this
# package's spans). Resolving the proxy lazily keeps repro.observability a
# leaf dependency for the core modules and breaks that cycle.
_RECORDING_EXPORTS = ("EstimatorCall", "RecordingEstimator", "unwrap_estimator")


def __getattr__(name: str):
    if name in _RECORDING_EXPORTS:
        from repro.observability import recording

        return getattr(recording, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Collector",
    "EstimatorCall",
    "FLIGHT",
    "FlightRecorder",
    "METRICS",
    "METRICS_SCHEMA_VERSION",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_SPAN",
    "NullCollector",
    "RecordingCollector",
    "RecordingEstimator",
    "ResidualRecord",
    "SpanRecord",
    "SpanStats",
    "TraceData",
    "TracePayload",
    "aggregate_spans",
    "count",
    "error_time_table",
    "flush",
    "get_collector",
    "maybe_trace",
    "merge_trace_data",
    "metric_inc",
    "metric_observe",
    "metric_set",
    "metrics_snapshot",
    "observe",
    "prometheus_exposition",
    "read_metrics_jsonl",
    "read_trace",
    "record_residual",
    "reset_metrics",
    "residual_table",
    "set_collector",
    "stats_table",
    "timed_span",
    "trace",
    "tracing_enabled",
    "unwrap_estimator",
    "using_collector",
    "write_metrics_jsonl",
    "write_trace",
]
