"""The span API: ``trace`` context manager/decorator and the shared timer.

``trace("name", key=value)`` marks a span. With the default
:class:`~repro.observability.collector.NullCollector` it performs one
attribute check and *no* clock reads, so it is safe to leave in hot paths
(sketch construction runs millions of times in the DP benchmarks).

For the *hottest* paths even allocating the span object and its attribute
dict is measurable, so two zero-overhead forms exist:

- :func:`tracing_enabled` — one global read plus an attribute check;
  kernels branch on it and only build span attributes (and enter the
  span) when a collector is actually listening. The recorded-trace schema
  is unchanged: when tracing is on, exactly the same spans with the same
  names and attributes are produced.
- :func:`maybe_trace` — drop-in for ``with trace(...)`` call sites:
  returns a shared inert span (``annotate`` is a no-op, no clock reads,
  no allocation) when nothing is listening, a real :class:`trace`
  otherwise.

:class:`timed_span` is the shared timer: it always reads the clock and
exposes ``.seconds`` after exit, replacing the ad-hoc ``perf_counter``
pairs that used to live in the SparsEst runner and the DAG estimator —
and it additionally records a span whenever a collector is listening.
"""

from __future__ import annotations

import functools
import threading
import time
from typing import Any, Callable, List, Optional, TypeVar

from repro.observability.collector import SpanRecord, get_collector
from repro.observability.flight import FLIGHT
from repro.observability.metrics import METRICS

F = TypeVar("F", bound=Callable[..., Any])

_LOCAL = threading.local()


def _span_stack() -> List[str]:
    try:
        return _LOCAL.stack
    except AttributeError:
        _LOCAL.stack = []
        return _LOCAL.stack


class trace:
    """A named span, usable as a context manager or a decorator.

    Context manager::

        with trace("mnc.estimate.matmul", shape=(m, l)) as span:
            nnz = ...
            span.annotate(result_nnz=nnz)

    Decorator (a fresh span per call)::

        @trace("executor.decide")
        def plan_allocation(...): ...

    Attributes set after exit:
        seconds: elapsed wall time, or ``None`` when nothing was listening
            (subclasses may always time, see :class:`timed_span`).
    """

    __slots__ = ("name", "attrs", "seconds", "_collector", "_start", "_depth")

    #: Subclass hook: read the clock even without an enabled collector.
    _always_time = False

    def __init__(self, name: str, **attrs: Any) -> None:
        self.name = name
        self.attrs = attrs
        self.seconds: Optional[float] = None
        self._collector = None
        self._start: Optional[float] = None
        self._depth = 0

    def annotate(self, **attrs: Any) -> None:
        """Attach additional attributes (e.g. results known only mid-span)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "trace":
        collector = get_collector()
        if collector.enabled:
            self._collector = collector
            stack = _span_stack()
            self._depth = len(stack)
            stack.append(self.name)
            self._start = time.perf_counter()
        elif self._always_time:
            self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if self._start is not None:
            self.seconds = time.perf_counter() - self._start
            if exc_type is not None:
                # Exception-safe spans: the record survives, flagged, and
                # the flight recorder captures a postmortem. Only spans
                # that were actually observed (traced or timed) reach
                # here — a disabled plain ``trace`` stays zero-cost.
                self.attrs["error"] = exc_type.__name__
                FLIGHT.record(
                    "span_error", self.name, seconds=self.seconds,
                    detail={"error": exc_type.__name__},
                )
                FLIGHT.trigger_dump(
                    "span_error", span=self.name,
                    error=exc_type.__name__, message=str(exc),
                )
            elif FLIGHT.enabled:
                FLIGHT.record("span", self.name, seconds=self.seconds)
        collector = self._collector
        if collector is not None:
            self._collector = None
            stack = _span_stack()
            if stack and stack[-1] == self.name:
                stack.pop()
            collector.record_span(SpanRecord(
                name=self.name,
                start=self._start,
                seconds=self.seconds,
                depth=self._depth,
                attrs=dict(self.attrs),
            ))
        return False

    def __call__(self, fn: F) -> F:
        name, attrs, cls = self.name, self.attrs, type(self)

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with cls(name, **attrs):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]


class timed_span(trace):
    """A span that always times, even under the :class:`NullCollector`.

    The shared timer for harness code that needs elapsed wall time *as
    data* (the paper's M2 metric) regardless of whether a trace is being
    collected: ``.seconds`` is guaranteed to be set after exit.
    """

    __slots__ = ()

    _always_time = True


class _NullSpan:
    """Shared inert span: no clock reads, no state, no allocation per use."""

    __slots__ = ()

    seconds: Optional[float] = None
    name = "<null>"
    attrs: dict = {}

    def annotate(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False


#: The singleton inert span returned by :func:`maybe_trace` when disabled.
NULL_SPAN = _NullSpan()


def tracing_enabled() -> bool:
    """Whether the active collector is listening (hot-path fast guard).

    Kernels use this to skip span construction entirely::

        if tracing_enabled():
            with trace("mnc.estimate.matmul", ...) as span:
                ...
        else:
            ...  # identical body, zero instrumentation cost
    """
    return get_collector().enabled


def maybe_trace(name: str, **attrs: Any):
    """``trace(name, **attrs)`` when a collector listens, else the shared
    inert span. Preserves the recorded-trace schema while reducing the
    disabled-path cost to one function call."""
    if get_collector().enabled:
        return trace(name, **attrs)
    return NULL_SPAN


def count(name: str, value: float = 1.0) -> None:
    """Increment the counter *name*.

    Always feeds the process-wide metrics registry (counters are cheap and
    must survive untraced runs); additionally mirrors to the active
    collector when a trace is being recorded, so trace files keep their
    per-run counter tables.
    """
    METRICS.inc(name, value)
    if FLIGHT.enabled:
        FLIGHT.record("metric", name, detail={"delta": value})
    collector = get_collector()
    if collector.enabled:
        collector.increment(name, value)


def observe(name: str, value: float) -> None:
    """Record one histogram observation.

    Always feeds the process-wide metrics registry (log-bucketed, bounded
    memory); mirrors the exact value to the active collector when a trace
    is being recorded.
    """
    METRICS.observe(name, value)
    collector = get_collector()
    if collector.enabled:
        collector.observe(name, value)
