"""Deterministic fuzz loop with failure shrinking.

The engine evaluates the full (estimator x contract x generator) matrix:
for every generator it materializes ``budget`` seeded cases (case identity
depends only on ``(seed, generator, index)``, so cases are shared across
estimator/contract cells and any failure is reproducible from that triple),
then checks every applicable contract for every estimator spec.

Failures are *shrunk* to minimal reproducers before being reported:

1. prune — replace the root with any failing proper sub-DAG;
2. materialize — swap non-leaf children for leaves holding their exact
   structure (reduces any DAG failure to a single-op failure);
3. halve — slice leaf dimensions in half (first/second half per axis);
4. drop — remove individual rows/columns once dimensions are small.

Each accepted candidate strictly shrinks the case, so the loop terminates;
the result is typically a single-op case a few cells in size (the engine
self-test injects a faulty estimator and asserts an <=8x8 reproducer).
"""

from __future__ import annotations

import fnmatch
import math
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.core.hotpath import validated_scope
from repro.errors import UnsupportedOperationError
from repro.estimators.exact import ExactOracle
from repro.ir import nodes as ir
from repro.ir.nodes import Expr
from repro.matrix.conversion import as_csr
from repro.observability.flight import FLIGHT
from repro.observability.trace import count, timed_span
from repro.opcodes import Op
from repro.parallel.engine import resolve_workers, run_tasks
from repro.verify.contracts import (
    Contract,
    EstimatorSpec,
    all_contracts,
    default_estimator_specs,
)
from repro.verify.generators import (
    Case,
    all_generators,
    exact_structure,
    generate_case,
    retag,
)

MAX_SHRINK_STEPS = 64

#: Dimensions at or below this try single row/column drops while shrinking.
DROP_DIM_LIMIT = 8


@dataclass(frozen=True)
class CellKey:
    """Coordinates of one verification cell."""

    estimator: str
    contract: str
    generator: str

    def __str__(self) -> str:
        return f"{self.estimator}:{self.contract}:{self.generator}"


@dataclass
class ViolationRecord:
    """One contract violation, with its original and shrunk cases."""

    cell: CellKey
    message: str
    case: Case
    shrunk: Case
    shrunk_message: str
    shrink_steps: int
    spec: Optional[EstimatorSpec] = None

    def describe(self) -> str:
        return (f"{self.cell}#{self.case.index}: {self.shrunk_message} "
                f"(shrunk from {self.case.describe()} to "
                f"{self.shrunk.describe()} in {self.shrink_steps} steps)")


@dataclass
class CellResult:
    """Aggregated outcome of one (estimator x contract x generator) cell."""

    cell: CellKey
    checked: int = 0
    skipped: int = 0
    errors: int = 0
    violations: List[ViolationRecord] = field(default_factory=list)

    @property
    def cases(self) -> int:
        return self.checked + self.skipped


@dataclass
class VerifyReport:
    """Outcome of a full engine run."""

    seed: int
    budget: int
    cells: Dict[CellKey, CellResult]

    @property
    def violations(self) -> List[ViolationRecord]:
        found: List[ViolationRecord] = []
        for result in self.cells.values():
            found.extend(result.violations)
        return found

    @property
    def checked(self) -> int:
        return sum(result.checked for result in self.cells.values())

    @property
    def skipped(self) -> int:
        return sum(result.skipped for result in self.cells.values())

    def summary_rows(self) -> List[Tuple[str, str, int, int, int]]:
        """(estimator, contract, checked, skipped, violations) rows,
        aggregated over generators and sorted, for the CLI table."""
        grouped: Dict[Tuple[str, str], List[int]] = {}
        for key, result in self.cells.items():
            bucket = grouped.setdefault((key.estimator, key.contract), [0, 0, 0])
            bucket[0] += result.checked
            bucket[1] += result.skipped
            bucket[2] += len(result.violations)
        return [
            (estimator, contract, checked, skipped, violations)
            for (estimator, contract), (checked, skipped, violations)
            in sorted(grouped.items())
        ]


class FuzzEngine:
    """Differential-testing driver over the contract/generator registries.

    Args:
        specs: estimator specs under test (default: every registered
            estimator).
        contracts: contracts to check (default: the full registry).
        generators: generator names (default: all).
        budget: seeded cases per generator; every applicable
            (estimator x contract) pair checks each case, so one budget
            unit fans out across the whole matrix.
        seed: base seed; the run is a pure function of (seed, budget,
            cell selection).
        shrink: disable to report original failing cases unshrunk.
        cell_patterns: optional ``estimator:contract:generator`` fnmatch
            patterns (e.g. ``"mnc:*:*,*:bounds:adversarial"``) selecting a
            subset of cells.
        workers: process count for fanning budget chunks out; ``None``
            reads ``$REPRO_WORKERS`` (default 1). Case identity depends
            only on ``(seed, generator, index)`` and chunk boundaries are
            deterministic, so the report is identical for any worker
            count. A chunk whose worker dies is re-run serially in the
            parent, so crashes surface as findings, not hangs.
    """

    def __init__(
        self,
        specs: Optional[Sequence[EstimatorSpec]] = None,
        contracts: Optional[Sequence[Contract]] = None,
        generators: Optional[Sequence[str]] = None,
        budget: int = 100,
        seed: int = 0,
        shrink: bool = True,
        cell_patterns: Optional[Sequence[str]] = None,
        workers: Optional[int] = None,
    ):
        self.specs = list(specs) if specs is not None else default_estimator_specs()
        self.contracts = list(contracts) if contracts is not None else all_contracts()
        self.generators = list(generators) if generators is not None else all_generators()
        self.budget = int(budget)
        self.seed = int(seed)
        self.shrink = bool(shrink)
        self.cell_patterns = list(cell_patterns) if cell_patterns else []
        self.workers = workers

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def _selected(self, key: CellKey) -> bool:
        if not self.cell_patterns:
            return True
        name = str(key)
        return any(fnmatch.fnmatch(name, pat) for pat in self.cell_patterns)

    def run(self) -> VerifyReport:
        """Execute the full matrix and return the aggregated report.

        Fuzz trials are pure functions of ``(seed, generator, index)``, so
        the budget splits into index chunks that run in any process; chunk
        results are merged back in deterministic (generator, index) order,
        making the report independent of the worker count.
        """
        workers = resolve_workers(self.workers)
        chunks = self._chunks(workers)
        cells: Dict[CellKey, CellResult] = {}
        with timed_span(
            "verify.run", budget=self.budget, seed=self.seed, workers=workers
        ):
            if workers <= 1 or len(chunks) <= 1:
                for generator, start, stop in chunks:
                    self._merge(cells, self._run_chunk(generator, range(start, stop)))
            else:
                outcomes = run_tasks(
                    _run_chunk_task,
                    [(self, generator, start, stop)
                     for generator, start, stop in chunks],
                    workers=workers,
                    label="verify.fuzz",
                )
                for (generator, start, stop), outcome in zip(chunks, outcomes):
                    if outcome.ok:
                        chunk_cells = outcome.value
                    else:
                        # The worker died (or the chunk raised outside a
                        # contract check). Re-run the chunk in-process: a
                        # deterministic crash then surfaces with its real
                        # traceback instead of hanging the pool.
                        count("verify.chunk_retries")
                        chunk_cells = self._run_chunk(
                            generator, range(start, stop)
                        )
                    self._merge(cells, chunk_cells)
        report = VerifyReport(seed=self.seed, budget=self.budget, cells=cells)
        count("verify.cases", float(report.checked))
        count("verify.skipped", float(report.skipped))
        count("verify.violations", float(len(report.violations)))
        for record in report.violations:
            count(f"verify.violations.{record.cell.contract}")
            FLIGHT.record(
                "violation", str(record.cell),
                detail={"message": record.message[:200]},
            )
        if report.violations:
            # A violated contract is a correctness event, not a crash — note
            # it in the postmortem stream so an armed recorder captures the
            # metrics state that accompanied the violation.
            FLIGHT.trigger_dump(
                "verify_violation", violations=len(report.violations),
            )
        return report

    def _chunks(self, workers: int) -> List[Tuple[str, int, int]]:
        """Deterministic ``(generator, start, stop)`` budget chunks.

        Serial runs use one chunk per generator; parallel runs split each
        generator's budget into up to ``workers`` contiguous index ranges.
        An empty budget still yields one empty chunk per generator so that
        selected cells appear in the report with zero counts.
        """
        if workers <= 1:
            return [(generator, 0, self.budget) for generator in self.generators]
        size = max(1, math.ceil(self.budget / workers))
        chunks: List[Tuple[str, int, int]] = []
        for generator in self.generators:
            starts = list(range(0, self.budget, size)) or [0]
            for start in starts:
                chunks.append((generator, start, min(start + size, self.budget)))
        return chunks

    @staticmethod
    def _merge(cells: Dict[CellKey, CellResult],
               chunk: Dict[CellKey, CellResult]) -> None:
        for key, result in chunk.items():
            target = cells.setdefault(key, CellResult(cell=key))
            target.checked += result.checked
            target.skipped += result.skipped
            target.errors += result.errors
            target.violations.extend(result.violations)

    def _run_chunk(self, generator: str,
                   indices: Iterable[int]) -> Dict[CellKey, CellResult]:
        """Evaluate budget indices *indices* of *generator* over every
        selected (estimator x contract) cell, into a fresh cell table."""
        cells: Dict[CellKey, CellResult] = {}
        keys = {
            (spec, contract): CellKey(spec.name, contract.id, generator)
            for spec in self.specs for contract in self.contracts
        }
        active = {
            pair: key for pair, key in keys.items() if self._selected(key)
        }
        if not active:
            return cells
        for pair, key in active.items():
            cells.setdefault(key, CellResult(cell=key))
        # Contracts always run against fully validated sketches: the fast
        # trusted tier is re-routed through the validating constructor for
        # the duration of the chunk, so fuzzing keeps exercising every
        # invariant check the hot path skips in production.
        with validated_scope():
            self._check_chunk(generator, cells, active, indices)
        return cells

    def _check_chunk(self, generator: str, cells, active, indices) -> None:
        for index in indices:
            case = generate_case(generator, self.seed, index)
            for (spec, contract), key in active.items():
                result = cells[key]
                try:
                    if not contract.applies(spec, case):
                        result.skipped += 1
                        continue
                    message = contract.check(spec, case)
                except UnsupportedOperationError:
                    # An op gap discovered mid-check (e.g. propagation of an
                    # op the estimator only estimates): not a violation.
                    result.skipped += 1
                    continue
                except Exception as crash:
                    # Any other exception IS a finding: record it as a
                    # violation and keep the run alive for the other cells.
                    result.errors += 1
                    message = f"{type(crash).__name__}: {crash}"
                result.checked += 1
                if message is None:
                    continue
                shrunk, shrunk_message, steps = (
                    self.shrink_violation(case, spec, contract)
                    if self.shrink else (case, message, 0)
                )
                result.violations.append(ViolationRecord(
                    cell=key, message=message, case=case, shrunk=shrunk,
                    shrunk_message=shrunk_message, shrink_steps=steps,
                    spec=spec,
                ))

    # ------------------------------------------------------------------
    # Shrinking
    # ------------------------------------------------------------------

    def shrink_violation(
        self, case: Case, spec: EstimatorSpec, contract: Contract
    ) -> Tuple[Case, str, int]:
        """Greedily shrink *case* while it still violates *contract*.

        Returns the smallest failing case found, its violation message, and
        the number of accepted shrink steps.
        """
        current = case
        message = self._violation_of(case, spec, contract) or ""
        steps = 0
        progress = True
        while progress and steps < MAX_SHRINK_STEPS:
            progress = False
            for candidate in self._candidates(current):
                failure = self._violation_of(candidate, spec, contract)
                if failure is None:
                    continue
                current, message = candidate, failure
                steps += 1
                progress = True
                break
        return current, message, steps

    @staticmethod
    def _violation_of(case: Case, spec: EstimatorSpec,
                      contract: Contract) -> Optional[str]:
        try:
            # Shrinking re-evaluates contracts outside _check_chunk's scope;
            # keep candidate evaluation on validated sketches as well
            # (validated_scope is re-entrant, so nesting is free).
            with validated_scope():
                if not contract.applies(spec, case):
                    return None
                return contract.check(spec, case)
        except UnsupportedOperationError:
            return None
        except Exception as unexpected:  # crash counts as a violation too
            return f"{type(unexpected).__name__}: {unexpected}"

    def _candidates(self, case: Case) -> Iterable[Case]:
        root = case.root
        # 1. Prune: any proper non-leaf sub-DAG.
        for node in root.postorder():
            if node is root or node.op is Op.LEAF:
                continue
            yield retag(replace(case, root=node))
        # 2. Materialize: swap non-leaf children for exact-structure leaves.
        if any(child.op is not Op.LEAF for child in root.inputs):
            leaves = tuple(
                child if child.op is Op.LEAF
                else ir.leaf(exact_structure(child), name=child.label)
                for child in root.inputs
            )
            yield retag(replace(
                case, root=Expr(root.op, leaves, params=root.params)
            ))
            return
        if not root.inputs:
            return
        # 3/4. Dimension halving and row/column drops on single-op cases.
        yield from self._dimension_candidates(case)

    def _dimension_candidates(self, case: Case) -> Iterable[Case]:
        root = case.root
        matrices = [child.matrix for child in root.inputs]
        for slot, slices in _dimension_slots(root.op, matrices):
            sizes = {matrices[operand].shape[axis] for operand, axis in slices}
            if len(sizes) != 1:  # pragma: no cover - malformed slot
                continue
            size = sizes.pop()
            if size > 1:
                half = size // 2
                for keep in ((0, half), (half, size)):
                    yield self._rebuild(case, slices, keep)
            if 1 < size <= DROP_DIM_LIMIT:
                for drop in range(size):
                    yield self._rebuild(case, slices, (0, size), drop=drop)

    def _rebuild(self, case: Case, slices: Sequence[Tuple[int, int]],
                 keep: Tuple[int, int], drop: Optional[int] = None) -> Case:
        root = case.root
        matrices = [child.matrix for child in root.inputs]
        for operand, axis in slices:
            matrices[operand] = _slice_axis(matrices[operand], axis, keep, drop)
        params = dict(root.params)
        if root.op is Op.RESHAPE:
            # Keep the reshape target consistent with the shrunk input.
            m, n = matrices[0].shape
            params = {"rows": n, "cols": m}
        children = tuple(
            ir.leaf(matrix, name=child.name)
            for matrix, child in zip(matrices, root.inputs)
        )
        return retag(replace(case, root=Expr(root.op, children, params=params)))


def _run_chunk_task(
    task: Tuple["FuzzEngine", str, int, int]
) -> Dict[CellKey, CellResult]:
    """Worker entry point: one (engine, generator, start, stop) chunk."""
    engine, generator, start, stop = task
    return engine._run_chunk(generator, range(start, stop))


def _dimension_slots(
    op: Op, matrices: Sequence[sp.csr_array]
) -> List[Tuple[str, List[Tuple[int, int]]]]:
    """Shrinkable dimension slots of a single-op case.

    Each slot is a named list of ``(operand index, axis)`` pairs that must
    be sliced together to keep the expression well-shaped (e.g. a product's
    common dimension spans A's columns and B's rows).
    """
    if op is Op.MATMUL:
        return [("m", [(0, 0)]), ("n", [(0, 1), (1, 0)]), ("l", [(1, 1)])]
    if op in (Op.EWISE_ADD, Op.EWISE_MULT):
        return [("m", [(0, 0), (1, 0)]), ("n", [(0, 1), (1, 1)])]
    if op is Op.RBIND:
        return [("ma", [(0, 0)]), ("mb", [(1, 0)]),
                ("n", [(0, 1), (1, 1)])]
    if op is Op.CBIND:
        return [("m", [(0, 0), (1, 0)]), ("na", [(0, 1)]), ("nb", [(1, 1)])]
    if op is Op.DIAG_M2V:
        return [("n", [(0, 0), (0, 1)])]
    if op is Op.DIAG_V2M:
        return [("m", [(0, 0)])]
    if op in (Op.TRANSPOSE, Op.NEQ_ZERO, Op.EQ_ZERO, Op.ROW_SUMS,
              Op.COL_SUMS, Op.RESHAPE):
        return [("m", [(0, 0)]), ("n", [(0, 1)])]
    return []


def _slice_axis(matrix: sp.csr_array, axis: int, keep: Tuple[int, int],
                drop: Optional[int] = None) -> sp.csr_array:
    start, stop = keep
    indices = np.arange(start, stop)
    if drop is not None:
        indices = indices[indices != start + drop]
    if axis == 0:
        return as_csr(matrix[indices, :])
    return as_csr(matrix[:, indices])


# ----------------------------------------------------------------------
# Injected-fault self-test
# ----------------------------------------------------------------------

class FaultyOracle(ExactOracle):
    """An oracle with a deliberate product bug, for engine self-tests.

    It inflates the estimate of any matrix product whose output has more
    than one row *and* more than one column — so the minimal reproducer the
    shrinker should find is a 2x2-output product, well under the 8x8
    acceptance threshold.
    """

    name = "FaultyExact"

    def _estimate_matmul(self, a, b) -> float:
        truth = super()._estimate_matmul(a, b)
        if a.shape[0] > 1 and b.shape[1] > 1:
            return truth + a.shape[0] * b.shape[1]
        return truth


def injected_fault_selftest(budget: int = 24, seed: int = 0) -> ViolationRecord:
    """Prove the shrinker works: fuzz a faulty oracle, return the shrunk find.

    Raises ``AssertionError`` if the engine misses the fault or fails to
    shrink it to a product with an at-most-8x8 output.
    """
    from repro.verify.contracts import get_contract

    spec = EstimatorSpec(name="faulty_exact", factory=FaultyOracle)
    engine = FuzzEngine(
        specs=[spec],
        contracts=[get_contract("exact_oracle")],
        generators=["uniform", "chain"],
        budget=budget,
        seed=seed,
    )
    report = engine.run()
    if not report.violations:
        raise AssertionError("self-test fault was not detected")
    smallest = min(report.violations, key=lambda v: v.shrunk.cells)
    m, n = smallest.shrunk.root.shape
    if m > 8 or n > 8:
        raise AssertionError(
            f"self-test reproducer was not shrunk below 8x8: {m}x{n}"
        )
    return smallest
