"""Persistent reproducers for fuzz-found contract violations.

Every shrunk failure the engine reports can be frozen as a *reproducer*: a
``<name>.json`` file describing the estimator spec, contract, provenance,
and expression DAG (as a node table preserving sharing), paired with a
``<name>.npz`` holding the concrete leaf matrices in CSR form. Reproducers
live under ``tests/corpus/`` and are replayed by the pytest suite, so every
fuzz find becomes a permanent regression test: a replay *passes* when the
contract holds on the recorded case (i.e. the bug stays fixed).

The JSON side is human-readable on purpose — a reviewer can see which
invariant broke and on what expression without loading the arrays.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

import numpy as np
import scipy.sparse as sp

from repro.errors import UnsupportedOperationError
from repro.ir.nodes import Expr
from repro.matrix.conversion import as_csr
from repro.opcodes import Op
from repro.verify.contracts import EstimatorSpec, get_contract
from repro.verify.generators import Case, retag

_FORMAT_VERSION = 1

#: Default corpus location, relative to the repository root.
DEFAULT_CORPUS_DIR = Path("tests") / "corpus"


@dataclass
class Reproducer:
    """A frozen contract violation: everything needed to re-run the check."""

    name: str
    estimator: str
    contract: str
    root: Expr
    generator: str = "corpus"
    seed: int = 0
    index: int = 0
    estimator_kwargs: Dict[str, Any] = field(default_factory=dict)
    message: str = ""
    note: str = ""

    @classmethod
    def from_violation(cls, record, name: Optional[str] = None,
                       note: str = "") -> "Reproducer":
        """Build a reproducer from an engine :class:`ViolationRecord`."""
        shrunk = record.shrunk
        spec = _spec_of(record)
        return cls(
            name=name or _default_name(record),
            estimator=spec.name,
            contract=record.cell.contract,
            root=shrunk.root,
            generator=shrunk.generator,
            seed=shrunk.seed,
            index=shrunk.index,
            estimator_kwargs=dict(spec.kwargs),
            message=record.shrunk_message,
            note=note,
        )

    def spec(self) -> EstimatorSpec:
        return EstimatorSpec(
            name=self.estimator,
            kwargs=tuple(sorted(self.estimator_kwargs.items())),
        )

    def case(self) -> Case:
        return retag(Case(
            root=self.root, generator=self.generator,
            seed=self.seed, index=self.index,
        ))


def _spec_of(record) -> EstimatorSpec:
    spec = getattr(record, "spec", None)
    if isinstance(spec, EstimatorSpec):
        return spec
    return EstimatorSpec(name=record.cell.estimator)


def _default_name(record) -> str:
    return (f"{record.cell.estimator}-{record.cell.contract}-"
            f"{record.shrunk.generator}-{record.shrunk.index}")


# ----------------------------------------------------------------------
# Expression <-> node table
# ----------------------------------------------------------------------

def _encode_expr(root: Expr) -> tuple[List[Dict[str, Any]], Dict[str, np.ndarray]]:
    """Flatten the DAG into a postorder node table plus leaf CSR arrays.

    Node references are table indices, so shared sub-expressions stay
    shared on decode (identity-based memoization in the estimators depends
    on it).
    """
    nodes: List[Dict[str, Any]] = []
    arrays: Dict[str, np.ndarray] = {}
    ids: Dict[int, int] = {}
    for node in root.postorder():
        entry: Dict[str, Any] = {"op": node.op.value}
        if node.name:
            entry["name"] = node.name
        if node.params:
            entry["params"] = dict(node.params)
        if node.op is Op.LEAF:
            key = f"leaf{len(ids)}"
            entry["leaf"] = key
            csr = as_csr(node.matrix)
            arrays[f"{key}_shape"] = np.asarray(csr.shape, dtype=np.int64)
            arrays[f"{key}_indptr"] = csr.indptr.astype(np.int64)
            arrays[f"{key}_indices"] = csr.indices.astype(np.int64)
            arrays[f"{key}_data"] = csr.data.astype(np.float64)
        else:
            entry["inputs"] = [ids[id(child)] for child in node.inputs]
        ids[id(node)] = len(nodes)
        nodes.append(entry)
    return nodes, arrays


def _decode_expr(nodes: List[Dict[str, Any]], arrays) -> Expr:
    built: List[Expr] = []
    for entry in nodes:
        op = Op(entry["op"])
        name = entry.get("name")
        params = entry.get("params") or {}
        if op is Op.LEAF:
            key = entry["leaf"]
            shape = tuple(int(d) for d in np.asarray(arrays[f"{key}_shape"]))
            matrix = sp.csr_array(
                (
                    np.asarray(arrays[f"{key}_data"], dtype=np.float64),
                    np.asarray(arrays[f"{key}_indices"], dtype=np.int64),
                    np.asarray(arrays[f"{key}_indptr"], dtype=np.int64),
                ),
                shape=shape,
            )
            built.append(Expr(op, matrix=matrix, name=name))
        else:
            inputs = tuple(built[i] for i in entry["inputs"])
            built.append(Expr(op, inputs, params=params, name=name))
    return built[-1]


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------

def save_reproducer(reproducer: Reproducer,
                    directory: str | Path = DEFAULT_CORPUS_DIR) -> Path:
    """Write ``<name>.json`` + ``<name>.npz`` under *directory*."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    nodes, arrays = _encode_expr(reproducer.root)
    document = {
        "version": _FORMAT_VERSION,
        "name": reproducer.name,
        "estimator": reproducer.estimator,
        "estimator_kwargs": reproducer.estimator_kwargs,
        "contract": reproducer.contract,
        "generator": reproducer.generator,
        "seed": reproducer.seed,
        "index": reproducer.index,
        "message": reproducer.message,
        "note": reproducer.note,
        "nodes": nodes,
    }
    json_path = directory / f"{reproducer.name}.json"
    json_path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    np.savez(directory / f"{reproducer.name}.npz", **arrays)
    return json_path


def load_reproducer(path: str | Path) -> Reproducer:
    """Read a reproducer from its ``.json`` path (the ``.npz`` sits beside)."""
    json_path = Path(path)
    if json_path.suffix != ".json":
        json_path = json_path.with_suffix(".json")
    document = json.loads(json_path.read_text())
    version = int(document.get("version", -1))
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported corpus format version {version} in {json_path} "
            f"(this build reads version {_FORMAT_VERSION})"
        )
    with np.load(json_path.with_suffix(".npz")) as arrays:
        root = _decode_expr(document["nodes"], arrays)
    return Reproducer(
        name=document["name"],
        estimator=document["estimator"],
        contract=document["contract"],
        root=root,
        generator=document.get("generator", "corpus"),
        seed=int(document.get("seed", 0)),
        index=int(document.get("index", 0)),
        estimator_kwargs=dict(document.get("estimator_kwargs", {})),
        message=document.get("message", ""),
        note=document.get("note", ""),
    )


def iter_corpus(
    directory: str | Path = DEFAULT_CORPUS_DIR,
) -> Iterator[Reproducer]:
    """Yield every reproducer under *directory*, in name order."""
    directory = Path(directory)
    if not directory.is_dir():
        return
    for json_path in sorted(directory.glob("*.json")):
        yield load_reproducer(json_path)


def replay_reproducer(reproducer: Reproducer) -> Optional[str]:
    """Re-run the recorded contract on the recorded case.

    Returns ``None`` when the contract holds (the bug stays fixed) and the
    violation message when it fires again. An estimator that no longer
    supports the recorded expression counts as a regression too — the
    reproducer documented working behavior.
    """
    contract = get_contract(reproducer.contract)
    spec = reproducer.spec()
    case = reproducer.case()
    try:
        if not contract.applies(spec, case):
            return (f"contract {contract.id} no longer applies to "
                    f"reproducer {reproducer.name}")
        return contract.check(spec, case)
    except UnsupportedOperationError as gap:
        return (f"estimator {spec.name} no longer supports reproducer "
                f"{reproducer.name}: {gap}")
