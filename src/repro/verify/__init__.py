"""Differential verification: metamorphic fuzzing of the estimator zoo.

The paper's central claims are *relational* — MNC is exact in the Theorem
3.1 cases, MetaWC upper-bounds the truth, the Theorem 3.2 bounds contain
it, the sampling estimators are a lower bound / unbiased — and this package
turns each claim into a machine-checked contract:

- :mod:`repro.verify.contracts` — the declarative contract registry. Every
  contract maps an invariant (with its paper theorem/equation) to a check
  against the :class:`~repro.estimators.exact.ExactOracle`; estimators opt
  in through :attr:`~repro.estimators.base.SparsityEstimator.contract_tags`.
- :mod:`repro.verify.generators` — seeded case samplers composing
  :mod:`repro.matrix.random` (power-law, permutation, selection, banded,
  one-hot, triangular, plus adversarial shapes: empty, 0xn, 1xn, all-dense,
  duplicate-structure pairs) into single-op and expression-DAG cases over
  every opcode.
- :mod:`repro.verify.engine` — the deterministic fuzz loop: N seeded cases
  per (estimator x contract x generator) cell, violation classification,
  and shrinking of failures (prune DAG nodes, materialize children, halve
  dimensions, drop rows/columns) to minimal reproducers.
- :mod:`repro.verify.corpus` — persistence of shrunk failures as npz+json
  reproducers under ``tests/corpus/``, replayed by the pytest suite so
  every fuzz find becomes a permanent regression test.

CLI: ``python -m repro verify [--cells ... --budget N --seed S
--corpus DIR]``; with ``--trace`` the per-cell outcomes surface as
``verify.*`` counters in ``python -m repro stats``. See ``docs/VERIFY.md``.
"""

from repro.verify.contracts import (
    Contract,
    EstimatorSpec,
    all_contracts,
    default_estimator_specs,
    get_contract,
)
from repro.verify.corpus import (
    Reproducer,
    iter_corpus,
    load_reproducer,
    replay_reproducer,
    save_reproducer,
)
from repro.verify.engine import (
    CellResult,
    FuzzEngine,
    ViolationRecord,
    VerifyReport,
    injected_fault_selftest,
)
from repro.verify.generators import (
    Case,
    all_generators,
    exact_structure,
    generate_case,
)

__all__ = [
    "Case",
    "CellResult",
    "Contract",
    "EstimatorSpec",
    "FuzzEngine",
    "Reproducer",
    "VerifyReport",
    "ViolationRecord",
    "all_contracts",
    "all_generators",
    "default_estimator_specs",
    "exact_structure",
    "generate_case",
    "get_contract",
    "injected_fault_selftest",
    "iter_corpus",
    "load_reproducer",
    "replay_reproducer",
    "save_reproducer",
]
