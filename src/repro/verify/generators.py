"""Seeded input-space samplers for the differential-testing engine.

Each generator is a deterministic function ``(rng, index) -> Case`` that
composes the structured generators of :mod:`repro.matrix.random` into an
expression over concrete leaf matrices. Generators cycle through opcode and
structure families by *index* so a budget of N cases covers every opcode
several times, while the rng (derived from the engine seed) varies shapes
and structure within each family.

A :class:`Case` carries the expression root, provenance (generator name,
base seed, index), and structural tags the contracts use for applicability
gating (root opcode, ``single_op``, ``zero_dim``, ``empty``, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, Optional

import numpy as np
import scipy.sparse as sp

from repro.estimators.exact import ExactOracle
from repro.ir import nodes as ir
from repro.ir.nodes import Expr
from repro.matrix import random as mrand
from repro.matrix.conversion import as_csr
from repro.opcodes import Op

#: Opcodes a case root can take (everything but LEAF).
CASE_OPS: tuple[Op, ...] = tuple(op for op in Op if op is not Op.LEAF)

_UNARY_SAME_SHAPE = (Op.NEQ_ZERO, Op.EQ_ZERO, Op.TRANSPOSE,
                     Op.ROW_SUMS, Op.COL_SUMS)


@dataclass
class Case:
    """One fuzz case: an expression DAG over concrete leaves."""

    root: Expr
    generator: str
    seed: int
    index: int
    tags: frozenset = frozenset()
    _truth: Optional[float] = field(default=None, repr=False, compare=False)

    @property
    def cells(self) -> int:
        m, n = self.root.shape
        return m * n

    def truth_nnz(self) -> float:
        """Exact non-zero count of the root (materialized once, cached)."""
        if self._truth is None:
            self._truth = float(exact_structure(self.root).nnz)
        return self._truth

    def leaf_cells(self) -> int:
        """Total cells across distinct leaves (the shrinking objective)."""
        return sum(l.shape[0] * l.shape[1] for l in self.root.leaves())

    def describe(self) -> str:
        leaves = ", ".join(f"{l.shape[0]}x{l.shape[1]}" for l in self.root.leaves())
        return (f"{self.root.op.value} -> {self.root.shape[0]}x"
                f"{self.root.shape[1]} (leaves {leaves}) "
                f"[{self.generator}#{self.index} seed={self.seed}]")


def exact_structure(root: Expr) -> sp.csr_array:
    """Materialize the exact 0/1 structure of *root* via the oracle."""
    oracle = ExactOracle()
    synopses: Dict[int, object] = {}
    for node in root.postorder():
        if node.op is Op.LEAF:
            synopses[id(node)] = oracle.build(node.matrix)
        else:
            children = [synopses[id(child)] for child in node.inputs]
            synopses[id(node)] = oracle.propagate(node.op, children, **node.params)
    return synopses[id(root)].matrix


def case_tags(root: Expr) -> frozenset:
    """Structural tags for *root* (recomputed after shrinking)."""
    tags = {root.op.value}
    if root.inputs and all(c.op is Op.LEAF for c in root.inputs):
        tags.add("single_op")
    leaves = root.leaves()
    if any(0 in l.shape for l in leaves):
        tags.add("zero_dim")
    if all(l.matrix.nnz == 0 for l in leaves):
        tags.add("empty")
    if leaves and all(
        l.matrix.nnz == l.shape[0] * l.shape[1] for l in leaves
    ):
        tags.add("dense")
    return frozenset(tags)


def retag(case: Case) -> Case:
    """Return *case* with tags recomputed from its (possibly new) root."""
    return replace(case, tags=case_tags(case.root), _truth=None)


# ----------------------------------------------------------------------
# Leaf factories
# ----------------------------------------------------------------------

def _dim(rng: np.random.Generator, low: int = 2, high: int = 24) -> int:
    return int(rng.integers(low, high + 1))


def _random_leaf(rng: np.random.Generator, m: int, n: int) -> sp.csr_array:
    sparsity = float(rng.uniform(0.02, 0.5))
    return mrand.random_sparse(m, n, sparsity, seed=rng)


def _structured_leaf(rng: np.random.Generator, family: str,
                     m: int, n: int) -> sp.csr_array:
    """One leaf from the named structure family, reshaped to roughly m x n."""
    if family == "power_law":
        total = max(1, int(0.15 * m * n))
        return mrand.power_law_columns(m, n, total, alpha=1.1, seed=rng)
    if family == "permutation":
        return mrand.permutation_matrix(max(m, 1), seed=rng)
    if family == "selection":
        k = max(1, m // 2)
        rows = rng.choice(max(n, 1), size=min(k, max(n, 1)), replace=False)
        return mrand.selection_matrix(rows, max(n, 1))
    if family == "banded":
        size = max(m, 2)
        return mrand.banded_matrix(size, int(rng.integers(1, max(2, size // 4))))
    if family == "one_hot":
        return mrand.one_hot_block(m, max(n, 1), seed=rng)
    if family == "triangular":
        return mrand.triangular_matrix(
            max(m, 2), sparsity=float(rng.uniform(0.3, 1.0)),
            upper=bool(rng.integers(0, 2)), seed=rng,
        )
    if family == "block_diagonal":
        sizes = [int(s) for s in rng.integers(1, 6, size=max(2, m // 4))]
        return mrand.block_diagonal_matrix(sizes, sparsity=0.7, seed=rng)
    if family == "diagonal":
        return mrand.diagonal_matrix(max(m, 1), seed=rng)
    if family == "symmetric":
        return mrand.symmetric_matrix(max(m, 2), 0.2, seed=rng)
    raise ValueError(f"unknown structure family {family!r}")


STRUCTURE_FAMILIES = (
    "power_law", "permutation", "selection", "banded", "one_hot",
    "triangular", "block_diagonal", "diagonal", "symmetric",
)


# ----------------------------------------------------------------------
# Case construction helpers
# ----------------------------------------------------------------------

def _single_op_root(op: Op, a: sp.csr_array, rng: np.random.Generator,
                    b: Optional[sp.csr_array] = None) -> Expr:
    """Build a single-op expression applying *op* to leaf *a* (and *b*)."""
    m, n = a.shape
    la = ir.leaf(a, name="A")
    if op is Op.MATMUL:
        right = b if b is not None and b.shape[0] == n else _random_leaf(
            rng, n, _dim(rng)
        )
        return la @ ir.leaf(right, name="B")
    if op in (Op.EWISE_ADD, Op.EWISE_MULT):
        right = b if b is not None and b.shape == a.shape else _random_leaf(rng, m, n)
        rb = ir.leaf(right, name="B")
        return la + rb if op is Op.EWISE_ADD else la * rb
    if op is Op.TRANSPOSE:
        return la.T
    if op is Op.RESHAPE:
        return la.reshape(n, m)
    if op is Op.DIAG_V2M:
        vector = a[:, :1] if n >= 1 else as_csr(sp.csr_array((m, 1)))
        return ir.diag(ir.leaf(as_csr(vector), name="v"))
    if op is Op.DIAG_M2V:
        size = min(m, n)
        square = as_csr(a[:size, :size]) if size else as_csr(sp.csr_array((0, 0)))
        return Expr(Op.DIAG_M2V, (ir.leaf(square, name="A"),))
    if op is Op.RBIND:
        right = b if b is not None and b.shape[1] == n else _random_leaf(
            rng, _dim(rng), n
        )
        return ir.rbind(la, ir.leaf(right, name="B"))
    if op is Op.CBIND:
        right = b if b is not None and b.shape[0] == m else _random_leaf(
            rng, m, _dim(rng)
        )
        return ir.cbind(la, ir.leaf(right, name="B"))
    if op is Op.NEQ_ZERO:
        return ir.neq_zero(la)
    if op is Op.EQ_ZERO:
        return ir.eq_zero(la)
    if op is Op.ROW_SUMS:
        return ir.row_sums(la)
    if op is Op.COL_SUMS:
        return ir.col_sums(la)
    raise ValueError(f"cannot build case for {op!r}")  # pragma: no cover


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------

def _gen_uniform(rng: np.random.Generator, index: int) -> Expr:
    """Uniform random leaves; cycles through every opcode by index."""
    op = CASE_OPS[index % len(CASE_OPS)]
    a = _random_leaf(rng, _dim(rng), _dim(rng))
    return _single_op_root(op, a, rng)


def _gen_structured(rng: np.random.Generator, index: int) -> Expr:
    """Structured leaves (the paper's B1-B4 shapes) under cycling opcodes."""
    family = STRUCTURE_FAMILIES[index % len(STRUCTURE_FAMILIES)]
    op = CASE_OPS[(index // len(STRUCTURE_FAMILIES)) % len(CASE_OPS)]
    a = _structured_leaf(rng, family, _dim(rng), _dim(rng))
    b: Optional[sp.csr_array] = None
    if op is Op.MATMUL and rng.random() < 0.5:
        other = STRUCTURE_FAMILIES[int(rng.integers(0, len(STRUCTURE_FAMILIES)))]
        b = _structured_leaf(rng, other, a.shape[1], _dim(rng))
        if b.shape[0] != a.shape[1]:
            b = None
    return _single_op_root(op, a, rng, b=b)


_ADVERSARIAL_KINDS = (
    "all_zero", "zero_rows", "zero_cols", "zero_both", "one_by_n", "n_by_one",
    "all_dense", "single_cell", "outer_product", "self_gram", "self_outer",
    "self_ewise", "twin_leaves",
)


def _gen_adversarial(rng: np.random.Generator, index: int) -> Expr:
    """Degenerate and duplicate-structure shapes estimators tend to miss."""
    kind = _ADVERSARIAL_KINDS[index % len(_ADVERSARIAL_KINDS)]
    n = _dim(rng, 1, 12)
    if kind == "all_zero":
        a = as_csr(sp.csr_array((n, _dim(rng, 1, 12))))
        return _single_op_root(CASE_OPS[index % len(CASE_OPS)], a, rng)
    if kind == "zero_rows":
        a = as_csr(sp.csr_array((0, n)))
        op = (Op.MATMUL, Op.RBIND, Op.TRANSPOSE, Op.ROW_SUMS)[index % 4]
        return _single_op_root(op, a, rng)
    if kind == "zero_cols":
        a = as_csr(sp.csr_array((n, 0)))
        op = (Op.CBIND, Op.TRANSPOSE, Op.COL_SUMS, Op.EQ_ZERO)[index % 4]
        return _single_op_root(op, a, rng)
    if kind == "zero_both":
        a = as_csr(sp.csr_array((0, 0)))
        op = (Op.TRANSPOSE, Op.DIAG_M2V, Op.EWISE_ADD, Op.NEQ_ZERO)[index % 4]
        return _single_op_root(op, a, rng)
    if kind == "one_by_n":
        a = mrand.random_sparse(1, n, float(rng.uniform(0.2, 1.0)), seed=rng)
        return _single_op_root(CASE_OPS[index % len(CASE_OPS)], a, rng)
    if kind == "n_by_one":
        a = mrand.random_sparse(n, 1, float(rng.uniform(0.2, 1.0)), seed=rng)
        op = (Op.DIAG_V2M, Op.MATMUL, Op.TRANSPOSE, Op.EWISE_MULT)[index % 4]
        return _single_op_root(op, a, rng)
    if kind == "all_dense":
        a = mrand.random_sparse(n, _dim(rng, 1, 10), 1.0, seed=rng)
        return _single_op_root(CASE_OPS[index % len(CASE_OPS)], a, rng)
    if kind == "single_cell":
        a = sp.csr_array(
            (np.ones(1), ([int(rng.integers(0, n))], [0])), shape=(n, 1)
        )
        op = (Op.MATMUL, Op.DIAG_V2M, Op.ROW_SUMS, Op.TRANSPOSE)[index % 4]
        return _single_op_root(op, as_csr(a), rng)
    if kind == "outer_product":
        col, row = mrand.outer_product_pair(max(n, 2), dense_index=0)
        if index % 2:
            return ir.leaf(col, name="C") @ ir.leaf(row, name="R")
        return ir.leaf(row, name="R") @ ir.leaf(col, name="C")
    if kind == "self_gram":
        a = ir.leaf(_random_leaf(rng, n, _dim(rng, 1, 12)), name="A")
        return a.T @ a  # shared leaf: gram matrix A^T A
    if kind == "self_outer":
        a = ir.leaf(_random_leaf(rng, n, _dim(rng, 1, 12)), name="A")
        return a @ a.T
    if kind == "self_ewise":
        a = ir.leaf(_random_leaf(rng, n, n), name="A")
        return a * a if index % 2 else a + a
    # twin_leaves: two distinct leaves with identical structure.
    matrix = _random_leaf(rng, n, n)
    left = ir.leaf(matrix.copy(), name="A1")
    right = ir.leaf(matrix.copy(), name="A2")
    return left * right if index % 2 else left @ right


def _gen_chain(rng: np.random.Generator, index: int) -> Expr:
    """Matrix-product chains of length 2-4 over structured pieces.

    Every third case is the paper's permutation . selection flavor, whose
    operands all satisfy ``max(hr) <= 1`` so MNC must stay exact end to end.
    """
    length = 2 + index % 3
    if index % 3 == 0:
        n = _dim(rng, 3, 16)
        k = max(1, n // 2)
        rows = rng.choice(n, size=k, replace=False)
        expr = ir.leaf(mrand.selection_matrix(rows, n), name="S")
        for _ in range(length - 1):
            expr = expr @ ir.leaf(mrand.permutation_matrix(n, seed=rng), name="P")
        return expr
    dims = [_dim(rng, 2, 12) for _ in range(length + 1)]
    expr = ir.leaf(_random_leaf(rng, dims[0], dims[1]), name="M0")
    for i in range(1, length):
        expr = expr @ ir.leaf(_random_leaf(rng, dims[i], dims[i + 1]), name=f"M{i}")
    return expr


def _gen_dag(rng: np.random.Generator, index: int) -> Expr:
    """Random expression DAGs with shared sub-expressions over mixed ops."""
    n = _dim(rng, 3, 12)
    a = ir.leaf(_random_leaf(rng, n, n), name="A")
    b = ir.leaf(_random_leaf(rng, n, n), name="B")
    shared = a @ b
    variants = (
        lambda: (shared + shared.T) * ir.neq_zero(a),
        lambda: ir.rbind(shared, a) @ _leafed(rng, n, _dim(rng, 2, 8)),
        lambda: ir.cbind(shared, b) * ir.cbind(a, b),
        lambda: ir.col_sums(shared).T @ ir.row_sums(shared).T,
        lambda: ir.eq_zero(shared) * (a + b),
        lambda: (shared @ shared) + shared,
        lambda: ir.diag(ir.row_sums(ir.neq_zero(shared))) @ a,
        lambda: shared.reshape(n * n, 1).T,
    )
    return variants[index % len(variants)]()


def _leafed(rng: np.random.Generator, m: int, n: int) -> Expr:
    return ir.leaf(_random_leaf(rng, m, n), name="R")


GENERATORS: Dict[str, Callable[[np.random.Generator, int], Expr]] = {
    "uniform": _gen_uniform,
    "structured": _gen_structured,
    "adversarial": _gen_adversarial,
    "chain": _gen_chain,
    "dag": _gen_dag,
}


def all_generators() -> list[str]:
    """Names of all registered case generators."""
    return sorted(GENERATORS)


def generate_case(generator: str, seed: int, index: int) -> Case:
    """Deterministically build case *index* of *generator*'s seeded stream.

    The rng is derived from ``(seed, generator, index)`` through a
    ``SeedSequence``, so any case is reproducible from the triple alone —
    the provenance recorded in corpus reproducers.
    """
    try:
        factory = GENERATORS[generator]
    except KeyError:
        raise ValueError(
            f"unknown generator {generator!r}; available: {all_generators()}"
        ) from None
    gen_key = int.from_bytes(generator.encode()[:4].ljust(4, b"\0"), "big")
    rng = np.random.default_rng([seed & 0x7FFFFFFF, gen_key, index])
    root = factory(rng, index)
    return Case(
        root=root, generator=generator, seed=seed, index=index,
        tags=case_tags(root),
    )


def generate_cases(generator: str, seed: int, budget: int) -> Iterable[Case]:
    """The first *budget* cases of the generator's seeded stream."""
    for index in range(budget):
        yield generate_case(generator, seed, index)
