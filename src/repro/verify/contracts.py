"""Declarative estimator contracts checked against the exact oracle.

Each :class:`Contract` binds one relational guarantee from the paper (or a
basic sanity requirement) to an executable check. Contracts gate their own
applicability on the estimator's declared
:attr:`~repro.estimators.base.SparsityEstimator.contract_tags` and on the
case's structural tags, so the engine can run the full
(estimator x contract x generator) matrix and skip meaningless cells.

Contract table (see ``docs/VERIFY.md`` for the paper mapping):

=======================  =====================  ==============================
Contract id              Applies to (tag)       Invariant
=======================  =====================  ==============================
``bounds``               everyone               ``0 <= estimate <= cells``
``determinism``          everyone               fresh instance + same seed
                                                => identical estimate
``theorem31_exact``      ``theorem31``          exact when ``max(hr_A) <= 1``
                                                or ``max(hc_B) <= 1``
``wc_upper_bound``       ``upper_bound``        estimate >= truth
``exact_oracle``         ``exact``              estimate == truth
``sampling_lower_bound`` ``lower_bound``        estimate <= truth (products)
``unbiased_mean``        ``unbiased``           trial mean near truth
``dm_block_consistency`` ``block_consistent``   leaf block counts match matrix
``theorem32_containment`` ``theorem32``         lower <= truth <= upper
``interval_containment`` ``theorem32``          interval ordered, contains the
                                                point; exact => equals truth
``propagation_consistency`` ``sketch``          propagated sketch == sketch of
                                                materialized result
``sketch_roundtrip``     ``sketch``             serialize/deserialize is
                                                bit-identical
``incremental_equals_rebuild`` ``sketch``       sketch patched by seeded
                                                deltas == from-scratch rebuild
``backends_agree``       everyone               every kernel backend returns
                                                the byte-identical estimate
=======================  =====================  ==============================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.intervals import estimate_product_interval
from repro.core.estimate import (
    product_nnz_lower_bound,
    product_nnz_upper_bound,
)
from repro.core.serialize import sketch_from_arrays, sketch_to_arrays
from repro.core.sketch import MNCSketch
from repro.errors import UnsupportedOperationError
from repro.estimators.base import SparsityEstimator, make_estimator
from repro.ir.estimate import estimate_root_nnz
from repro.observability.metrics import record_residual
from repro.observability.trace import timed_span
from repro.opcodes import Op
from repro.verify.generators import Case, exact_structure

#: Absolute slack added to every float comparison.
ABS_TOL = 1e-6


@dataclass(frozen=True)
class EstimatorSpec:
    """Recreatable description of an estimator under test.

    Contracts never hold on to estimator *instances*: several checks (the
    determinism and repeated-trial ones) need fresh, identically-seeded
    instances, and corpus reproducers need a JSON-serializable identity.
    """

    name: str
    kwargs: Tuple[Tuple[str, Any], ...] = ()
    factory: Optional[Callable[[], SparsityEstimator]] = None

    def make(self, seed: Optional[int] = None) -> SparsityEstimator:
        """Instantiate the estimator (optionally overriding its seed)."""
        if self.factory is not None:
            return self.factory()
        kwargs = dict(self.kwargs)
        if seed is not None:
            kwargs["seed"] = seed
        return make_estimator(self.name, **kwargs)

    @property
    def tags(self) -> frozenset:
        return self.make().contract_tags

    def __str__(self) -> str:
        return self.name


def default_estimator_specs(
    names: Optional[Sequence[str]] = None,
) -> list[EstimatorSpec]:
    """Specs for the given registry *names* (default: every estimator)."""
    from repro.estimators import available_estimators

    return [EstimatorSpec(name) for name in (names or available_estimators())]


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------

def case_supported(estimator: SparsityEstimator, case: Case) -> bool:
    """Whether *estimator* can evaluate the whole case DAG.

    Interior nodes need synopsis propagation; the root only needs direct
    estimation (mirroring :func:`repro.ir.estimate.estimate_root_nnz`).
    """
    for node in case.root.postorder():
        if node.op is Op.LEAF:
            continue
        if node is case.root:
            if not estimator.supports(node.op):
                return False
        elif not estimator.supports_propagation(node.op):
            return False
    return True


def estimate_case(estimator: SparsityEstimator, case: Case) -> float:
    """The estimator's non-zero estimate for the case root."""
    return float(estimate_root_nnz(case.root, estimator))


def _measured_estimate(spec: EstimatorSpec, case: Case) -> Tuple[float, float]:
    """``(truth, estimate)`` for a relational check, with the pair logged
    to the accuracy residual ledger.

    Every relational contract computes both values anyway, so fuzz runs
    double as accuracy telemetry: each checked cell contributes one
    ``source="verify"`` residual tagged with its generator coordinate and
    root opcode.
    """
    truth = case.truth_nnz()
    with timed_span("verify.estimate", estimator=spec.name) as span:
        estimate = estimate_case(spec.make(), case)
    record_residual(
        source="verify",
        estimator=spec.name,
        workload=f"{case.generator}#{case.index}",
        op=case.root.op.value,
        estimate=estimate,
        truth=truth,
        seconds=span.seconds or 0.0,
    )
    return truth, estimate


def _leaf_sketches(case: Case, with_extensions: bool = True) -> list[MNCSketch]:
    return [
        MNCSketch.from_matrix(node.matrix, with_extensions=with_extensions)
        for node in case.root.inputs
    ]


def _tol(truth: float) -> float:
    return ABS_TOL + 1e-9 * abs(truth)


# ----------------------------------------------------------------------
# Contract registry
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Contract:
    """One verifiable estimator invariant.

    Attributes:
        id: stable slug used in cell names and corpus entries.
        description: one-line human summary.
        paper_ref: theorem/equation/section the invariant comes from.
        applies: ``(spec, case) -> bool`` applicability gate. Cells where
            this is false count as *skipped*, never as violations.
        check: ``(spec, case) -> Optional[str]`` — ``None`` when the
            invariant holds, a violation message otherwise.
    """

    id: str
    description: str
    paper_ref: str
    applies: Callable[[EstimatorSpec, Case], bool]
    check: Callable[[EstimatorSpec, Case], Optional[str]]


CONTRACTS: Dict[str, Contract] = {}


def register_contract(contract: Contract) -> Contract:
    if contract.id in CONTRACTS:  # pragma: no cover - registration guard
        raise ValueError(f"duplicate contract id {contract.id!r}")
    CONTRACTS[contract.id] = contract
    return contract


def all_contracts() -> list[Contract]:
    """Every registered contract, sorted by id."""
    return [CONTRACTS[key] for key in sorted(CONTRACTS)]


def get_contract(contract_id: str) -> Contract:
    """Look up a contract by id."""
    try:
        return CONTRACTS[contract_id]
    except KeyError:
        raise ValueError(
            f"unknown contract {contract_id!r}; available: {sorted(CONTRACTS)}"
        ) from None


# ----------------------------------------------------------------------
# Universal contracts
# ----------------------------------------------------------------------

def _applies_supported(spec: EstimatorSpec, case: Case) -> bool:
    return case_supported(spec.make(), case)


def _check_bounds(spec: EstimatorSpec, case: Case) -> Optional[str]:
    estimate = estimate_case(spec.make(), case)
    if not np.isfinite(estimate):
        return f"estimate is not finite: {estimate}"
    if estimate < -ABS_TOL:
        return f"negative estimate {estimate:.6g}"
    ceiling = case.cells * (1.0 + 1e-9) + ABS_TOL
    if estimate > ceiling:
        return (f"estimate {estimate:.6g} exceeds the {case.cells}-cell "
                f"output")
    return None


register_contract(Contract(
    id="bounds",
    description="estimates are finite and inside [0, m*n]",
    paper_ref="Section 1 (sparsity is a fraction of cells)",
    applies=_applies_supported,
    check=_check_bounds,
))


def _applies_determinism(spec: EstimatorSpec, case: Case) -> bool:
    # Two full evaluations per case; sub-sample the stream to keep the
    # default budget fast while still covering every opcode over time.
    return case.index % 3 == 0 and case_supported(spec.make(), case)


def _check_determinism(spec: EstimatorSpec, case: Case) -> Optional[str]:
    first = estimate_case(spec.make(), case)
    second = estimate_case(spec.make(), case)
    if first != second and not (np.isnan(first) and np.isnan(second)):
        return (f"fresh identically-seeded instances disagree: "
                f"{first!r} vs {second!r}")
    return None


register_contract(Contract(
    id="determinism",
    description="fresh instances with the same seed estimate identically",
    paper_ref="implementation requirement (reproducible propagation rounding)",
    applies=_applies_determinism,
    check=_check_determinism,
))


# ----------------------------------------------------------------------
# Relational contracts against the oracle
# ----------------------------------------------------------------------

def _applies_theorem31(spec: EstimatorSpec, case: Case) -> bool:
    if "theorem31" not in spec.tags:
        return False
    if "matmul" not in case.tags or "single_op" not in case.tags:
        return False
    a, b = (node.matrix for node in case.root.inputs)
    h_a = MNCSketch.from_matrix(a, with_extensions=False)
    h_b = MNCSketch.from_matrix(b, with_extensions=False)
    return h_a.max_hr <= 1 or h_b.max_hc <= 1


def _check_theorem31(spec: EstimatorSpec, case: Case) -> Optional[str]:
    truth, estimate = _measured_estimate(spec, case)
    if abs(estimate - truth) > _tol(truth):
        return (f"Theorem 3.1 case (max(hr)<=1 or max(hc)<=1) must be exact: "
                f"estimate {estimate:.6g} != truth {truth:.6g}")
    return None


register_contract(Contract(
    id="theorem31_exact",
    description="MNC products are exact when max(hr_A)<=1 or max(hc_B)<=1",
    paper_ref="Theorem 3.1",
    applies=_applies_theorem31,
    check=_check_theorem31,
))


def _applies_single_op_tag(tag: str) -> Callable[[EstimatorSpec, Case], bool]:
    def gate(spec: EstimatorSpec, case: Case) -> bool:
        return (tag in spec.tags and "single_op" in case.tags
                and case_supported(spec.make(), case))
    return gate


def _check_upper_bound(spec: EstimatorSpec, case: Case) -> Optional[str]:
    truth, estimate = _measured_estimate(spec, case)
    if estimate < truth - _tol(truth):
        return (f"worst-case estimate {estimate:.6g} under-estimates "
                f"truth {truth:.6g}")
    return None


register_contract(Contract(
    id="wc_upper_bound",
    description="worst-case metadata estimates never fall below the truth",
    paper_ref="Eq 2 (E_wc upper bound)",
    applies=_applies_single_op_tag("upper_bound"),
    check=_check_upper_bound,
))


def _applies_exact(spec: EstimatorSpec, case: Case) -> bool:
    return "exact" in spec.tags and case_supported(spec.make(), case)


def _check_exact(spec: EstimatorSpec, case: Case) -> Optional[str]:
    truth, estimate = _measured_estimate(spec, case)
    if abs(estimate - truth) > _tol(truth):
        return (f"exact estimator drifted: estimate {estimate:.6g} != "
                f"truth {truth:.6g}")
    return None


register_contract(Contract(
    id="exact_oracle",
    description="estimators tagged exact agree with the materialized truth",
    paper_ref="Eq 3 (boolean matrix product is exact)",
    applies=_applies_exact,
    check=_check_exact,
))


def _applies_lower_bound(spec: EstimatorSpec, case: Case) -> bool:
    return ("lower_bound" in spec.tags and "matmul" in case.tags
            and "single_op" in case.tags)


def _check_lower_bound(spec: EstimatorSpec, case: Case) -> Optional[str]:
    truth, estimate = _measured_estimate(spec, case)
    if estimate > truth + _tol(truth):
        return (f"biased sampling must lower-bound products: "
                f"estimate {estimate:.6g} > truth {truth:.6g}")
    return None


register_contract(Contract(
    id="sampling_lower_bound",
    description="the biased sampling estimator lower-bounds product nnz",
    paper_ref="Eq 5 (largest sampled outer product)",
    applies=_applies_lower_bound,
    check=_check_lower_bound,
))


#: Trials for the in-engine mean test (the rigorous >=200-trial version
#: lives in tests/test_sampling_unbiased_stats.py under the `slow` marker).
MEAN_TRIALS = 20


def _applies_unbiased(spec: EstimatorSpec, case: Case) -> bool:
    if "unbiased" not in spec.tags or spec.factory is not None:
        return False
    if "matmul" not in case.tags or "single_op" not in case.tags:
        return False
    if "zero_dim" in case.tags or case.index % 10 != 0:
        return False
    # Eq 16 is unbiased under its sampling model: outer products drawn from
    # an empirical distribution, combined with the *independence*-based
    # probabilistic-union rule. The adversarial generator deliberately
    # breaks that model (duplicate/correlated operand structure), where no
    # fixed confidence band is meaningful — see docs/VERIFY.md.
    if case.generator == "adversarial":
        return False
    # The mean test needs enough slices for the empirical distribution to
    # be meaningful; tiny common dimensions make single-draw variance huge.
    return case.root.inputs[0].shape[1] >= 8


def _check_unbiased(spec: EstimatorSpec, case: Case) -> Optional[str]:
    truth = case.truth_nnz()
    trials = np.array([
        estimate_case(spec.make(seed=1_000_003 * case.index + t), case)
        for t in range(MEAN_TRIALS)
    ])
    mean = float(trials.mean())
    stderr = float(trials.std(ddof=1) / np.sqrt(MEAN_TRIALS)) if MEAN_TRIALS > 1 else 0.0
    # Smoke-level band: 6 standard errors plus model slack. This catches a
    # grossly biased implementation, not subtle model error (the paper's
    # estimator is unbiased under its sampling model, not universally).
    band = max(6.0 * stderr, 0.35 * truth, 3.0)
    if abs(mean - truth) > band:
        return (f"trial mean {mean:.6g} of {MEAN_TRIALS} seeds strays from "
                f"truth {truth:.6g} by more than {band:.6g}")
    return None


register_contract(Contract(
    id="unbiased_mean",
    description="unbiased sampling trial means track the true product nnz",
    paper_ref="Appendix A, Eq 16",
    applies=_applies_unbiased,
    check=_check_unbiased,
))


def _applies_block_consistency(spec: EstimatorSpec, case: Case) -> bool:
    return "block_consistent" in spec.tags


def _check_block_consistency(spec: EstimatorSpec, case: Case) -> Optional[str]:
    estimator = spec.make()
    for node in case.root.leaves():
        synopsis = estimator.build(node.matrix)
        density = synopsis.density
        if density.size and (density.min() < -ABS_TOL
                             or density.max() > 1.0 + ABS_TOL):
            return (f"block densities outside [0, 1] for leaf "
                    f"{node.shape}: [{density.min()}, {density.max()}]")
        total = float(synopsis.block_counts().sum())
        nnz = float(node.matrix.nnz)
        if abs(total - nnz) > _tol(nnz):
            return (f"leaf {node.shape}: block counts sum to {total:.6g} "
                    f"but the matrix holds {nnz:.6g} non-zeros")
        block = synopsis.block
        csr = node.matrix
        grid = synopsis.block_counts()
        for bi in range(grid.shape[0]):
            for bj in range(grid.shape[1]):
                piece = csr[bi * block:(bi + 1) * block,
                            bj * block:(bj + 1) * block]
                if abs(float(grid[bi, bj]) - piece.nnz) > ABS_TOL:
                    return (f"leaf {node.shape} block ({bi},{bj}): synopsis "
                            f"count {grid[bi, bj]:.6g} != actual {piece.nnz}")
    return None


register_contract(Contract(
    id="dm_block_consistency",
    description="density-map leaf synopses reproduce per-block counts",
    paper_ref="Eq 4 (block density map)",
    applies=_applies_block_consistency,
    check=_check_block_consistency,
))


def _applies_matmul_sketch(tag: str) -> Callable[[EstimatorSpec, Case], bool]:
    def gate(spec: EstimatorSpec, case: Case) -> bool:
        return (tag in spec.tags and "matmul" in case.tags
                and "single_op" in case.tags)
    return gate


def _check_theorem32(spec: EstimatorSpec, case: Case) -> Optional[str]:
    truth = case.truth_nnz()
    h_a, h_b = _leaf_sketches(case)
    lower = float(product_nnz_lower_bound(h_a, h_b))
    upper = float(product_nnz_upper_bound(h_a, h_b))
    if lower > truth + _tol(truth):
        return f"lower bound {lower:.6g} exceeds truth {truth:.6g}"
    if upper < truth - _tol(truth):
        return f"upper bound {upper:.6g} falls below truth {truth:.6g}"
    return None


register_contract(Contract(
    id="theorem32_containment",
    description="the sketch product bounds contain the true nnz",
    paper_ref="Theorem 3.2",
    applies=_applies_matmul_sketch("theorem32"),
    check=_check_theorem32,
))


def _check_interval(spec: EstimatorSpec, case: Case) -> Optional[str]:
    truth = case.truth_nnz()
    h_a, h_b = _leaf_sketches(case)
    interval = estimate_product_interval(h_a, h_b)
    tol = _tol(max(truth, interval.upper))
    if not (-tol <= interval.lower <= interval.upper + tol):
        return (f"interval is not ordered: [{interval.lower:.6g}, "
                f"{interval.upper:.6g}]")
    if interval.upper > case.cells * (1.0 + 1e-9) + ABS_TOL:
        return (f"interval upper {interval.upper:.6g} exceeds the "
                f"{case.cells}-cell output")
    if not (interval.lower - tol <= interval.estimate <= interval.upper + tol):
        return (f"interval [{interval.lower:.6g}, {interval.upper:.6g}] "
                f"does not contain its own point {interval.estimate:.6g}")
    if interval.exact:
        if interval.width > tol:
            return f"exact interval has width {interval.width:.6g}"
        if abs(interval.estimate - truth) > _tol(truth):
            return (f"exact-flagged interval at {interval.estimate:.6g} "
                    f"misses truth {truth:.6g}")
    return None


register_contract(Contract(
    id="interval_containment",
    description="product confidence intervals are ordered, bounded, and "
                "collapse onto the truth in exact cases",
    paper_ref="core.intervals (paper future work #2)",
    applies=_applies_matmul_sketch("theorem32"),
    check=_check_interval,
))


#: Ops whose MNC propagation rules are exact sketch transformations.
DETERMINISTIC_PROPAGATION_OPS = frozenset({
    Op.TRANSPOSE, Op.RBIND, Op.CBIND, Op.NEQ_ZERO, Op.EQ_ZERO,
    Op.ROW_SUMS, Op.COL_SUMS, Op.DIAG_V2M,
})


def _applies_propagation(spec: EstimatorSpec, case: Case) -> bool:
    return ("sketch" in spec.tags and "single_op" in case.tags
            and case.root.op in DETERMINISTIC_PROPAGATION_OPS)


def _check_propagation(spec: EstimatorSpec, case: Case) -> Optional[str]:
    estimator = spec.make()
    children = [estimator.build(node.matrix) for node in case.root.inputs]
    propagated = estimator.propagate(
        case.root.op, children, **case.root.params
    ).sketch
    scratch = MNCSketch.from_matrix(exact_structure(case.root))
    if propagated.shape != scratch.shape:
        return (f"propagated shape {propagated.shape} != materialized "
                f"shape {scratch.shape}")
    if not np.array_equal(propagated.hr, scratch.hr):
        return (f"{case.root.op.value}: propagated hr {propagated.hr.tolist()} "
                f"!= from-scratch hr {scratch.hr.tolist()}")
    if not np.array_equal(propagated.hc, scratch.hc):
        return (f"{case.root.op.value}: propagated hc {propagated.hc.tolist()} "
                f"!= from-scratch hc {scratch.hc.tolist()}")
    return None


register_contract(Contract(
    id="propagation_consistency",
    description="deterministic sketch propagation matches from-scratch "
                "construction on the materialized result",
    paper_ref="Eq 14 (exact reorganizations)",
    applies=_applies_propagation,
    check=_check_propagation,
))


def _applies_roundtrip(spec: EstimatorSpec, case: Case) -> bool:
    return "sketch" in spec.tags and case.index % 5 == 0


def _check_roundtrip(spec: EstimatorSpec, case: Case) -> Optional[str]:
    for node in case.root.leaves():
        original = MNCSketch.from_matrix(node.matrix)
        restored = sketch_from_arrays(sketch_to_arrays(original))
        for field_name in ("hr", "hc", "her", "hec"):
            left = getattr(original, field_name)
            right = getattr(restored, field_name)
            if (left is None) != (right is None):
                return f"{field_name} presence changed across round-trip"
            if left is not None and not np.array_equal(left, right):
                return f"{field_name} not bit-identical across round-trip"
        if (original.shape != restored.shape
                or original.fully_diagonal != restored.fully_diagonal
                or original.exact != restored.exact):
            return "sketch metadata changed across round-trip"
    return None


register_contract(Contract(
    id="sketch_roundtrip",
    description="sketch serialization round-trips bit-identically",
    paper_ref="core.serialize (distributed sketch shipping)",
    applies=_applies_roundtrip,
    check=_check_roundtrip,
))


#: Seeded deltas applied per leaf in the incremental contract.
INCREMENTAL_STEPS = 4

#: Stream key mixed into the delta rng so the update sequence is a pure
#: function of (case.seed, case.index, leaf position) — reproducible from
#: a corpus entry that records only those coordinates.
_INCREMENTAL_STREAM = 0x696E6372  # "incr"


def _applies_incremental(spec: EstimatorSpec, case: Case) -> bool:
    return "sketch" in spec.tags


def _sketch_mismatch(patched: MNCSketch, rebuilt: MNCSketch) -> Optional[str]:
    if patched.shape != rebuilt.shape:
        return f"shape {patched.shape} != rebuilt shape {rebuilt.shape}"
    for field_name in ("hr", "hc", "her", "hec"):
        left = getattr(patched, field_name)
        right = getattr(rebuilt, field_name)
        if (left is None) != (right is None):
            return (f"{field_name} presence diverged: patched "
                    f"{'set' if left is not None else 'absent'}, rebuilt "
                    f"{'set' if right is not None else 'absent'}")
        if left is not None and not np.array_equal(left, right):
            return (f"{field_name} diverged: patched {left.tolist()} != "
                    f"rebuilt {right.tolist()}")
    if patched.fully_diagonal != rebuilt.fully_diagonal:
        return (f"fully_diagonal diverged: patched {patched.fully_diagonal} "
                f"!= rebuilt {rebuilt.fully_diagonal}")
    if patched.exact != rebuilt.exact:
        return f"exact diverged: patched {patched.exact} != rebuilt {rebuilt.exact}"
    return None


def _check_incremental(spec: EstimatorSpec, case: Case) -> Optional[str]:
    from repro.core.estimate import estimate_product_nnz
    from repro.core.incremental import (
        IncrementalSketch,
        apply_update,
        random_deltas,
    )

    for position, node in enumerate(case.root.leaves()):
        rng = np.random.default_rng(
            [case.seed & 0x7FFFFFFF, _INCREMENTAL_STREAM, case.index, position]
        )
        incremental = IncrementalSketch(node.matrix)
        deltas = random_deltas(
            rng, incremental.shape, steps=INCREMENTAL_STEPS
        )
        for delta in deltas:
            apply_update(incremental, delta)
        patched = incremental.sketch()
        rebuilt = MNCSketch.from_matrix(incremental.to_matrix())
        mismatch = _sketch_mismatch(patched, rebuilt)
        if mismatch is not None:
            kinds = ",".join(type(delta).__name__ for delta in deltas)
            return f"leaf {position} after [{kinds}]: {mismatch}"
        # Downstream bit-identity: a sketch-consuming estimate over the
        # patched sketch must equal the same estimate over the rebuild.
        transposed = MNCSketch.from_matrix(incremental.to_matrix().T)
        got = float(estimate_product_nnz(patched, transposed))
        want = float(estimate_product_nnz(rebuilt, transposed))
        if got != want:
            return (f"leaf {position}: product estimate from patched sketch "
                    f"{got!r} != from rebuilt sketch {want!r}")
    return None


register_contract(Contract(
    id="incremental_equals_rebuild",
    description="a sketch patched by seeded deltas is bit-identical to a "
                "from-scratch rebuild, downstream estimates included",
    paper_ref="Section 3.1 applied online (see docs/STREAMING.md)",
    applies=_applies_incremental,
    check=_check_incremental,
))


def _applies_backends_agree(spec: EstimatorSpec, case: Case) -> bool:
    # One extra full evaluation per participating backend; sub-sample the
    # stream like the determinism contract to keep the default budget fast.
    return case.index % 3 == 1 and case_supported(spec.make(), case)


def _check_backends_agree(spec: EstimatorSpec, case: Case) -> Optional[str]:
    from repro import backends

    reference = None
    names = ["numpy", "python"]
    if backends.numba_importable():
        names.append("numba")
    for name in names:
        with backends.use_backend(name):
            estimate = estimate_case(spec.make(), case)
        if reference is None:
            reference = (name, estimate)
        elif estimate != reference[1] and not (
            np.isnan(estimate) and np.isnan(reference[1])
        ):
            return (f"backend {name!r} estimates {estimate!r} but "
                    f"{reference[0]!r} estimates {reference[1]!r} "
                    f"(bit-identity contract)")
    return None


register_contract(Contract(
    id="backends_agree",
    description="every kernel backend produces the byte-identical estimate",
    paper_ref="implementation requirement (multi-backend dispatch, "
              "docs/PERFORMANCE.md)",
    applies=_applies_backends_agree,
    check=_check_backends_agree,
))
