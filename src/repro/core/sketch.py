"""The MNC (Matrix Non-zero Count) sketch data structure (paper Section 3.1).

An MNC sketch of an ``m x n`` matrix ``A`` holds:

- ``hr`` — non-zeros per row (length ``m``),
- ``hc`` — non-zeros per column (length ``n``),
- ``her`` — per row, the count of its non-zeros that fall in columns holding a
  *single* non-zero (``rowSums((A != 0) * (hc == 1))``), or ``None``,
- ``hec`` — per column, the count of its non-zeros that fall in rows holding a
  single non-zero (``colSums((A != 0) * (hr == 1))``), or ``None``,
- summary metadata (maxima, non-empty counts, half-full counts, single-nnz
  counts, fully-diagonal flag) derived from ``hr``/``hc`` lazily on first
  access and cached on the instance.

The sketch is ``O(m + n)`` in size and is constructed in
``O(nnz(A) + m + n)`` time. Instances are immutable value objects: all
propagation rules build new sketches, which makes memoization across DAG
paths and DP subchains safe.

Construction comes in two tiers (docs/PERFORMANCE.md):

- the **validating** constructor (``MNCSketch(...)``) checks every sketch
  invariant — shapes, count ranges, ``sum(hr) == sum(hc)``, extension
  dominance. User-facing entry points (:meth:`from_matrix`,
  deserialization, hand-built sketches) always go through it.
- the **trusted** fast path (:meth:`MNCSketch.trusted`) skips validation
  entirely. It is reserved for internal propagation rules whose outputs
  satisfy the invariants by construction; the chain DP builds O(n^2)
  derived sketches, so this tier is what keeps estimation inside an
  optimizer loop cheap. ``repro.core.hotpath.validated_scope`` re-routes
  it through full validation (used by ``repro.verify`` and the
  equivalence tests).

Summary statistics (``max_hr``, ``nnz_rows``, ``total_nnz``, ...) are
properties backed by per-axis caches: a propagated intermediate that is
only ever fed to a cost scan never pays for reductions it does not use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.hotpath import (
    record_summary_materialization,
    record_trusted_construction,
    record_validated_construction,
    record_zero_vector_hit,
    validation_forced,
)
from repro.errors import SketchError
from repro.matrix.conversion import MatrixLike, as_csc, as_csr
from repro.observability.trace import trace, tracing_enabled

_FIELD_NAMES = ("shape", "hr", "hc", "her", "hec", "fully_diagonal", "exact")

#: Cached immutable zero vectors handed out by ``her_or_zeros``/
#: ``hec_or_zeros`` (Algorithm 1 treats a missing extension as all-zero;
#: allocating a fresh vector per estimate is pure hot-path garbage).
_ZEROS_CACHE: dict[tuple[int, str], np.ndarray] = {}
_ZEROS_CACHE_LIMIT = 128


def _cached_zeros(length: int, dtype=np.int64) -> np.ndarray:
    key = (length, np.dtype(dtype).char)
    arr = _ZEROS_CACHE.get(key)
    if arr is None:
        if len(_ZEROS_CACHE) >= _ZEROS_CACHE_LIMIT:
            _ZEROS_CACHE.clear()
        arr = np.zeros(length, dtype=dtype)
        arr.setflags(write=False)
        _ZEROS_CACHE[key] = arr
    else:
        record_zero_vector_hit()
    return arr


@dataclass(frozen=True, eq=False)
class MNCSketch:
    """Count-based synopsis of a sparse matrix's non-zero structure.

    Attributes:
        shape: the matrix shape ``(m, n)``.
        hr: int64 vector of non-zeros per row.
        hc: int64 vector of non-zeros per column.
        her: extended row counts (non-zeros lying in single-non-zero
            columns), or ``None`` when not constructed / not propagated.
        hec: extended column counts (non-zeros lying in single-non-zero
            rows), or ``None`` when not constructed / not propagated.
        fully_diagonal: ``True`` only when the matrix is known to be square
            with a fully dense diagonal and nothing off-diagonal (enables
            exact propagation, Eq 12). ``False`` means "unknown or not".
        exact: ``True`` while the counts are exact for the underlying matrix;
            propagation through estimated operations clears the flag. Used
            only for introspection/diagnostics, never for estimation.
    """

    shape: tuple[int, int]
    hr: np.ndarray
    hc: np.ndarray
    her: Optional[np.ndarray] = None
    hec: Optional[np.ndarray] = None
    fully_diagonal: bool = False
    exact: bool = True

    def __post_init__(self) -> None:
        record_validated_construction()
        m, n = self.shape
        hr = np.ascontiguousarray(self.hr, dtype=np.int64)
        hc = np.ascontiguousarray(self.hc, dtype=np.int64)
        object.__setattr__(self, "hr", hr)
        object.__setattr__(self, "hc", hc)
        if hr.shape != (m,):
            raise SketchError(f"hr has shape {hr.shape}, expected ({m},)")
        if hc.shape != (n,):
            raise SketchError(f"hc has shape {hc.shape}, expected ({n},)")
        if hr.size and (hr.min() < 0 or hr.max() > n):
            raise SketchError("row counts must lie in [0, n]")
        if hc.size and (hc.min() < 0 or hc.max() > m):
            raise SketchError("column counts must lie in [0, m]")
        row_total = int(hr.sum())
        col_total = int(hc.sum())
        if row_total != col_total:
            raise SketchError(
                f"inconsistent sketch: sum(hr)={row_total} != sum(hc)={col_total}"
            )
        for name, ext, length in (("her", self.her, m), ("hec", self.hec, n)):
            if ext is None:
                continue
            ext = np.ascontiguousarray(ext, dtype=np.int64)
            object.__setattr__(self, name, ext)
            if ext.shape != (length,):
                raise SketchError(f"{name} has shape {ext.shape}, expected ({length},)")
            if ext.size and ext.min() < 0:
                raise SketchError(f"{name} must be non-negative")
        if self.her is not None and np.any(self.her > hr):
            raise SketchError("her cannot exceed hr entry-wise")
        if self.hec is not None and np.any(self.hec > hc):
            raise SketchError("hec cannot exceed hc entry-wise")
        # Validation already paid for the row total; keep it.
        self.__dict__["_total_nnz"] = row_total

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def trusted(
        cls,
        shape: tuple[int, int],
        hr: np.ndarray,
        hc: np.ndarray,
        her: Optional[np.ndarray] = None,
        hec: Optional[np.ndarray] = None,
        fully_diagonal: bool = False,
        exact: bool = True,
    ) -> MNCSketch:
        """Build a sketch *without* invariant validation (fast tier).

        Callers guarantee what the validating constructor would check:
        ``hr``/``hc`` are contiguous int64 vectors of the right lengths
        with entries in range, ``sum(hr) == sum(hc)``, and extensions (if
        any) are int64, non-negative, and dominated by the counts. Every
        internal propagation rule satisfies this by construction.

        Under :func:`repro.core.hotpath.validated_scope` (active during
        ``repro.verify`` contract runs) the call transparently degrades to
        the validating constructor, so fuzzing exercises the checks.
        """
        if validation_forced():
            return cls(
                shape=shape, hr=hr, hc=hc, her=her, hec=hec,
                fully_diagonal=fully_diagonal, exact=exact,
            )
        record_trusted_construction()
        self = object.__new__(cls)
        d = self.__dict__
        d["shape"] = shape
        d["hr"] = hr
        d["hc"] = hc
        d["her"] = her
        d["hec"] = hec
        d["fully_diagonal"] = fully_diagonal
        d["exact"] = exact
        return self

    @classmethod
    def from_matrix(cls, matrix: MatrixLike, with_extensions: bool = True) -> MNCSketch:
        """Build the MNC sketch of *matrix* (Section 3.1).

        ``hr``/``hc`` come from the CSR/CSC index pointers (one scan over the
        non-zeros). Extension vectors are built in a second filtered scan and
        only when they can carry information, i.e. when some row or column has
        more than one non-zero; otherwise Theorem 3.1 already yields exact
        estimates and the extensions are omitted.

        This is a user-facing entry point, so the result is fully validated.

        Args:
            matrix: matrix-like input.
            with_extensions: set ``False`` to build the "MNC Basic" variant
                used as an ablation in the paper's Figures 10–13.
        """
        if not tracing_enabled():
            return cls._from_matrix_impl(matrix, with_extensions)
        with trace("mnc.sketch.build", with_extensions=with_extensions) as span:
            sketch = cls._from_matrix_impl(matrix, with_extensions)
            span.annotate(shape=sketch.shape, nnz=sketch.total_nnz)
            return sketch

    @classmethod
    def _from_matrix_impl(cls, matrix: MatrixLike, with_extensions: bool) -> MNCSketch:
        csr = as_csr(matrix)
        csc = as_csc(csr)
        m, n = csr.shape
        hr = np.diff(csr.indptr).astype(np.int64)
        hc = np.diff(csc.indptr).astype(np.int64)
        her: Optional[np.ndarray] = None
        hec: Optional[np.ndarray] = None
        max_hr = int(hr.max()) if hr.size else 0
        max_hc = int(hc.max()) if hc.size else 0
        if with_extensions and (max_hr > 1 or max_hc > 1):
            # her[i]: non-zeros of row i lying in single-non-zero columns.
            single_cols = hc == 1
            row_ids = np.repeat(np.arange(m), hr)
            her = np.bincount(
                row_ids[single_cols[csr.indices]], minlength=m
            ).astype(np.int64)
            # hec[j]: non-zeros of column j lying in single-non-zero rows.
            single_rows = hr == 1
            col_ids = np.repeat(np.arange(n), hc)
            hec = np.bincount(
                col_ids[single_rows[csc.indices]], minlength=n
            ).astype(np.int64)
            # All-zero extensions carry no information (her == 0 everywhere
            # iff no column holds a single non-zero, i.e. cols_single == 0,
            # and symmetrically for hec/rows_single), so Algorithm 1's
            # extension case degenerates bit-for-bit to the fallback case.
            # Dropping them saves the residual subtractions and dot products
            # on every downstream estimate.
            if not her.any():
                her = None
            if not hec.any():
                hec = None
        diagonal = bool(
            m == n and csr.nnz == m and _structure_is_diagonal(csr)
        )
        sketch = cls(
            shape=(m, n), hr=hr, hc=hc, her=her, hec=hec,
            fully_diagonal=diagonal, exact=True,
        )
        # The extensions decision already computed the maxima — keep them.
        sketch.__dict__["_row_stats_max"] = max_hr
        sketch.__dict__["_col_stats_max"] = max_hc
        return sketch

    @classmethod
    def synthetic(
        cls,
        m: int,
        n: int,
        sparsity: float,
        rng: Optional[np.random.Generator] = None,
    ) -> MNCSketch:
        """Synthesize the sketch of a *virtual* uniform random matrix.

        Draws row/column histograms from the multinomial distribution an
        actual uniform ``m x n`` matrix of the given sparsity would induce,
        without materializing any matrix. Used for optimizer experiments at
        dimensions too large to materialize (paper Appendix C's 20-matrix
        chains with 10^4 dimensions).
        """
        if rng is None:
            rng = np.random.default_rng()
        if not 0.0 <= sparsity <= 1.0:
            raise SketchError(f"sparsity must be in [0, 1], got {sparsity}")
        nnz = min(int(round(sparsity * m * n)), m * n)
        hr = _capped_multinomial(nnz, m, n, rng)
        hc = _capped_multinomial(int(hr.sum()), n, m, rng)
        return cls(shape=(m, n), hr=hr, hc=hc, her=None, hec=None,
                   fully_diagonal=False, exact=False)

    # ------------------------------------------------------------------
    # Lazy cached summary statistics
    # ------------------------------------------------------------------
    #
    # Row-side and column-side statistics are each materialized in one
    # bundled pass on first access (they share the scan); the total comes
    # free with validation and is otherwise a single reduction.

    def _materialize_rows(self) -> None:
        hr, n = self.hr, self.shape[1]
        d = self.__dict__
        if hr.size:
            if "_row_stats_max" not in d:
                d["_row_stats_max"] = int(hr.max())
            d["_row_stats_nnz"] = int(np.count_nonzero(hr))
            d["_row_stats_half"] = int(np.count_nonzero(hr > n / 2))
            d["_row_stats_single"] = int(np.count_nonzero(hr == 1))
        else:
            d.setdefault("_row_stats_max", 0)
            d["_row_stats_nnz"] = d["_row_stats_half"] = d["_row_stats_single"] = 0
        record_summary_materialization()

    def _materialize_cols(self) -> None:
        hc, m = self.hc, self.shape[0]
        d = self.__dict__
        if hc.size:
            if "_col_stats_max" not in d:
                d["_col_stats_max"] = int(hc.max())
            d["_col_stats_nnz"] = int(np.count_nonzero(hc))
            d["_col_stats_half"] = int(np.count_nonzero(hc > m / 2))
            d["_col_stats_single"] = int(np.count_nonzero(hc == 1))
        else:
            d.setdefault("_col_stats_max", 0)
            d["_col_stats_nnz"] = d["_col_stats_half"] = d["_col_stats_single"] = 0
        record_summary_materialization()

    @property
    def max_hr(self) -> int:
        """Largest row count (0 for empty shapes)."""
        try:
            return self.__dict__["_row_stats_max"]
        except KeyError:
            hr = self.hr
            value = int(hr.max()) if hr.size else 0
            self.__dict__["_row_stats_max"] = value
            return value

    @property
    def max_hc(self) -> int:
        """Largest column count (0 for empty shapes)."""
        try:
            return self.__dict__["_col_stats_max"]
        except KeyError:
            hc = self.hc
            value = int(hc.max()) if hc.size else 0
            self.__dict__["_col_stats_max"] = value
            return value

    @property
    def nnz_rows(self) -> int:
        """Number of non-empty rows."""
        try:
            return self.__dict__["_row_stats_nnz"]
        except KeyError:
            self._materialize_rows()
            return self.__dict__["_row_stats_nnz"]

    @property
    def nnz_cols(self) -> int:
        """Number of non-empty columns."""
        try:
            return self.__dict__["_col_stats_nnz"]
        except KeyError:
            self._materialize_cols()
            return self.__dict__["_col_stats_nnz"]

    @property
    def rows_half_full(self) -> int:
        """Rows more than half full (Theorem 3.2 lower bound)."""
        try:
            return self.__dict__["_row_stats_half"]
        except KeyError:
            self._materialize_rows()
            return self.__dict__["_row_stats_half"]

    @property
    def cols_half_full(self) -> int:
        """Columns more than half full (Theorem 3.2 lower bound)."""
        try:
            return self.__dict__["_col_stats_half"]
        except KeyError:
            self._materialize_cols()
            return self.__dict__["_col_stats_half"]

    @property
    def rows_single(self) -> int:
        """Rows holding exactly one non-zero."""
        try:
            return self.__dict__["_row_stats_single"]
        except KeyError:
            self._materialize_rows()
            return self.__dict__["_row_stats_single"]

    @property
    def cols_single(self) -> int:
        """Columns holding exactly one non-zero."""
        try:
            return self.__dict__["_col_stats_single"]
        except KeyError:
            self._materialize_cols()
            return self.__dict__["_col_stats_single"]

    @property
    def row_stats(self) -> tuple[int, int, int, int]:
        """``(max_hr, nnz_rows, rows_half_full, rows_single)`` as one tuple.

        Algorithm 1 touches four row-side statistics per call; the bundle
        turns eight cached-property lookups per estimate into two.
        """
        d = self.__dict__
        try:
            return d["_row_bundle"]
        except KeyError:
            bundle = (
                self.max_hr, self.nnz_rows,
                self.rows_half_full, self.rows_single,
            )
            d["_row_bundle"] = bundle
            return bundle

    @property
    def col_stats(self) -> tuple[int, int, int, int]:
        """``(max_hc, nnz_cols, cols_half_full, cols_single)`` as one tuple."""
        d = self.__dict__
        try:
            return d["_col_bundle"]
        except KeyError:
            bundle = (
                self.max_hc, self.nnz_cols,
                self.cols_half_full, self.cols_single,
            )
            d["_col_bundle"] = bundle
            return bundle

    @property
    def total_nnz(self) -> int:
        """Total non-zero count ``sum(hr)``."""
        try:
            return self.__dict__["_total_nnz"]
        except KeyError:
            value = int(self.hr.sum())
            self.__dict__["_total_nnz"] = value
            return value

    @property
    def hr_f64(self) -> np.ndarray:
        """``hr`` as float64, cached (Algorithm 1 / cost-scan operand)."""
        try:
            return self.__dict__["_hr_f64"]
        except KeyError:
            value = self.hr.astype(np.float64)
            value.setflags(write=False)
            self.__dict__["_hr_f64"] = value
            return value

    @property
    def hc_f64(self) -> np.ndarray:
        """``hc`` as float64, cached (Algorithm 1 / cost-scan operand)."""
        try:
            return self.__dict__["_hc_f64"]
        except KeyError:
            value = self.hc.astype(np.float64)
            value.setflags(write=False)
            self.__dict__["_hc_f64"] = value
            return value

    def her_f64_or_zeros(self) -> np.ndarray:
        """``her_or_zeros()`` as float64, cached and read-only."""
        if self.her is None:
            return _cached_zeros(self.shape[0], np.float64)
        try:
            return self.__dict__["_her_f64"]
        except KeyError:
            value = self.her.astype(np.float64)
            value.setflags(write=False)
            self.__dict__["_her_f64"] = value
            return value

    def hec_f64_or_zeros(self) -> np.ndarray:
        """``hec_or_zeros()`` as float64, cached and read-only."""
        if self.hec is None:
            return _cached_zeros(self.shape[1], np.float64)
        try:
            return self.__dict__["_hec_f64"]
        except KeyError:
            value = self.hec.astype(np.float64)
            value.setflags(write=False)
            self.__dict__["_hec_f64"] = value
            return value

    # ------------------------------------------------------------------
    # Pickling: drop lazy caches (cheap to rebuild, and the float64
    # mirrors would double the wire size of parallel/spill payloads).
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        return {name: self.__dict__[name] for name in _FIELD_NAMES}

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def nrows(self) -> int:
        """Number of matrix rows."""
        return self.shape[0]

    @property
    def ncols(self) -> int:
        """Number of matrix columns."""
        return self.shape[1]

    @property
    def cells(self) -> int:
        """Total number of matrix cells ``m * n``."""
        return self.shape[0] * self.shape[1]

    @property
    def sparsity(self) -> float:
        """``nnz / (m * n)`` (the paper's sparsity; 0.0 for empty shapes)."""
        if self.cells == 0:
            return 0.0
        return self.total_nnz / self.cells

    @property
    def has_extensions(self) -> bool:
        """True when at least one extension vector is present."""
        return self.her is not None or self.hec is not None

    def her_or_zeros(self) -> np.ndarray:
        """``her`` with missing vector treated as all-zero (Algorithm 1).

        The zero vector is cached and read-only; copy before mutating.
        """
        if self.her is not None:
            return self.her
        return _cached_zeros(self.nrows)

    def hec_or_zeros(self) -> np.ndarray:
        """``hec`` with missing vector treated as all-zero (Algorithm 1).

        The zero vector is cached and read-only; copy before mutating.
        """
        if self.hec is not None:
            return self.hec
        return _cached_zeros(self.ncols)

    def without_extensions(self) -> MNCSketch:
        """Return an MNC-Basic view of this sketch (extensions dropped)."""
        if not self.has_extensions:
            return self
        return MNCSketch.trusted(
            shape=self.shape, hr=self.hr, hc=self.hc, her=None, hec=None,
            fully_diagonal=self.fully_diagonal, exact=self.exact,
        )

    def size_bytes(self) -> int:
        """Synopsis size in bytes (count vectors + fixed metadata).

        The paper's Figure 9 sizes MNC at ``2 * 4 * dim * 4B``; we report the
        actual array footprint of this implementation (int64 vectors), plus a
        small constant for the summary statistics.
        """
        size = self.hr.nbytes + self.hc.nbytes
        if self.her is not None:
            size += self.her.nbytes
        if self.hec is not None:
            size += self.hec.nbytes
        return size + 9 * 8  # summary statistics and flags

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MNCSketch(shape={self.shape}, nnz={self.total_nnz}, "
            f"max_hr={self.max_hr}, max_hc={self.max_hc}, "
            f"extensions={self.has_extensions}, diagonal={self.fully_diagonal})"
        )


def _capped_multinomial(
    total: int, bins: int, cap: int, rng: np.random.Generator
) -> np.ndarray:
    """Spread *total* counts over *bins* uniformly, each at most *cap*.

    Overflow beyond the cap (only possible when ``total`` is close to
    ``bins * cap``) is redistributed over bins with remaining room, so the
    result always sums to *total* exactly. Redistribution is bulk: each
    round spreads the whole remaining overflow proportionally to the
    per-bin room (capped), so near-dense inputs converge in a handful of
    rounds instead of degenerating into ``overflow / room`` one-increment
    passes.
    """
    if bins == 1:
        return np.array([total], dtype=np.int64)
    counts = rng.multinomial(total, np.full(bins, 1.0 / bins)).astype(np.int64)
    overflow = int((counts - cap).clip(min=0).sum())
    np.minimum(counts, cap, out=counts)
    while overflow > 0:
        room_idx = np.flatnonzero(counts < cap)
        if room_idx.size == 0:  # pragma: no cover - total <= bins * cap
            break
        room = (cap - counts[room_idx]).astype(np.int64)
        capacity = int(room.sum())
        if overflow >= capacity:
            counts[room_idx] = cap
            overflow -= capacity
            continue
        add = rng.multinomial(overflow, room / capacity).astype(np.int64)
        np.minimum(add, room, out=add)
        counts[room_idx] += add
        overflow -= int(add.sum())
    return counts


def _structure_is_diagonal(csr) -> bool:
    rows = np.repeat(np.arange(csr.shape[0]), np.diff(csr.indptr))
    return bool(np.array_equal(rows, csr.indices))
