"""The MNC (Matrix Non-zero Count) sketch data structure (paper Section 3.1).

An MNC sketch of an ``m x n`` matrix ``A`` holds:

- ``hr`` — non-zeros per row (length ``m``),
- ``hc`` — non-zeros per column (length ``n``),
- ``her`` — per row, the count of its non-zeros that fall in columns holding a
  *single* non-zero (``rowSums((A != 0) * (hc == 1))``), or ``None``,
- ``hec`` — per column, the count of its non-zeros that fall in rows holding a
  single non-zero (``colSums((A != 0) * (hr == 1))``), or ``None``,
- summary metadata (maxima, non-empty counts, half-full counts, single-nnz
  counts, fully-diagonal flag) derived in one pass over ``hr``/``hc``.

The sketch is ``O(m + n)`` in size and is constructed in
``O(nnz(A) + m + n)`` time. Instances are immutable value objects: all
propagation rules build new sketches, which makes memoization across DAG
paths and DP subchains safe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import SketchError
from repro.matrix.conversion import MatrixLike, as_csc, as_csr
from repro.observability.trace import trace


@dataclass(frozen=True)
class MNCSketch:
    """Count-based synopsis of a sparse matrix's non-zero structure.

    Attributes:
        shape: the matrix shape ``(m, n)``.
        hr: int64 vector of non-zeros per row.
        hc: int64 vector of non-zeros per column.
        her: extended row counts (non-zeros lying in single-non-zero
            columns), or ``None`` when not constructed / not propagated.
        hec: extended column counts (non-zeros lying in single-non-zero
            rows), or ``None`` when not constructed / not propagated.
        fully_diagonal: ``True`` only when the matrix is known to be square
            with a fully dense diagonal and nothing off-diagonal (enables
            exact propagation, Eq 12). ``False`` means "unknown or not".
        exact: ``True`` while the counts are exact for the underlying matrix;
            propagation through estimated operations clears the flag. Used
            only for introspection/diagnostics, never for estimation.
    """

    shape: tuple[int, int]
    hr: np.ndarray
    hc: np.ndarray
    her: Optional[np.ndarray] = None
    hec: Optional[np.ndarray] = None
    fully_diagonal: bool = False
    exact: bool = True
    # Summary statistics are derived from hr/hc in __post_init__ and cached
    # on the instance; object.__setattr__ is needed because of frozen=True.
    max_hr: int = field(init=False)
    max_hc: int = field(init=False)
    nnz_rows: int = field(init=False)
    nnz_cols: int = field(init=False)
    rows_half_full: int = field(init=False)
    cols_half_full: int = field(init=False)
    rows_single: int = field(init=False)
    cols_single: int = field(init=False)
    total_nnz: int = field(init=False)

    def __post_init__(self) -> None:
        m, n = self.shape
        hr = np.ascontiguousarray(self.hr, dtype=np.int64)
        hc = np.ascontiguousarray(self.hc, dtype=np.int64)
        object.__setattr__(self, "hr", hr)
        object.__setattr__(self, "hc", hc)
        if hr.shape != (m,):
            raise SketchError(f"hr has shape {hr.shape}, expected ({m},)")
        if hc.shape != (n,):
            raise SketchError(f"hc has shape {hc.shape}, expected ({n},)")
        if hr.size and (hr.min() < 0 or hr.max() > n):
            raise SketchError("row counts must lie in [0, n]")
        if hc.size and (hc.min() < 0 or hc.max() > m):
            raise SketchError("column counts must lie in [0, m]")
        row_total = int(hr.sum())
        col_total = int(hc.sum())
        if row_total != col_total:
            raise SketchError(
                f"inconsistent sketch: sum(hr)={row_total} != sum(hc)={col_total}"
            )
        for name, ext, length in (("her", self.her, m), ("hec", self.hec, n)):
            if ext is None:
                continue
            ext = np.ascontiguousarray(ext, dtype=np.int64)
            object.__setattr__(self, name, ext)
            if ext.shape != (length,):
                raise SketchError(f"{name} has shape {ext.shape}, expected ({length},)")
            if ext.size and ext.min() < 0:
                raise SketchError(f"{name} must be non-negative")
        if self.her is not None and np.any(self.her > hr):
            raise SketchError("her cannot exceed hr entry-wise")
        if self.hec is not None and np.any(self.hec > hc):
            raise SketchError("hec cannot exceed hc entry-wise")
        object.__setattr__(self, "max_hr", int(hr.max()) if hr.size else 0)
        object.__setattr__(self, "max_hc", int(hc.max()) if hc.size else 0)
        object.__setattr__(self, "nnz_rows", int(np.count_nonzero(hr)))
        object.__setattr__(self, "nnz_cols", int(np.count_nonzero(hc)))
        object.__setattr__(self, "rows_half_full", int(np.count_nonzero(hr > n / 2)))
        object.__setattr__(self, "cols_half_full", int(np.count_nonzero(hc > m / 2)))
        object.__setattr__(self, "rows_single", int(np.count_nonzero(hr == 1)))
        object.__setattr__(self, "cols_single", int(np.count_nonzero(hc == 1)))
        object.__setattr__(self, "total_nnz", row_total)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_matrix(cls, matrix: MatrixLike, with_extensions: bool = True) -> MNCSketch:
        """Build the MNC sketch of *matrix* (Section 3.1).

        ``hr``/``hc`` come from the CSR/CSC index pointers (one scan over the
        non-zeros). Extension vectors are built in a second filtered scan and
        only when they can carry information, i.e. when some row or column has
        more than one non-zero; otherwise Theorem 3.1 already yields exact
        estimates and the extensions are omitted.

        Args:
            matrix: matrix-like input.
            with_extensions: set ``False`` to build the "MNC Basic" variant
                used as an ablation in the paper's Figures 10–13.
        """
        with trace("mnc.sketch.build", with_extensions=with_extensions) as span:
            csr = as_csr(matrix)
            csc = as_csc(csr)
            m, n = csr.shape
            hr = np.diff(csr.indptr).astype(np.int64)
            hc = np.diff(csc.indptr).astype(np.int64)
            her: Optional[np.ndarray] = None
            hec: Optional[np.ndarray] = None
            max_hr = int(hr.max()) if hr.size else 0
            max_hc = int(hc.max()) if hc.size else 0
            if with_extensions and (max_hr > 1 or max_hc > 1):
                # her[i]: non-zeros of row i lying in single-non-zero columns.
                single_cols = hc == 1
                row_ids = np.repeat(np.arange(m), hr)
                her = np.bincount(
                    row_ids[single_cols[csr.indices]], minlength=m
                ).astype(np.int64)
                # hec[j]: non-zeros of column j lying in single-non-zero rows.
                single_rows = hr == 1
                col_ids = np.repeat(np.arange(n), hc)
                hec = np.bincount(
                    col_ids[single_rows[csc.indices]], minlength=n
                ).astype(np.int64)
            diagonal = bool(
                m == n and csr.nnz == m and _structure_is_diagonal(csr)
            )
            span.annotate(shape=(m, n), nnz=int(csr.nnz))
            return cls(
                shape=(m, n), hr=hr, hc=hc, her=her, hec=hec,
                fully_diagonal=diagonal, exact=True,
            )

    @classmethod
    def synthetic(
        cls,
        m: int,
        n: int,
        sparsity: float,
        rng: Optional[np.random.Generator] = None,
    ) -> MNCSketch:
        """Synthesize the sketch of a *virtual* uniform random matrix.

        Draws row/column histograms from the multinomial distribution an
        actual uniform ``m x n`` matrix of the given sparsity would induce,
        without materializing any matrix. Used for optimizer experiments at
        dimensions too large to materialize (paper Appendix C's 20-matrix
        chains with 10^4 dimensions).
        """
        if rng is None:
            rng = np.random.default_rng()
        if not 0.0 <= sparsity <= 1.0:
            raise SketchError(f"sparsity must be in [0, 1], got {sparsity}")
        nnz = min(int(round(sparsity * m * n)), m * n)
        hr = _capped_multinomial(nnz, m, n, rng)
        hc = _capped_multinomial(int(hr.sum()), n, m, rng)
        return cls(shape=(m, n), hr=hr, hc=hc, her=None, hec=None,
                   fully_diagonal=False, exact=False)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def nrows(self) -> int:
        """Number of matrix rows."""
        return self.shape[0]

    @property
    def ncols(self) -> int:
        """Number of matrix columns."""
        return self.shape[1]

    @property
    def cells(self) -> int:
        """Total number of matrix cells ``m * n``."""
        return self.shape[0] * self.shape[1]

    @property
    def sparsity(self) -> float:
        """``nnz / (m * n)`` (the paper's sparsity; 0.0 for empty shapes)."""
        if self.cells == 0:
            return 0.0
        return self.total_nnz / self.cells

    @property
    def has_extensions(self) -> bool:
        """True when at least one extension vector is present."""
        return self.her is not None or self.hec is not None

    def her_or_zeros(self) -> np.ndarray:
        """``her`` with missing vector treated as all-zero (Algorithm 1)."""
        if self.her is not None:
            return self.her
        return np.zeros(self.nrows, dtype=np.int64)

    def hec_or_zeros(self) -> np.ndarray:
        """``hec`` with missing vector treated as all-zero (Algorithm 1)."""
        if self.hec is not None:
            return self.hec
        return np.zeros(self.ncols, dtype=np.int64)

    def without_extensions(self) -> MNCSketch:
        """Return an MNC-Basic view of this sketch (extensions dropped)."""
        if not self.has_extensions:
            return self
        return MNCSketch(
            shape=self.shape, hr=self.hr, hc=self.hc, her=None, hec=None,
            fully_diagonal=self.fully_diagonal, exact=self.exact,
        )

    def size_bytes(self) -> int:
        """Synopsis size in bytes (count vectors + fixed metadata).

        The paper's Figure 9 sizes MNC at ``2 * 4 * dim * 4B``; we report the
        actual array footprint of this implementation (int64 vectors), plus a
        small constant for the summary statistics.
        """
        size = self.hr.nbytes + self.hc.nbytes
        if self.her is not None:
            size += self.her.nbytes
        if self.hec is not None:
            size += self.hec.nbytes
        return size + 9 * 8  # summary statistics and flags

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MNCSketch(shape={self.shape}, nnz={self.total_nnz}, "
            f"max_hr={self.max_hr}, max_hc={self.max_hc}, "
            f"extensions={self.has_extensions}, diagonal={self.fully_diagonal})"
        )


def _capped_multinomial(
    total: int, bins: int, cap: int, rng: np.random.Generator
) -> np.ndarray:
    """Spread *total* counts over *bins* uniformly, each at most *cap*.

    Overflow beyond the cap (only possible when ``total`` is close to
    ``bins * cap``) is redistributed over bins with remaining room, so the
    result always sums to *total* exactly.
    """
    if bins == 1:
        return np.array([total], dtype=np.int64)
    counts = rng.multinomial(total, np.full(bins, 1.0 / bins)).astype(np.int64)
    overflow = int((counts - cap).clip(min=0).sum())
    np.minimum(counts, cap, out=counts)
    while overflow > 0:
        room = np.flatnonzero(counts < cap)
        take = min(overflow, room.size)
        counts[rng.choice(room, size=take, replace=False)] += 1
        overflow -= take
    return counts


def _structure_is_diagonal(csr) -> bool:
    rows = np.repeat(np.arange(csr.shape[0]), np.diff(csr.indptr))
    return bool(np.array_equal(rows, csr.indices))
