"""MNC sketch (de)serialization.

The paper positions the sketch as the thing a distributed job computes and
ships to the driver; that requires a wire/disk format. Sketches serialize
to a single ``.npz`` file (or an in-memory ``dict`` of arrays) holding the
count vectors, optional extensions, and the two flags. Round-tripping is
exact and validated on load by the :class:`MNCSketch` constructor.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict

import numpy as np

from repro.core.sketch import MNCSketch
from repro.errors import SketchError

_FORMAT_VERSION = 1


def sketch_to_arrays(sketch: MNCSketch) -> Dict[str, np.ndarray]:
    """Encode a sketch as a flat dict of numpy arrays (npz-compatible)."""
    arrays: Dict[str, np.ndarray] = {
        "version": np.array([_FORMAT_VERSION], dtype=np.int64),
        "shape": np.array(sketch.shape, dtype=np.int64),
        "hr": sketch.hr,
        "hc": sketch.hc,
        "flags": np.array(
            [int(sketch.fully_diagonal), int(sketch.exact)], dtype=np.int64
        ),
    }
    if sketch.her is not None:
        arrays["her"] = sketch.her
    if sketch.hec is not None:
        arrays["hec"] = sketch.hec
    return arrays


def sketch_from_arrays(arrays) -> MNCSketch:
    """Decode a sketch from the dict produced by :func:`sketch_to_arrays`.

    The version field is validated *before* any other field is touched: a
    payload written by a newer build may have renamed or re-typed fields,
    and decoding it anyway would either fail with a misleading
    "missing field" error or silently misinterpret the data.
    """
    try:
        version = int(np.asarray(arrays["version"]).ravel()[0])
    except KeyError:
        raise SketchError("serialized sketch missing field 'version'") from None
    if version > _FORMAT_VERSION:
        raise SketchError(
            f"sketch format version {version} is newer than this build "
            f"supports (reads up to version {_FORMAT_VERSION}); "
            "refusing to decode a payload from a future format"
        )
    if version != _FORMAT_VERSION:
        raise SketchError(
            f"unsupported sketch format version {version} "
            f"(this build reads version {_FORMAT_VERSION})"
        )
    try:
        shape = tuple(int(d) for d in np.asarray(arrays["shape"]).ravel())
        hr = np.asarray(arrays["hr"], dtype=np.int64)
        hc = np.asarray(arrays["hc"], dtype=np.int64)
        flags = np.asarray(arrays["flags"]).ravel()
    except KeyError as missing:
        raise SketchError(f"serialized sketch missing field {missing}") from None
    if len(shape) != 2:
        raise SketchError(f"serialized shape must have two entries, got {shape}")
    her = np.asarray(arrays["her"], dtype=np.int64) if "her" in arrays else None
    hec = np.asarray(arrays["hec"], dtype=np.int64) if "hec" in arrays else None
    return MNCSketch(
        shape=shape, hr=hr, hc=hc, her=her, hec=hec,
        fully_diagonal=bool(flags[0]), exact=bool(flags[1]),
    )


def save_sketch(path: str | Path, sketch: MNCSketch) -> None:
    """Write a sketch to *path* in ``.npz`` form."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    np.savez(target, **sketch_to_arrays(sketch))


def load_sketch(path: str | Path) -> MNCSketch:
    """Read a sketch written by :func:`save_sketch`."""
    with np.load(Path(path)) as arrays:
        return sketch_from_arrays(arrays)
