"""MNC estimation and sketch propagation for non-product operations.

Paper Section 4: reorganizations (transpose, reshape, diag, rbind/cbind,
``A == 0`` / ``A != 0``) mostly allow exact inference, while element-wise
addition and multiplication are estimated with the structure-aware collision
factor of Eq 13 and propagated with Eq 15.

Count vectors are always propagated; extension vectors only when they are
known to be exactly preserved (transpose, rbind/cbind on the unchanged axis,
vector-to-matrix diag).

Every rule here derives its output vectors from already-validated input
sketches and re-establishes the invariants (dtype, ranges, matching
totals) by construction, so results are built through the trusted fast
tier (:meth:`MNCSketch.trusted`); ``repro.verify`` re-enables full
validation via :func:`repro.core.hotpath.validated_scope`.
"""

from __future__ import annotations

import numpy as np

from repro.core.propagate import _reconcile_totals
from repro.core.rounding import SeedLike, probabilistic_round, resolve_rng
from repro.core.sketch import MNCSketch
from repro.errors import ShapeError


def _check_same_shape(h_a: MNCSketch, h_b: MNCSketch, op: str) -> None:
    if h_a.shape != h_b.shape:
        raise ShapeError(f"{op} requires equal shapes: {h_a.shape} vs {h_b.shape}")


def _collision_factor(counts_a: np.ndarray, counts_b: np.ndarray,
                      nnz_a: int, nnz_b: int) -> float:
    """The paper's lambda: alignment of non-zeros along the opposite axis.

    ``lambda = sum_j(hc_A[j] * hc_B[j]) / (nnz(A) * nnz(B))`` measures how
    strongly the two operands' non-zeros collide: 0 for disjoint supports,
    and large when mass concentrates in the same slices.
    """
    if nnz_a == 0 or nnz_b == 0:
        return 0.0
    dot = float(counts_a.astype(np.float64) @ counts_b.astype(np.float64))
    return dot / (float(nnz_a) * float(nnz_b))


# ----------------------------------------------------------------------
# Element-wise estimation (Eq 13)
# ----------------------------------------------------------------------

def estimate_ewise_mult_nnz(h_a: MNCSketch, h_b: MNCSketch) -> float:
    """Estimate ``nnz(A (*) B)`` (Hadamard product) via Eq 13.

    Row-wise expected intersections ``hr_A[i] * hr_B[i] * lambda`` are
    aggregated, where ``lambda`` is computed from the column counts. The
    formula is algebraically symmetric in rows/columns. The result is clamped
    to the structural bound ``min(nnz(A), nnz(B))``.
    """
    _check_same_shape(h_a, h_b, "ewise_mult")
    lam = _collision_factor(h_a.hc, h_b.hc, h_a.total_nnz, h_b.total_nnz)
    row_products = h_a.hr.astype(np.float64) * h_b.hr.astype(np.float64)
    estimate = float(row_products.sum()) * lam
    return min(estimate, float(min(h_a.total_nnz, h_b.total_nnz)))


def estimate_ewise_add_nnz(h_a: MNCSketch, h_b: MNCSketch) -> float:
    """Estimate ``nnz(A + B)`` (structure union) via Eq 13.

    ``nnz(A) + nnz(B) - nnz(A (*) B)`` with the intersection estimated as in
    :func:`estimate_ewise_mult_nnz`; clamped to the structural bounds
    ``[max(nnz(A), nnz(B)), min(nnz(A) + nnz(B), m*n)]``.
    """
    _check_same_shape(h_a, h_b, "ewise_add")
    overlap = estimate_ewise_mult_nnz(h_a, h_b)
    estimate = float(h_a.total_nnz + h_b.total_nnz) - overlap
    lower = float(max(h_a.total_nnz, h_b.total_nnz))
    upper = float(min(h_a.total_nnz + h_b.total_nnz, h_a.cells))
    return min(max(estimate, lower), upper)


# ----------------------------------------------------------------------
# Reorganization propagation (Eq 14)
# ----------------------------------------------------------------------

def propagate_transpose(h: MNCSketch) -> MNCSketch:
    """Sketch of ``A^T``: row and column structures swap exactly."""
    return MNCSketch.trusted(
        shape=(h.ncols, h.nrows), hr=h.hc, hc=h.hr, her=h.hec, hec=h.her,
        fully_diagonal=h.fully_diagonal, exact=h.exact,
    )


def propagate_not_equals_zero(h: MNCSketch) -> MNCSketch:
    """Sketch of ``A != 0``: identical to the input sketch (shallow reuse)."""
    return h


def propagate_equals_zero(h: MNCSketch) -> MNCSketch:
    """Sketch of ``A == 0``: complemented counts, extensions dropped."""
    m, n = h.shape
    return MNCSketch.trusted(
        shape=h.shape, hr=n - h.hr, hc=m - h.hc, her=None, hec=None,
        fully_diagonal=False, exact=h.exact,
    )


def propagate_rbind(h_a: MNCSketch, h_b: MNCSketch) -> MNCSketch:
    """Sketch of ``rbind(A, B)`` (A stacked above B).

    ``hr`` concatenates and ``hc`` adds, both exactly. ``hec`` adds exactly
    too — the rows are untouched, so "non-zeros in single-non-zero rows"
    is preserved per operand. ``her`` is dropped: a column that is
    single-non-zero in an operand need not be single in the result.
    """
    if h_a.ncols != h_b.ncols:
        raise ShapeError(f"rbind requires equal column counts: {h_a.shape} vs {h_b.shape}")
    hec = None
    if h_a.hec is not None and h_b.hec is not None:
        hec = h_a.hec + h_b.hec
    return MNCSketch.trusted(
        shape=(h_a.nrows + h_b.nrows, h_a.ncols),
        hr=np.concatenate([h_a.hr, h_b.hr]),
        hc=h_a.hc + h_b.hc,
        her=None, hec=hec,
        fully_diagonal=False, exact=h_a.exact and h_b.exact,
    )


def propagate_cbind(h_a: MNCSketch, h_b: MNCSketch) -> MNCSketch:
    """Sketch of ``cbind(A, B)``; symmetric to :func:`propagate_rbind`."""
    if h_a.nrows != h_b.nrows:
        raise ShapeError(f"cbind requires equal row counts: {h_a.shape} vs {h_b.shape}")
    her = None
    if h_a.her is not None and h_b.her is not None:
        her = h_a.her + h_b.her
    return MNCSketch.trusted(
        shape=(h_a.nrows, h_a.ncols + h_b.ncols),
        hr=h_a.hr + h_b.hr,
        hc=np.concatenate([h_a.hc, h_b.hc]),
        her=her, hec=None,
        fully_diagonal=False, exact=h_a.exact and h_b.exact,
    )


def propagate_diag_vector(h: MNCSketch) -> MNCSketch:
    """Sketch of ``diag(v)`` for an ``m x 1`` vector ``v`` (exact).

    Every output row/column inherits the vector's 0/1 row indicator; the
    extensions equal the counts because each row and column holds at most one
    non-zero.
    """
    if h.ncols != 1:
        raise ShapeError(f"diag expects an m x 1 vector sketch, got {h.shape}")
    indicator = h.hr.copy()
    m = h.nrows
    dense_diagonal = bool(m > 0 and int(indicator.min()) == 1)
    return MNCSketch.trusted(
        shape=(m, m), hr=indicator, hc=indicator.copy(),
        her=indicator.copy(), hec=indicator.copy(),
        fully_diagonal=dense_diagonal, exact=h.exact,
    )


def propagate_diag_extract(h: MNCSketch, rng: SeedLike = None) -> MNCSketch:
    """Best-effort sketch of ``diag(A)`` for square ``A`` (matrix-to-vector).

    Uses the rank-1 structure model ``P(A[i,i] != 0) ~ hr[i] * hc[i] / nnz``
    per row; the output is a vector, so best-effort suffices (paper Sec 4.2).
    """
    if h.nrows != h.ncols:
        raise ShapeError(f"diag extraction expects a square sketch, got {h.shape}")
    m = h.nrows
    if h.total_nnz == 0 or m == 0:
        hr = np.zeros(m, dtype=np.int64)
    else:
        prob = (h.hr.astype(np.float64) * h.hc.astype(np.float64)) / h.total_nnz
        np.clip(prob, 0.0, 1.0, out=prob)
        hr = probabilistic_round(prob, rng=rng, maximum=1)
    hc = np.array([int(hr.sum())], dtype=np.int64)
    return MNCSketch.trusted(
        shape=(m, 1), hr=hr, hc=hc, her=None, hec=None,
        fully_diagonal=False, exact=False,
    )


def propagate_reshape(
    h: MNCSketch, rows: int, cols: int, rng: SeedLike = None
) -> MNCSketch:
    """Sketch of a row-wise reshape of ``A`` into ``rows x cols``.

    Three cases (paper handles the first; the others are the symmetric and
    best-effort completions):

    - ``m % rows == 0`` (concatenating ``m/rows`` input rows per output row):
      ``hr`` aggregates groups of consecutive input rows exactly; ``hc``
      spreads each input column count uniformly over its ``m/rows`` replicas.
    - ``rows % m == 0`` (splitting each input row into ``rows/m`` output
      rows): ``hc`` aggregates strided input columns exactly; ``hr`` spreads
      each input row count uniformly over its splits.
    - otherwise: best-effort uniform redistribution of the total count.
    """
    m, n = h.shape
    if rows * cols != m * n:
        raise ShapeError(
            f"cannot reshape {m}x{n} into {rows}x{cols}: cell counts differ"
        )
    generator = resolve_rng(rng)
    if rows == m and cols == n:
        return h
    if rows > 0 and m % rows == 0:
        group = m // rows
        hr = h.hr.reshape(rows, group).sum(axis=1)
        scaled_cols = np.tile(h.hc.astype(np.float64) / group, group)
        hc = probabilistic_round(scaled_cols, rng=generator, maximum=rows)
    elif m > 0 and rows % m == 0:
        split = rows // m
        hc = h.hc.reshape(split, cols).sum(axis=0)
        scaled_rows = np.repeat(h.hr.astype(np.float64) / split, split)
        hr = probabilistic_round(scaled_rows, rng=generator, maximum=cols)
    else:
        total = float(h.total_nnz)
        hr = probabilistic_round(
            np.full(rows, total / max(rows, 1)), rng=generator, maximum=cols
        )
        hc = probabilistic_round(
            np.full(cols, total / max(cols, 1)), rng=generator, maximum=rows
        )
    hr, hc = _fix_reshape_totals(h, hr, hc, rows, cols, generator)
    exact = h.exact and rows > 0 and m % rows == 0 and _is_uniform(h.hc, rows, m)
    return MNCSketch.trusted(
        shape=(rows, cols), hr=hr, hc=hc, her=None, hec=None,
        fully_diagonal=False, exact=exact,
    )


def _is_uniform(counts: np.ndarray, rows: int, m: int) -> bool:
    """Whether the approximate axis of a reshape happens to be exact."""
    if m == 0 or rows == 0:
        return False
    group = m // rows
    return bool(group == 1 or np.all(counts % group == 0))


def _fix_reshape_totals(
    h: MNCSketch,
    hr: np.ndarray,
    hc: np.ndarray,
    rows: int,
    cols: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Force both reshape histograms to sum to the exact (preserved) nnz."""
    for counts, maximum in ((hr, cols), (hc, rows)):
        diff = h.total_nnz - int(counts.sum())
        while diff != 0:
            if diff > 0:
                adjustable = np.flatnonzero(counts < maximum)
                step = 1
            else:
                adjustable = np.flatnonzero(counts > 0)
                step = -1
            if adjustable.size == 0:  # pragma: no cover - cells >= nnz always
                break
            take = min(abs(diff), adjustable.size)
            counts[rng.choice(adjustable, size=take, replace=False)] += step
            diff -= step * take
    return hr, hc


def propagate_row_sums(h: MNCSketch) -> MNCSketch:
    """Sketch of structural ``rowSums(A)`` (exact).

    The aggregate's entry ``i`` is non-zero iff row ``i`` is non-empty, so
    the output row indicator is ``hr > 0`` and the single output column
    holds ``nnz_rows`` non-zeros.
    """
    indicator = (h.hr > 0).astype(np.int64)
    hc = np.array([int(indicator.sum())], dtype=np.int64)
    return MNCSketch.trusted(
        shape=(h.nrows, 1), hr=indicator, hc=hc, her=None, hec=None,
        fully_diagonal=False, exact=h.exact,
    )


def propagate_col_sums(h: MNCSketch) -> MNCSketch:
    """Sketch of structural ``colSums(A)`` (exact; see
    :func:`propagate_row_sums`)."""
    indicator = (h.hc > 0).astype(np.int64)
    hr = np.array([int(indicator.sum())], dtype=np.int64)
    return MNCSketch.trusted(
        shape=(1, h.ncols), hr=hr, hc=indicator, her=None, hec=None,
        fully_diagonal=False, exact=h.exact,
    )


# ----------------------------------------------------------------------
# Element-wise propagation (Eq 15)
# ----------------------------------------------------------------------

def propagate_ewise_mult(
    h_a: MNCSketch, h_b: MNCSketch, rng: SeedLike = None
) -> MNCSketch:
    """Sketch of ``A (*) B``: per-axis collision estimates (Eq 15)."""
    _check_same_shape(h_a, h_b, "ewise_mult")
    generator = resolve_rng(rng)
    lam_c = _collision_factor(h_a.hc, h_b.hc, h_a.total_nnz, h_b.total_nnz)
    lam_r = _collision_factor(h_a.hr, h_b.hr, h_a.total_nnz, h_b.total_nnz)
    hr_est = h_a.hr.astype(np.float64) * h_b.hr.astype(np.float64) * lam_c
    hc_est = h_a.hc.astype(np.float64) * h_b.hc.astype(np.float64) * lam_r
    hr = probabilistic_round(
        np.minimum(hr_est, np.minimum(h_a.hr, h_b.hr)), rng=generator,
        maximum=h_a.ncols,
    )
    hc = probabilistic_round(
        np.minimum(hc_est, np.minimum(h_a.hc, h_b.hc)), rng=generator,
        maximum=h_a.nrows,
    )
    _reconcile_totals(hr, hc, generator)
    return MNCSketch.trusted(
        shape=h_a.shape, hr=hr, hc=hc, her=None, hec=None,
        fully_diagonal=False, exact=False,
    )


def propagate_ewise_add(
    h_a: MNCSketch, h_b: MNCSketch, rng: SeedLike = None
) -> MNCSketch:
    """Sketch of ``A + B`` (structure union): Eq 15 with union formula."""
    _check_same_shape(h_a, h_b, "ewise_add")
    generator = resolve_rng(rng)
    lam_c = _collision_factor(h_a.hc, h_b.hc, h_a.total_nnz, h_b.total_nnz)
    lam_r = _collision_factor(h_a.hr, h_b.hr, h_a.total_nnz, h_b.total_nnz)
    hr_a = h_a.hr.astype(np.float64)
    hr_b = h_b.hr.astype(np.float64)
    hc_a = h_a.hc.astype(np.float64)
    hc_b = h_b.hc.astype(np.float64)
    hr_est = hr_a + hr_b - hr_a * hr_b * lam_c
    hc_est = hc_a + hc_b - hc_a * hc_b * lam_r
    # Structural bounds: union of a row is at least the larger operand row
    # and at most the sum (capped by the row length via `maximum`).
    hr_est = np.clip(hr_est, np.maximum(h_a.hr, h_b.hr), h_a.hr + h_b.hr)
    hc_est = np.clip(hc_est, np.maximum(h_a.hc, h_b.hc), h_a.hc + h_b.hc)
    hr = probabilistic_round(hr_est, rng=generator, maximum=h_a.ncols)
    hc = probabilistic_round(hc_est, rng=generator, maximum=h_a.nrows)
    _reconcile_totals(hr, hc, generator)
    return MNCSketch.trusted(
        shape=h_a.shape, hr=hr, hc=hc, her=None, hec=None,
        fully_diagonal=False, exact=False,
    )
