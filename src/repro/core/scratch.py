"""Reusable per-thread scratch buffers for allocation-free kernels.

The Algorithm 1 fallback, Eq 11 scaling, and probabilistic rounding all
work on temporary vectors sized by a matrix dimension. Allocating those
temporaries per call is the dominant constant-factor cost once sketches
are cached and validation is off the hot path, so each kernel call site
owns a :class:`ScratchBuffer`: a per-thread, geometrically grown array it
reuses across calls.

Rules of use:

- one :class:`ScratchBuffer` per *call site* (module-level constant), so
  two kernels can never alias each other's storage;
- a site must not call another function that borrows from the *same*
  buffer while a view is live (none of the kernels recurse);
- views returned by :meth:`ScratchBuffer.get` are only valid until the
  site's next ``get`` — never store or return them.

Buffers are thread-local: the chain DP evaluates one span's cells from a
thread pool, and each thread gets private storage.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core.hotpath import HOTPATH
from repro.observability.collector import get_collector

_MIN_CAPACITY = 256


class ScratchBuffer(threading.local):
    """A per-thread growable scratch vector of a fixed dtype."""

    def __init__(self, dtype=np.float64) -> None:
        self._dtype = np.dtype(dtype)
        self._buf: np.ndarray | None = None

    def get(self, length: int) -> np.ndarray:
        """A writable, C-contiguous view of *length* entries.

        Contents are uninitialized; callers overwrite via ``out=`` forms.
        """
        buf = self._buf
        if buf is None or buf.size < length:
            capacity = max(length, _MIN_CAPACITY)
            if buf is not None:
                capacity = max(capacity, 2 * buf.size)
            self._buf = buf = np.empty(capacity, dtype=self._dtype)
        else:
            # record_scratch_reuse() inlined: get() runs several times per
            # estimate and the extra call layer is measurable there.
            HOTPATH.scratch_reuses += 1
            collector = get_collector()
            if collector.enabled:
                collector.increment("hotpath.scratch_reuses")
        return buf[:length]
