"""Confidence intervals for MNC product estimates (paper future work #2).

The MNC fallback estimator models the product as a sum of outer products
whose non-zeros land uniformly in ``p`` candidate cells; cell ``c`` is
non-zero with probability ``q = 1 - prod_k(1 - v_a[k] * v_b[k] / p)``. The
total non-zero count is then a sum of ``p`` (weakly dependent) Bernoulli
variables. Under the same independence assumption the point estimate
already makes, a normal approximation gives

    nnz ~ Normal(p * q, p * q * (1 - q))

which this module turns into two-sided confidence intervals. When the
estimate comes from an exact case (Theorem 3.1, or a bound clamping to the
exact value), the interval collapses to the point.

The interval quantifies only the *model* variance (cell-occupancy noise
under the uniform-within-slices assumption), not structural model error —
the same caveat as the paper's average-case estimators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.core.estimate import (
    estimate_product_nnz,
    product_nnz_lower_bound,
    product_nnz_upper_bound,
)
from repro.core.sketch import MNCSketch
from repro.errors import ShapeError


@dataclass(frozen=True)
class NnzInterval:
    """A point estimate with a two-sided confidence interval."""

    estimate: float
    lower: float
    upper: float
    confidence: float
    exact: bool

    @property
    def width(self) -> float:
        """Absolute width of the interval."""
        return self.upper - self.lower

    def contains(self, value: float) -> bool:
        """Whether *value* falls inside the interval (inclusive)."""
        return self.lower <= value <= self.upper


def estimate_product_interval(
    h_a: MNCSketch,
    h_b: MNCSketch,
    confidence: float = 0.95,
) -> NnzInterval:
    """Point estimate and confidence interval for ``nnz(A B)``.

    Args:
        h_a, h_b: MNC sketches of the operands.
        confidence: two-sided confidence level in (0, 1).

    Returns:
        An :class:`NnzInterval`; ``exact=True`` (zero-width) when Theorem
        3.1 applies or the Theorem 3.2 bounds pin the estimate.
    """
    if not 0.0 < confidence < 1.0:
        raise ShapeError(f"confidence must be in (0, 1), got {confidence}")
    if h_a.ncols != h_b.nrows:
        raise ShapeError(
            f"product requires inner dimensions to agree: {h_a.shape} x {h_b.shape}"
        )
    estimate = estimate_product_nnz(h_a, h_b)
    lower_bound = float(product_nnz_lower_bound(h_a, h_b))
    upper_bound = float(product_nnz_upper_bound(h_a, h_b))

    exact_case = (
        h_a.max_hr <= 1 or h_b.max_hc <= 1 or upper_bound <= lower_bound
    )
    if h_a.total_nnz == 0 or h_b.total_nnz == 0:
        return NnzInterval(0.0, 0.0, 0.0, confidence, exact=True)
    if exact_case:
        return NnzInterval(estimate, estimate, estimate, confidence, exact=True)

    # Reconstruct the fallback model's p and q for the variance.
    cells = float(h_a.nnz_rows) * float(h_b.nnz_cols)
    if cells <= 0:
        return NnzInterval(estimate, estimate, estimate, confidence, exact=True)
    occupancy = min(max(estimate / cells, 0.0), 1.0)
    variance = cells * occupancy * (1.0 - occupancy)
    std = math.sqrt(max(variance, 0.0))
    z = float(stats.norm.ppf(0.5 + confidence / 2.0))
    lower = max(estimate - z * std, lower_bound, 0.0)
    upper = min(estimate + z * std, upper_bound, float(h_a.nrows * h_b.ncols))
    return NnzInterval(estimate, lower, upper, confidence, exact=False)


def interval_from_samples(
    samples: np.ndarray, confidence: float = 0.95
) -> NnzInterval:
    """Empirical (percentile) interval from repeated randomized estimates.

    Useful for propagated chains, where the probabilistic rounding in
    sketch propagation is the dominant noise source: run the propagation
    under ``k`` seeds and summarize.
    """
    if not 0.0 < confidence < 1.0:
        raise ShapeError(f"confidence must be in (0, 1), got {confidence}")
    values = np.asarray(samples, dtype=np.float64)
    if values.size == 0:
        raise ShapeError("need at least one sample")
    alpha = (1.0 - confidence) / 2.0
    lower = float(np.quantile(values, alpha))
    upper = float(np.quantile(values, 1.0 - alpha))
    point = float(values.mean())
    exact = bool(values.max() == values.min())
    return NnzInterval(point, lower, upper, confidence, exact=exact)
