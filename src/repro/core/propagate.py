"""Sketch propagation for matrix products (paper Section 3.3).

For chains of products, sketches of intermediates are derived rather than
constructed: the output sparsity is estimated with Algorithm 1, and the input
row/column histograms are scaled to the new total (Eq 11) with probabilistic
rounding to avoid the ultra-sparse rounding bias. When one operand is fully
diagonal and square, the other operand's sketch is propagated unchanged
(Eq 12) — the product's structure is guaranteed identical.

Hot-path notes (docs/PERFORMANCE.md): derived sketches are built through
the trusted tier (:meth:`MNCSketch.trusted` — scaling and reconciliation
re-establish every invariant by construction), Eq 11 scale-and-round and
the bulk reconciliation rounds dispatch through
:func:`repro.backends.get_backend` with the rounding draws threaded in
from the caller's generator, and tracing spans are entered only when a
collector listens.
"""

from __future__ import annotations

import numpy as np

from repro.backends import get_backend
from repro.core.estimate import estimate_product_nnz
from repro.core.rounding import SeedLike, resolve_rng
from repro.core.scratch import ScratchBuffer
from repro.core.sketch import MNCSketch
from repro.errors import ShapeError
from repro.observability.trace import trace, tracing_enabled

#: Scratch for the Eq 11 rounding draws (one per call site; the scale
#: itself is fused into the backend's ``scale_round_into`` primitive).
_SCALE_DRAW_SCRATCH = ScratchBuffer(np.float64)


def scale_histogram(
    histogram: np.ndarray,
    target_total: float,
    maximum: int,
    rng: SeedLike = None,
) -> np.ndarray:
    """Scale a count histogram to a new total, preserving its shape (Eq 11).

    Entries are multiplied by ``target_total / sum(histogram)`` and rounded
    probabilistically; zero entries stay zero so empty rows/columns remain
    empty through propagation.

    Args:
        histogram: current int64 count vector.
        target_total: desired (estimated) sum after scaling.
        maximum: physical cap per entry (the opposing dimension size).
        rng: randomness for probabilistic rounding.
    """
    current_total = float(histogram.sum())
    if current_total <= 0 or target_total <= 0:
        return np.zeros_like(histogram)
    generator = resolve_rng(rng)
    n = histogram.size
    # Draws come from the caller's generator exactly as the unfused
    # scale-then-round formulation consumed them (one uniform per entry),
    # so fusing the multiply into the backend changes no rounding decision.
    draws = _SCALE_DRAW_SCRATCH.get(n)
    generator.random(out=draws)
    result = np.empty(n, dtype=np.int64)
    get_backend().scale_round_into(
        histogram, float(target_total) / current_total, draws, int(maximum), result
    )
    return result


def _propagate_product_impl(
    h_a: MNCSketch,
    h_b: MNCSketch,
    rng,
    use_extensions: bool,
    use_bounds: bool,
) -> tuple[MNCSketch, float]:
    generator = resolve_rng(rng)
    m, l = h_a.nrows, h_b.ncols
    nnz_estimate = estimate_product_nnz(
        h_a, h_b, use_extensions=use_extensions, use_bounds=use_bounds
    )
    hr_c = scale_histogram(h_a.hr, nnz_estimate, maximum=l, rng=generator)
    hc_c = scale_histogram(h_b.hc, nnz_estimate, maximum=m, rng=generator)
    _reconcile_totals(hr_c, hc_c, generator)
    exact = h_a.exact and h_b.exact and (h_a.max_hr <= 1 or h_b.max_hc <= 1)
    sketch = MNCSketch.trusted(
        shape=(m, l), hr=hr_c, hc=hc_c, her=None, hec=None,
        fully_diagonal=False, exact=exact,
    )
    return sketch, nnz_estimate


def propagate_product(
    h_a: MNCSketch,
    h_b: MNCSketch,
    rng: SeedLike = None,
    use_extensions: bool = True,
    use_bounds: bool = True,
) -> MNCSketch:
    """Derive the sketch of ``C = A B`` from the sketches of A and B.

    Runs in ``O(m + n + l)``. Extension vectors are not propagated (they are
    only kept when exactly preserved, which a generic product does not
    guarantee); the fully-diagonal special case propagates the full sketch of
    the other operand, extensions included.

    Args:
        h_a, h_b: operand sketches.
        rng: randomness for probabilistic rounding.
        use_extensions, use_bounds: forwarded to
            :func:`~repro.core.estimate.estimate_product_nnz` for the "MNC
            Basic" ablation.
    """
    if h_a.ncols != h_b.nrows:
        raise ShapeError(
            f"product requires inner dimensions to agree: {h_a.shape} x {h_b.shape}"
        )
    if h_b.fully_diagonal and h_a.ncols == h_b.nrows:
        return h_a
    if h_a.fully_diagonal and h_a.ncols == h_b.nrows:
        return h_b

    if not tracing_enabled():
        sketch, _ = _propagate_product_impl(
            h_a, h_b, rng, use_extensions, use_bounds
        )
        return sketch
    with trace(
        "mnc.propagate.matmul",
        operand_shapes=(h_a.shape, h_b.shape),
        operand_nnz=(h_a.total_nnz, h_b.total_nnz),
    ) as span:
        sketch, nnz_estimate = _propagate_product_impl(
            h_a, h_b, rng, use_extensions, use_bounds
        )
        span.annotate(result_nnz=nnz_estimate)
        return sketch


def _reconcile_totals(
    hr: np.ndarray, hc: np.ndarray, rng: np.random.Generator
) -> None:
    """Make ``sum(hr) == sum(hc)`` after independent probabilistic rounding.

    Probabilistic rounding of the two histograms is independent, so their
    totals can differ by a small random amount; the sketch invariant requires
    equality. We adjust the histogram with the larger total downwards by
    decrementing randomly chosen positive entries — an O(diff) correction
    that leaves the distribution essentially untouched.
    """
    diff = int(hr.sum() - hc.sum())
    if diff == 0:
        return
    target = hr if diff > 0 else hc
    remaining = abs(diff)
    # sum(target) == sum(other) + remaining >= remaining, so there are always
    # enough units among the positive entries to remove `remaining` of them.
    #
    # Removing units one round at a time (decrement every positive entry by
    # one, repeat) degenerates to an O(diff) loop when Eq 11's per-entry cap
    # truncated the two histograms by very different amounts. The full
    # rounds are deterministic — a round that touches *every* positive entry
    # needs no random choice — so the backend applies them in bulk: after
    # ``r`` rounds each entry holds ``max(v - r, 0)`` and ``sum(min(v, r))``
    # units are gone; it binary-searches the largest such ``r``, subtracts
    # it in place, and reports the leftovers. Only the final partial round
    # draws randomness, and it stays here in the driver so every backend
    # consumes the generator identically.
    remaining = get_backend().reconcile_bulk(target, remaining)
    if remaining > 0:
        positive = np.flatnonzero(target > 0)
        chosen = rng.choice(positive, size=remaining, replace=False)
        target[chosen] -= 1
