"""MNC sparsity estimation for matrix products (paper Section 3.2).

Implements Algorithm 1: the exact case of Theorem 3.1, the
extension-vector case, the density-map-like fallback over count vectors, and
the lower/upper bounds of Theorem 3.2.

Hot-path notes (docs/PERFORMANCE.md): the drivers read the sketches'
cached float64 count views (``hr_f64``/``hc_f64``), evaluate the
density-map fallback in reused scratch buffers, dispatch the inner
loops through :func:`repro.backends.get_backend` (numpy reference or
numba-compiled kernels, bit-identical by contract), and only enter a
tracing span when a collector is listening — the estimates are the
same under every combination.
"""

from __future__ import annotations

import numpy as np

from repro.backends import get_backend
from repro.core.scratch import ScratchBuffer
from repro.core.sketch import MNCSketch
from repro.errors import ShapeError
from repro.observability.trace import trace, tracing_enabled

#: Scratch for the density-map collision vector (one per call site; see
#: repro.core.scratch for the aliasing rules).
_DM_SCRATCH = ScratchBuffer(np.float64)
#: Scratch for the residual count vectors of the extension case (Eq 8-9).
_RESID_A_SCRATCH = ScratchBuffer(np.float64)
_RESID_B_SCRATCH = ScratchBuffer(np.float64)


def _check_product_shapes(h_a: MNCSketch, h_b: MNCSketch) -> None:
    if h_a.ncols != h_b.nrows:
        raise ShapeError(
            f"product requires inner dimensions to agree: "
            f"{h_a.shape} x {h_b.shape}"
        )


def density_map_vector_estimate(
    v_a: np.ndarray, v_b: np.ndarray, cells: float
) -> float:
    """Density-map-style estimate of the non-zeros of a sum of outer products.

    Treats each slice ``k`` of the common dimension as an outer product with
    ``v_a[k] * v_b[k]`` candidate non-zeros scattered uniformly over *cells*
    output cells, and combines slices with the probabilistic-union operator of
    Eq 4 (``s (+) t = s + t - s*t``). Evaluated in log space so thousands of
    slices do not underflow, and entirely inside a reused scratch buffer so
    the optimizer's inner loop allocates nothing here.

    Args:
        v_a: per-slice non-zero counts on the left (columns of A).
        v_b: per-slice non-zero counts on the right (rows of B).
        cells: number of output cells the non-zeros can land in.

    Returns:
        Estimated number of non-zeros, in ``[0, cells]``.
    """
    if cells <= 0:
        return 0.0
    v_a = np.asarray(v_a, dtype=np.float64)
    v_b = np.asarray(v_b, dtype=np.float64)
    if v_a.size == 0:
        return float(cells) * float(-np.expm1(0.0))
    backend = get_backend()
    collision = _DM_SCRATCH.get(v_a.size)
    # The fused kernel multiplies by the negated reciprocal (one multiply
    # replaces the divide and the negation pass; ``x * (-r) == -(x * r)``
    # exactly in IEEE 754). Counts are non-negative, so the per-slice
    # probabilities only need the upper clamp — and any slice at
    # probability >= 1 saturates the whole estimate, which the kernel
    # reports as the early-return flag.
    if backend.dm_collision_log1p(v_a, v_b, -1.0 / cells, collision):
        return float(cells)
    log_all_zero = backend.tree_sum(collision)
    return float(cells) * float(-np.expm1(log_all_zero))


def product_nnz_upper_bound(h_a: MNCSketch, h_b: MNCSketch) -> int:
    """Theorem 3.2 upper bound: ``nnz(hr_A) * nnz(hc_B)`` capped at ``m*l``.

    Every output non-zero needs a non-empty row of A and a non-empty column
    of B, so the product of those counts bounds the output non-zeros.
    """
    _check_product_shapes(h_a, h_b)
    return min(h_a.nnz_rows * h_b.nnz_cols, h_a.nrows * h_b.ncols)


def product_nnz_lower_bound(h_a: MNCSketch, h_b: MNCSketch) -> int:
    """Theorem 3.2 lower bound: ``|hr_A > n/2| * |hc_B > n/2|``.

    A row of A and column of B that are each more than half full must share
    at least one common index in the length-``n`` common dimension, so their
    output cell is guaranteed non-zero.
    """
    _check_product_shapes(h_a, h_b)
    return h_a.rows_half_full * h_b.cols_half_full


def _estimate_product_nnz_impl(
    h_a: MNCSketch, h_b: MNCSketch, use_extensions: bool, use_bounds: bool
) -> float:
    backend = get_backend()
    m = h_a.shape[0]
    l = h_b.shape[1]
    hc_a = h_a.hc_f64
    hr_b = h_b.hr_f64
    max_hr_a, nnz_rows_a, rows_half_a, rows_single_a = h_a.row_stats
    max_hc_b, nnz_cols_b, cols_half_b, cols_single_b = h_b.col_stats
    full_cells = float(m) * float(l)
    hec_a_arr = h_a.hec
    her_b_arr = h_b.her
    if max_hr_a <= 1 or max_hc_b <= 1:
        # Theorem 3.1: exact.
        nnz = backend.dot(hc_a, hr_b)
    elif use_extensions and (hec_a_arr is not None or her_b_arr is not None):
        # A missing extension vector is all-zero: its residual IS the count
        # vector and its exact-part dot product is zero, so each side only
        # pays for the extension it actually carries.
        exact_part = 0.0
        if hec_a_arr is not None:
            hec_a = h_a.hec_f64_or_zeros()
            resid_a = _RESID_A_SCRATCH.get(hc_a.size)
            backend.subtract(hc_a, hec_a, resid_a)
            exact_part += backend.dot(hec_a, hr_b)
        else:
            resid_a = hc_a
        if her_b_arr is not None:
            her_b = h_b.her_f64_or_zeros()
            resid_b = _RESID_B_SCRATCH.get(hr_b.size)
            backend.subtract(hr_b, her_b, resid_b)
            exact_part += backend.dot(resid_a, her_b)
        else:
            resid_b = hr_b
        if use_bounds:
            residual_rows = nnz_rows_a - rows_single_a
            residual_cols = nnz_cols_b - cols_single_b
            cells = float(residual_rows) * float(residual_cols)
        else:
            cells = full_cells
        generic_part = density_map_vector_estimate(resid_a, resid_b, cells)
        nnz = exact_part + generic_part
    else:
        if use_bounds:
            cells = float(nnz_rows_a) * float(nnz_cols_b)
        else:
            cells = full_cells
        nnz = density_map_vector_estimate(hc_a, hr_b, cells)

    if use_bounds:
        # Theorem 3.2 bounds, inlined from product_nnz_lower_bound /
        # product_nnz_upper_bound minus their (already-performed) shape check.
        lower = float(rows_half_a * cols_half_b)
        if nnz < lower:
            nnz = lower
        upper = float(min(nnz_rows_a * nnz_cols_b, m * l))
        if nnz > upper:
            nnz = upper
    return min(nnz, full_cells)


def estimate_product_nnz(
    h_a: MNCSketch,
    h_b: MNCSketch,
    use_extensions: bool = True,
    use_bounds: bool = True,
) -> float:
    """Estimate ``nnz(A B)`` from the MNC sketches of A and B (Algorithm 1).

    Case 1 (Theorem 3.1): if every row of A or every column of B holds at
    most one non-zero, the boolean product is a disjoint union of outer
    products and ``hc_A . hr_B`` is the exact count.

    Case 2 (extension vectors): the non-zeros contributed by single-non-zero
    rows of A and single-non-zero columns of B are counted exactly via
    ``hec_A . hr_B + (hc_A - hec_A) . her_B``; the remainder is estimated by
    the density-map fallback over the residual count vectors with the output
    restricted to the non-single, non-empty rows/columns (Eq 8–9).

    Case 3 (fallback): density-map estimate over ``hc_A``/``hr_B`` with the
    output size reduced to non-empty rows times non-empty columns, which is
    also how the Theorem 3.2 upper bound enters.

    Finally the Theorem 3.2 lower bound is imposed.

    Args:
        h_a: sketch of the left operand.
        h_b: sketch of the right operand.
        use_extensions: disable to skip the extension-vector case ("MNC
            Basic" in the paper's figures).
        use_bounds: disable to skip the Theorem 3.2 bounds and the reduced
            output size ``p`` ("MNC Basic").

    Returns:
        Estimated number of non-zeros (float; callers divide by ``m*l`` for
        sparsity or round for allocation decisions).
    """
    if h_a.shape[1] != h_b.shape[0]:
        raise ShapeError(
            f"product requires inner dimensions to agree: "
            f"{h_a.shape} x {h_b.shape}"
        )
    # Empty shapes imply empty totals, so the two nnz checks subsume the
    # m == 0 / l == 0 cases.
    if h_a.total_nnz == 0 or h_b.total_nnz == 0:
        return 0.0
    if not tracing_enabled():
        return _estimate_product_nnz_impl(h_a, h_b, use_extensions, use_bounds)
    with trace(
        "mnc.estimate.matmul",
        operand_shapes=(h_a.shape, h_b.shape),
        operand_nnz=(h_a.total_nnz, h_b.total_nnz),
    ) as span:
        nnz = _estimate_product_nnz_impl(h_a, h_b, use_extensions, use_bounds)
        span.annotate(result_nnz=nnz)
        return nnz


def estimate_product_sparsity(
    h_a: MNCSketch,
    h_b: MNCSketch,
    use_extensions: bool = True,
    use_bounds: bool = True,
) -> float:
    """Estimate the sparsity of ``A B`` (Algorithm 1 scaled by ``m*l``)."""
    _check_product_shapes(h_a, h_b)
    cells = h_a.nrows * h_b.ncols
    if cells == 0:
        return 0.0
    nnz = estimate_product_nnz(
        h_a, h_b, use_extensions=use_extensions, use_bounds=use_bounds
    )
    return nnz / cells
