"""MNC sparsity estimation for matrix products (paper Section 3.2).

Implements Algorithm 1: the exact case of Theorem 3.1, the
extension-vector case, the density-map-like fallback over count vectors, and
the lower/upper bounds of Theorem 3.2.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.core.sketch import MNCSketch
from repro.observability.trace import trace


def _check_product_shapes(h_a: MNCSketch, h_b: MNCSketch) -> None:
    if h_a.ncols != h_b.nrows:
        raise ShapeError(
            f"product requires inner dimensions to agree: "
            f"{h_a.shape} x {h_b.shape}"
        )


def density_map_vector_estimate(
    v_a: np.ndarray, v_b: np.ndarray, cells: float
) -> float:
    """Density-map-style estimate of the non-zeros of a sum of outer products.

    Treats each slice ``k`` of the common dimension as an outer product with
    ``v_a[k] * v_b[k]`` candidate non-zeros scattered uniformly over *cells*
    output cells, and combines slices with the probabilistic-union operator of
    Eq 4 (``s (+) t = s + t - s*t``). Evaluated in log space so thousands of
    slices do not underflow.

    Args:
        v_a: per-slice non-zero counts on the left (columns of A).
        v_b: per-slice non-zero counts on the right (rows of B).
        cells: number of output cells the non-zeros can land in.

    Returns:
        Estimated number of non-zeros, in ``[0, cells]``.
    """
    if cells <= 0:
        return 0.0
    collision = (
        np.asarray(v_a, dtype=np.float64) * np.asarray(v_b, dtype=np.float64)
    ) / cells
    np.clip(collision, 0.0, 1.0, out=collision)
    if np.any(collision >= 1.0):
        return float(cells)
    log_all_zero = np.log1p(-collision).sum()
    return float(cells) * float(-np.expm1(log_all_zero))


def product_nnz_upper_bound(h_a: MNCSketch, h_b: MNCSketch) -> int:
    """Theorem 3.2 upper bound: ``nnz(hr_A) * nnz(hc_B)`` capped at ``m*l``.

    Every output non-zero needs a non-empty row of A and a non-empty column
    of B, so the product of those counts bounds the output non-zeros.
    """
    _check_product_shapes(h_a, h_b)
    return min(h_a.nnz_rows * h_b.nnz_cols, h_a.nrows * h_b.ncols)


def product_nnz_lower_bound(h_a: MNCSketch, h_b: MNCSketch) -> int:
    """Theorem 3.2 lower bound: ``|hr_A > n/2| * |hc_B > n/2|``.

    A row of A and column of B that are each more than half full must share
    at least one common index in the length-``n`` common dimension, so their
    output cell is guaranteed non-zero.
    """
    _check_product_shapes(h_a, h_b)
    return h_a.rows_half_full * h_b.cols_half_full


def estimate_product_nnz(
    h_a: MNCSketch,
    h_b: MNCSketch,
    use_extensions: bool = True,
    use_bounds: bool = True,
) -> float:
    """Estimate ``nnz(A B)`` from the MNC sketches of A and B (Algorithm 1).

    Case 1 (Theorem 3.1): if every row of A or every column of B holds at
    most one non-zero, the boolean product is a disjoint union of outer
    products and ``hc_A . hr_B`` is the exact count.

    Case 2 (extension vectors): the non-zeros contributed by single-non-zero
    rows of A and single-non-zero columns of B are counted exactly via
    ``hec_A . hr_B + (hc_A - hec_A) . her_B``; the remainder is estimated by
    the density-map fallback over the residual count vectors with the output
    restricted to the non-single, non-empty rows/columns (Eq 8–9).

    Case 3 (fallback): density-map estimate over ``hc_A``/``hr_B`` with the
    output size reduced to non-empty rows times non-empty columns, which is
    also how the Theorem 3.2 upper bound enters.

    Finally the Theorem 3.2 lower bound is imposed.

    Args:
        h_a: sketch of the left operand.
        h_b: sketch of the right operand.
        use_extensions: disable to skip the extension-vector case ("MNC
            Basic" in the paper's figures).
        use_bounds: disable to skip the Theorem 3.2 bounds and the reduced
            output size ``p`` ("MNC Basic").

    Returns:
        Estimated number of non-zeros (float; callers divide by ``m*l`` for
        sparsity or round for allocation decisions).
    """
    _check_product_shapes(h_a, h_b)
    m, l = h_a.nrows, h_b.ncols
    if m == 0 or l == 0 or h_a.total_nnz == 0 or h_b.total_nnz == 0:
        return 0.0

    with trace(
        "mnc.estimate.matmul",
        operand_shapes=(h_a.shape, h_b.shape),
        operand_nnz=(h_a.total_nnz, h_b.total_nnz),
    ) as span:
        hc_a = h_a.hc.astype(np.float64)
        hr_b = h_b.hr.astype(np.float64)
        full_cells = float(m) * float(l)
        if h_a.max_hr <= 1 or h_b.max_hc <= 1:
            # Theorem 3.1: exact.
            nnz = float(hc_a @ hr_b)
        elif use_extensions and (h_a.hec is not None or h_b.her is not None):
            hec_a = h_a.hec_or_zeros().astype(np.float64)
            her_b = h_b.her_or_zeros().astype(np.float64)
            exact_part = float(hec_a @ hr_b + (hc_a - hec_a) @ her_b)
            if use_bounds:
                residual_rows = h_a.nnz_rows - h_a.rows_single
                residual_cols = h_b.nnz_cols - h_b.cols_single
                cells = float(residual_rows) * float(residual_cols)
            else:
                cells = full_cells
            generic_part = density_map_vector_estimate(
                hc_a - hec_a, hr_b - her_b, cells
            )
            nnz = exact_part + generic_part
        else:
            if use_bounds:
                cells = float(h_a.nnz_rows) * float(h_b.nnz_cols)
            else:
                cells = full_cells
            nnz = density_map_vector_estimate(hc_a, hr_b, cells)

        if use_bounds:
            nnz = max(nnz, float(product_nnz_lower_bound(h_a, h_b)))
            nnz = min(nnz, float(product_nnz_upper_bound(h_a, h_b)))
        nnz = min(nnz, full_cells)
        span.annotate(result_nnz=nnz)
        return nnz


def estimate_product_sparsity(
    h_a: MNCSketch,
    h_b: MNCSketch,
    use_extensions: bool = True,
    use_bounds: bool = True,
) -> float:
    """Estimate the sparsity of ``A B`` (Algorithm 1 scaled by ``m*l``)."""
    _check_product_shapes(h_a, h_b)
    cells = h_a.nrows * h_b.ncols
    if cells == 0:
        return 0.0
    nnz = estimate_product_nnz(
        h_a, h_b, use_extensions=use_extensions, use_bounds=use_bounds
    )
    return nnz / cells
