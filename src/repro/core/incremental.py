"""Incremental MNC sketch maintenance for dynamic matrices.

Every estimator in the library assumes build-once matrices: you sketch a
matrix with :meth:`MNCSketch.from_matrix` and the sketch is immutable.
Production traffic mutates data — rows are appended to feature matrices,
sliding-window graphs drop old vertices, recommender blocks are rewritten
in place. Rebuilding an ``O(nnz)`` sketch for an ``O(delta)`` change wastes
almost all of its work: the paper's row/column histograms are cheaply
patchable per delta, and only the *extension vectors* (``her``/``hec``,
Section 3.1) need a repair rule because they couple the two axes.

:class:`IncrementalSketch` holds the evolving non-zero *structure* (MNC
never looks at values) and maintains the sketch ingredients under five
delta kinds:

- :class:`AppendRows` / :class:`AppendCols` — new trailing rows/columns
  with explicit non-zero patterns,
- :class:`DeleteRows` / :class:`DeleteCols` — drop rows/columns by
  position (later positions shift down, as in a database compaction),
- :class:`BlockUpdate` — overwrite the structure of a contiguous
  submatrix with a new boolean pattern.

Internally rows and columns live in *slots*: monotonically increasing
ids that are never renumbered while alive (appends take fresh ids,
deletes only flip an alive bit). Because appends always allocate past
the current maximum, ascending slot order equals ascending *position*
order at all times, and compaction to position space is a single fancy
index per axis. Adjacency is kept per-slot with lazy hygiene — deleted
slots linger in neighbour lists and are filtered through the alive masks
on read — so a delete is ``O(delta)`` instead of ``O(nnz)``.

The extension repair rule (the paper's ``e_max`` analogue) is lazy and
local, in the spirit of Du et al.'s sampled probes (PAPERS.md): a row
``r`` is ``her``-dirty when its own structure changed or when some
column it intersects crossed the ``hc == 1`` boundary; symmetrically for
``hec``. Dirty entries are recomputed only at materialization time and
only from their own adjacency. :meth:`IncrementalSketch.sketch` performs
the repair and returns an :class:`MNCSketch` *field-identical* to
``MNCSketch.from_matrix`` on the rebuilt matrix (the differential
``incremental_equals_rebuild`` verify contract fuzzes exactly this
equivalence); :meth:`IncrementalSketch.peek` skips the repair and
returns a degraded sketch with extensions dropped and ``exact=False``
whenever a delta made them stale.

See docs/STREAMING.md for the delta model, the repair rule, and how
deltas chain into catalog delta-fingerprints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

import numpy as np
import scipy.sparse as sp

from repro.core.sketch import MNCSketch
from repro.errors import ShapeError, SketchError
from repro.matrix.conversion import MatrixLike, as_csc, as_csr
from repro.observability.trace import count

__all__ = [
    "AppendCols",
    "AppendRows",
    "BlockUpdate",
    "Delta",
    "DeleteCols",
    "DeleteRows",
    "IncrementalSketch",
    "apply_update",
    "apply_updates",
    "delta_from_payload",
    "delta_to_payload",
    "random_deltas",
]

_INT = np.int64


def _positions(values, axis_name: str) -> np.ndarray:
    """Normalize *values* to a sorted, unique int64 position vector."""
    arr = np.asarray(values, dtype=_INT).reshape(-1)
    if arr.size and arr.min() < 0:
        raise SketchError(f"{axis_name} positions must be non-negative")
    return np.unique(arr)


def _pattern_tuple(patterns, axis_name: str) -> tuple[np.ndarray, ...]:
    return tuple(_positions(p, axis_name) for p in patterns)


@dataclass(frozen=True, eq=False)
class AppendRows:
    """Append ``len(patterns)`` rows; each pattern lists its non-zero columns."""

    patterns: tuple[np.ndarray, ...]

    def __init__(self, patterns: Iterable) -> None:
        object.__setattr__(
            self, "patterns", _pattern_tuple(patterns, "column")
        )


@dataclass(frozen=True, eq=False)
class AppendCols:
    """Append ``len(patterns)`` columns; each pattern lists its non-zero rows."""

    patterns: tuple[np.ndarray, ...]

    def __init__(self, patterns: Iterable) -> None:
        object.__setattr__(self, "patterns", _pattern_tuple(patterns, "row"))


@dataclass(frozen=True, eq=False)
class DeleteRows:
    """Delete rows by current position (later rows shift up)."""

    positions: np.ndarray

    def __init__(self, positions) -> None:
        object.__setattr__(self, "positions", _positions(positions, "row"))


@dataclass(frozen=True, eq=False)
class DeleteCols:
    """Delete columns by current position (later columns shift left)."""

    positions: np.ndarray

    def __init__(self, positions) -> None:
        object.__setattr__(self, "positions", _positions(positions, "column"))


@dataclass(frozen=True, eq=False)
class BlockUpdate:
    """Overwrite the structure of a submatrix with a boolean pattern.

    The block spans rows ``[row_start, row_start + pattern.shape[0])`` and
    columns ``[col_start, col_start + pattern.shape[1])`` in *position*
    space; cells inside the block take exactly the pattern's structure,
    cells outside are untouched.
    """

    row_start: int
    col_start: int
    pattern: np.ndarray

    def __init__(self, row_start: int, col_start: int, pattern) -> None:
        pat = np.ascontiguousarray(np.asarray(pattern) != 0)
        if pat.ndim != 2:
            raise SketchError(
                f"block pattern must be 2-D, got shape {pat.shape}"
            )
        if row_start < 0 or col_start < 0:
            raise SketchError("block origin must be non-negative")
        object.__setattr__(self, "row_start", int(row_start))
        object.__setattr__(self, "col_start", int(col_start))
        object.__setattr__(self, "pattern", pat)


Delta = Union[AppendRows, AppendCols, DeleteRows, DeleteCols, BlockUpdate]

_DELTA_KINDS = {
    AppendRows: "append_rows",
    AppendCols: "append_cols",
    DeleteRows: "delete_rows",
    DeleteCols: "delete_cols",
    BlockUpdate: "block",
}


def delta_to_payload(delta: Delta) -> dict:
    """Encode *delta* as a JSON-safe dict (the serve wire format)."""
    if isinstance(delta, (AppendRows, AppendCols)):
        return {
            "kind": _DELTA_KINDS[type(delta)],
            "patterns": [p.tolist() for p in delta.patterns],
        }
    if isinstance(delta, (DeleteRows, DeleteCols)):
        return {
            "kind": _DELTA_KINDS[type(delta)],
            "positions": delta.positions.tolist(),
        }
    if isinstance(delta, BlockUpdate):
        return {
            "kind": "block",
            "row_start": delta.row_start,
            "col_start": delta.col_start,
            "pattern": delta.pattern.astype(np.uint8).tolist(),
        }
    raise SketchError(f"unknown delta type {type(delta).__name__}")


def delta_from_payload(obj: object) -> Delta:
    """Decode a dict produced by :func:`delta_to_payload`.

    Raises :class:`SketchError` on malformed payloads; the serve protocol
    layer maps that to a 400.
    """
    if not isinstance(obj, dict):
        raise SketchError("delta payload must be an object")
    kind = obj.get("kind")
    try:
        if kind == "append_rows":
            return AppendRows(obj["patterns"])
        if kind == "append_cols":
            return AppendCols(obj["patterns"])
        if kind == "delete_rows":
            return DeleteRows(obj["positions"])
        if kind == "delete_cols":
            return DeleteCols(obj["positions"])
        if kind == "block":
            return BlockUpdate(
                obj["row_start"], obj["col_start"], obj["pattern"]
            )
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, SketchError):
            raise
        raise SketchError(f"malformed {kind!r} delta payload: {exc}") from exc
    raise SketchError(f"unknown delta kind {kind!r}")


def _segment_counts(bases: list, predicate) -> np.ndarray:
    """Per-segment count of ``predicate`` hits over concatenated *bases*.

    One vectorized pass instead of one numpy round trip per segment —
    the repair loop calls this for every dirty row/column batch.
    """
    sizes = np.fromiter((b.size for b in bases), dtype=_INT, count=len(bases))
    bounds = np.zeros(len(bases) + 1, dtype=np.int64)
    np.cumsum(sizes, out=bounds[1:])
    if not bounds[-1]:
        return np.zeros(len(bases), dtype=_INT)
    hits = np.concatenate(([0], np.cumsum(predicate(np.concatenate(bases)))))
    return (hits[bounds[1:]] - hits[bounds[:-1]]).astype(_INT)


def _grow(arr: np.ndarray, need: int) -> np.ndarray:
    if need <= arr.size:
        return arr
    new = np.zeros(max(need, 2 * arr.size, 16), dtype=arr.dtype)
    new[: arr.size] = arr
    return new


class IncrementalSketch:
    """Mutable MNC sketch over an evolving sparse structure.

    The instance owns the structure: construct it from a matrix, feed it
    deltas via :func:`apply_update`, and materialize immutable
    :class:`MNCSketch` snapshots with :meth:`sketch` (exact, repaired) or
    :meth:`peek` (cheap, possibly degraded). ``O(m + n + delta)`` per
    update/materialization cycle versus ``O(nnz)`` for a rebuild.

    Not thread-safe; callers serialize updates (the serve registry holds
    one per matrix behind its own lock).
    """

    def __init__(self, matrix: MatrixLike) -> None:
        csr = as_csr(matrix)
        csc = as_csc(csr)
        m, n = csr.shape
        indices = csr.indices.astype(_INT, copy=False)
        cindices = csc.indices.astype(_INT, copy=False)
        self._rows: list[np.ndarray] = (
            np.split(indices, csr.indptr[1:-1]) if m else []
        )
        self._cols: list[np.ndarray] = (
            np.split(cindices, csc.indptr[1:-1]) if n else []
        )
        self._hr = np.diff(csr.indptr).astype(_INT)
        self._hc = np.diff(csc.indptr).astype(_INT)
        # Full extension vectors, valid everywhere at construction (the
        # from_matrix gating — drop when all-zero or max counts <= 1 —
        # is applied at materialization, not here).
        single_cols = self._hc == 1
        row_ids = np.repeat(np.arange(m), self._hr)
        self._her = np.bincount(
            row_ids[single_cols[indices]], minlength=m
        ).astype(_INT)
        single_rows = self._hr == 1
        col_ids = np.repeat(np.arange(n), self._hc)
        self._hec = np.bincount(
            col_ids[single_rows[cindices]], minlength=n
        ).astype(_INT)
        self._row_alive = np.ones(m, dtype=bool)
        self._col_alive = np.ones(n, dtype=bool)
        self._row_top = m
        self._col_top = n
        self._m = m
        self._n = n
        self._nnz = int(csr.nnz)
        # Lazy adjacency hygiene: cells added after construction live in
        # the extra sets, cells removed by block updates in the removed
        # sets; reads merge them. Row-side removals are never needed —
        # block updates rewrite row bases wholesale and column deletes
        # are handled by the alive mask.
        self._row_extra: dict[int, set[int]] = {}
        self._col_extra: dict[int, set[int]] = {}
        self._col_removed: dict[int, set[int]] = {}
        # Col-side cells from appended rows, kept as whole (rows, cols)
        # batches: appends are the streaming hot path, so they must not
        # pay per-cell dict/set work. Reads merge these lazily; a batch
        # entry is superseded by the alive masks and ``_col_removed`` the
        # same way base cells are, and compaction folds them away.
        self._col_pending: list[tuple[np.ndarray, np.ndarray]] = []
        self._her_dirty: set[int] = set()
        self._hec_dirty: set[int] = set()
        self._alive_rows_cache: Optional[np.ndarray] = None
        self._alive_cols_cache: Optional[np.ndarray] = None
        self._cached_sketch: Optional[MNCSketch] = None
        self._pending_cells = 0
        self._updates_applied = 0
        self._compactions = 0

    @classmethod
    def from_matrix(cls, matrix: MatrixLike) -> IncrementalSketch:
        """Build the incremental sketch of *matrix* (alias of the ctor)."""
        return cls(matrix)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return (self._m, self._n)

    @property
    def total_nnz(self) -> int:
        return self._nnz

    @property
    def extensions_stale(self) -> bool:
        """True when a delta invalidated extension entries not yet repaired."""
        return bool(self._her_dirty or self._hec_dirty)

    def stats(self) -> dict:
        """Bookkeeping counters (slots, dirtiness, compactions)."""
        return {
            "shape": self.shape,
            "nnz": self._nnz,
            "row_slots": self._row_top,
            "col_slots": self._col_top,
            "dead_rows": self._row_top - self._m,
            "dead_cols": self._col_top - self._n,
            "her_dirty": len(self._her_dirty),
            "hec_dirty": len(self._hec_dirty),
            "pending_cells": self._pending_cells,
            "updates_applied": self._updates_applied,
            "compactions": self._compactions,
        }

    # ------------------------------------------------------------------
    # Slot-space helpers
    # ------------------------------------------------------------------

    def _alive_row_slots(self) -> np.ndarray:
        if self._alive_rows_cache is None:
            self._alive_rows_cache = np.flatnonzero(
                self._row_alive[: self._row_top]
            )
        return self._alive_rows_cache

    def _alive_col_slots(self) -> np.ndarray:
        if self._alive_cols_cache is None:
            self._alive_cols_cache = np.flatnonzero(
                self._col_alive[: self._col_top]
            )
        return self._alive_cols_cache

    def _row_struct(self, r: int) -> np.ndarray:
        """Alive column slots of row slot *r*, ascending."""
        base = self._rows[r]
        if base.size:
            base = base[self._col_alive[base]]
        extra = self._row_extra.get(r)
        if extra:
            add = np.fromiter(extra, dtype=_INT, count=len(extra))
            add = add[self._col_alive[add]]
            if add.size:
                # Extras are always newer (larger) slots than the base.
                base = np.concatenate([base, np.sort(add)])
        return base

    def _col_struct(self, c: int) -> np.ndarray:
        """Alive row slots of column slot *c* (order unspecified).

        Every consumer aggregates (bincounts, boundary marking, extension
        counts), so merge order between base, pending, and extra cells
        does not matter.
        """
        base = self._cols[c]
        if base.size:
            base = base[self._row_alive[base]]
        pend: list[np.ndarray] = []
        for rb, cb in self._col_pending:
            hit = rb[cb == c]
            if hit.size:
                hit = hit[self._row_alive[hit]]
                if hit.size:
                    pend.append(hit)
        if pend:
            base = np.concatenate([base, *pend])
        removed = self._col_removed.get(c)
        if removed and base.size:
            rem = np.fromiter(removed, dtype=_INT, count=len(removed))
            base = base[np.isin(base, rem, invert=True)]
        extra = self._col_extra.get(c)
        if extra:
            add = np.fromiter(extra, dtype=_INT, count=len(extra))
            add = add[self._row_alive[add]]
            if add.size:
                base = np.concatenate([base, np.sort(add)])
        return base

    def _add_cell_colside(self, r: int, c: int) -> None:
        removed = self._col_removed.get(c)
        if removed and r in removed:
            removed.discard(r)
        else:
            self._col_extra.setdefault(c, set()).add(r)
        self._pending_cells += 1

    def _add_cells_rowside(self, rows: np.ndarray, cols: np.ndarray) -> None:
        """Row-side twin of :meth:`_add_cells_colside` (appended columns).

        Row-side removals never exist (see the adjacency-hygiene note in
        ``__init__``), so every cell lands in ``_row_extra`` directly.
        """
        order = np.argsort(rows, kind="stable")
        rs = rows[order]
        cs = cols[order].tolist()
        starts = np.flatnonzero(np.diff(rs)) + 1
        bounds = [0] + starts.tolist() + [rs.size]
        heads = rs[np.concatenate(([0], starts))].tolist() if rs.size else []
        row_extra = self._row_extra
        for gi, r in enumerate(heads):
            segment = cs[bounds[gi]:bounds[gi + 1]]
            extra = row_extra.get(r)
            if extra is None:
                row_extra[r] = set(segment)
            else:
                extra.update(segment)
        self._pending_cells += int(rows.size)

    def _remove_cell_colside(self, r: int, c: int) -> None:
        extra = self._col_extra.get(c)
        if extra and r in extra:
            extra.discard(r)
        else:
            self._col_removed.setdefault(c, set()).add(r)
        self._pending_cells += 1

    # ------------------------------------------------------------------
    # Dirty marking (the repair rule's write side)
    # ------------------------------------------------------------------
    #
    # her[r] depends on row r's own structure and on which of its columns
    # hold exactly one non-zero. So r goes dirty when its structure
    # changes, and every member row of a column goes dirty when that
    # column's count crosses the hc == 1 boundary. hec is symmetric.

    def _mark_her_for_hc_boundary(
        self, affected: np.ndarray, old_hc: np.ndarray
    ) -> None:
        new_hc = self._hc[affected]
        crossing = affected[
            (new_hc != old_hc) & ((old_hc == 1) | (new_hc == 1))
        ]
        for c in crossing.tolist():
            self._her_dirty.update(self._col_struct(c).tolist())

    def _mark_hec_for_hr_boundary(
        self, affected: np.ndarray, old_hr: np.ndarray
    ) -> None:
        new_hr = self._hr[affected]
        crossing = affected[
            (new_hr != old_hr) & ((old_hr == 1) | (new_hr == 1))
        ]
        for r in crossing.tolist():
            self._hec_dirty.update(self._row_struct(r).tolist())

    # ------------------------------------------------------------------
    # Delta application
    # ------------------------------------------------------------------

    def _apply_append_rows(self, delta: AppendRows) -> None:
        patterns = delta.patterns
        if not patterns:
            return
        n = self._n
        for pat in patterns:
            if pat.size and pat[-1] >= n:
                raise ShapeError(
                    f"appended row touches column {int(pat[-1])} "
                    f"but the matrix has {n} columns"
                )
        alive_cols = self._alive_col_slots()
        k = len(patterns)
        top = self._row_top
        self._hr = _grow(self._hr, top + k)
        self._her = _grow(self._her, top + k)
        self._row_alive = _grow(self._row_alive, top + k)
        slot_patterns = []
        sizes = np.empty(k, dtype=_INT)
        for i, pat in enumerate(patterns):
            cols = alive_cols[pat] if pat.size else pat.astype(_INT, copy=False)
            self._rows.append(cols)
            slot_patterns.append(cols)
            sizes[i] = cols.size
            if cols.size == 1:
                self._hec_dirty.add(int(cols[0]))
        self._hr[top:top + k] = sizes
        self._her[top:top + k] = 0
        self._row_alive[top:top + k] = True
        self._her_dirty.update(range(top, top + k))
        self._row_top = top + k
        self._m += k
        added = (
            np.concatenate(slot_patterns)
            if any(p.size for p in slot_patterns)
            else np.empty(0, dtype=_INT)
        )
        if added.size:
            owners = np.repeat(np.arange(top, top + k, dtype=_INT), sizes)
            self._col_pending.append((owners, added))
            self._pending_cells += int(added.size)
            inc = np.bincount(added, minlength=self._col_top)
            affected = np.flatnonzero(inc)
            old_hc = self._hc[affected].copy()
            self._hc[affected] += inc[affected]
            self._nnz += int(added.size)
            self._mark_her_for_hc_boundary(affected, old_hc)
        self._alive_rows_cache = None

    def _apply_append_cols(self, delta: AppendCols) -> None:
        patterns = delta.patterns
        if not patterns:
            return
        m = self._m
        for pat in patterns:
            if pat.size and pat[-1] >= m:
                raise ShapeError(
                    f"appended column touches row {int(pat[-1])} "
                    f"but the matrix has {m} rows"
                )
        alive_rows = self._alive_row_slots()
        k = len(patterns)
        top = self._col_top
        self._hc = _grow(self._hc, top + k)
        self._hec = _grow(self._hec, top + k)
        self._col_alive = _grow(self._col_alive, top + k)
        slot_patterns = []
        sizes = np.empty(k, dtype=_INT)
        for i, pat in enumerate(patterns):
            rows = alive_rows[pat] if pat.size else pat.astype(_INT, copy=False)
            self._cols.append(rows)
            slot_patterns.append(rows)
            sizes[i] = rows.size
            if rows.size == 1:
                self._her_dirty.add(int(rows[0]))
        self._hc[top:top + k] = sizes
        self._hec[top:top + k] = 0
        self._col_alive[top:top + k] = True
        self._hec_dirty.update(range(top, top + k))
        self._col_top = top + k
        self._n += k
        added = (
            np.concatenate(slot_patterns)
            if any(p.size for p in slot_patterns)
            else np.empty(0, dtype=_INT)
        )
        if added.size:
            owners = np.repeat(np.arange(top, top + k, dtype=_INT), sizes)
            self._add_cells_rowside(added, owners)
            inc = np.bincount(added, minlength=self._row_top)
            affected = np.flatnonzero(inc)
            old_hr = self._hr[affected].copy()
            self._hr[affected] += inc[affected]
            self._nnz += int(added.size)
            self._mark_hec_for_hr_boundary(affected, old_hr)
        self._alive_cols_cache = None

    def _apply_delete_rows(self, delta: DeleteRows) -> None:
        positions = delta.positions
        if not positions.size:
            return
        if positions[-1] >= self._m:
            raise ShapeError(
                f"cannot delete row {int(positions[-1])} "
                f"of a {self._m}-row matrix"
            )
        slots = self._alive_row_slots()[positions]
        structs = [self._row_struct(int(r)) for r in slots]
        removed_cells = (
            np.concatenate(structs)
            if any(s.size for s in structs)
            else np.empty(0, dtype=_INT)
        )
        for r, struct in zip(slots.tolist(), structs):
            self._row_alive[r] = False
            self._her_dirty.discard(r)
            if self._hr[r] == 1:
                # A single-nnz row contributed to hec of its one column.
                self._hec_dirty.add(int(struct[0]))
        self._m -= int(slots.size)
        if removed_cells.size:
            dec = np.bincount(removed_cells, minlength=self._col_top)
            affected = np.flatnonzero(dec)
            old_hc = self._hc[affected].copy()
            self._hc[affected] -= dec[affected]
            self._nnz -= int(removed_cells.size)
            self._mark_her_for_hc_boundary(affected, old_hc)
        self._alive_rows_cache = None
        self._maybe_compact()

    def _apply_delete_cols(self, delta: DeleteCols) -> None:
        positions = delta.positions
        if not positions.size:
            return
        if positions[-1] >= self._n:
            raise ShapeError(
                f"cannot delete column {int(positions[-1])} "
                f"of a {self._n}-column matrix"
            )
        slots = self._alive_col_slots()[positions]
        structs = [self._col_struct(int(c)) for c in slots]
        removed_cells = (
            np.concatenate(structs)
            if any(s.size for s in structs)
            else np.empty(0, dtype=_INT)
        )
        for c, struct in zip(slots.tolist(), structs):
            self._col_alive[c] = False
            self._hec_dirty.discard(c)
            if self._hc[c] == 1:
                self._her_dirty.add(int(struct[0]))
        self._n -= int(slots.size)
        if removed_cells.size:
            dec = np.bincount(removed_cells, minlength=self._row_top)
            affected = np.flatnonzero(dec)
            old_hr = self._hr[affected].copy()
            self._hr[affected] -= dec[affected]
            self._nnz -= int(removed_cells.size)
            self._mark_hec_for_hr_boundary(affected, old_hr)
        self._alive_cols_cache = None
        self._maybe_compact()

    def _apply_block(self, delta: BlockUpdate) -> None:
        bh, bw = delta.pattern.shape
        r0, c0 = delta.row_start, delta.col_start
        if r0 + bh > self._m or c0 + bw > self._n:
            raise ShapeError(
                f"block [{r0}:{r0 + bh}, {c0}:{c0 + bw}] exceeds "
                f"matrix shape {self.shape}"
            )
        if bh == 0 or bw == 0:
            return
        alive_rows = self._alive_row_slots()
        alive_cols = self._alive_col_slots()
        block_col_slots = alive_cols[c0 : c0 + bw]
        lo = int(block_col_slots[0])
        hi = int(block_col_slots[-1])
        added_all: list[np.ndarray] = []
        removed_all: list[np.ndarray] = []
        hec_mark: set[int] = set()
        for i in range(bh):
            r = int(alive_rows[r0 + i])
            old_struct = self._row_struct(r)
            in_block = (old_struct >= lo) & (old_struct <= hi)
            old_block = old_struct[in_block]
            new_block = block_col_slots[np.flatnonzero(delta.pattern[i])]
            old_hr = int(self._hr[r])
            if old_block.size == new_block.size and np.array_equal(
                old_block, new_block
            ):
                continue
            outside = old_struct[~in_block]
            new_struct = np.sort(np.concatenate([outside, new_block]))
            removed = np.setdiff1d(old_block, new_block, assume_unique=True)
            added = np.setdiff1d(new_block, old_block, assume_unique=True)
            self._rows[r] = new_struct
            self._row_extra.pop(r, None)
            new_hr = int(new_struct.size)
            self._hr[r] = new_hr
            self._her_dirty.add(r)
            for c in added.tolist():
                self._add_cell_colside(r, c)
            for c in removed.tolist():
                self._remove_cell_colside(r, c)
            if added.size:
                added_all.append(added)
            if removed.size:
                removed_all.append(removed)
            # hr crossing the == 1 boundary (or a single-nnz row moving
            # its one cell) shifts hec contributions on both old and new
            # column sets.
            if old_hr == 1:
                hec_mark.update(old_struct.tolist())
            if new_hr == 1:
                hec_mark.update(new_struct.tolist())
        self._hec_dirty.update(hec_mark)
        deltas = []
        if added_all:
            add = np.concatenate(added_all)
            deltas.append((add, 1))
        if removed_all:
            rem = np.concatenate(removed_all)
            deltas.append((rem, -1))
        if deltas:
            net = np.zeros(self._col_top, dtype=_INT)
            for cells, sign in deltas:
                net += sign * np.bincount(cells, minlength=self._col_top)
                self._nnz += sign * int(cells.size)
            affected = np.flatnonzero(net)
            old_hc = self._hc[affected].copy()
            self._hc[affected] += net[affected]
            self._mark_her_for_hc_boundary(affected, old_hc)
        self._maybe_compact()

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------

    def _maybe_compact(self) -> None:
        dead = (self._row_top - self._m) + (self._col_top - self._n)
        alive = self._m + self._n
        if dead > alive + 64 or self._pending_cells > max(
            1024, 2 * self._nnz
        ):
            self._compact()

    def _compact(self) -> None:
        """Renumber slots to position space and drop lazy hygiene debt."""
        rows_idx = self._alive_row_slots()
        cols_idx = self._alive_col_slots()
        structs = [self._row_struct(int(r)) for r in rows_idx]
        new_rows = [np.searchsorted(cols_idx, s).astype(_INT) for s in structs]
        csr = self._csr_from(new_rows)
        csc = as_csc(csr)
        m, n = self._m, self._n
        her_dirty = {
            int(np.searchsorted(rows_idx, r))
            for r in self._her_dirty
            if self._row_alive[r]
        }
        hec_dirty = {
            int(np.searchsorted(cols_idx, c))
            for c in self._hec_dirty
            if self._col_alive[c]
        }
        self._rows = new_rows
        self._cols = (
            np.split(csc.indices.astype(_INT, copy=False), csc.indptr[1:-1])
            if n
            else []
        )
        self._hr = np.ascontiguousarray(self._hr[rows_idx])
        self._hc = np.ascontiguousarray(self._hc[cols_idx])
        self._her = np.ascontiguousarray(self._her[rows_idx])
        self._hec = np.ascontiguousarray(self._hec[cols_idx])
        self._row_alive = np.ones(m, dtype=bool)
        self._col_alive = np.ones(n, dtype=bool)
        self._row_top = m
        self._col_top = n
        self._row_extra.clear()
        self._col_extra.clear()
        self._col_removed.clear()
        self._col_pending.clear()
        self._her_dirty = her_dirty
        self._hec_dirty = hec_dirty
        self._alive_rows_cache = None
        self._alive_cols_cache = None
        self._pending_cells = 0
        self._compactions += 1
        count("incremental.compactions")

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------

    def _repair(self) -> None:
        """Recompute extension entries only for touched rows/columns."""
        if self._her_dirty:
            hc = self._hc
            row_extra = self._row_extra
            fast_slots: list[int] = []
            fast_bases: list[np.ndarray] = []
            for r in self._her_dirty:
                if not self._row_alive[r]:
                    continue
                if r in row_extra:
                    cols = self._row_struct(r)
                    self._her[r] = (
                        int(np.count_nonzero(hc[cols] == 1))
                        if cols.size else 0
                    )
                else:
                    fast_slots.append(r)
                    fast_bases.append(self._rows[r])
            if fast_slots:
                self._her[fast_slots] = _segment_counts(
                    fast_bases, lambda cat: self._col_alive[cat] & (hc[cat] == 1)
                )
            count("incremental.her_repaired", len(self._her_dirty))
            self._her_dirty.clear()
        if self._hec_dirty:
            hr = self._hr
            untouched = self._fast_cols_mask()
            fast_slots = []
            fast_bases = []
            for c in self._hec_dirty:
                if not self._col_alive[c]:
                    continue
                if untouched is not None and untouched[c]:
                    fast_slots.append(c)
                    fast_bases.append(self._cols[c])
                else:
                    rows = self._col_struct(c)
                    self._hec[c] = (
                        int(np.count_nonzero(hr[rows] == 1))
                        if rows.size else 0
                    )
            if fast_slots:
                self._hec[fast_slots] = _segment_counts(
                    fast_bases, lambda cat: self._row_alive[cat] & (hr[cat] == 1)
                )
            count("incremental.hec_repaired", len(self._hec_dirty))
            self._hec_dirty.clear()

    def _fast_cols_mask(self) -> Optional[np.ndarray]:
        """Mask of column slots whose base list is the whole truth.

        ``None`` means no column qualifies (cheap answer when pending
        batches exist but computing the mask would not pay off).
        """
        if not (self._col_extra or self._col_removed or self._col_pending):
            return np.ones(self._col_top, dtype=bool)
        mask = np.ones(self._col_top, dtype=bool)
        for c in self._col_extra:
            mask[c] = False
        for c in self._col_removed:
            mask[c] = False
        for _, cb in self._col_pending:
            mask[cb] = False
        return mask

    def _is_diagonal(
        self,
        rows_idx: np.ndarray,
        cols_idx: np.ndarray,
        max_hr: int,
        max_hc: int,
    ) -> bool:
        m, n = self._m, self._n
        if m != n or self._nnz != m:
            return False
        if m == 0:
            return True
        if max_hr != 1 or max_hc != 1:
            return False
        for i, r in enumerate(rows_idx.tolist()):
            struct = self._row_struct(r)
            if struct.size != 1 or struct[0] != cols_idx[i]:
                return False
        return True

    def sketch(self) -> MNCSketch:
        """Materialize the exact sketch (repairing dirty extensions).

        Field-identical to ``MNCSketch.from_matrix(self.to_matrix())``:
        same gating of extension vectors (built only when some count
        exceeds one, dropped when all-zero), same ``fully_diagonal``
        detection, ``exact=True``.
        """
        if self._cached_sketch is not None:
            return self._cached_sketch
        rows_idx = self._alive_row_slots()
        cols_idx = self._alive_col_slots()
        hr = np.ascontiguousarray(self._hr[rows_idx])
        hc = np.ascontiguousarray(self._hc[cols_idx])
        max_hr = int(hr.max()) if hr.size else 0
        max_hc = int(hc.max()) if hc.size else 0
        her: Optional[np.ndarray] = None
        hec: Optional[np.ndarray] = None
        if max_hr > 1 or max_hc > 1:
            self._repair()
            her = np.ascontiguousarray(self._her[rows_idx])
            hec = np.ascontiguousarray(self._hec[cols_idx])
            if not her.any():
                her = None
            if not hec.any():
                hec = None
        diagonal = self._is_diagonal(rows_idx, cols_idx, max_hr, max_hc)
        result = MNCSketch.trusted(
            shape=(self._m, self._n),
            hr=hr,
            hc=hc,
            her=her,
            hec=hec,
            fully_diagonal=diagonal,
            exact=True,
        )
        result.__dict__["_row_stats_max"] = max_hr
        result.__dict__["_col_stats_max"] = max_hc
        self._cached_sketch = result
        count("incremental.materializations")
        return result

    def peek(self) -> MNCSketch:
        """Cheap snapshot that skips extension repair.

        When no delta has staled the extensions this is exactly
        :meth:`sketch`; otherwise the histograms (always exact) are
        returned with the stale extension vectors dropped and the
        ``exact`` flag degraded to ``False``.
        """
        if not self.extensions_stale:
            return self.sketch()
        rows_idx = self._alive_row_slots()
        cols_idx = self._alive_col_slots()
        return MNCSketch.trusted(
            shape=(self._m, self._n),
            hr=np.ascontiguousarray(self._hr[rows_idx]),
            hc=np.ascontiguousarray(self._hc[cols_idx]),
            her=None,
            hec=None,
            fully_diagonal=False,
            exact=False,
        )

    def _csr_from(self, structs: Sequence[np.ndarray]) -> sp.csr_array:
        m, n = self._m, self._n
        indptr = np.zeros(m + 1, dtype=_INT)
        if structs:
            np.cumsum([s.size for s in structs], out=indptr[1:])
            indices = (
                np.concatenate(structs)
                if indptr[-1]
                else np.empty(0, dtype=_INT)
            )
        else:
            indices = np.empty(0, dtype=_INT)
        data = np.ones(indices.size, dtype=np.float64)
        return sp.csr_array((data, indices, indptr), shape=(m, n))

    def to_matrix(self) -> sp.csr_array:
        """Rebuild the current structure as a canonical CSR array.

        Non-zeros carry value ``1.0`` — the sketch only ever tracked
        structure, so this is the rebuild target the differential
        contract compares against.
        """
        rows_idx = self._alive_row_slots()
        cols_idx = self._alive_col_slots()
        structs = [
            np.searchsorted(cols_idx, self._row_struct(int(r))).astype(_INT)
            for r in rows_idx
        ]
        return self._csr_from(structs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IncrementalSketch(shape={self.shape}, nnz={self._nnz}, "
            f"stale={self.extensions_stale}, "
            f"updates={self._updates_applied})"
        )


def apply_update(sketch: IncrementalSketch, delta: Delta) -> IncrementalSketch:
    """Apply one *delta* to *sketch* in place and return it.

    ``O(m + n + |delta| * adjacency)`` — never proportional to the total
    non-zero count. Raises :class:`ShapeError` when the delta does not
    fit the current shape and :class:`SketchError` for malformed deltas;
    a failed update leaves the sketch unchanged only for shape errors
    detected up front (deltas validate before mutating).
    """
    if not isinstance(sketch, IncrementalSketch):
        raise SketchError(
            f"apply_update needs an IncrementalSketch, got "
            f"{type(sketch).__name__} (materialized MNCSketch instances "
            f"are immutable; wrap the matrix in IncrementalSketch first)"
        )
    if isinstance(delta, AppendRows):
        sketch._apply_append_rows(delta)
    elif isinstance(delta, AppendCols):
        sketch._apply_append_cols(delta)
    elif isinstance(delta, DeleteRows):
        sketch._apply_delete_rows(delta)
    elif isinstance(delta, DeleteCols):
        sketch._apply_delete_cols(delta)
    elif isinstance(delta, BlockUpdate):
        sketch._apply_block(delta)
    else:
        raise SketchError(f"unknown delta type {type(delta).__name__}")
    sketch._cached_sketch = None
    sketch._updates_applied += 1
    count("incremental.updates")
    return sketch


def apply_updates(
    sketch: IncrementalSketch, deltas: Iterable[Delta]
) -> IncrementalSketch:
    """Apply a sequence of deltas in order (convenience wrapper)."""
    for delta in deltas:
        apply_update(sketch, delta)
    return sketch


def random_deltas(
    rng: np.random.Generator,
    shape: tuple[int, int],
    steps: int,
    max_batch: int = 3,
) -> list[Delta]:
    """Draw a seeded sequence of *steps* deltas starting from *shape*.

    Pure function of the generator state: the verify contract, the test
    suite, and corpus replay all derive identical sequences from the
    same seed. Tracks the evolving shape so every delta is in-bounds,
    interleaving all five kinds (appends, deletes, blocks) with
    densities drawn per delta.
    """
    m, n = int(shape[0]), int(shape[1])
    deltas: list[Delta] = []
    for _ in range(steps):
        kinds = ["append_rows", "append_cols"]
        if m:
            kinds.append("delete_rows")
        if n:
            kinds.append("delete_cols")
        if m and n:
            kinds.extend(["block", "block"])
        kind = kinds[int(rng.integers(len(kinds)))]
        if kind == "append_rows":
            k = int(rng.integers(1, max_batch + 1))
            density = float(rng.random())
            patterns = [
                np.flatnonzero(rng.random(n) < density) if n else []
                for _ in range(k)
            ]
            deltas.append(AppendRows(patterns))
            m += k
        elif kind == "append_cols":
            k = int(rng.integers(1, max_batch + 1))
            density = float(rng.random())
            patterns = [
                np.flatnonzero(rng.random(m) < density) if m else []
                for _ in range(k)
            ]
            deltas.append(AppendCols(patterns))
            n += k
        elif kind == "delete_rows":
            k = int(rng.integers(1, min(m, max_batch) + 1))
            positions = rng.choice(m, size=k, replace=False)
            deltas.append(DeleteRows(positions))
            m -= k
        elif kind == "delete_cols":
            k = int(rng.integers(1, min(n, max_batch) + 1))
            positions = rng.choice(n, size=k, replace=False)
            deltas.append(DeleteCols(positions))
            n -= k
        else:
            bh = int(rng.integers(1, min(m, 4) + 1))
            bw = int(rng.integers(1, min(n, 4) + 1))
            r0 = int(rng.integers(0, m - bh + 1))
            c0 = int(rng.integers(0, n - bw + 1))
            pattern = rng.random((bh, bw)) < float(rng.random())
            deltas.append(BlockUpdate(r0, c0, pattern))
    return deltas
