"""Distributed MNC sketch construction (paper Section 3.1 / future work #4).

The paper notes that the sketch's small size "makes it amenable to
large-scale ML, where the sketch can be computed via distributed operations
and subsequently collected and used in the driver". This module provides
the merge operations that realize that pattern for the two standard
partitionings of a distributed matrix:

- **row partitioning** (horizontal shards): per-shard sketches merge by
  concatenating ``hr`` and summing ``hc`` — both exactly, and ``hec``
  merges exactly too (rows are untouched by the merge);
- **column partitioning** (vertical shards): symmetric.

Merging is exact: the merged sketch equals the sketch of the concatenated
matrix, which the tests verify. Extension vectors along the concatenated
axis cannot be reconstructed (a single-non-zero column of one shard need
not be single globally) and are dropped, matching the rbind/cbind
propagation rules of Section 4.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.sketch import MNCSketch
from repro.errors import SketchError


def merge_row_partitions(sketches: Sequence[MNCSketch]) -> MNCSketch:
    """Merge sketches of horizontally partitioned shards (stacked rows).

    Args:
        sketches: per-shard sketches in top-to-bottom order; all must have
            the same column count.

    Returns:
        The exact sketch of the vertically stacked matrix.
    """
    if not sketches:
        raise SketchError("cannot merge an empty list of sketches")
    ncols = sketches[0].ncols
    for sketch in sketches:
        if sketch.ncols != ncols:
            raise SketchError(
                f"row partitions must share the column count: "
                f"{sketch.ncols} != {ncols}"
            )
    hr = np.concatenate([sketch.hr for sketch in sketches])
    hc = np.sum([sketch.hc for sketch in sketches], axis=0)
    hec = _sum_optional([sketch.hec for sketch in sketches], ncols)
    nrows = sum(sketch.nrows for sketch in sketches)
    return MNCSketch(
        shape=(nrows, ncols), hr=hr, hc=hc, her=None, hec=hec,
        fully_diagonal=False, exact=all(sketch.exact for sketch in sketches),
    )


def merge_col_partitions(sketches: Sequence[MNCSketch]) -> MNCSketch:
    """Merge sketches of vertically partitioned shards (stacked columns);
    symmetric to :func:`merge_row_partitions`."""
    if not sketches:
        raise SketchError("cannot merge an empty list of sketches")
    nrows = sketches[0].nrows
    for sketch in sketches:
        if sketch.nrows != nrows:
            raise SketchError(
                f"column partitions must share the row count: "
                f"{sketch.nrows} != {nrows}"
            )
    hc = np.concatenate([sketch.hc for sketch in sketches])
    hr = np.sum([sketch.hr for sketch in sketches], axis=0)
    her = _sum_optional([sketch.her for sketch in sketches], nrows)
    ncols = sum(sketch.ncols for sketch in sketches)
    return MNCSketch(
        shape=(nrows, ncols), hr=hr, hc=hc, her=her, hec=None,
        fully_diagonal=False, exact=all(sketch.exact for sketch in sketches),
    )


def merge_partitions(
    sketches: Sequence[MNCSketch],
    axis: int = 0,
    indices: Optional[Sequence[int]] = None,
) -> MNCSketch:
    """Axis-dispatching merge tolerating out-of-order shard arrival.

    Serving ingest receives shards over the network, where arrival order
    is whatever the client's connections delivered. ``indices[i]`` names
    the logical position of ``sketches[i]`` in the partitioning (must be a
    permutation of ``0..len-1``); ``None`` means the list is already in
    order. ``axis=0`` merges row partitions, ``axis=1`` column partitions.
    """
    if axis not in (0, 1):
        raise SketchError(f"axis must be 0 or 1, got {axis}")
    if indices is not None:
        if sorted(indices) != list(range(len(sketches))):
            raise SketchError(
                f"shard indices must be a permutation of 0..{len(sketches) - 1}, "
                f"got {list(indices)}"
            )
        order = sorted(range(len(sketches)), key=lambda i: indices[i])
        sketches = [sketches[i] for i in order]
    if axis == 0:
        return merge_row_partitions(sketches)
    return merge_col_partitions(sketches)


def sketch_partitioned(
    matrix, axis: int = 0, num_partitions: int = 4
) -> MNCSketch:
    """Build a sketch the distributed way: shard, sketch shards, merge.

    Functionally identical to :meth:`MNCSketch.from_matrix` (modulo dropped
    extensions along the merge axis); exists to exercise and demonstrate
    the merge path end-to-end.

    Args:
        matrix: matrix-like input.
        axis: 0 for row partitioning, 1 for column partitioning.
        num_partitions: number of shards.
    """
    from repro.matrix.conversion import as_csc, as_csr

    if axis not in (0, 1):
        raise SketchError(f"axis must be 0 or 1, got {axis}")
    if num_partitions < 1:
        raise SketchError(f"num_partitions must be positive, got {num_partitions}")
    if axis == 0:
        csr = as_csr(matrix)
        boundaries = np.linspace(0, csr.shape[0], num_partitions + 1).astype(int)
        shards = [
            csr[start:stop] for start, stop in zip(boundaries, boundaries[1:])
        ]
        return merge_row_partitions(
            [MNCSketch.from_matrix(shard) for shard in shards]
        )
    csc = as_csc(matrix)
    boundaries = np.linspace(0, csc.shape[1], num_partitions + 1).astype(int)
    shards = [csc[:, start:stop] for start, stop in zip(boundaries, boundaries[1:])]
    return merge_col_partitions([MNCSketch.from_matrix(shard) for shard in shards])


def _sum_optional(
    vectors: Sequence[Optional[np.ndarray]], length: int
) -> Optional[np.ndarray]:
    """Sum extension vectors when every shard has one, else drop them."""
    if any(vector is None for vector in vectors):
        return None
    return np.sum(vectors, axis=0)
