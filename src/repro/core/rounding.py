"""Probabilistic rounding shared by all sketch-propagation rules.

Deterministic rounding of fractional count vectors introduces systematic
bias for ultra-sparse matrices: a vector whose entries are all 0.4 rounds to
all-zero, which propagates into an (incorrectly) empty intermediate. The
paper instead rounds entry ``x`` up with probability ``frac(x)``, which is
unbiased (``E[round(x)] = x``) with minimal variance.

The kernel is allocation-aware and backend-dispatched: the uniform draws
are generated straight into reused per-thread scratch with
``Generator.random(out=...)`` (the same stream, and therefore the same
rounding decisions, as the naive formulation) and handed to the active
backend's ``prob_round_into`` primitive, which clamps, floors, and
applies the Bernoulli bumps without re-deriving any randomness.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.backends import get_backend
from repro.core.scratch import ScratchBuffer

SeedLike = Union[int, np.random.Generator, None]

_DRAW_SCRATCH = ScratchBuffer(np.float64)


def resolve_rng(seed: SeedLike) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for *seed* (pass-through for
    generators, fresh default generator for ``None``)."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def probabilistic_round(
    values: np.ndarray,
    rng: SeedLike = None,
    maximum: Optional[int] = None,
) -> np.ndarray:
    """Round non-negative *values* to integers without systematic bias.

    Each entry ``x`` becomes ``floor(x) + Bernoulli(x - floor(x))``, so the
    expectation is preserved exactly. Negative inputs (which can arise from
    floating-point noise in subtraction-based formulas) are clamped to zero
    first.

    Args:
        values: float vector of estimated counts.
        rng: seed or generator driving the Bernoulli draws.
        maximum: optional per-entry cap (e.g. the row length), applied after
            rounding so a count can never exceed the physically possible one.

    Returns:
        int64 vector of the same shape (always freshly allocated; the
        internal temporaries come from reused scratch buffers).
    """
    generator = resolve_rng(rng)
    values = np.asarray(values, dtype=np.float64)
    shape = values.shape
    values = np.ascontiguousarray(values).reshape(-1)
    n = values.size
    # The draws land in scratch via Generator.random(out=...), which
    # consumes the stream identically to Generator.random(shape); threading
    # them into the backend keeps the rounding decisions byte-identical
    # across backends (the kernels never touch the generator).
    draws = _DRAW_SCRATCH.get(n)
    generator.random(out=draws)
    result = np.empty(n, dtype=np.int64)
    get_backend().prob_round_into(
        values, draws, -1 if maximum is None else int(maximum), result
    )
    return result.reshape(shape)
