"""Probabilistic rounding shared by all sketch-propagation rules.

Deterministic rounding of fractional count vectors introduces systematic
bias for ultra-sparse matrices: a vector whose entries are all 0.4 rounds to
all-zero, which propagates into an (incorrectly) empty intermediate. The
paper instead rounds entry ``x`` up with probability ``frac(x)``, which is
unbiased (``E[round(x)] = x``) with minimal variance.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def resolve_rng(seed: SeedLike) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for *seed* (pass-through for
    generators, fresh default generator for ``None``)."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def probabilistic_round(
    values: np.ndarray,
    rng: SeedLike = None,
    maximum: Optional[int] = None,
) -> np.ndarray:
    """Round non-negative *values* to integers without systematic bias.

    Each entry ``x`` becomes ``floor(x) + Bernoulli(x - floor(x))``, so the
    expectation is preserved exactly. Negative inputs (which can arise from
    floating-point noise in subtraction-based formulas) are clamped to zero
    first.

    Args:
        values: float vector of estimated counts.
        rng: seed or generator driving the Bernoulli draws.
        maximum: optional per-entry cap (e.g. the row length), applied after
            rounding so a count can never exceed the physically possible one.

    Returns:
        int64 vector of the same shape.
    """
    generator = resolve_rng(rng)
    clipped = np.maximum(np.asarray(values, dtype=np.float64), 0.0)
    floor = np.floor(clipped)
    fraction = clipped - floor
    bump = generator.random(clipped.shape) < fraction
    result = floor.astype(np.int64) + bump.astype(np.int64)
    if maximum is not None:
        np.minimum(result, maximum, out=result)
    return result
