"""MNC (Matrix Non-zero Count) sketch — the paper's core contribution.

- :mod:`repro.core.sketch` — the :class:`~repro.core.sketch.MNCSketch` data
  structure and its construction (Section 3.1).
- :mod:`repro.core.estimate` — the matrix-product sparsity estimator
  (Algorithm 1, Theorems 3.1 and 3.2).
- :mod:`repro.core.propagate` — sketch propagation over matrix products
  (Section 3.3, Equations 11–12).
- :mod:`repro.core.ops` — estimators and propagation for reorganizations and
  element-wise operations (Section 4, Equations 13–15).
- :mod:`repro.core.rounding` — shared probabilistic rounding.
- :mod:`repro.core.incremental` — incremental sketch maintenance under
  row/column appends, deletes, and block updates (docs/STREAMING.md).
"""

from repro.core.chain import (
    chain_sketches,
    estimate_all_subchains,
    estimate_chain_nnz,
    estimate_chain_sparsity,
)
from repro.core.estimate import (
    estimate_product_nnz,
    estimate_product_sparsity,
    product_nnz_lower_bound,
    product_nnz_upper_bound,
)
from repro.core.distributed import (
    merge_col_partitions,
    merge_row_partitions,
    sketch_partitioned,
)
from repro.core.incremental import (
    AppendCols,
    AppendRows,
    BlockUpdate,
    DeleteCols,
    DeleteRows,
    IncrementalSketch,
    apply_update,
    apply_updates,
    random_deltas,
)
from repro.core.intervals import NnzInterval, estimate_product_interval
from repro.core.ops import (
    estimate_ewise_add_nnz,
    estimate_ewise_mult_nnz,
    propagate_cbind,
    propagate_col_sums,
    propagate_diag_vector,
    propagate_equals_zero,
    propagate_ewise_add,
    propagate_ewise_mult,
    propagate_not_equals_zero,
    propagate_rbind,
    propagate_reshape,
    propagate_row_sums,
    propagate_transpose,
)
from repro.core.propagate import propagate_product
from repro.core.rounding import probabilistic_round
from repro.core.sketch import MNCSketch

__all__ = [
    "AppendCols",
    "AppendRows",
    "BlockUpdate",
    "DeleteCols",
    "DeleteRows",
    "IncrementalSketch",
    "MNCSketch",
    "NnzInterval",
    "apply_update",
    "apply_updates",
    "chain_sketches",
    "estimate_all_subchains",
    "estimate_chain_nnz",
    "estimate_chain_sparsity",
    "estimate_ewise_add_nnz",
    "estimate_ewise_mult_nnz",
    "estimate_product_interval",
    "estimate_product_nnz",
    "estimate_product_sparsity",
    "merge_col_partitions",
    "merge_row_partitions",
    "probabilistic_round",
    "product_nnz_lower_bound",
    "product_nnz_upper_bound",
    "propagate_cbind",
    "propagate_col_sums",
    "propagate_diag_vector",
    "propagate_equals_zero",
    "propagate_ewise_add",
    "propagate_ewise_mult",
    "propagate_not_equals_zero",
    "propagate_product",
    "propagate_rbind",
    "propagate_reshape",
    "propagate_row_sums",
    "propagate_transpose",
    "random_deltas",
    "sketch_partitioned",
]
