"""Chain-level estimation utilities (paper Sections 3.3 and Appendix C).

Convenience wrappers around product estimation and propagation for pure
matrix-product chains ``M1 M2 ... Mk``:

- :func:`estimate_chain_nnz` — left-deep estimate of the full chain;
- :func:`estimate_all_subchains` — estimates for every subchain ``(i, j)``,
  reusing intermediate sketches across overlapping subproblems exactly the
  way the Appendix C optimizer does (each left-deep prefix sketch is
  propagated once and shared by all ``j``).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.estimate import estimate_product_nnz
from repro.core.propagate import propagate_product
from repro.core.rounding import SeedLike, resolve_rng
from repro.core.sketch import MNCSketch
from repro.errors import ShapeError


def _validate_chain(sketches: Sequence[MNCSketch]) -> None:
    if not sketches:
        raise ShapeError("chain must contain at least one matrix")
    for left, right in zip(sketches, sketches[1:]):
        if left.ncols != right.nrows:
            raise ShapeError(
                f"chain shape mismatch: {left.shape} then {right.shape}"
            )


def estimate_chain_nnz(
    sketches: Sequence[MNCSketch], rng: SeedLike = None
) -> float:
    """Estimate ``nnz(M1 M2 ... Mk)`` by left-deep sketch propagation.

    The final product is estimated directly (not propagated), matching the
    paper's root-handling rule.
    """
    _validate_chain(sketches)
    if len(sketches) == 1:
        return float(sketches[0].total_nnz)
    generator = resolve_rng(rng)
    current = sketches[0]
    for sketch in sketches[1:-1]:
        current = propagate_product(current, sketch, rng=generator)
    return estimate_product_nnz(current, sketches[-1])


def estimate_chain_sparsity(
    sketches: Sequence[MNCSketch], rng: SeedLike = None
) -> float:
    """Sparsity form of :func:`estimate_chain_nnz`."""
    _validate_chain(sketches)
    cells = sketches[0].nrows * sketches[-1].ncols
    if cells == 0:
        return 0.0
    return estimate_chain_nnz(sketches, rng=rng) / cells


def estimate_all_subchains(
    sketches: Sequence[MNCSketch], rng: SeedLike = None
) -> Dict[Tuple[int, int], float]:
    """Estimate every subchain ``M_i ... M_j`` (``i < j``), memoizing
    intermediate sketches across overlapping subproblems.

    Returns:
        ``{(i, j): estimated nnz}`` for all ``0 <= i < j < k``. The
        left-deep prefix sketch for each starting index ``i`` is built
        once and reused for every ``j`` — ``O(k^2)`` propagations total.
    """
    _validate_chain(sketches)
    generator = resolve_rng(rng)
    count = len(sketches)
    estimates: Dict[Tuple[int, int], float] = {}
    for start in range(count - 1):
        current = sketches[start]
        for end in range(start + 1, count):
            estimates[(start, end)] = estimate_product_nnz(current, sketches[end])
            if end < count - 1:
                current = propagate_product(current, sketches[end], rng=generator)
    return estimates


def chain_sketches(
    matrices: Sequence, with_extensions: bool = True
) -> List[MNCSketch]:
    """Build the leaf sketches of a chain in one call."""
    return [
        MNCSketch.from_matrix(matrix, with_extensions=with_extensions)
        for matrix in matrices
    ]
