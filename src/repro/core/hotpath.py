"""Hot-path bookkeeping: cheap counters and the forced-validation switch.

The estimation hot path (sketch construction inside propagation, the
Algorithm 1 kernels, the chain-DP inner loop) runs millions of times per
optimizer invocation, so its bookkeeping must cost next to nothing. This
module keeps two things:

- :data:`HOTPATH` — process-local integer counters (trusted constructions,
  validated constructions, lazily materialized summaries, scratch-buffer
  reuses, cached zero-vector hits). Incrementing a slot attribute is a few
  tens of nanoseconds and needs no lock for the CPython-atomic += on ints
  we rely on; the counters are mirrored into the active trace collector as
  ``hotpath.*`` counters *only when one is listening*, so ``repro stats``
  surfaces them for traced runs while untraced runs pay a single attribute
  check.
- :func:`validated_scope` — a context manager that routes every
  :meth:`MNCSketch.trusted` construction through the fully validating
  constructor. ``repro.verify`` wraps contract evaluation in it so fuzzing
  retains the invariant checks the fast tier skips, and the equivalence
  tests use it to prove the two tiers are bit-identical.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator

from repro.observability.collector import get_collector

_FIELDS = (
    "trusted_constructions",
    "validated_constructions",
    "summaries_materialized",
    "scratch_reuses",
    "zero_vector_hits",
)


class HotpathStats:
    """Process-local counters for the estimation hot path."""

    __slots__ = _FIELDS

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every counter (test isolation)."""
        for name in _FIELDS:
            setattr(self, name, 0)

    def snapshot(self) -> Dict[str, int]:
        """Current counter values as a plain dict."""
        return {name: getattr(self, name) for name in _FIELDS}


#: The process-wide hot-path counters.
HOTPATH = HotpathStats()


def record_trusted_construction() -> None:
    """Count one fast-tier sketch construction (validation skipped)."""
    HOTPATH.trusted_constructions += 1
    collector = get_collector()
    if collector.enabled:
        collector.increment("hotpath.trusted_constructions")


def record_validated_construction() -> None:
    """Count one fully validated sketch construction."""
    HOTPATH.validated_constructions += 1
    collector = get_collector()
    if collector.enabled:
        collector.increment("hotpath.validated_constructions")


def record_summary_materialization() -> None:
    """Count one lazy summary-statistics computation (first access)."""
    HOTPATH.summaries_materialized += 1
    collector = get_collector()
    if collector.enabled:
        collector.increment("hotpath.summaries_materialized")


def record_scratch_reuse() -> None:
    """Count one kernel call served from a reused scratch buffer."""
    HOTPATH.scratch_reuses += 1
    collector = get_collector()
    if collector.enabled:
        collector.increment("hotpath.scratch_reuses")


def record_zero_vector_hit() -> None:
    """Count one ``her_or_zeros``/``hec_or_zeros`` cached-zeros hit."""
    HOTPATH.zero_vector_hits += 1
    collector = get_collector()
    if collector.enabled:
        collector.increment("hotpath.zero_vector_hits")


# ----------------------------------------------------------------------
# Forced validation
# ----------------------------------------------------------------------

_FORCE = threading.local()


def validation_forced() -> bool:
    """Whether :meth:`MNCSketch.trusted` must validate in this thread."""
    return getattr(_FORCE, "depth", 0) > 0


@contextmanager
def validated_scope() -> Iterator[None]:
    """Route all trusted constructions through full validation.

    Re-entrant and per-thread. Used by ``repro.verify`` (contracts always
    run against validated sketches) and by the trusted-vs-validated
    equivalence tests.
    """
    _FORCE.depth = getattr(_FORCE, "depth", 0) + 1
    try:
        yield
    finally:
        _FORCE.depth -= 1
