"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` needs ``wheel`` for PEP 660 editable installs; on
offline machines without it, pip falls back to the legacy
``setup.py develop`` path, which requires this file. All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
