"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.matrix.conversion import as_csr
from repro.matrix.random import random_sparse


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def small_pair() -> tuple[sp.csr_array, sp.csr_array]:
    """A deterministic small product pair with mild structure."""
    a = random_sparse(60, 40, 0.1, seed=7)
    b = random_sparse(40, 50, 0.15, seed=8)
    return a, b


@pytest.fixture
def paper_example() -> tuple[sp.csr_array, sp.csr_array]:
    """The 9x9-ish running example of the paper's Figure 3 (recreated at
    small scale with the same flavor: skewed rows/columns, empty slices)."""
    a = np.zeros((7, 9))
    a[0, [1, 4]] = 1
    a[1, 2] = 1
    a[2, [0, 3, 6]] = 1
    a[4, 8] = 1
    a[5, [2, 5]] = 1
    a[6, 7] = 1
    b = np.zeros((9, 6))
    b[0, 1] = 1
    b[2, [0, 3]] = 1
    b[3, 4] = 1
    b[4, [2, 5]] = 1
    b[6, 0] = 1
    b[8, [1, 2]] = 1
    return as_csr(a), as_csr(b)


def assert_structure_equal(actual, expected) -> None:
    """Assert two matrices have identical non-zero structure."""
    lhs, rhs = as_csr(actual), as_csr(expected)
    assert lhs.shape == rhs.shape
    lhs_coo, rhs_coo = lhs.tocoo(), rhs.tocoo()
    lhs_set = set(zip(lhs_coo.row.tolist(), lhs_coo.col.tolist()))
    rhs_set = set(zip(rhs_coo.row.tolist(), rhs_coo.col.tolist()))
    assert lhs_set == rhs_set
