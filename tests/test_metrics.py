"""Unit tests for the SparsEst metrics."""

import math

import pytest

from repro.sparsest.metrics import (
    absolute_ratio_error,
    aggregate_relative_error,
    relative_error,
)


class TestRelativeError:
    def test_exact_is_one(self):
        assert relative_error(10.0, 10.0) == 1.0

    def test_symmetric(self):
        assert relative_error(10.0, 20.0) == relative_error(20.0, 10.0) == 2.0

    def test_bounded_below_by_one(self):
        assert relative_error(3.0, 3.0001) >= 1.0

    def test_both_zero(self):
        assert relative_error(0.0, 0.0) == 1.0

    def test_one_zero_is_infinite(self):
        assert math.isinf(relative_error(0.0, 5.0))
        assert math.isinf(relative_error(5.0, 0.0))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            relative_error(-1.0, 2.0)


class TestAbsoluteRatioError:
    def test_exact(self):
        assert absolute_ratio_error(10.0, 10.0) == 0.0

    def test_asymmetric(self):
        # Over-estimation by 2x gives ARE 1.0; under-estimation by 2x gives 0.5.
        assert absolute_ratio_error(10.0, 20.0) == 1.0
        assert absolute_ratio_error(10.0, 5.0) == 0.5

    def test_zero_truth(self):
        assert math.isinf(absolute_ratio_error(0.0, 1.0))
        assert absolute_ratio_error(0.0, 0.0) == 0.0


class TestAggregation:
    def test_additive(self):
        assert aggregate_relative_error([1.0, 3.0], [2.0, 2.0]) == 1.0

    def test_over_estimate(self):
        assert aggregate_relative_error([1.0, 1.0], [2.0, 2.0]) == 2.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            aggregate_relative_error([1.0], [1.0, 2.0])
