"""Tests for the confidence-interval extension."""

import numpy as np
import pytest

from repro.core.intervals import (
    NnzInterval,
    estimate_product_interval,
    interval_from_samples,
)
from repro.core.sketch import MNCSketch
from repro.errors import ShapeError
from repro.matrix.ops import matmul
from repro.matrix.random import (
    permutation_matrix,
    random_sparse,
    single_nnz_per_row,
)


def _sketches(a, b):
    return MNCSketch.from_matrix(a), MNCSketch.from_matrix(b)


class TestProductInterval:
    def test_exact_case_collapses(self):
        p = permutation_matrix(50, seed=1)
        x = random_sparse(50, 30, 0.2, seed=2)
        interval = estimate_product_interval(*_sketches(p, x))
        assert interval.exact
        assert interval.width == 0.0
        assert interval.estimate == x.nnz

    def test_generic_case_has_width(self):
        a = random_sparse(100, 80, 0.1, seed=3)
        b = random_sparse(80, 90, 0.1, seed=4)
        interval = estimate_product_interval(*_sketches(a, b))
        assert not interval.exact
        assert interval.width > 0
        assert interval.lower <= interval.estimate <= interval.upper

    def test_interval_within_theorem32_bounds(self):
        from repro.core.estimate import (
            product_nnz_lower_bound,
            product_nnz_upper_bound,
        )

        a = random_sparse(60, 50, 0.2, seed=5)
        b = random_sparse(50, 60, 0.2, seed=6)
        h_a, h_b = _sketches(a, b)
        interval = estimate_product_interval(h_a, h_b)
        assert interval.lower >= product_nnz_lower_bound(h_a, h_b)
        assert interval.upper <= product_nnz_upper_bound(h_a, h_b)

    def test_coverage_on_uniform_products(self):
        # The 95% interval should contain the truth on a clear majority of
        # uniform random instances (the model matches the data here).
        hits = 0
        trials = 30
        for seed in range(trials):
            a = random_sparse(80, 60, 0.08, seed=100 + seed)
            b = random_sparse(60, 70, 0.08, seed=200 + seed)
            interval = estimate_product_interval(*_sketches(a, b))
            if interval.contains(matmul(a, b).nnz):
                hits += 1
        assert hits >= trials * 0.6

    def test_wider_confidence_wider_interval(self):
        a = random_sparse(80, 60, 0.1, seed=7)
        b = random_sparse(60, 70, 0.1, seed=8)
        h_a, h_b = _sketches(a, b)
        narrow = estimate_product_interval(h_a, h_b, confidence=0.5)
        wide = estimate_product_interval(h_a, h_b, confidence=0.99)
        assert wide.width >= narrow.width

    def test_empty_operand(self):
        a = MNCSketch.from_matrix(np.zeros((5, 4)))
        b = MNCSketch.from_matrix(np.ones((4, 3)))
        interval = estimate_product_interval(a, b)
        assert interval.estimate == 0.0
        assert interval.exact

    def test_invalid_confidence(self):
        a = MNCSketch.from_matrix(np.eye(3))
        with pytest.raises(ShapeError):
            estimate_product_interval(a, a, confidence=1.5)

    def test_shape_mismatch(self):
        a = MNCSketch.from_matrix(np.ones((2, 3)))
        with pytest.raises(ShapeError):
            estimate_product_interval(a, a)

    def test_single_nnz_rows_exact(self):
        tokens = single_nnz_per_row(100, 30, seed=9)
        data = random_sparse(30, 20, 0.3, seed=10)
        interval = estimate_product_interval(*_sketches(tokens, data))
        assert interval.exact
        assert interval.estimate == matmul(tokens, data).nnz


class TestSampleInterval:
    def test_percentiles(self):
        samples = np.arange(100, dtype=float)
        interval = interval_from_samples(samples, confidence=0.9)
        assert interval.lower == pytest.approx(4.95, abs=0.5)
        assert interval.upper == pytest.approx(94.05, abs=0.5)
        assert interval.estimate == pytest.approx(49.5)

    def test_constant_samples_exact(self):
        interval = interval_from_samples(np.full(10, 7.0))
        assert interval.exact
        assert interval.width == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            interval_from_samples(np.array([]))

    def test_contains(self):
        interval = NnzInterval(5.0, 4.0, 6.0, 0.95, exact=False)
        assert interval.contains(5.5)
        assert not interval.contains(7.0)
