"""Edge-case and internals tests across the library."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import (
    EstimationError,
    PlanError,
    ReproError,
    ShapeError,
    SketchError,
    UnsupportedOperationError,
)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (ShapeError, SketchError, UnsupportedOperationError,
                    EstimationError, PlanError):
            assert issubclass(exc, ReproError)

    def test_shape_error_is_value_error(self):
        assert issubclass(ShapeError, ValueError)

    def test_unsupported_is_not_implemented(self):
        assert issubclass(UnsupportedOperationError, NotImplementedError)

    def test_catchable_as_base(self):
        from repro.matrix.ops import matmul

        with pytest.raises(ReproError):
            matmul(np.ones((2, 3)), np.ones((2, 3)))


class TestReconcileTotals:
    def test_balances_row_excess(self, rng):
        from repro.core.propagate import _reconcile_totals

        hr = np.array([5, 3, 2], dtype=np.int64)
        hc = np.array([4, 4], dtype=np.int64)
        _reconcile_totals(hr, hc, rng)
        assert hr.sum() == hc.sum() == 8

    def test_balances_col_excess(self, rng):
        from repro.core.propagate import _reconcile_totals

        hr = np.array([2, 2], dtype=np.int64)
        hc = np.array([5, 5], dtype=np.int64)
        _reconcile_totals(hr, hc, rng)
        assert hr.sum() == hc.sum() == 4
        assert np.all(hc >= 0)

    def test_already_balanced_untouched(self, rng):
        from repro.core.propagate import _reconcile_totals

        hr = np.array([3, 1], dtype=np.int64)
        hc = np.array([2, 2], dtype=np.int64)
        before = hr.copy()
        _reconcile_totals(hr, hc, rng)
        np.testing.assert_array_equal(hr, before)

    def test_large_imbalance(self, rng):
        from repro.core.propagate import _reconcile_totals

        hr = np.full(100, 50, dtype=np.int64)
        hc = np.full(100, 10, dtype=np.int64)
        _reconcile_totals(hr, hc, rng)
        assert hr.sum() == hc.sum() == 1000
        assert np.all(hr >= 0)


class TestDensityMapRegrid:
    def test_aligned_rbind_is_exact(self):
        from repro.estimators.density_map import _regrid_axis

        counts_a = np.array([[4.0], [2.0]])
        counts_b = np.array([[6.0]])
        result = _regrid_axis(
            [counts_a, counts_b], offsets=[0, 8], old_dims=[8, 4],
            new_dim=12, block=4, axis=0,
        )
        np.testing.assert_allclose(result, [[4.0], [2.0], [6.0]])

    def test_misaligned_preserves_mass(self):
        from repro.estimators.density_map import _regrid_axis

        counts_a = np.array([[4.0], [2.0]])
        counts_b = np.array([[6.0]])
        result = _regrid_axis(
            [counts_a, counts_b], offsets=[0, 7], old_dims=[7, 4],
            new_dim=11, block=4, axis=0,
        )
        assert result.sum() == pytest.approx(12.0)

    def test_column_axis(self):
        from repro.estimators.density_map import _regrid_axis

        counts_a = np.array([[4.0, 2.0]])
        counts_b = np.array([[6.0]])
        result = _regrid_axis(
            [counts_a, counts_b], offsets=[0, 8], old_dims=[8, 4],
            new_dim=12, block=4, axis=1,
        )
        np.testing.assert_allclose(result, [[4.0, 2.0, 6.0]])


class TestConversionDtypes:
    def test_integer_dense_input(self):
        from repro.matrix.conversion import as_csr

        csr = as_csr(np.array([[1, 0], [0, 2]], dtype=np.int32))
        assert csr.nnz == 2

    def test_bool_dense_input(self):
        from repro.matrix.conversion import as_csr

        csr = as_csr(np.array([[True, False], [False, True]]))
        assert csr.nnz == 2

    def test_coo_input(self):
        from repro.matrix.conversion import as_csr

        coo = sp.coo_array(
            (np.array([1.0]), (np.array([0]), np.array([1]))), shape=(2, 3)
        )
        assert as_csr(coo).shape == (2, 3)

    def test_lil_input(self):
        from repro.matrix.conversion import as_csr

        lil = sp.lil_array((3, 3))
        lil[1, 1] = 4.0
        assert as_csr(lil).nnz == 1


class TestEstimatorDeterminism:
    @pytest.mark.parametrize(
        "name,kwargs",
        [
            ("meta_ac", {}),
            ("meta_wc", {}),
            ("bitset", {}),
            ("density_map", {"block_size": 16}),
            ("sampling", {"seed": 5}),
            ("sampling_unbiased", {"seed": 5}),
            ("hash", {"seed": 5}),
            ("layered_graph", {"seed": 5}),
            ("mnc", {"seed": 5}),
        ],
    )
    def test_same_config_same_estimate(self, name, kwargs):
        from repro.estimators import make_estimator
        from repro.matrix.random import random_sparse
        from repro.opcodes import Op

        a = random_sparse(50, 40, 0.15, seed=1)
        b = random_sparse(40, 45, 0.15, seed=2)
        results = []
        for _ in range(2):
            estimator = make_estimator(name, **kwargs)
            results.append(
                estimator.estimate_nnz(
                    Op.MATMUL, [estimator.build(a), estimator.build(b)]
                )
            )
        assert results[0] == results[1]


class TestUseCaseSemantics:
    @pytest.fixture(autouse=True)
    def isolated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MNC_CACHE", str(tmp_path))

    def test_b22_projection_extracts_dummy_columns(self):
        from repro.ir.interpreter import evaluate
        from repro.sparsest import get_use_case

        root = get_use_case("B2.2").build(scale=0.02, seed=0)
        result = evaluate(root)
        # Projected columns are the one-hot groups: each row keeps at most
        # its two one-hot indicator entries.
        row_counts = np.diff(result.indptr)
        assert row_counts.max() <= 2

    def test_b25_mask_keeps_only_center(self):
        from repro.ir.interpreter import evaluate
        from repro.sparsest import get_use_case

        root = get_use_case("B2.5").build(scale=0.02, seed=0)
        result = evaluate(root)
        columns = np.unique(result.tocoo().col)
        grid = np.zeros(784, dtype=bool)
        grid[columns] = True
        image = grid.reshape(28, 28)
        assert not image[:7, :].any()  # outside the 14x14 center
        assert not image[:, :7].any()

    def test_b33_powers_densify(self):
        from repro.sparsest import get_use_case
        from repro.sparsest.runner import true_nnz_of
        from repro.ir.nodes import Expr

        root = get_use_case("B3.3").build(scale=0.05, seed=0)
        # Walk the left spine: PG, PGG, PGGG, PGGGG.
        spine = []
        node = root
        while node.op.value == "matmul":
            spine.append(node)
            node = node.inputs[0]
        counts = [true_nnz_of(n) for n in reversed(spine)]
        assert counts == sorted(counts)  # monotone densification

    def test_b34_mask_bounds_output(self):
        from repro.sparsest import get_use_case
        from repro.sparsest.runner import true_nnz_of
        from repro.ir.interpreter import evaluate

        root = get_use_case("B3.4").build(scale=0.05, seed=0)
        known = root.inputs[0]
        assert true_nnz_of(root) <= evaluate(known).nnz


class TestAssumptionA2:
    def test_nan_detected_in_dense(self):
        from repro.matrix.conversion import check_assumptions

        matrix = np.array([[1.0, np.nan], [0.0, 2.0]])
        with pytest.raises(ShapeError):
            check_assumptions(matrix)

    def test_nan_detected_in_sparse(self):
        from repro.matrix.conversion import as_csr, check_assumptions

        csr = as_csr(np.array([[1.0, 2.0]]))
        csr.data[0] = np.nan
        with pytest.raises(ShapeError):
            check_assumptions(csr)

    def test_clean_matrix_passes(self):
        from repro.matrix.conversion import check_assumptions

        check_assumptions(np.array([[1.0, 0.0], [0.0, -2.0]]))

    def test_integer_matrix_passes(self):
        from repro.matrix.conversion import check_assumptions

        check_assumptions(np.array([[1, 0], [0, 2]]))


class TestMetaUltraSparse:
    def test_first_order_formula(self):
        from repro.estimators import make_estimator
        from repro.matrix.random import random_sparse
        from repro.opcodes import Op

        estimator = make_estimator("meta_ultrasparse")
        a = random_sparse(100, 80, 0.01, seed=50)
        b = random_sparse(80, 90, 0.01, seed=51)
        sa, sb = estimator.build(a), estimator.build(b)
        expected = sa.sparsity_estimate * sb.sparsity_estimate * 80 * 100 * 90
        assert estimator.estimate_nnz(Op.MATMUL, [sa, sb]) == pytest.approx(expected)

    def test_close_to_meta_ac_when_ultrasparse(self):
        from repro.estimators import make_estimator
        from repro.matrix.random import random_sparse
        from repro.opcodes import Op

        a = random_sparse(200, 150, 0.005, seed=52)
        b = random_sparse(150, 200, 0.005, seed=53)
        estimates = {}
        for name in ("meta_ultrasparse", "meta_ac"):
            est = make_estimator(name)
            estimates[name] = est.estimate_nnz(
                Op.MATMUL, [est.build(a), est.build(b)]
            )
        assert estimates["meta_ultrasparse"] == pytest.approx(
            estimates["meta_ac"], rel=0.02
        )

    def test_saturates_at_dense(self):
        from repro.estimators import make_estimator
        from repro.opcodes import Op

        estimator = make_estimator("meta_ultrasparse")
        a = estimator.build(np.ones((10, 10)))
        assert estimator.estimate_nnz(Op.MATMUL, [a, a]) == 100.0
