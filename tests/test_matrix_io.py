"""Unit tests for matrix persistence and the dataset cache."""

import numpy as np
import pytest

from conftest import assert_structure_equal
from repro.matrix.io import cache_dir, cached_matrix, load_matrix, save_matrix
from repro.matrix.random import random_sparse


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_MNC_CACHE", str(tmp_path / "cache"))
    yield


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        matrix = random_sparse(20, 30, 0.2, seed=1)
        path = tmp_path / "m.npz"
        save_matrix(path, matrix)
        assert_structure_equal(load_matrix(path), matrix)

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "m.npz"
        save_matrix(path, np.eye(3))
        assert path.exists()


class TestCachedMatrix:
    def test_builds_once(self):
        calls = []

        def build():
            calls.append(1)
            return random_sparse(10, 10, 0.3, seed=2)

        first = cached_matrix("test-key", build)
        second = cached_matrix("test-key", build)
        assert len(calls) == 1
        assert_structure_equal(first, second)

    def test_distinct_keys_distinct_builds(self):
        a = cached_matrix("key-a", lambda: np.eye(3))
        b = cached_matrix("key-b", lambda: np.ones((2, 2)))
        assert a.shape == (3, 3)
        assert b.shape == (2, 2)

    def test_corrupt_cache_entry_rebuilt(self):
        cached_matrix("key-c", lambda: np.eye(4))
        # Corrupt every cache file, then ensure the build recovers.
        for file in cache_dir().glob("*.npz"):
            file.write_bytes(b"not an npz file")
        rebuilt = cached_matrix("key-c", lambda: np.eye(4))
        assert rebuilt.shape == (4, 4)

    def test_cache_dir_respects_env(self, tmp_path):
        assert str(cache_dir()).startswith(str(tmp_path))
