"""Unit tests for the matrix-multiplication-chain optimizer (Appendix C)."""

import numpy as np
import pytest

from repro.core.sketch import MNCSketch
from repro.errors import PlanError
from repro.matrix.random import diagonal_matrix, random_sparse
from repro.optimizer import (
    dense_matmul_flops,
    enumerate_random_plans,
    left_deep_plan,
    optimize_chain_dense,
    optimize_chain_sparse,
    plan_cost_estimated,
    plan_cost_true,
    plan_to_string,
    random_plan,
    sparse_matmul_flops,
)


class TestCostModels:
    def test_dense_flops(self):
        assert dense_matmul_flops(2, 3, 4) == 24.0

    def test_sparse_flops_formula(self):
        a = random_sparse(10, 8, 0.3, seed=1)
        b = random_sparse(8, 12, 0.3, seed=2)
        h_a, h_b = MNCSketch.from_matrix(a), MNCSketch.from_matrix(b)
        expected = float(h_a.hc @ h_b.hr)
        assert sparse_matmul_flops(h_a, h_b) == expected

    def test_sparse_flops_shape_check(self):
        h_a = MNCSketch.from_matrix(np.ones((2, 3)))
        h_b = MNCSketch.from_matrix(np.ones((2, 3)))
        with pytest.raises(PlanError):
            sparse_matmul_flops(h_a, h_b)

    def test_true_cost_leaf_is_free(self):
        assert plan_cost_true(0, [np.eye(3)]) == 0.0

    def test_estimated_close_to_true_on_uniform(self):
        matrices = [
            random_sparse(40, 30, 0.2, seed=3),
            random_sparse(30, 50, 0.2, seed=4),
            random_sparse(50, 20, 0.2, seed=5),
        ]
        sketches = [MNCSketch.from_matrix(m) for m in matrices]
        plan = left_deep_plan(3)
        true_cost = plan_cost_true(plan, matrices)
        estimated = plan_cost_estimated(plan, sketches, rng=6)
        assert true_cost / 1.5 <= estimated <= true_cost * 1.5

    def test_malformed_plan_rejected(self):
        sketches = [MNCSketch.from_matrix(np.eye(3))]
        with pytest.raises(PlanError):
            plan_cost_estimated((0, 1, 2), sketches)


class TestPlans:
    def test_left_deep(self):
        assert left_deep_plan(1) == 0
        assert left_deep_plan(3) == ((0, 1), 2)
        assert plan_to_string(left_deep_plan(3)) == "((M1 M2) M3)"

    def test_left_deep_requires_positive(self):
        with pytest.raises(PlanError):
            left_deep_plan(0)

    def test_random_plan_covers_all_leaves(self):
        plan = random_plan(6, rng=7)

        def collect(node):
            if isinstance(node, int):
                return [node]
            return collect(node[0]) + collect(node[1])

        assert sorted(collect(plan)) == list(range(6))

    def test_random_plans_vary(self):
        plans = enumerate_random_plans(8, 50, rng=8)
        assert len({plan_to_string(p) for p in plans}) > 5

    def test_plan_to_string_with_names(self):
        assert plan_to_string((0, 1), names=["A", "B"]) == "(A B)"


class TestDenseDP:
    def test_textbook_example(self):
        # CLRS example: dims 30x35, 35x15, 15x5, 5x10, 10x20, 20x25
        shapes = [(30, 35), (35, 15), (15, 5), (5, 10), (10, 20), (20, 25)]
        solution = optimize_chain_dense(shapes)
        assert solution.cost == 15125.0
        assert plan_to_string(solution.plan) == "((M1 (M2 M3)) ((M4 M5) M6))"

    def test_two_matrix_chain(self):
        solution = optimize_chain_dense([(2, 3), (3, 4)])
        assert solution.plan == (0, 1)
        assert solution.cost == 24.0

    def test_single_matrix(self):
        solution = optimize_chain_dense([(5, 5)])
        assert solution.plan == 0
        assert solution.cost == 0.0

    def test_mismatched_chain_rejected(self):
        with pytest.raises(PlanError):
            optimize_chain_dense([(2, 3), (4, 5)])

    def test_empty_chain_rejected(self):
        with pytest.raises(PlanError):
            optimize_chain_dense([])


class TestSparseDP:
    def test_optimal_for_small_chain_by_exhaustion(self):
        matrices = [
            random_sparse(20, 25, 0.3, seed=9),
            random_sparse(25, 15, 0.05, seed=10),
            random_sparse(15, 30, 0.4, seed=11),
            random_sparse(30, 10, 0.2, seed=12),
        ]
        sketches = [MNCSketch.from_matrix(m) for m in matrices]
        solution = optimize_chain_sparse(sketches, rng=13)
        # Exhaustively cost all 5 plans of a 4-chain with the same machinery.
        all_plans = [
            (((0, 1), 2), 3), ((0, (1, 2)), 3), ((0, 1), (2, 3)),
            (0, ((1, 2), 3)), (0, (1, (2, 3))),
        ]
        costs = [plan_cost_estimated(p, sketches, rng=13) for p in all_plans]
        assert solution.cost <= min(costs) * 1.2

    def test_sparse_beats_dense_on_skewed_chain(self):
        # Equal dimensions: the dense DP is indifferent between plans and
        # defaults to left-deep, which multiplies the two dense matrices
        # first. The sparsity-aware DP sees that starting from the
        # ultra-sparse C keeps every intermediate sparse.
        rng = np.random.default_rng(14)
        matrices = [
            random_sparse(40, 40, 0.005, seed=rng),
            random_sparse(40, 40, 0.9, seed=rng),
            random_sparse(40, 40, 0.9, seed=rng),
        ]
        sketches = [MNCSketch.from_matrix(m) for m in matrices]
        dense_solution = optimize_chain_dense([m.shape for m in matrices])
        sparse_solution = optimize_chain_sparse(sketches, rng=15)
        # Equal dimensions: the dense DP ties and keeps its first split,
        # multiplying the two dense matrices first — the bad plan.
        assert dense_solution.plan == (0, (1, 2))
        dense_true = plan_cost_true(dense_solution.plan, matrices)
        sparse_true = plan_cost_true(sparse_solution.plan, matrices)
        assert sparse_solution.plan == ((0, 1), 2)
        assert sparse_true < dense_true

    def test_diagonal_chain_exact_costs(self):
        matrices = [
            diagonal_matrix(30, seed=16),
            random_sparse(30, 20, 0.2, seed=17),
            diagonal_matrix(20, seed=18),
        ]
        sketches = [MNCSketch.from_matrix(m) for m in matrices]
        solution = optimize_chain_sparse(sketches, rng=19)
        assert solution.cost == plan_cost_true(solution.plan, matrices)

    def test_solution_cost_matches_plan_cost(self):
        matrices = [
            random_sparse(25, 20, 0.2, seed=20),
            random_sparse(20, 30, 0.2, seed=21),
            random_sparse(30, 15, 0.2, seed=22),
        ]
        sketches = [MNCSketch.from_matrix(m) for m in matrices]
        solution = optimize_chain_sparse(sketches, rng=23)
        recomputed = plan_cost_estimated(solution.plan, sketches, rng=23)
        assert solution.cost == pytest.approx(recomputed, rel=0.2)
