"""Tests for the row/column aggregation operations across the stack."""

import numpy as np
import pytest

from conftest import assert_structure_equal
from repro.core import ops as core_ops
from repro.core.sketch import MNCSketch
from repro.estimators import make_estimator
from repro.ir import col_sums, evaluate, leaf, matmul, row_sums
from repro.ir.estimate import estimate_root_nnz
from repro.matrix import ops as mops
from repro.matrix.random import random_sparse, single_nnz_per_row
from repro.opcodes import Op


class TestGroundTruth:
    def test_row_sums_structure(self):
        matrix = np.array([[1, 0], [0, 0], [2, 3]])
        result = mops.row_sums(matrix)
        assert result.shape == (3, 1)
        assert_structure_equal(result, np.array([[1], [0], [1]]))

    def test_col_sums_structure(self):
        matrix = np.array([[1, 0, 0], [2, 0, 3]])
        result = mops.col_sums(matrix)
        assert result.shape == (1, 3)
        assert_structure_equal(result, np.array([[1, 0, 1]]))

    def test_no_cancellation(self):
        # +1 and -1 in a row sum to 0 numerically, but structurally the
        # row is non-empty (assumption A1).
        matrix = np.array([[1.0, -1.0]])
        assert mops.row_sums(matrix).nnz == 1

    def test_empty_matrix(self):
        assert mops.row_sums(np.zeros((4, 3))).nnz == 0
        assert mops.col_sums(np.zeros((4, 3))).nnz == 0


class TestOpcode:
    def test_aggregation_flags(self):
        assert Op.ROW_SUMS.is_aggregation
        assert Op.COL_SUMS.is_aggregation
        assert not Op.MATMUL.is_aggregation
        assert Op.ROW_SUMS.arity == 1


class TestMncPropagation:
    def test_row_sums_exact(self):
        matrix = random_sparse(30, 20, 0.1, seed=1)
        sketch = MNCSketch.from_matrix(matrix)
        result = core_ops.propagate_row_sums(sketch)
        truth = mops.row_sums(matrix)
        assert result.shape == (30, 1)
        assert result.total_nnz == truth.nnz
        np.testing.assert_array_equal(result.hr, (sketch.hr > 0).astype(np.int64))

    def test_col_sums_exact(self):
        matrix = random_sparse(30, 20, 0.1, seed=2)
        sketch = MNCSketch.from_matrix(matrix)
        result = core_ops.propagate_col_sums(sketch)
        assert result.shape == (1, 20)
        assert result.total_nnz == mops.col_sums(matrix).nnz


class TestEstimators:
    @pytest.mark.parametrize("name", ["mnc", "bitset", "exact"])
    def test_exact_estimators(self, name):
        matrix = random_sparse(40, 25, 0.08, seed=3)
        estimator = make_estimator(name)
        synopsis = estimator.build(matrix)
        assert estimator.estimate_nnz(Op.ROW_SUMS, [synopsis]) == mops.row_sums(matrix).nnz
        assert estimator.estimate_nnz(Op.COL_SUMS, [synopsis]) == mops.col_sums(matrix).nnz

    def test_meta_ac_close_on_uniform(self):
        matrix = random_sparse(200, 100, 0.05, seed=4)
        estimator = make_estimator("meta_ac")
        synopsis = estimator.build(matrix)
        truth = mops.row_sums(matrix).nnz
        estimate = estimator.estimate_nnz(Op.ROW_SUMS, [synopsis])
        assert truth / 1.1 <= estimate <= truth * 1.1

    def test_meta_wc_upper_bounds(self):
        matrix = random_sparse(50, 50, 0.05, seed=5)
        estimator = make_estimator("meta_wc")
        synopsis = estimator.build(matrix)
        assert estimator.estimate_nnz(Op.ROW_SUMS, [synopsis]) >= mops.row_sums(matrix).nnz

    def test_density_map_close(self):
        matrix = random_sparse(100, 80, 0.05, seed=6)
        estimator = make_estimator("density_map", block_size=16)
        synopsis = estimator.build(matrix)
        truth = mops.row_sums(matrix).nnz
        estimate = estimator.estimate_nnz(Op.ROW_SUMS, [synopsis])
        assert truth / 1.3 <= estimate <= truth * 1.3
        truth_c = mops.col_sums(matrix).nnz
        estimate_c = estimator.estimate_nnz(Op.COL_SUMS, [synopsis])
        assert truth_c / 1.3 <= estimate_c <= truth_c * 1.3

    def test_layered_graph_unsupported(self):
        from repro.errors import UnsupportedOperationError

        estimator = make_estimator("layered_graph")
        synopsis = estimator.build(np.eye(4))
        with pytest.raises(UnsupportedOperationError):
            estimator.estimate_nnz(Op.ROW_SUMS, [synopsis])


class TestIr:
    def test_shapes(self):
        a = leaf(np.ones((4, 6)))
        assert row_sums(a).shape == (4, 1)
        assert col_sums(a).shape == (1, 6)

    def test_interpreter(self):
        matrix = random_sparse(10, 8, 0.3, seed=7)
        root = row_sums(leaf(matrix))
        assert_structure_equal(evaluate(root), mops.row_sums(matrix))

    def test_end_to_end_mnc_close_on_product_aggregate(self):
        # rowSums(P X): the product total is exact (Theorem 3.1) but the
        # propagated row histogram is probabilistically rounded, so the
        # non-empty-row count carries a little noise.
        tokens = single_nnz_per_row(60, 30, seed=8)
        data = random_sparse(30, 20, 0.2, seed=9)
        root = row_sums(matmul(leaf(tokens), leaf(data)))
        truth = evaluate(root).nnz
        estimate = estimate_root_nnz(root, make_estimator("mnc"))
        assert truth / 1.3 <= estimate <= truth * 1.3

    def test_end_to_end_mnc_exact_on_leaf_aggregate(self):
        matrix = random_sparse(50, 40, 0.05, seed=10)
        root = col_sums(leaf(matrix))
        truth = evaluate(root).nnz
        assert estimate_root_nnz(root, make_estimator("mnc")) == truth
