"""Tests for the SparsEst use cases and the benchmark runner.

Runs at a tiny scale (0.02) so the whole suite stays fast; dataset cache is
redirected into a tmp dir per session.
"""

import math

import pytest

from repro.estimators import make_estimator
from repro.ir.interpreter import evaluate
from repro.opcodes import Op
from repro.sparsest import all_use_cases, get_use_case, use_case_ids
from repro.sparsest.report import format_error, outcomes_table, simple_table
from repro.sparsest.runner import (
    EstimateOutcome,
    run_estimators,
    run_use_case,
    supports_use_case,
    true_nnz_of,
)

SCALE = 0.02


@pytest.fixture(scope="session", autouse=True)
def isolated_cache(tmp_path_factory):
    import os

    os.environ["REPRO_MNC_CACHE"] = str(tmp_path_factory.mktemp("mnc-cache"))
    yield


class TestUseCaseCatalog:
    def test_fifteen_use_cases(self):
        assert len(all_use_cases()) == 15

    def test_categories(self):
        assert len(all_use_cases("Struct")) == 5
        assert len(all_use_cases("Real")) == 5
        assert len(all_use_cases("Chain")) == 5

    def test_ids(self):
        ids = use_case_ids()
        assert ids[0] == "B1.1"
        assert ids[-1] == "B3.5"

    def test_lookup(self):
        assert get_use_case("B2.3").name == "CoRefG"
        with pytest.raises(Exception):
            get_use_case("B9.9")

    def test_build_is_cached(self):
        case = get_use_case("B1.2")
        assert case.build(scale=SCALE, seed=0) is case.build(scale=SCALE, seed=0)

    def test_distinct_seeds_distinct_dags(self):
        case = get_use_case("B1.2")
        assert case.build(scale=SCALE, seed=0) is not case.build(scale=SCALE, seed=1)


class TestUseCaseSemantics:
    @pytest.mark.parametrize("case_id", use_case_ids())
    def test_builds_and_evaluates(self, case_id):
        root = get_use_case(case_id).build(scale=SCALE, seed=0)
        structure = evaluate(root)
        assert structure.shape == root.shape

    def test_b12_structure_preserving(self):
        root = get_use_case("B1.2").build(scale=SCALE, seed=0)
        x_leaf = [l for l in root.leaves() if l.label == "X"][0]
        assert true_nnz_of(root) == x_leaf.matrix.nnz

    def test_b14_fully_dense(self):
        root = get_use_case("B1.4").build(scale=SCALE, seed=0)
        m, n = root.shape
        assert true_nnz_of(root) == m * n

    def test_b15_single_nnz(self):
        root = get_use_case("B1.5").build(scale=SCALE, seed=0)
        assert true_nnz_of(root) == 1

    def test_b33_is_pure_chain(self):
        root = get_use_case("B3.3").build(scale=SCALE, seed=0)
        for node in root.postorder():
            assert node.op in (Op.LEAF, Op.MATMUL)


class TestRunner:
    def test_mnc_exact_on_b11(self):
        outcome = run_use_case(get_use_case("B1.1"), make_estimator("mnc"), scale=SCALE)
        assert outcome.ok
        assert outcome.relative_error == pytest.approx(1.0)

    def test_unsupported_is_reported(self):
        outcome = run_use_case(
            get_use_case("B2.5"), make_estimator("layered_graph"), scale=SCALE
        )
        assert outcome.status == "unsupported"
        assert not outcome.ok
        assert math.isnan(outcome.estimated_nnz)

    def test_bitset_oom_detection(self):
        outcome = run_use_case(
            get_use_case("B2.3"), make_estimator("bitset"), scale=SCALE,
            memory_budget_bytes=1024,
        )
        assert outcome.status == "oom"

    def test_run_estimators_cartesian(self):
        cases = [get_use_case("B1.2"), get_use_case("B1.3")]
        estimators = [make_estimator("meta_ac"), make_estimator("mnc")]
        outcomes = run_estimators(cases, estimators, scale=SCALE)
        assert len(outcomes) == 4
        assert {o.use_case for o in outcomes} == {"B1.2", "B1.3"}

    def test_supports_use_case_static_check(self):
        lgraph = make_estimator("layered_graph")
        assert supports_use_case(lgraph, get_use_case("B3.3").build(scale=SCALE))
        assert not supports_use_case(lgraph, get_use_case("B3.5").build(scale=SCALE))

    def test_timing_recorded(self):
        outcome = run_use_case(get_use_case("B1.2"), make_estimator("mnc"), scale=SCALE)
        assert outcome.seconds >= 0


class TestReport:
    def test_format_error(self):
        assert format_error(1.0) == "1.00"
        assert format_error(float("inf")) == "INF"
        assert format_error(float("nan")) == "x"
        assert format_error(123456.0) == "1.23e+05"

    def test_outcomes_table_contains_cells(self):
        outcomes = [
            EstimateOutcome("B1.1", "MNC", 10, 10, 1.0, 0.01, "ok"),
            EstimateOutcome("B1.1", "LGraph", 10, float("nan"), float("inf"),
                            0.0, "unsupported"),
        ]
        table = outcomes_table(outcomes, title="demo")
        assert "demo" in table
        assert "MNC" in table
        assert "1.00" in table
        assert "x" in table

    def test_simple_table_renders(self):
        table = simple_table(
            ["name", "value"], [["a", 1.5], ["b", float("inf")]], title="t"
        )
        assert "name" in table
        assert "INF" in table
