"""Property-based tests for sketch propagation invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ops as core_ops
from repro.core.propagate import propagate_product
from repro.core.rounding import probabilistic_round
from repro.core.sketch import MNCSketch
from repro.matrix.conversion import as_csr


@st.composite
def matrices(draw, max_dim=16):
    m = draw(st.integers(1, max_dim))
    n = draw(st.integers(1, max_dim))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    return as_csr((rng.random((m, n)) < draw(st.floats(0.0, 1.0))).astype(np.int8))


@st.composite
def product_pairs(draw, max_dim=16):
    m = draw(st.integers(1, max_dim))
    n = draw(st.integers(1, max_dim))
    l = draw(st.integers(1, max_dim))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    a = as_csr((rng.random((m, n)) < draw(st.floats(0.0, 1.0))).astype(np.int8))
    b = as_csr((rng.random((n, l)) < draw(st.floats(0.0, 1.0))).astype(np.int8))
    return a, b


class TestProductPropagation:
    @given(product_pairs(), st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_propagated_sketch_is_valid(self, pair, seed):
        a, b = pair
        sketch = propagate_product(
            MNCSketch.from_matrix(a), MNCSketch.from_matrix(b),
            rng=np.random.default_rng(seed),
        )
        # Constructing an MNCSketch revalidates every invariant; reaching
        # here means hr/hc totals agree and all counts are in range.
        assert sketch.shape == (a.shape[0], b.shape[1])
        assert sketch.hr.sum() == sketch.hc.sum()
        assert np.all(sketch.hr >= 0)
        assert np.all(sketch.hr <= b.shape[1])
        assert np.all(sketch.hc <= a.shape[0])


class TestReorganizationPropagation:
    @given(matrices(), st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_reshape_total_preserved(self, matrix, seed):
        m, n = matrix.shape
        sketch = MNCSketch.from_matrix(matrix)
        # Reshape to a single row: always valid.
        reshaped = core_ops.propagate_reshape(
            sketch, 1, m * n, rng=np.random.default_rng(seed)
        )
        assert reshaped.total_nnz == matrix.nnz

    @given(matrices())
    @settings(max_examples=60, deadline=None)
    def test_eq_zero_complements_total(self, matrix):
        sketch = MNCSketch.from_matrix(matrix)
        complement = core_ops.propagate_equals_zero(sketch)
        m, n = matrix.shape
        assert sketch.total_nnz + complement.total_nnz == m * n

    @given(matrices(), matrices())
    @settings(max_examples=60, deadline=None)
    def test_rbind_requires_matching_or_raises(self, a, b):
        from repro.errors import ShapeError

        h_a, h_b = MNCSketch.from_matrix(a), MNCSketch.from_matrix(b)
        if a.shape[1] == b.shape[1]:
            combined = core_ops.propagate_rbind(h_a, h_b)
            assert combined.total_nnz == a.nnz + b.nnz
        else:
            try:
                core_ops.propagate_rbind(h_a, h_b)
                assert False, "expected ShapeError"
            except ShapeError:
                pass


class TestEwisePropagation:
    @given(matrices(), st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_self_multiplication_valid(self, matrix, seed):
        sketch = MNCSketch.from_matrix(matrix)
        result = core_ops.propagate_ewise_mult(
            sketch, sketch, rng=np.random.default_rng(seed)
        )
        assert result.total_nnz <= sketch.total_nnz
        assert result.hr.sum() == result.hc.sum()

    @given(matrices(), st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_add_with_empty_is_identity_total(self, matrix, seed):
        sketch = MNCSketch.from_matrix(matrix)
        empty = MNCSketch.from_matrix(
            as_csr(np.zeros(matrix.shape, dtype=np.int8))
        )
        result = core_ops.propagate_ewise_add(
            sketch, empty, rng=np.random.default_rng(seed)
        )
        assert result.total_nnz == sketch.total_nnz


class TestProbabilisticRounding:
    @given(
        st.lists(st.floats(0.0, 100.0), min_size=1, max_size=50),
        st.integers(0, 1000),
    )
    @settings(max_examples=80, deadline=None)
    def test_rounding_within_one(self, values, seed):
        array = np.array(values)
        rounded = probabilistic_round(array, rng=np.random.default_rng(seed))
        assert np.all(rounded >= np.floor(array).astype(np.int64))
        assert np.all(rounded <= np.ceil(array).astype(np.int64))
