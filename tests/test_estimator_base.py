"""Unit tests for the estimator interface, dispatch, and registry."""

import numpy as np
import pytest

from repro.errors import UnsupportedOperationError
from repro.estimators import available_estimators, make_estimator
from repro.estimators.base import SparsityEstimator, Synopsis
from repro.matrix.random import random_sparse
from repro.opcodes import Op


class TestRegistry:
    def test_all_paper_estimators_registered(self):
        names = available_estimators()
        for expected in [
            "meta_ac", "meta_wc", "bitset", "density_map", "sampling",
            "sampling_unbiased", "hash", "layered_graph", "mnc", "mnc_basic",
            "exact",
        ]:
            assert expected in names

    def test_make_estimator_with_kwargs(self):
        estimator = make_estimator("density_map", block_size=64)
        assert estimator.block_size == 64

    def test_unknown_name_raises(self):
        with pytest.raises(UnsupportedOperationError):
            make_estimator("does-not-exist")

    def test_instances_are_fresh(self):
        a = make_estimator("mnc")
        b = make_estimator("mnc")
        assert a is not b


class TestDispatch:
    def test_estimate_sparsity_wraps_nnz(self):
        estimator = make_estimator("meta_ac")
        a = estimator.build(random_sparse(10, 8, 0.5, seed=1))
        b = estimator.build(random_sparse(8, 12, 0.5, seed=2))
        nnz = estimator.estimate_nnz(Op.MATMUL, [a, b])
        sparsity = estimator.estimate_sparsity(Op.MATMUL, [a, b])
        assert sparsity == pytest.approx(nnz / (10 * 12))

    def test_unsupported_op_raises(self):
        estimator = make_estimator("layered_graph")
        a = estimator.build(np.eye(4))
        with pytest.raises(UnsupportedOperationError):
            estimator.estimate_nnz(Op.EWISE_ADD, [a, a])

    def test_supports_flags(self):
        lgraph = make_estimator("layered_graph")
        assert lgraph.supports(Op.MATMUL)
        assert not lgraph.supports(Op.EWISE_MULT)
        assert not lgraph.supports(Op.RESHAPE)
        mnc = make_estimator("mnc")
        for op in Op:
            if op is Op.LEAF:
                continue
            assert mnc.supports(op), f"MNC should support {op}"
            assert mnc.supports_propagation(op)

    def test_biased_sampling_has_no_chain_propagation(self):
        sampling = make_estimator("sampling")
        a = sampling.build(random_sparse(6, 6, 0.5, seed=3))
        with pytest.raises(UnsupportedOperationError):
            sampling.propagate(Op.MATMUL, [a, a])

    def test_unsupported_estimate_message(self):
        """Regression: the error must name the verb cleanly, not a mangled
        handler prefix."""
        estimator = make_estimator("layered_graph")
        a = estimator.build(np.eye(4))
        with pytest.raises(
            UnsupportedOperationError,
            match=r"estimator 'LGraph' does not support estimate of 'ewise_mult'",
        ):
            estimator.estimate_nnz(Op.EWISE_MULT, [a, a])

    def test_unsupported_propagate_message(self):
        estimator = make_estimator("layered_graph")
        a = estimator.build(np.eye(4))
        with pytest.raises(
            UnsupportedOperationError,
            match=r"estimator 'LGraph' does not support propagate of 'ewise_add'",
        ):
            estimator.propagate(Op.EWISE_ADD, [a, a])


class TestOutputShape:
    @pytest.fixture
    def synopses(self):
        estimator = make_estimator("meta_ac")
        return (
            estimator.build(np.ones((4, 6))),
            estimator.build(np.ones((6, 3))),
        )

    def test_matmul(self, synopses):
        a, b = synopses
        assert SparsityEstimator.output_shape(Op.MATMUL, [a, b]) == (4, 3)

    def test_transpose(self, synopses):
        a, _ = synopses
        assert SparsityEstimator.output_shape(Op.TRANSPOSE, [a]) == (6, 4)

    def test_reshape(self, synopses):
        a, _ = synopses
        assert SparsityEstimator.output_shape(Op.RESHAPE, [a], rows=8, cols=3) == (8, 3)

    def test_diag(self, synopses):
        estimator = make_estimator("meta_ac")
        v = estimator.build(np.ones((5, 1)))
        assert SparsityEstimator.output_shape(Op.DIAG_V2M, [v]) == (5, 5)
        s = estimator.build(np.ones((5, 5)))
        assert SparsityEstimator.output_shape(Op.DIAG_M2V, [s]) == (5, 1)

    def test_binds(self, synopses):
        estimator = make_estimator("meta_ac")
        a = estimator.build(np.ones((2, 3)))
        b = estimator.build(np.ones((4, 3)))
        assert SparsityEstimator.output_shape(Op.RBIND, [a, b]) == (6, 3)
        c = estimator.build(np.ones((2, 5)))
        assert SparsityEstimator.output_shape(Op.CBIND, [a, c]) == (2, 8)


class TestSynopsisDefaults:
    def test_sparsity_estimate(self):
        estimator = make_estimator("meta_ac")
        synopsis = estimator.build(np.eye(4))
        assert synopsis.sparsity_estimate == pytest.approx(0.25)
        assert synopsis.cells == 16

    def test_empty_shape_sparsity(self):
        estimator = make_estimator("meta_ac")
        synopsis = estimator.build(np.zeros((0, 4)))
        assert synopsis.sparsity_estimate == 0.0
