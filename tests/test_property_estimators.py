"""Property-based tests across all estimators and ground-truth operations."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimators import make_estimator
from repro.matrix import ops as mops
from repro.matrix.conversion import as_csr
from repro.opcodes import Op


@st.composite
def product_pairs(draw, max_dim=18):
    m = draw(st.integers(1, max_dim))
    n = draw(st.integers(1, max_dim))
    l = draw(st.integers(1, max_dim))
    density_a = draw(st.floats(0.0, 1.0))
    density_b = draw(st.floats(0.0, 1.0))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    a = as_csr((rng.random((m, n)) < density_a).astype(np.int8))
    b = as_csr((rng.random((n, l)) < density_b).astype(np.int8))
    return a, b


@st.composite
def equal_shape_pairs(draw, max_dim=18):
    m = draw(st.integers(1, max_dim))
    n = draw(st.integers(1, max_dim))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    a = as_csr((rng.random((m, n)) < draw(st.floats(0.0, 1.0))).astype(np.int8))
    b = as_csr((rng.random((m, n)) < draw(st.floats(0.0, 1.0))).astype(np.int8))
    return a, b


class TestExactEstimatorsAreExact:
    @given(product_pairs())
    @settings(max_examples=60, deadline=None)
    def test_bitset_product_exact(self, pair):
        a, b = pair
        estimator = make_estimator("bitset")
        estimate = estimator.estimate_nnz(
            Op.MATMUL, [estimator.build(a), estimator.build(b)]
        )
        assert estimate == mops.matmul(a, b).nnz

    @given(product_pairs())
    @settings(max_examples=40, deadline=None)
    def test_exact_oracle_product(self, pair):
        a, b = pair
        estimator = make_estimator("exact")
        estimate = estimator.estimate_nnz(
            Op.MATMUL, [estimator.build(a), estimator.build(b)]
        )
        assert estimate == mops.matmul(a, b).nnz

    @given(equal_shape_pairs())
    @settings(max_examples=40, deadline=None)
    def test_bitset_ewise_exact(self, pair):
        a, b = pair
        estimator = make_estimator("bitset")
        sa, sb = estimator.build(a), estimator.build(b)
        assert estimator.estimate_nnz(Op.EWISE_ADD, [sa, sb]) == mops.ewise_add(a, b).nnz
        assert estimator.estimate_nnz(Op.EWISE_MULT, [sa, sb]) == mops.ewise_mult(a, b).nnz


class TestEstimatorSanity:
    @given(product_pairs())
    @settings(max_examples=40, deadline=None)
    def test_all_product_estimates_in_physical_range(self, pair):
        a, b = pair
        cells = a.shape[0] * b.shape[1]
        for name in ("meta_ac", "meta_wc", "mnc", "mnc_basic", "density_map",
                     "sampling_unbiased", "hash"):
            estimator = make_estimator(name)
            estimate = estimator.estimate_nnz(
                Op.MATMUL, [estimator.build(a), estimator.build(b)]
            )
            assert 0.0 <= estimate <= cells + 1e-6, name

    @given(product_pairs())
    @settings(max_examples=40, deadline=None)
    def test_meta_wc_upper_bounds_truth(self, pair):
        a, b = pair
        truth = mops.matmul(a, b).nnz
        estimator = make_estimator("meta_wc")
        estimate = estimator.estimate_nnz(
            Op.MATMUL, [estimator.build(a), estimator.build(b)]
        )
        assert estimate >= truth - 1e-6

    @given(product_pairs())
    @settings(max_examples=40, deadline=None)
    def test_biased_sampling_lower_bounds_truth(self, pair):
        a, b = pair
        truth = mops.matmul(a, b).nnz
        estimator = make_estimator("sampling", fraction=1.0)
        estimate = estimator.estimate_nnz(
            Op.MATMUL, [estimator.build(a), estimator.build(b)]
        )
        assert estimate <= truth + 1e-6

    @given(equal_shape_pairs())
    @settings(max_examples=40, deadline=None)
    def test_mnc_ewise_add_bounds(self, pair):
        a, b = pair
        estimator = make_estimator("mnc")
        estimate = estimator.estimate_nnz(
            Op.EWISE_ADD, [estimator.build(a), estimator.build(b)]
        )
        assert max(a.nnz, b.nnz) - 1e-6 <= estimate
        assert estimate <= min(a.nnz + b.nnz, a.shape[0] * a.shape[1]) + 1e-6

    @given(equal_shape_pairs())
    @settings(max_examples=40, deadline=None)
    def test_mnc_ewise_mult_upper_bound(self, pair):
        a, b = pair
        estimator = make_estimator("mnc")
        estimate = estimator.estimate_nnz(
            Op.EWISE_MULT, [estimator.build(a), estimator.build(b)]
        )
        assert 0.0 <= estimate <= min(a.nnz, b.nnz) + 1e-6


class TestGroundTruthAlgebra:
    @given(equal_shape_pairs())
    @settings(max_examples=40, deadline=None)
    def test_inclusion_exclusion(self, pair):
        a, b = pair
        union = mops.ewise_add(a, b).nnz
        intersection = mops.ewise_mult(a, b).nnz
        assert union + intersection == a.nnz + b.nnz

    @given(product_pairs())
    @settings(max_examples=40, deadline=None)
    def test_product_transpose_identity(self, pair):
        a, b = pair
        left = mops.transpose(mops.matmul(a, b))
        right = mops.matmul(mops.transpose(b), mops.transpose(a))
        assert left.nnz == right.nnz
        assert (left != right).nnz == 0

    @given(product_pairs())
    @settings(max_examples=40, deadline=None)
    def test_reshape_roundtrip(self, pair):
        a, _ = pair
        m, n = a.shape
        reshaped = mops.reshape_rowwise(a, 1, m * n)
        back = mops.reshape_rowwise(reshaped, m, n)
        assert (back != a).nnz == 0
