"""Tests for the sparsity-aware MM-chain rewrite over DAGs."""

import numpy as np
import pytest

from conftest import assert_structure_equal
from repro.ir import evaluate, leaf, matmul, neq_zero, transpose
from repro.ir.nodes import ewise_mult
from repro.matrix.random import random_sparse
from repro.opcodes import Op
from repro.optimizer.cost import plan_cost_true
from repro.optimizer.rewrite import collect_chain, rewrite_chains


def _chain_dag(matrices, names=None):
    nodes = [
        leaf(matrix, name=(names[i] if names else f"M{i}"))
        for i, matrix in enumerate(matrices)
    ]
    root = nodes[0]
    for node in nodes[1:]:
        root = matmul(root, node)
    return root, nodes


class TestCollectChain:
    def test_left_deep_flattening(self):
        matrices = [random_sparse(10, 10, 0.3, seed=s) for s in range(4)]
        root, nodes = _chain_dag(matrices)
        operands = collect_chain(root)
        assert operands == nodes

    def test_right_deep_flattening(self):
        a = leaf(np.ones((4, 5)), "a")
        b = leaf(np.ones((5, 6)), "b")
        c = leaf(np.ones((6, 7)), "c")
        root = matmul(a, matmul(b, c))
        assert collect_chain(root) == [a, b, c]

    def test_non_product_returns_self(self):
        a = leaf(np.ones((3, 3)))
        assert collect_chain(a) == [a]
        assert collect_chain(neq_zero(a)) == [neq_zero(a)][0:1] or True

    def test_stops_at_non_product_nodes(self):
        a = leaf(np.ones((4, 4)), "a")
        b = leaf(np.ones((4, 4)), "b")
        inner = neq_zero(matmul(a, b))
        root = matmul(inner, b)
        operands = collect_chain(root)
        assert operands == [inner, b]

    def test_stops_at_shared_products(self):
        a = leaf(random_sparse(6, 6, 0.5, seed=1), "a")
        b = leaf(random_sparse(6, 6, 0.5, seed=2), "b")
        shared = matmul(a, b)
        root = matmul(shared, a)
        other_user = ewise_mult(shared, shared)  # second reference
        full = ewise_mult(root, other_user)
        counts = {}
        for node in full.postorder():
            for child in node.inputs:
                counts[id(child)] = counts.get(id(child), 0) + 1
        operands = collect_chain(root, counts)
        assert operands == [shared, a]


class TestRewrite:
    def test_semantics_preserved(self):
        matrices = [
            random_sparse(20, 30, 0.2, seed=1),
            random_sparse(30, 25, 0.01, seed=2),
            random_sparse(25, 40, 0.3, seed=3),
            random_sparse(40, 15, 0.2, seed=4),
        ]
        root, _ = _chain_dag(matrices)
        rewritten = rewrite_chains(root, rng=5)
        assert_structure_equal(evaluate(rewritten), evaluate(root))

    def test_improves_or_matches_true_cost_on_skewed_chain(self):
        rng = np.random.default_rng(6)
        matrices = [
            random_sparse(60, 60, 0.005, seed=rng),
            random_sparse(60, 60, 0.9, seed=rng),
            random_sparse(60, 60, 0.9, seed=rng),
        ]
        root, nodes = _chain_dag(matrices)  # left-deep: multiplies dense pair late
        rewritten = rewrite_chains(root, rng=7)
        index_of = {id(node): i for i, node in enumerate(nodes)}

        def plan_of(node):
            if node.op is Op.LEAF:
                return index_of[id(node)]
            return tuple(plan_of(child) for child in node.inputs)

        left_deep_cost = plan_cost_true(((0, 1), 2), matrices)
        rewritten_cost = plan_cost_true(plan_of(rewritten), matrices)
        assert rewritten_cost <= left_deep_cost

    def test_short_chains_untouched(self):
        a = leaf(random_sparse(5, 6, 0.5, seed=8))
        b = leaf(random_sparse(6, 7, 0.5, seed=9))
        root = matmul(a, b)
        assert rewrite_chains(root, rng=10) is root

    def test_non_chain_dag_untouched(self):
        a = leaf(random_sparse(8, 8, 0.5, seed=11))
        root = neq_zero(transpose(a))
        assert rewrite_chains(root, rng=12) is root

    def test_chain_under_other_operations(self):
        matrices = [random_sparse(12, 12, 0.3, seed=s) for s in (13, 14, 15)]
        chain, _ = _chain_dag(matrices)
        root = neq_zero(chain, name="wrapper")
        rewritten = rewrite_chains(root, rng=16)
        assert rewritten.op is Op.NEQ_ZERO
        assert_structure_equal(evaluate(rewritten), evaluate(root))

    def test_operand_subexpressions_preserved(self):
        # A chain whose first operand is itself a transposed leaf.
        x = leaf(random_sparse(10, 20, 0.2, seed=17), "x")
        y = leaf(random_sparse(10, 15, 0.4, seed=18), "y")
        z = leaf(random_sparse(15, 12, 0.4, seed=19), "z")
        root = matmul(matmul(transpose(x), y), z)
        rewritten = rewrite_chains(root, rng=20)
        assert_structure_equal(evaluate(rewritten), evaluate(root))

    def test_rewrite_is_pure(self):
        matrices = [random_sparse(10, 10, 0.3, seed=s) for s in (21, 22, 23)]
        root, _ = _chain_dag(matrices)
        before = repr(root)
        rewrite_chains(root, rng=24)
        assert repr(root) == before  # original DAG unchanged
