"""Tests for the memoized estimation service (repro.catalog.service)."""

import numpy as np
import pytest

import repro.sparsest.runner as runner_module
from repro.catalog import EstimationService, SketchStore
from repro.catalog.fingerprint import fingerprint_matrix
from repro.errors import SketchError
from repro.ir.interpreter import evaluate
from repro.ir.nodes import leaf, matmul, transpose
from repro.matrix.random import random_sparse
from repro.sparsest.runner import clear_truth_cache, true_nnz_of


@pytest.fixture
def matrices():
    a = random_sparse(40, 30, 0.15, seed=1)
    b = random_sparse(30, 35, 0.15, seed=2)
    return a, b


def build_expr(a, b):
    return matmul(leaf(a), leaf(b))


class TestRegistration:
    def test_register_returns_fingerprint_and_caches_sketch(self, matrices):
        a, _ = matrices
        service = EstimationService()
        fingerprint = service.register(a, name="A")
        assert fingerprint == fingerprint_matrix(a)
        assert service.resolve("A") == fingerprint
        assert service.store.get(fingerprint) is not None

    def test_resolve_unknown_name(self):
        with pytest.raises(SketchError):
            EstimationService().resolve("nope")

    def test_sketch_for_builds_once(self, matrices):
        a, _ = matrices
        service = EstimationService()
        first = service.sketch_for(a)
        second = service.sketch_for(a)
        assert first is second


class TestEstimate:
    def test_cold_then_warm(self, matrices):
        a, b = matrices
        service = EstimationService()
        cold = service.estimate(build_expr(a, b))
        warm = service.estimate(build_expr(a, b))  # rebuilt, same structure
        assert not cold["cached"]
        assert warm["cached"]
        assert warm["nnz"] == cold["nnz"]
        assert warm["fingerprint"] == cold["fingerprint"]

    def test_matches_uncached_estimator(self, matrices):
        a, b = matrices
        service = EstimationService()
        from repro.ir.estimate import estimate_root_nnz

        expr = build_expr(a, b)
        assert service.estimate(expr)["nnz"] == pytest.approx(
            estimate_root_nnz(build_expr(a, b), service.estimator)
        )

    def test_estimate_many_shares_cache(self, matrices):
        a, b = matrices
        service = EstimationService()
        results = service.estimate_many(
            [build_expr(a, b), build_expr(a, b), build_expr(a, b)]
        )
        assert [r["cached"] for r in results] == [False, True, True]

    def test_include_intermediates_bypasses_root_memo(self, matrices):
        a, b = matrices
        service = EstimationService()
        service.estimate(build_expr(a, b))
        detailed = service.estimate(build_expr(a, b), include_intermediates=True)
        assert not detailed["cached"]
        assert "intermediates" in detailed

    def test_register_then_estimate_reuses_leaf_sketches(self, matrices):
        a, b = matrices
        service = EstimationService()
        service.register(a)
        service.register(b)
        puts_before = service.store.stats().puts
        service.estimate(build_expr(a, b))
        # The DAG walk found both leaf sketches in the store; no new puts.
        assert service.store.stats().puts == puts_before

    def test_shared_subdag_cached_across_requests(self, matrices):
        a, _ = matrices
        service = EstimationService()
        gram = matmul(transpose(leaf(a)), leaf(a))
        service.estimate(gram)
        # A different root over the same sub-structure reuses its synopsis.
        bigger = matmul(matmul(transpose(leaf(a)), leaf(a)), leaf(a.T.tocsr()))
        result = service.estimate(bigger)
        assert not result["cached"]  # new root ...
        hits = service.memo.stats()["hits"]
        assert hits >= 1  # ... but the shared gram synopsis was a memo hit


class TestSynopsisRouting:
    def test_mnc_leaf_sketches_live_in_store(self, matrices):
        a, b = matrices
        service = EstimationService("mnc")
        service.estimate(build_expr(a, b))
        assert fingerprint_matrix(a) in service.store
        assert fingerprint_matrix(b) in service.store

    def test_non_canonical_estimator_uses_memo_not_store(self, matrices):
        a, b = matrices
        service = EstimationService("mnc_basic")
        service.estimate(build_expr(a, b))
        assert len(service.store) == 0
        assert len(service.memo) > 0

    def test_density_map_estimator_round_trips(self, matrices):
        a, b = matrices
        service = EstimationService("density_map")
        cold = service.estimate(build_expr(a, b))
        warm = service.estimate(build_expr(a, b))
        assert warm["cached"] and warm["nnz"] == cold["nnz"]
        assert len(service.store) == 0


class TestLifecycle:
    def test_invalidate_by_matrix(self, matrices):
        a, b = matrices
        service = EstimationService()
        service.estimate(build_expr(a, b))
        service.invalidate(a)
        assert fingerprint_matrix(a) not in service.store
        assert fingerprint_matrix(b) in service.store

    def test_invalidate_by_name(self, matrices):
        a, _ = matrices
        service = EstimationService()
        service.register(a, name="A")
        service.invalidate("A")
        assert fingerprint_matrix(a) not in service.store

    def test_clear(self, matrices):
        a, b = matrices
        service = EstimationService()
        service.register(a, name="A")
        service.estimate(build_expr(a, b))
        service.clear()
        assert len(service.store) == 0 and len(service.memo) == 0
        assert service.names == {"A": fingerprint_matrix(a)}

    def test_persist_and_warm(self, matrices, tmp_path):
        a, b = matrices
        service = EstimationService()
        service.register(a)
        service.register(b)
        assert service.persist(tmp_path) == 2

        fresh = EstimationService(store=SketchStore())
        keys = fresh.warm(tmp_path)
        assert sorted(keys) == sorted(
            [fingerprint_matrix(a), fingerprint_matrix(b)]
        )
        puts_before = fresh.store.stats().puts
        fresh.estimate(build_expr(a, b))
        assert fresh.store.stats().puts == puts_before  # warm sketches reused

    def test_stats_shape(self, matrices):
        a, b = matrices
        service = EstimationService()
        service.estimate(build_expr(a, b))
        service.estimate(build_expr(a, b))
        stats = service.stats()
        assert stats["service"]["requests"] == 2
        assert stats["service"]["hits"] == 1
        assert stats["service"]["hit_rate"] == 0.5
        assert "hit_rate" in stats["store"]
        assert "entries" in stats["memo"]


class TestOptimizeChain:
    def test_chain_through_catalog_reuses_sketches(self):
        chain = [
            random_sparse(30, 25, 0.2, seed=10),
            random_sparse(25, 40, 0.1, seed=11),
            random_sparse(40, 20, 0.15, seed=12),
        ]
        service = EstimationService()
        first = service.optimize_chain(chain, rng=np.random.default_rng(0))
        puts_after_first = service.store.stats().puts
        second = service.optimize_chain(chain, rng=np.random.default_rng(0))
        assert service.store.stats().puts == puts_after_first
        assert first.plan == second.plan

    def test_chain_matches_uncatalogued(self):
        from repro.optimizer.mmchain import optimize_chain_matrices

        chain = [
            random_sparse(30, 25, 0.2, seed=10),
            random_sparse(25, 40, 0.1, seed=11),
            random_sparse(40, 20, 0.15, seed=12),
        ]
        direct = optimize_chain_matrices(chain, rng=np.random.default_rng(0))
        via_catalog = EstimationService().optimize_chain(
            chain, rng=np.random.default_rng(0)
        )
        assert direct.plan == via_catalog.plan
        assert direct.cost == pytest.approx(via_catalog.cost)


class TestTruthMemo:
    """Satellite: the runner's truth cache now survives expression rebuilds."""

    def test_truth_survives_rebuild(self, matrices, monkeypatch):
        a, b = matrices
        clear_truth_cache()
        calls = []

        def counting_evaluate(root):
            calls.append(root)
            return evaluate(root)

        monkeypatch.setattr(runner_module, "evaluate", counting_evaluate)
        first = true_nnz_of(build_expr(a, b))
        second = true_nnz_of(build_expr(a, b))  # new objects, same structure
        assert first == second
        assert len(calls) == 1

    def test_clear_truth_cache_forces_recompute(self, matrices, monkeypatch):
        a, b = matrices
        clear_truth_cache()
        calls = []

        def counting_evaluate(root):
            calls.append(root)
            return evaluate(root)

        monkeypatch.setattr(runner_module, "evaluate", counting_evaluate)
        true_nnz_of(build_expr(a, b))
        clear_truth_cache()
        true_nnz_of(build_expr(a, b))
        assert len(calls) == 2

    def test_truth_matches_direct_evaluation(self, matrices):
        a, b = matrices
        clear_truth_cache()
        expr = build_expr(a, b)
        assert true_nnz_of(expr) == float(evaluate(expr).nnz)
