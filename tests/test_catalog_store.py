"""Tests for the byte-budgeted LRU sketch store (repro.catalog.store)."""

import threading

import numpy as np
import pytest

from repro.catalog.store import SketchStore
from repro.core.serialize import save_sketch
from repro.core.sketch import MNCSketch
from repro.errors import SketchError
from repro.matrix.random import random_sparse


def _sketch(seed, m=30, n=24, sparsity=0.2):
    return MNCSketch.from_matrix(random_sparse(m, n, sparsity, seed=seed))


class TestBasicCache:
    def test_put_get_round_trip(self):
        store = SketchStore()
        sketch = _sketch(1)
        store.put("k1", sketch)
        assert store.get("k1") is sketch
        assert "k1" in store
        assert len(store) == 1

    def test_miss_returns_none(self):
        store = SketchStore()
        assert store.get("absent") is None
        stats = store.stats()
        assert stats.misses == 1 and stats.hits == 0

    def test_put_same_key_replaces(self):
        store = SketchStore()
        store.put("k", _sketch(1))
        replacement = _sketch(2)
        store.put("k", replacement)
        assert store.get("k") is replacement
        assert len(store) == 1

    def test_invalid_budget_rejected(self):
        with pytest.raises(SketchError):
            SketchStore(budget_bytes=0)

    def test_discard(self):
        store = SketchStore()
        store.put("k", _sketch(1))
        assert store.discard("k")
        assert store.get("k") is None
        assert not store.discard("k")
        assert store.bytes_used == 0


class TestBudgetAndEviction:
    def test_lru_eviction_under_budget(self):
        # Sketch sizes vary by seed (all-zero extension vectors are
        # dropped), so compute a budget that holds "a" plus either other
        # entry, but never all three.
        sizes = {seed: _sketch(seed).size_bytes() for seed in (1, 2, 3)}
        budget = sizes[1] + max(sizes[2], sizes[3]) + 8
        store = SketchStore(budget_bytes=budget)
        store.put("a", _sketch(1))
        store.put("b", _sketch(2))
        store.get("a")  # refresh "a"; "b" becomes LRU
        store.put("c", _sketch(3))
        assert store.get("b") is None
        assert store.get("a") is not None
        assert store.get("c") is not None
        assert store.stats().evictions == 1

    def test_budget_never_exceeded(self):
        one = _sketch(1)
        budget = int(one.size_bytes() * 2.5)
        store = SketchStore(budget_bytes=budget)
        for seed in range(20):
            store.put(f"k{seed}", _sketch(seed))
            assert store.bytes_used <= budget

    def test_oversized_sketch_never_resident(self, tmp_path):
        small = _sketch(1, m=10, n=8)
        store = SketchStore(
            budget_bytes=small.size_bytes() + 1, spill_dir=tmp_path
        )
        big = _sketch(2, m=500, n=400, sparsity=0.05)
        assert big.size_bytes() > store.budget_bytes
        store.put("big", big)
        assert len(store) == 0
        # ... but it spilled, so it is still readable (as a disk hit).
        loaded = store.get("big")
        assert loaded is not None
        np.testing.assert_array_equal(loaded.hr, big.hr)


class TestSpill:
    def test_evicted_entries_spill_and_reload(self, tmp_path):
        # Budget holds either sketch alone (sizes differ by seed), not both.
        budget = max(_sketch(1).size_bytes(), _sketch(2).size_bytes()) + 8
        store = SketchStore(budget_bytes=budget, spill_dir=tmp_path)
        store.put("a", _sketch(1))
        store.put("b", _sketch(2))  # evicts "a" to disk
        assert (tmp_path / "a.npz").exists()
        reloaded = store.get("a")
        assert reloaded is not None
        np.testing.assert_array_equal(reloaded.hr, _sketch(1).hr)
        stats = store.stats()
        assert stats.spills >= 1 and stats.disk_hits == 1

    def test_no_spill_dir_drops_evictions(self):
        budget = max(_sketch(1).size_bytes(), _sketch(2).size_bytes()) + 8
        store = SketchStore(budget_bytes=budget)
        store.put("a", _sketch(1))
        store.put("b", _sketch(2))
        assert store.get("a") is None

    def test_clear_remove_spill(self, tmp_path):
        store = SketchStore(spill_dir=tmp_path)
        store.put("a", _sketch(1))
        store.persist()
        assert list(tmp_path.glob("*.npz"))
        store.clear(remove_spill=True)
        assert not list(tmp_path.glob("*.npz"))
        assert len(store) == 0


class TestWarmStartPersist:
    def test_persist_then_warm_start_round_trips(self, tmp_path):
        store = SketchStore()
        store.put("alpha", _sketch(1))
        store.put("beta", _sketch(2))
        assert store.persist(tmp_path) == 2

        fresh = SketchStore()
        keys = fresh.warm_start(tmp_path)
        assert sorted(keys) == ["alpha", "beta"]
        np.testing.assert_array_equal(
            fresh.get("alpha").hr, store.get("alpha").hr
        )

    def test_warm_start_orders_by_filename(self, tmp_path):
        for name, seed in [("w-0", 3), ("w-1", 4), ("w-2", 5)]:
            save_sketch(tmp_path / f"{name}.npz", _sketch(seed))
        keys = SketchStore().warm_start(tmp_path)
        assert keys == ["w-0", "w-1", "w-2"]

    def test_warm_start_missing_directory(self, tmp_path):
        with pytest.raises(SketchError):
            SketchStore().warm_start(tmp_path / "nope")

    def test_persist_needs_target(self):
        with pytest.raises(SketchError):
            SketchStore().persist()

    def test_warm_start_skips_corrupt_files(self, tmp_path):
        """Partially-written / corrupt npz files are skipped and counted,
        not raised mid-scan (ISSUE 7 satellite)."""
        save_sketch(tmp_path / "good.npz", _sketch(1))
        (tmp_path / "truncated.npz").write_bytes(b"PK\x03\x04 not a real zip")
        (tmp_path / "empty.npz").write_bytes(b"")
        (tmp_path / "notzip.npz").write_text("plain text, no zip magic")

        store = SketchStore()
        keys = store.warm_start(tmp_path)
        assert keys == ["good"]
        assert store.stats().warm_skipped == 3
        assert store.get("good") is not None

    def test_warm_start_skips_wrong_schema_npz(self, tmp_path):
        """A valid npz that is not a sketch (missing fields) is skipped."""
        save_sketch(tmp_path / "ok.npz", _sketch(2))
        np.savez(tmp_path / "alien.npz", other=np.arange(3))
        store = SketchStore()
        assert store.warm_start(tmp_path) == ["ok"]
        assert store.stats().warm_skipped == 1

    def test_warm_start_skips_future_version(self, tmp_path):
        """A payload from a future format version is skipped, not fatal."""
        save_sketch(tmp_path / "ok.npz", _sketch(3))
        arrays = dict(np.load(tmp_path / "ok.npz"))
        arrays["version"] = np.array([99], dtype=np.int64)
        np.savez(tmp_path / "future.npz", **arrays)
        store = SketchStore()
        assert store.warm_start(tmp_path) == ["ok"]
        assert store.stats().warm_skipped == 1

    def test_warm_start_concurrent_callers(self, tmp_path):
        """Several threads warm-starting one directory (some files corrupt)
        all complete; every good key ends up resident."""
        good = {f"g{i}": _sketch(i) for i in range(6)}
        for key, sketch in good.items():
            save_sketch(tmp_path / f"{key}.npz", sketch)
        (tmp_path / "bad.npz").write_bytes(b"\x00" * 16)

        store = SketchStore()
        errors = []
        barrier = threading.Barrier(4)

        def warm():
            try:
                barrier.wait()
                loaded = store.warm_start(tmp_path)
                assert sorted(loaded) == sorted(good)
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=warm) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for key in good:
            assert store.get(key) is not None
        assert store.stats().warm_skipped == 4  # the bad file, once per call


class TestDemote:
    def test_demote_moves_entry_to_disk_tier(self, tmp_path):
        store = SketchStore(spill_dir=tmp_path)
        store.put("k", _sketch(5))
        assert store.demote("k")
        assert len(store) == 0
        assert (tmp_path / "k.npz").exists()
        reloaded = store.get("k")  # disk hit promotes it back
        assert reloaded is not None
        assert store.stats().disk_hits == 1

    def test_demote_without_spill_dir_drops(self):
        store = SketchStore()
        store.put("k", _sketch(6))
        assert store.demote("k")
        assert store.get("k") is None

    def test_demote_missing_key(self):
        assert not SketchStore().demote("absent")


class TestConcurrency:
    def test_hammering_threads_no_lost_updates_budget_respected(self):
        """Acceptance criterion: >= 4 threads on one store, no lost updates,
        byte budget never exceeded."""
        sketches = {f"k{seed}": _sketch(seed) for seed in range(12)}
        budget = 6 * next(iter(sketches.values())).size_bytes()
        store = SketchStore(budget_bytes=budget)
        errors = []
        budget_violations = []
        barrier = threading.Barrier(6)

        def hammer(worker):
            try:
                barrier.wait()
                for round_no in range(60):
                    key = f"k{(worker * 7 + round_no) % 12}"
                    cached = store.get(key)
                    if cached is None:
                        store.put(key, sketches[key])
                        cached = store.get(key)
                    # A lost update would surface as wrong sketch content.
                    if cached is not None:
                        np.testing.assert_array_equal(
                            cached.hr, sketches[key].hr
                        )
                    if store.bytes_used > budget:
                        budget_violations.append(store.bytes_used)
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(worker,)) for worker in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        assert not budget_violations
        assert store.bytes_used <= budget
        stats = store.stats()
        # Every put either stayed resident or was evicted; nothing vanished
        # without being accounted for.
        assert stats.puts >= 12
        assert stats.entries == len(store.keys())

    def test_concurrent_memo_style_reads(self):
        store = SketchStore()
        sketch = _sketch(42)
        store.put("shared", sketch)
        results = []
        barrier = threading.Barrier(4)

        def read():
            barrier.wait()
            for _ in range(200):
                results.append(store.get("shared") is sketch)

        threads = [threading.Thread(target=read) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(results) and len(results) == 800
