"""Unit tests for the structured random generators."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.matrix.properties import (
    col_nnz,
    is_fully_diagonal,
    is_permutation,
    row_nnz,
    sparsity,
)
from repro.matrix.random import (
    banded_matrix,
    diagonal_matrix,
    one_hot_block,
    outer_product_pair,
    permutation_matrix,
    power_law_columns,
    random_sparse,
    selection_matrix,
    single_nnz_per_row,
)


class TestRandomSparse:
    def test_expected_density(self):
        matrix = random_sparse(400, 400, 0.05, seed=1)
        assert 0.04 < sparsity(matrix) < 0.06

    def test_dense_path(self):
        matrix = random_sparse(100, 100, 0.9, seed=2)
        assert 0.85 < sparsity(matrix) < 0.95

    def test_deterministic(self):
        a = random_sparse(50, 50, 0.1, seed=3)
        b = random_sparse(50, 50, 0.1, seed=3)
        assert (a != b).nnz == 0

    def test_zero_sparsity(self):
        assert random_sparse(10, 10, 0.0, seed=4).nnz == 0

    def test_ones_values(self):
        matrix = random_sparse(30, 30, 0.2, seed=5, values="ones")
        assert set(np.unique(matrix.data)) == {1}

    def test_invalid_sparsity(self):
        with pytest.raises(ShapeError):
            random_sparse(5, 5, 1.5)

    def test_no_explicit_zero_values(self):
        matrix = random_sparse(50, 50, 0.3, seed=6)
        assert np.all(matrix.data != 0)


class TestSingleNnzPerRow:
    def test_exactly_one_per_row(self):
        matrix = single_nnz_per_row(200, 50, seed=7)
        np.testing.assert_array_equal(row_nnz(matrix), np.ones(200))

    def test_weighted_columns(self):
        weights = np.zeros(10)
        weights[3] = 1.0
        matrix = single_nnz_per_row(40, 10, seed=8, column_weights=weights)
        assert col_nnz(matrix)[3] == 40

    def test_weight_shape_validated(self):
        with pytest.raises(ShapeError):
            single_nnz_per_row(5, 10, column_weights=np.ones(3))


class TestPowerLawColumns:
    def test_skewed_head(self):
        matrix = power_law_columns(2000, 100, total_nnz=3000, alpha=1.5, seed=9)
        counts = col_nnz(matrix)
        assert counts[0] > counts[50]
        assert counts[0] > counts[99]

    def test_total_close_to_requested(self):
        matrix = power_law_columns(5000, 200, total_nnz=2000, seed=10)
        assert 0.9 * 2000 <= matrix.nnz <= 2000


class TestPermutationAndSelection:
    def test_permutation_is_permutation(self):
        assert is_permutation(permutation_matrix(64, seed=11))

    def test_selection_extracts_rows(self):
        p = selection_matrix([4, 1], 6)
        assert p.shape == (2, 6)
        x = np.arange(24.0).reshape(6, 4) + 1
        extracted = (p.astype(float) @ x)
        np.testing.assert_array_equal(extracted[0], x[4])
        np.testing.assert_array_equal(extracted[1], x[1])

    def test_selection_bounds_checked(self):
        with pytest.raises(ShapeError):
            selection_matrix([7], 6)


class TestStructuredShapes:
    def test_diagonal(self):
        assert is_fully_diagonal(diagonal_matrix(16, seed=12))

    def test_banded_nnz(self):
        matrix = banded_matrix(10, 1)
        assert matrix.nnz == 10 + 2 * 9  # main diagonal + two off-diagonals

    def test_banded_zero_bandwidth_is_identity(self):
        matrix = banded_matrix(5, 0)
        assert is_fully_diagonal(matrix)

    def test_one_hot(self):
        block = one_hot_block(30, 4, seed=13)
        np.testing.assert_array_equal(row_nnz(block), np.ones(30))
        assert block.shape == (30, 4)

    def test_outer_pair_product_shapes(self):
        column, row = outer_product_pair(8, dense_index=2)
        assert col_nnz(column)[2] == 8
        assert row_nnz(row)[2] == 8
        assert column.nnz == row.nnz == 8

    def test_outer_pair_index_validated(self):
        with pytest.raises(ShapeError):
            outer_product_pair(4, dense_index=4)
