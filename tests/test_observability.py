"""Tests for the observability layer: spans, collectors, exporters."""

import json
import math

import pytest

from repro.observability import (
    NullCollector,
    RecordingCollector,
    aggregate_spans,
    count,
    error_time_table,
    get_collector,
    observe,
    read_trace,
    set_collector,
    stats_table,
    timed_span,
    trace,
    using_collector,
    write_trace,
)
from repro.observability.export import percentile


class TestCollectorManagement:
    def test_default_is_null(self):
        collector = get_collector()
        assert isinstance(collector, NullCollector)
        assert not collector.enabled

    def test_using_collector_scopes_and_restores(self):
        previous = get_collector()
        recording = RecordingCollector()
        with using_collector(recording):
            assert get_collector() is recording
        assert get_collector() is previous

    def test_using_collector_restores_on_error(self):
        previous = get_collector()
        with pytest.raises(RuntimeError):
            with using_collector(RecordingCollector()):
                raise RuntimeError("boom")
        assert get_collector() is previous

    def test_set_collector_returns_previous(self):
        original = get_collector()
        recording = RecordingCollector()
        assert set_collector(recording) is original
        assert set_collector(original) is recording


class TestSpans:
    def test_null_collector_records_nothing_and_skips_clock(self):
        with trace("noop", key=1) as span:
            pass
        assert span.seconds is None

    def test_timed_span_always_times(self):
        with timed_span("timed") as span:
            pass
        assert span.seconds is not None
        assert span.seconds >= 0.0

    def test_span_attributes_and_annotation(self):
        with using_collector(RecordingCollector()) as collector:
            with trace("work", shape=(3, 4)) as span:
                span.annotate(result_nnz=7.0)
        (record,) = collector.spans
        assert record.name == "work"
        assert record.attrs == {"shape": (3, 4), "result_nnz": 7.0}
        assert record.seconds >= 0.0

    def test_span_nesting_depths(self):
        with using_collector(RecordingCollector()) as collector:
            with trace("outer"):
                with trace("inner"):
                    with trace("innermost"):
                        pass
        by_name = {record.name: record for record in collector.spans}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        assert by_name["innermost"].depth == 2
        # Inner spans complete (and are recorded) before outer ones.
        names = [record.name for record in collector.spans]
        assert names == ["innermost", "inner", "outer"]

    def test_span_recorded_even_when_body_raises(self):
        with using_collector(RecordingCollector()) as collector:
            with pytest.raises(ValueError):
                with trace("failing"):
                    raise ValueError("boom")
        assert [record.name for record in collector.spans] == ["failing"]

    def test_trace_as_decorator(self):
        @trace("decorated", flavor="test")
        def add(a, b):
            return a + b

        with using_collector(RecordingCollector()) as collector:
            assert add(2, 3) == 5
            assert add(4, 5) == 9
        assert len(collector.spans) == 2
        assert all(record.name == "decorated" for record in collector.spans)
        assert collector.spans[0].attrs == {"flavor": "test"}

    def test_counters_and_histograms(self):
        with using_collector(RecordingCollector()) as collector:
            count("hits")
            count("hits", 2.0)
            observe("latency", 0.5)
            observe("latency", 1.5)
        assert collector.counters == {"hits": 3.0}
        assert collector.histograms == {"latency": [0.5, 1.5]}

    def test_counters_are_noops_without_collector(self):
        count("ignored")
        observe("ignored", 1.0)  # must not raise


class TestAggregation:
    def test_percentile(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == pytest.approx(2.5)
        assert math.isnan(percentile([], 95))

    def test_aggregate_groups_by_name_and_estimator(self):
        with using_collector(RecordingCollector()) as collector:
            for _ in range(3):
                with trace("estimator.build", estimator="MNC"):
                    pass
            with trace("estimator.build", estimator="DMap"):
                pass
            with trace("dag.propagate"):
                pass
        stats = aggregate_spans(collector.spans)
        keys = {(entry.name, entry.estimator) for entry in stats}
        assert ("estimator.build", "MNC") in keys
        assert ("estimator.build", "DMap") in keys
        assert ("dag.propagate", None) in keys
        mnc = next(s for s in stats if s.estimator == "MNC")
        assert mnc.count == 3
        assert mnc.total_seconds == pytest.approx(
            mnc.mean_seconds * 3, rel=1e-9
        )
        table = stats_table(stats, title="Span aggregates")
        assert "Span aggregates" in table
        assert "estimator.build" in table
        assert "p95 [s]" in table


class TestJsonlRoundTrip:
    def test_round_trip(self, tmp_path):
        collector = RecordingCollector()
        with using_collector(collector):
            with trace("estimator.build", estimator="MNC", shape=(10, 20)):
                pass
            count("spans.total", 1)
            observe("build.seconds", 0.25)
        collector.record_outcome({
            "use_case": "B1.1", "estimator": "MNC",
            "relative_error": 1.0, "seconds": 0.001, "status": "ok",
        })
        path = tmp_path / "trace.jsonl"
        records = write_trace(path, collector)
        assert records == 4
        # Every line is standalone JSON.
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 4
        for line in lines:
            json.loads(line)

        data = read_trace(path)
        (span,) = data.spans
        assert span.name == "estimator.build"
        assert span.attrs["estimator"] == "MNC"
        assert span.attrs["shape"] == [10, 20]  # tuples become JSON arrays
        assert data.counters == {"spans.total": 1.0}
        assert data.histograms == {"build.seconds": [0.25]}
        (outcome,) = data.outcomes
        assert outcome["use_case"] == "B1.1"
        assert outcome["relative_error"] == 1.0

    def test_non_finite_values_survive_serialization(self, tmp_path):
        collector = RecordingCollector()
        collector.record_outcome({
            "use_case": "B2.1", "estimator": "LGraph",
            "relative_error": math.inf, "seconds": 0.0,
            "status": "unsupported",
        })
        path = tmp_path / "trace.jsonl"
        write_trace(path, collector)
        data = read_trace(path)
        table = error_time_table(data.outcomes)
        assert "LGraph" in table
        assert "unsupported" in table

    def test_read_skips_blank_and_unknown_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"type": "span", "name": "a", "seconds": 0.1}\n'
            "\n"
            '{"type": "future-record", "payload": 1}\n'
        )
        data = read_trace(path)
        assert len(data.spans) == 1
        assert data.spans[0].name == "a"
